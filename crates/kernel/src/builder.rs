//! Ergonomic kernel construction.
//!
//! `KernelBuilder` handles register allocation and nesting so that codegen
//! (in `insum-inductor`) and hand-written baselines (in `insum-baselines`)
//! can build kernels without manual register bookkeeping.

use crate::ir::{BinOp, Instr, Kernel, ParamDecl, Reg};

/// Incremental builder for [`Kernel`]s with automatic register allocation.
///
/// # Example
///
/// ```
/// use insum_kernel::{KernelBuilder, BinOp};
///
/// let mut b = KernelBuilder::new("axpy");
/// let x = b.input("X");
/// let y = b.output("Y");
/// let pid = b.program_id(0);
/// let lanes = b.arange(32);
/// let block = b.constant(32.0);
/// let base = b.binary(BinOp::Mul, pid, block);
/// let offs = b.binary(BinOp::Add, base, lanes);
/// let v = b.load(x, offs, None, 0.0);
/// let two = b.constant(2.0);
/// let v2 = b.binary(BinOp::Mul, v, two);
/// b.store(y, offs, v2, None);
/// let kernel = b.build();
/// assert!(kernel.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<ParamDecl>,
    next_reg: Reg,
    // Stack of instruction lists: the last entry is the innermost open
    // scope (loop body); index 0 is the kernel body.
    scopes: Vec<Vec<Instr>>,
    // Caches for hoisted pure values (constants/aranges), emitted once in
    // the kernel body scope — the loop-invariant hoisting every real
    // compiler performs.
    const_cache: std::collections::HashMap<u64, Reg>,
    arange_cache: std::collections::HashMap<usize, Reg>,
    // One frame per open loop.
    open_loops: Vec<LoopFrame>,
}

#[derive(Debug)]
enum LoopFrame {
    Static {
        var: Reg,
        start: i64,
        end: i64,
        step: i64,
    },
    Dynamic {
        var: Reg,
        start: Reg,
        end: Reg,
    },
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: &str) -> KernelBuilder {
        KernelBuilder {
            name: name.to_string(),
            params: Vec::new(),
            next_reg: 0,
            scopes: vec![Vec::new()],
            const_cache: std::collections::HashMap::new(),
            arange_cache: std::collections::HashMap::new(),
            open_loops: Vec::new(),
        }
    }

    /// Declare a read-only parameter; returns its parameter index.
    pub fn input(&mut self, name: &str) -> usize {
        self.params.push(ParamDecl::input(name));
        self.params.len() - 1
    }

    /// Declare a written parameter; returns its parameter index.
    pub fn output(&mut self, name: &str) -> usize {
        self.params.push(ParamDecl::output(name));
        self.params.len() - 1
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, instr: Instr) {
        self.scopes
            .last_mut()
            .expect("at least the kernel body scope")
            .push(instr);
    }

    /// Emit `program_id(axis)`.
    pub fn program_id(&mut self, axis: usize) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::ProgramId { dst, axis });
        dst
    }

    /// Emit a scalar constant, hoisted to the kernel body scope and
    /// deduplicated (constants are pure, so this is always legal and
    /// mirrors the loop-invariant code motion real compilers perform).
    pub fn constant(&mut self, value: f64) -> Reg {
        if let Some(&r) = self.const_cache.get(&value.to_bits()) {
            return r;
        }
        let dst = self.fresh();
        self.scopes[0].push(Instr::Const { dst, value });
        self.const_cache.insert(value.to_bits(), dst);
        dst
    }

    /// Emit `arange(0, len)`, hoisted and deduplicated like
    /// [`KernelBuilder::constant`].
    pub fn arange(&mut self, len: usize) -> Reg {
        if let Some(&r) = self.arange_cache.get(&len) {
            return r;
        }
        let dst = self.fresh();
        self.scopes[0].push(Instr::Arange { dst, len });
        self.arange_cache.insert(len, dst);
        dst
    }

    /// Emit `full(shape, value)`.
    pub fn full(&mut self, shape: Vec<usize>, value: f64) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::Full { dst, shape, value });
        dst
    }

    /// Emit a binary operation.
    pub fn binary(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::Binary { dst, op, a, b });
        dst
    }

    /// Emit a binary operation writing an existing register (for loop
    /// accumulators: `acc = acc + x`).
    pub fn binary_into(&mut self, dst: Reg, op: BinOp, a: Reg, b: Reg) {
        self.emit(Instr::Binary { dst, op, a, b });
    }

    /// Emit `expand_dims(src, axis)` (a `[:, None]`-style free reshape).
    pub fn expand_dims(&mut self, src: Reg, axis: usize) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::ExpandDims { dst, src, axis });
        dst
    }

    /// Emit an eager `broadcast_to`.
    pub fn broadcast(&mut self, src: Reg, shape: Vec<usize>) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::Broadcast { dst, src, shape });
        dst
    }

    /// Emit `tl.view` (shared-memory reshape).
    pub fn view(&mut self, src: Reg, shape: Vec<usize>) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::View { dst, src, shape });
        dst
    }

    /// Emit `tl.trans` (shared-memory 2-D transpose).
    pub fn trans(&mut self, src: Reg) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::Trans { dst, src });
        dst
    }

    /// Emit a load.
    pub fn load(&mut self, param: usize, offset: Reg, mask: Option<Reg>, other: f64) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::Load {
            dst,
            param,
            offset,
            mask,
            other,
        });
        dst
    }

    /// Emit a store.
    pub fn store(&mut self, param: usize, offset: Reg, value: Reg, mask: Option<Reg>) {
        self.emit(Instr::Store {
            param,
            offset,
            value,
            mask,
        });
    }

    /// Emit an atomic add (scatter).
    pub fn atomic_add(&mut self, param: usize, offset: Reg, value: Reg, mask: Option<Reg>) {
        self.emit(Instr::AtomicAdd {
            param,
            offset,
            value,
            mask,
        });
    }

    /// Emit `tl.dot`.
    pub fn dot(&mut self, a: Reg, b: Reg) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::Dot { dst, a, b });
        dst
    }

    /// Emit `tl.dot` accumulating into an existing register:
    /// `acc += dot(a, b)`.
    pub fn dot_acc(&mut self, acc: Reg, a: Reg, b: Reg) {
        let dst = self.fresh();
        self.emit(Instr::Dot { dst, a, b });
        self.emit(Instr::Binary {
            dst: acc,
            op: BinOp::Add,
            a: acc,
            b: dst,
        });
    }

    /// Emit `tl.sum(src, axis)`.
    pub fn sum(&mut self, src: Reg, axis: usize) -> Reg {
        let dst = self.fresh();
        self.emit(Instr::Sum { dst, src, axis });
        dst
    }

    /// Open a `for var in range(start, end, step)` loop; returns the
    /// induction-variable register. Close with [`KernelBuilder::end_loop`].
    pub fn begin_loop(&mut self, start: i64, end: i64, step: i64) -> Reg {
        let var = self.fresh();
        self.open_loops.push(LoopFrame::Static {
            var,
            start,
            end,
            step,
        });
        self.scopes.push(Vec::new());
        var
    }

    /// Open a loop with data-dependent scalar bounds (CSR-style); returns
    /// the induction-variable register. Close with
    /// [`KernelBuilder::end_loop`].
    pub fn begin_loop_dyn(&mut self, start: Reg, end: Reg) -> Reg {
        let var = self.fresh();
        self.open_loops.push(LoopFrame::Dynamic { var, start, end });
        self.scopes.push(Vec::new());
        var
    }

    /// Close the innermost open loop.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open.
    pub fn end_loop(&mut self) {
        let body = self.scopes.pop().expect("scope stack underflow");
        match self.open_loops.pop().expect("no open loop") {
            LoopFrame::Static {
                var,
                start,
                end,
                step,
            } => {
                self.emit(Instr::Loop {
                    var,
                    start,
                    end,
                    step,
                    body,
                });
            }
            LoopFrame::Dynamic { var, start, end } => {
                self.emit(Instr::LoopDyn {
                    var,
                    start,
                    end,
                    body,
                });
            }
        }
    }

    /// Finish building.
    ///
    /// # Panics
    ///
    /// Panics if a loop is still open.
    pub fn build(mut self) -> Kernel {
        assert!(
            self.open_loops.is_empty(),
            "unclosed loop in kernel {:?}",
            self.name
        );
        let body = self.scopes.pop().expect("kernel body scope");
        Kernel {
            name: self.name,
            params: self.params,
            body,
            num_regs: self.next_reg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_distinct_registers() {
        let mut b = KernelBuilder::new("k");
        let r0 = b.constant(1.0);
        let r1 = b.constant(2.0);
        assert_ne!(r0, r1);
        let k = b.build();
        assert_eq!(k.num_regs, 2);
        k.validate().unwrap();
    }

    #[test]
    fn loops_nest() {
        let mut b = KernelBuilder::new("k");
        let _i = b.begin_loop(0, 4, 1);
        let _j = b.begin_loop(0, 2, 1);
        let c = b.constant(0.0);
        b.binary(BinOp::Add, c, c);
        b.end_loop();
        b.end_loop();
        let k = b.build();
        k.validate().unwrap();
        // The constant hoists to the kernel body; the loops follow.
        assert_eq!(k.body.len(), 2);
        assert!(matches!(k.body[0], Instr::Const { .. }));
        let Instr::Loop { body, .. } = &k.body[1] else {
            panic!()
        };
        let Instr::Loop { body: inner, .. } = &body[0] else {
            panic!()
        };
        assert!(matches!(inner[0], Instr::Binary { .. }));
    }

    #[test]
    fn constants_and_aranges_are_cached() {
        let mut b = KernelBuilder::new("k");
        let c1 = b.constant(3.0);
        let c2 = b.constant(3.0);
        assert_eq!(c1, c2);
        let a1 = b.arange(8);
        let a2 = b.arange(8);
        assert_eq!(a1, a2);
        let k = b.build();
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn unclosed_loop_panics() {
        let mut b = KernelBuilder::new("k");
        b.begin_loop(0, 4, 1);
        let _ = b.build();
    }

    #[test]
    fn dot_acc_emits_dot_then_add() {
        let mut b = KernelBuilder::new("k");
        let acc = b.full(vec![2, 2], 0.0);
        let x = b.full(vec![2, 2], 1.0);
        let y = b.full(vec![2, 2], 1.0);
        b.dot_acc(acc, x, y);
        let k = b.build();
        assert!(matches!(k.body[3], Instr::Dot { .. }));
        assert!(matches!(k.body[4], Instr::Binary { op: BinOp::Add, .. }));
    }
}
