//! Kernel IR definitions.

use std::error::Error;
use std::fmt;

/// A virtual register holding a block value (a small n-d array; scalars
/// are rank-0 blocks).
pub type Reg = usize;

/// Elementwise binary operations on blocks, with NumPy-style broadcasting.
///
/// Comparison and logic ops produce mask blocks of 0.0 / 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// Integer floor division `a // b`.
    FloorDiv,
    /// Integer remainder `a % b`.
    Mod,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `a < b` → mask
    Lt,
    /// `a <= b` → mask
    Le,
    /// `a == b` → mask
    Eq,
    /// `a >= b` → mask
    Ge,
    /// logical and of masks
    And,
}

impl BinOp {
    /// The Triton-ish operator token used by the printer.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "==",
            BinOp::Ge => ">=",
            BinOp::And => "&",
        }
    }
}

/// One kernel instruction.
///
/// Register blocks follow value semantics: an instruction overwrites its
/// `dst` register. Loop bodies execute once per induction value with the
/// loop variable materialized as a scalar block.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = tl.program_id(axis)` — this instance's grid coordinate.
    ProgramId {
        /// Destination register (scalar).
        dst: Reg,
        /// Grid axis, 0..3.
        axis: usize,
    },
    /// `dst = value` — scalar constant.
    Const {
        /// Destination register (scalar).
        dst: Reg,
        /// The value.
        value: f64,
    },
    /// `dst = tl.arange(0, len)` — 1-D iota block.
    Arange {
        /// Destination register.
        dst: Reg,
        /// Number of lanes.
        len: usize,
    },
    /// `dst = tl.full(shape, value)`.
    Full {
        /// Destination register.
        dst: Reg,
        /// Block shape.
        shape: Vec<usize>,
        /// Fill value.
        value: f64,
    },
    /// `dst = a <op> b` with broadcasting.
    Binary {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: BinOp,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = src[..., None, ...]` — insert a size-1 axis (lazy-broadcast
    /// building block; free on the device).
    ExpandDims {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Position of the new axis.
        axis: usize,
    },
    /// `dst = tl.broadcast_to(src, shape)` — materialize a broadcast
    /// (eager broadcasting; charged as register/shared-memory traffic).
    Broadcast {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Target shape.
        shape: Vec<usize>,
    },
    /// `dst = tl.view(src, shape)` — reshape through shared memory
    /// (charged by the cost model; the eager-broadcasting tax of §5.2.3).
    View {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// New shape (same volume).
        shape: Vec<usize>,
    },
    /// `dst = tl.trans(src)` — 2-D transpose through shared memory.
    Trans {
        /// Destination register.
        dst: Reg,
        /// Source register (rank 2).
        src: Reg,
    },
    /// `dst = tl.load(params[param] + offset, mask=mask, other=other)`.
    ///
    /// `offset` is a block of *element* offsets into the parameter tensor;
    /// masked-off lanes yield `other` and generate no memory traffic.
    Load {
        /// Destination register.
        dst: Reg,
        /// Parameter index.
        param: usize,
        /// Element-offset block.
        offset: Reg,
        /// Optional mask block (same shape as `offset` after broadcast).
        mask: Option<Reg>,
        /// Value substituted for masked lanes.
        other: f64,
    },
    /// `tl.store(params[param] + offset, value, mask=mask)`.
    Store {
        /// Parameter index.
        param: usize,
        /// Element-offset block.
        offset: Reg,
        /// Value block.
        value: Reg,
        /// Optional mask block.
        mask: Option<Reg>,
    },
    /// `tl.atomic_add(params[param] + offset, value, mask=mask)` — the
    /// scatter primitive; colliding lanes serialize on the device.
    AtomicAdd {
        /// Parameter index.
        param: usize,
        /// Element-offset block.
        offset: Reg,
        /// Value block.
        value: Reg,
        /// Optional mask block.
        mask: Option<Reg>,
    },
    /// `dst = tl.dot(a, b)` — Tensor-Core matrix multiply of `[m, k] x
    /// [k, n] -> [m, n]` blocks.
    Dot {
        /// Destination register.
        dst: Reg,
        /// Left operand (rank 2).
        a: Reg,
        /// Right operand (rank 2).
        b: Reg,
    },
    /// `dst = tl.sum(src, axis)` — in-block reduction (rank decreases).
    Sum {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Axis reduced over.
        axis: usize,
    },
    /// `for var in range(start, end, step): body` — sequential loop.
    Loop {
        /// Register receiving the induction value each iteration.
        var: Reg,
        /// First induction value.
        start: i64,
        /// Exclusive upper bound.
        end: i64,
        /// Step (must be positive).
        step: i64,
        /// Loop body.
        body: Vec<Instr>,
    },
    /// `for var in range(start, end): body` with *data-dependent* scalar
    /// bounds — the variable-length loop that Einsums cannot express (§4)
    /// but hand-written CSR/BCSR baseline kernels rely on.
    LoopDyn {
        /// Register receiving the induction value each iteration.
        var: Reg,
        /// Scalar register holding the first induction value.
        start: Reg,
        /// Scalar register holding the exclusive upper bound.
        end: Reg,
        /// Loop body.
        body: Vec<Instr>,
    },
}

/// Declaration of a kernel parameter (a device tensor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name (used by the printer and for binding diagnostics).
    pub name: String,
    /// True if the kernel writes this parameter.
    pub written: bool,
}

impl ParamDecl {
    /// A read-only parameter.
    pub fn input(name: &str) -> ParamDecl {
        ParamDecl {
            name: name.to_string(),
            written: false,
        }
    }

    /// A written (output) parameter.
    pub fn output(name: &str) -> ParamDecl {
        ParamDecl {
            name: name.to_string(),
            written: true,
        }
    }
}

/// A complete kernel: parameters plus a straight-line body with loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (appears in printed source and profiles).
    pub name: String,
    /// Parameter declarations, bound positionally at launch.
    pub params: Vec<ParamDecl>,
    /// The body.
    pub body: Vec<Instr>,
    /// Number of virtual registers used.
    pub num_regs: usize,
}

/// Structural validation error for kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError(pub String);

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid kernel: {}", self.0)
    }
}

impl Error for KernelError {}

impl Kernel {
    /// Validate structural invariants: register bounds, parameter bounds,
    /// positive loop steps, and that stores only target written params.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] describing the first violation found.
    pub fn validate(&self) -> crate::Result<()> {
        fn walk(kernel: &Kernel, body: &[Instr]) -> crate::Result<()> {
            for instr in body {
                let regs: Vec<Reg> = match instr {
                    Instr::ProgramId { dst, .. }
                    | Instr::Const { dst, .. }
                    | Instr::Arange { dst, .. }
                    | Instr::Full { dst, .. } => vec![*dst],
                    Instr::Binary { dst, a, b, .. } => vec![*dst, *a, *b],
                    Instr::ExpandDims { dst, src, .. }
                    | Instr::Broadcast { dst, src, .. }
                    | Instr::View { dst, src, .. }
                    | Instr::Trans { dst, src } => vec![*dst, *src],
                    Instr::Load {
                        dst,
                        offset,
                        mask,
                        param,
                        ..
                    } => {
                        check_param(kernel, *param, false)?;
                        let mut v = vec![*dst, *offset];
                        v.extend(mask.iter());
                        v
                    }
                    Instr::Store {
                        offset,
                        value,
                        mask,
                        param,
                    }
                    | Instr::AtomicAdd {
                        offset,
                        value,
                        mask,
                        param,
                    } => {
                        check_param(kernel, *param, true)?;
                        let mut v = vec![*offset, *value];
                        v.extend(mask.iter());
                        v
                    }
                    Instr::Dot { dst, a, b } => vec![*dst, *a, *b],
                    Instr::Sum { dst, src, .. } => vec![*dst, *src],
                    Instr::Loop {
                        var, step, body, ..
                    } => {
                        if *step <= 0 {
                            return Err(KernelError(format!("loop step {step} must be positive")));
                        }
                        walk(kernel, body)?;
                        vec![*var]
                    }
                    Instr::LoopDyn {
                        var,
                        start,
                        end,
                        body,
                    } => {
                        walk(kernel, body)?;
                        vec![*var, *start, *end]
                    }
                };
                for r in regs {
                    if r >= kernel.num_regs {
                        return Err(KernelError(format!(
                            "register {r} out of range ({} registers declared)",
                            kernel.num_regs
                        )));
                    }
                }
                if let Instr::ProgramId { axis, .. } = instr {
                    if *axis >= 3 {
                        return Err(KernelError(format!("program_id axis {axis} must be < 3")));
                    }
                }
            }
            Ok(())
        }
        fn check_param(kernel: &Kernel, param: usize, needs_write: bool) -> crate::Result<()> {
            let decl = kernel
                .params
                .get(param)
                .ok_or_else(|| KernelError(format!("parameter index {param} out of range")))?;
            if needs_write && !decl.written {
                return Err(KernelError(format!(
                    "parameter {:?} is stored to but not declared written",
                    decl.name
                )));
            }
            Ok(())
        }
        walk(self, &self.body)
    }

    /// Count instructions, recursing into loop bodies (static count, not
    /// dynamic trip counts).
    pub fn instruction_count(&self) -> usize {
        fn count(body: &[Instr]) -> usize {
            body.iter()
                .map(|i| match i {
                    Instr::Loop { body, .. } | Instr::LoopDyn { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_kernel() -> Kernel {
        Kernel {
            name: "t".into(),
            params: vec![ParamDecl::input("A"), ParamDecl::output("C")],
            body: vec![
                Instr::ProgramId { dst: 0, axis: 0 },
                Instr::Load {
                    dst: 1,
                    param: 0,
                    offset: 0,
                    mask: None,
                    other: 0.0,
                },
                Instr::Store {
                    param: 1,
                    offset: 0,
                    value: 1,
                    mask: None,
                },
            ],
            num_regs: 2,
        }
    }

    #[test]
    fn valid_kernel_passes() {
        trivial_kernel().validate().unwrap();
    }

    #[test]
    fn register_out_of_range_rejected() {
        let mut k = trivial_kernel();
        k.num_regs = 1;
        assert!(k.validate().is_err());
    }

    #[test]
    fn store_to_readonly_param_rejected() {
        let mut k = trivial_kernel();
        k.params[1].written = false;
        let err = k.validate().unwrap_err();
        assert!(err.to_string().contains("not declared written"));
    }

    #[test]
    fn bad_param_index_rejected() {
        let mut k = trivial_kernel();
        k.body.push(Instr::Load {
            dst: 1,
            param: 9,
            offset: 0,
            mask: None,
            other: 0.0,
        });
        assert!(k.validate().is_err());
    }

    #[test]
    fn nonpositive_loop_step_rejected() {
        let mut k = trivial_kernel();
        k.body.push(Instr::Loop {
            var: 0,
            start: 0,
            end: 4,
            step: 0,
            body: vec![],
        });
        assert!(k.validate().is_err());
    }

    #[test]
    fn nested_loop_bodies_validated() {
        let mut k = trivial_kernel();
        k.body.push(Instr::Loop {
            var: 0,
            start: 0,
            end: 4,
            step: 1,
            body: vec![Instr::Const {
                dst: 99,
                value: 1.0,
            }],
        });
        assert!(k.validate().is_err());
    }

    #[test]
    fn instruction_count_recurses() {
        let mut k = trivial_kernel();
        k.body.push(Instr::Loop {
            var: 0,
            start: 0,
            end: 4,
            step: 1,
            body: vec![Instr::Const { dst: 1, value: 1.0 }],
        });
        assert_eq!(k.instruction_count(), 5);
    }

    #[test]
    fn program_id_axis_bounded() {
        let mut k = trivial_kernel();
        k.body.push(Instr::ProgramId { dst: 0, axis: 3 });
        assert!(k.validate().is_err());
    }
}
