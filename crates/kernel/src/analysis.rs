//! IR analysis helpers shared by the simulator's ahead-of-time program
//! compiler and the launch-time safety checks: structural fingerprinting
//! (the program-cache key) and per-parameter access summaries.

use crate::ir::{Instr, Kernel};

/// Visit every instruction in `body` in pre-order, recursing into loop
/// bodies.
pub fn visit_instrs<'a, F: FnMut(&'a Instr)>(body: &'a [Instr], f: &mut F) {
    for instr in body {
        f(instr);
        match instr {
            Instr::Loop { body, .. } | Instr::LoopDyn { body, .. } => visit_instrs(body, f),
            _ => {}
        }
    }
}

/// Per-parameter access summary: which parameters the kernel loads and
/// which it stores or atomically updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamUsage {
    /// `loaded[p]` — parameter `p` appears in at least one `Load`.
    pub loaded: Vec<bool>,
    /// `written[p]` — parameter `p` appears in a `Store` or `AtomicAdd`.
    pub written: Vec<bool>,
}

impl ParamUsage {
    /// True when no parameter is both loaded and written — the condition
    /// under which grid instances have no cross-instance read-after-write
    /// hazards (Execute-mode launches may then run out of order).
    pub fn no_read_write_params(&self) -> bool {
        self.loaded
            .iter()
            .zip(&self.written)
            .all(|(&l, &w)| !(l && w))
    }
}

/// Summarize which parameters a kernel loads and writes.
pub fn param_usage(kernel: &Kernel) -> ParamUsage {
    let n = kernel.params.len();
    let mut usage = ParamUsage {
        loaded: vec![false; n],
        written: vec![false; n],
    };
    visit_instrs(&kernel.body, &mut |instr| match instr {
        Instr::Load { param, .. } => usage.loaded[*param] = true,
        Instr::Store { param, .. } | Instr::AtomicAdd { param, .. } => usage.written[*param] = true,
        _ => {}
    });
    usage
}

/// A 64-bit FNV-1a accumulator — stable across platforms and runs
/// (unlike `DefaultHasher`, whose seed and algorithm are unspecified),
/// which makes fingerprints safe to persist or compare out of process.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    fn shape(&mut self, s: &[usize]) {
        self.usize(s.len());
        for &d in s {
            self.usize(d);
        }
    }
}

fn hash_body(h: &mut Fnv, body: &[Instr]) {
    h.usize(body.len());
    for instr in body {
        match instr {
            Instr::ProgramId { dst, axis } => {
                h.byte(1);
                h.usize(*dst);
                h.usize(*axis);
            }
            Instr::Const { dst, value } => {
                h.byte(2);
                h.usize(*dst);
                h.f64(*value);
            }
            Instr::Arange { dst, len } => {
                h.byte(3);
                h.usize(*dst);
                h.usize(*len);
            }
            Instr::Full { dst, shape, value } => {
                h.byte(4);
                h.usize(*dst);
                h.shape(shape);
                h.f64(*value);
            }
            Instr::Binary { dst, op, a, b } => {
                h.byte(5);
                h.usize(*dst);
                h.byte(*op as u8);
                h.usize(*a);
                h.usize(*b);
            }
            Instr::ExpandDims { dst, src, axis } => {
                h.byte(6);
                h.usize(*dst);
                h.usize(*src);
                h.usize(*axis);
            }
            Instr::Broadcast { dst, src, shape } => {
                h.byte(7);
                h.usize(*dst);
                h.usize(*src);
                h.shape(shape);
            }
            Instr::View { dst, src, shape } => {
                h.byte(8);
                h.usize(*dst);
                h.usize(*src);
                h.shape(shape);
            }
            Instr::Trans { dst, src } => {
                h.byte(9);
                h.usize(*dst);
                h.usize(*src);
            }
            Instr::Load {
                dst,
                param,
                offset,
                mask,
                other,
            } => {
                h.byte(10);
                h.usize(*dst);
                h.usize(*param);
                h.usize(*offset);
                h.usize(mask.map_or(usize::MAX, |m| m));
                h.f64(*other);
            }
            Instr::Store {
                param,
                offset,
                value,
                mask,
            } => {
                h.byte(11);
                h.usize(*param);
                h.usize(*offset);
                h.usize(*value);
                h.usize(mask.map_or(usize::MAX, |m| m));
            }
            Instr::AtomicAdd {
                param,
                offset,
                value,
                mask,
            } => {
                h.byte(12);
                h.usize(*param);
                h.usize(*offset);
                h.usize(*value);
                h.usize(mask.map_or(usize::MAX, |m| m));
            }
            Instr::Dot { dst, a, b } => {
                h.byte(13);
                h.usize(*dst);
                h.usize(*a);
                h.usize(*b);
            }
            Instr::Sum { dst, src, axis } => {
                h.byte(14);
                h.usize(*dst);
                h.usize(*src);
                h.usize(*axis);
            }
            Instr::Loop {
                var,
                start,
                end,
                step,
                body,
            } => {
                h.byte(15);
                h.usize(*var);
                h.u64(*start as u64);
                h.u64(*end as u64);
                h.u64(*step as u64);
                hash_body(h, body);
            }
            Instr::LoopDyn {
                var,
                start,
                end,
                body,
            } => {
                h.byte(16);
                h.usize(*var);
                h.usize(*start);
                h.usize(*end);
                hash_body(h, body);
            }
        }
    }
}

/// A stable structural fingerprint of a kernel: two kernels share a
/// fingerprint exactly when their name, parameter declarations, register
/// count, and instruction tree are identical. Used (together with the
/// launch grid and argument metadata) as the program-cache key, so the
/// ahead-of-time lowering in `insum_gpu` is done once per distinct
/// launch shape rather than once per launch.
pub fn fingerprint(kernel: &Kernel) -> u64 {
    let mut h = Fnv::new();
    h.str(&kernel.name);
    h.usize(kernel.params.len());
    for p in &kernel.params {
        h.str(&p.name);
        h.byte(p.written as u8);
    }
    h.usize(kernel.num_regs);
    hash_body(&mut h, &kernel.body);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, KernelBuilder};

    fn sample(scale: f64) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let w = b.constant(32.0);
        let base = b.binary(BinOp::Mul, pid, w);
        let lanes = b.arange(32);
        let offs = b.binary(BinOp::Add, base, lanes);
        let v = b.load(x, offs, None, 0.0);
        let s = b.constant(scale);
        let sv = b.binary(BinOp::Mul, v, s);
        b.store(y, offs, sv, None);
        b.build()
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        assert_eq!(fingerprint(&sample(2.0)), fingerprint(&sample(2.0)));
        assert_ne!(fingerprint(&sample(2.0)), fingerprint(&sample(3.0)));
        let mut renamed = sample(2.0);
        renamed.name = "other".into();
        assert_ne!(fingerprint(&sample(2.0)), fingerprint(&renamed));
    }

    #[test]
    fn fingerprint_covers_loop_bodies() {
        let mut a = sample(2.0);
        let mut b = sample(2.0);
        a.body.push(Instr::Loop {
            var: 0,
            start: 0,
            end: 4,
            step: 1,
            body: vec![Instr::Const { dst: 1, value: 1.0 }],
        });
        b.body.push(Instr::Loop {
            var: 0,
            start: 0,
            end: 4,
            step: 1,
            body: vec![Instr::Const { dst: 1, value: 2.0 }],
        });
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn param_usage_flags_read_write_hazards() {
        let u = param_usage(&sample(1.0));
        assert_eq!(u.loaded, vec![true, false]);
        assert_eq!(u.written, vec![false, true]);
        assert!(u.no_read_write_params());

        // A kernel that reads its own output has a hazard.
        let mut b = KernelBuilder::new("rmw");
        let y = b.output("Y");
        let lanes = b.arange(8);
        let v = b.load(y, lanes, None, 0.0);
        b.store(y, lanes, v, None);
        let k = b.build();
        assert!(!param_usage(&k).no_read_write_params());
    }
}
