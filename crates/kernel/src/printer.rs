//! Pretty-printer: render a kernel as Triton-flavoured pseudo-Python.
//!
//! Used for the qualitative codegen comparison of paper Fig. 8 (default vs
//! `tl.dot` vs lazy broadcasting) and for lines-of-code accounting.

use crate::ir::{BinOp, Instr, Kernel};
use std::fmt::Write as _;

fn reg(r: usize) -> String {
    format!("v{r}")
}

fn shape_str(shape: &[usize]) -> String {
    let inner: Vec<String> = shape.iter().map(|d| d.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

fn emit(instr: &Instr, kernel: &Kernel, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match instr {
        Instr::ProgramId { dst, axis } => {
            let _ = writeln!(out, "{pad}{} = tl.program_id({axis})", reg(*dst));
        }
        Instr::Const { dst, value } => {
            let _ = writeln!(out, "{pad}{} = {value}", reg(*dst));
        }
        Instr::Arange { dst, len } => {
            let _ = writeln!(out, "{pad}{} = tl.arange(0, {len})", reg(*dst));
        }
        Instr::Full { dst, shape, value } => {
            let _ = writeln!(
                out,
                "{pad}{} = tl.full({}, {value})",
                reg(*dst),
                shape_str(shape)
            );
        }
        Instr::Binary { dst, op, a, b } => match op {
            BinOp::Min | BinOp::Max => {
                let name = if *op == BinOp::Min {
                    "minimum"
                } else {
                    "maximum"
                };
                let _ = writeln!(
                    out,
                    "{pad}{} = tl.{name}({}, {})",
                    reg(*dst),
                    reg(*a),
                    reg(*b)
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{pad}{} = {} {} {}",
                    reg(*dst),
                    reg(*a),
                    op.token(),
                    reg(*b)
                );
            }
        },
        Instr::ExpandDims { dst, src, axis } => {
            let _ = writeln!(
                out,
                "{pad}{} = tl.expand_dims({}, {axis})",
                reg(*dst),
                reg(*src)
            );
        }
        Instr::Broadcast { dst, src, shape } => {
            let _ = writeln!(
                out,
                "{pad}{} = tl.broadcast_to({}, {})",
                reg(*dst),
                reg(*src),
                shape_str(shape)
            );
        }
        Instr::View { dst, src, shape } => {
            let _ = writeln!(
                out,
                "{pad}{} = tl.view({}, {})",
                reg(*dst),
                reg(*src),
                shape_str(shape)
            );
        }
        Instr::Trans { dst, src } => {
            let _ = writeln!(out, "{pad}{} = tl.trans({})", reg(*dst), reg(*src));
        }
        Instr::Load {
            dst,
            param,
            offset,
            mask,
            other,
        } => {
            let p = &kernel.params[*param].name;
            match mask {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "{pad}{} = tl.load({p} + {}, mask={}, other={other})",
                        reg(*dst),
                        reg(*offset),
                        reg(*m)
                    );
                }
                None => {
                    let _ = writeln!(out, "{pad}{} = tl.load({p} + {})", reg(*dst), reg(*offset));
                }
            }
        }
        Instr::Store {
            param,
            offset,
            value,
            mask,
        } => {
            let p = &kernel.params[*param].name;
            match mask {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "{pad}tl.store({p} + {}, {}, mask={})",
                        reg(*offset),
                        reg(*value),
                        reg(*m)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{pad}tl.store({p} + {}, {})",
                        reg(*offset),
                        reg(*value)
                    );
                }
            }
        }
        Instr::AtomicAdd {
            param,
            offset,
            value,
            mask,
        } => {
            let p = &kernel.params[*param].name;
            match mask {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "{pad}tl.atomic_add({p} + {}, {}, mask={})",
                        reg(*offset),
                        reg(*value),
                        reg(*m)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{pad}tl.atomic_add({p} + {}, {})",
                        reg(*offset),
                        reg(*value)
                    );
                }
            }
        }
        Instr::Dot { dst, a, b } => {
            let _ = writeln!(out, "{pad}{} = tl.dot({}, {})", reg(*dst), reg(*a), reg(*b));
        }
        Instr::Sum { dst, src, axis } => {
            let _ = writeln!(out, "{pad}{} = tl.sum({}, {axis})", reg(*dst), reg(*src));
        }
        Instr::Loop {
            var,
            start,
            end,
            step,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}for {} in range({start}, {end}, {step}):",
                reg(*var)
            );
            if body.is_empty() {
                let _ = writeln!(out, "{pad}    pass");
            }
            for i in body {
                emit(i, kernel, indent + 1, out);
            }
        }
        Instr::LoopDyn {
            var,
            start,
            end,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}for {} in range({}, {}):",
                reg(*var),
                reg(*start),
                reg(*end)
            );
            if body.is_empty() {
                let _ = writeln!(out, "{pad}    pass");
            }
            for i in body {
                emit(i, kernel, indent + 1, out);
            }
        }
    }
}

/// Render a kernel as Triton-flavoured pseudo-Python source.
///
/// The output is stable (deterministic) so it can back golden tests.
pub fn print_kernel(kernel: &Kernel) -> String {
    let mut out = String::new();
    let params: Vec<&str> = kernel.params.iter().map(|p| p.name.as_str()).collect();
    let _ = writeln!(out, "@triton.jit");
    let _ = writeln!(out, "def {}({}):", kernel.name, params.join(", "));
    if kernel.body.is_empty() {
        let _ = writeln!(out, "    pass");
    }
    for instr in &kernel.body {
        emit(instr, kernel, 1, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::BinOp;

    #[test]
    fn prints_simple_kernel() {
        let mut b = KernelBuilder::new("copy");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let lanes = b.arange(4);
        let offs = b.binary(BinOp::Add, pid, lanes);
        let v = b.load(x, offs, None, 0.0);
        b.store(y, offs, v, None);
        let k = b.build();
        let src = print_kernel(&k);
        assert!(src.contains("@triton.jit"));
        assert!(src.contains("def copy(X, Y):"));
        assert!(src.contains("tl.program_id(0)"));
        assert!(src.contains("tl.load(X + v2)"));
        assert!(src.contains("tl.store(Y + v2, v3)"));
    }

    #[test]
    fn prints_loops_with_indentation() {
        let mut b = KernelBuilder::new("loopy");
        let _ = b.output("Y");
        let i = b.begin_loop(0, 8, 2);
        b.binary(BinOp::Add, i, i);
        b.end_loop();
        let k = b.build();
        let src = print_kernel(&k);
        assert!(src.contains("for v0 in range(0, 8, 2):"));
        assert!(src.contains("\n        v1 = v0 + v0"));
    }

    #[test]
    fn prints_masked_ops_and_dot() {
        let mut b = KernelBuilder::new("m");
        let x = b.input("X");
        let c = b.output("C");
        let a0 = b.full(vec![2, 2], 0.0);
        let lanes = b.arange(2);
        let bound = b.constant(2.0);
        let mask = b.binary(BinOp::Lt, lanes, bound);
        let v = b.load(x, lanes, Some(mask), 0.0);
        let d = b.dot(a0, a0);
        let s = b.binary(BinOp::Add, d, v);
        b.atomic_add(c, lanes, s, Some(mask));
        let k = b.build();
        let src = print_kernel(&k);
        assert!(src.contains("mask=v3, other=0"));
        assert!(src.contains("tl.dot(v0, v0)"));
        assert!(src.contains("tl.atomic_add(C + v1, v6, mask=v3)"));
    }

    #[test]
    fn empty_kernel_prints_pass() {
        let k = KernelBuilder::new("empty").build();
        assert!(print_kernel(&k).contains("    pass"));
    }

    #[test]
    fn print_is_deterministic() {
        let mk = || {
            let mut b = KernelBuilder::new("k");
            let x = b.input("X");
            let o = b.arange(8);
            let v = b.load(x, o, None, 0.0);
            let y = b.output("Y");
            b.store(y, o, v, None);
            b.build()
        };
        assert_eq!(print_kernel(&mk()), print_kernel(&mk()));
    }
}
