//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Shapes of the operands are incompatible for the operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: String,
        /// Details of the mismatch.
        detail: String,
    },
    /// The element count implied by a shape does not match the data length.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// An index (axis or element) is out of range.
    IndexOutOfBounds {
        /// Which index was bad.
        index: i64,
        /// The valid extent.
        bound: usize,
        /// Context for the failure.
        context: String,
    },
    /// An einsum specification string could not be parsed or validated.
    InvalidEinsum(String),
    /// The operation requires a different dtype.
    DTypeMismatch {
        /// Description of the operation.
        op: String,
        /// Details of the mismatch.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::IndexOutOfBounds {
                index,
                bound,
                context,
            } => {
                write!(f, "index {index} out of bounds ({bound}) in {context}")
            }
            TensorError::InvalidEinsum(msg) => write!(f, "invalid einsum: {msg}"),
            TensorError::DTypeMismatch { op, detail } => {
                write!(f, "dtype mismatch in {op}: {detail}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert_eq!(e.to_string(), "data length 5 does not match shape volume 6");
        let e = TensorError::InvalidEinsum("bad spec".into());
        assert!(e.to_string().contains("bad spec"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
