//! Dense n-dimensional tensor substrate for the Insum reproduction.
//!
//! This crate plays the role PyTorch's dense tensors play in the paper: it
//! provides the storage type every other layer builds on, a *reference*
//! `einsum` implementation used as the semantic ground truth for all
//! compiled kernels, and the gather/scatter primitives
//! ([`Tensor::index_select`], [`Tensor::index_add`]) that the Insum rewriter
//! lowers indirect accesses to.
//!
//! Storage is always row-major contiguous `f32`; a [`DType`] tag records the
//! *simulated* element type. Casting a tensor to [`DType::F16`] rounds every
//! value through IEEE binary16 so half-precision numerics are faithful, and
//! the GPU memory model reads the tag to account bytes and decide
//! Tensor-Core eligibility.
//!
//! # Copy-on-write storage
//!
//! The backing buffer is shared ([`std::sync::Arc`]) with copy-on-write
//! mutation: `clone`, [`Tensor::reshape`], [`Tensor::view`], and
//! [`Tensor::unsqueeze`] are O(1) handle operations, and the first write
//! through a handle whose buffer is shared materializes a private copy —
//! so every handle still behaves exactly like an independent deep-copy
//! value. This is what makes per-request tensor capture free across the
//! compile/launch/serve stack: read-only operands (sparse structure,
//! weights, activations) are bound by reference everywhere, and only the
//! output a kernel writes ever allocates. [`Tensor::ptr_eq`] tests
//! storage identity (a cheap proof of bit-identity), and
//! [`Tensor::deep_copy_count`] counts real buffer materializations for
//! clone-accounting checks. Equality (`==`) is logical — shape, dtype,
//! and element values — independent of sharing.
//!
//! # Example
//!
//! ```
//! use insum_tensor::{Tensor, DType};
//!
//! # fn main() -> Result<(), insum_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::eye(2);
//! let c = insum_tensor::einsum("ik,kj->ij", &[&a, &b])?;
//! assert!(c.allclose(&a, 1e-6, 1e-6));
//! # Ok(())
//! # }
//! ```

mod broadcast;
mod dtype;
mod einsum;
mod error;
mod f16;
mod indexing;
mod rng;
mod tensor;

pub use broadcast::broadcast_shapes;
pub use dtype::DType;
pub use einsum::{einsum, EinsumSpec};
pub use error::TensorError;
pub use f16::{f16_bits_to_f32, f16_round, f32_to_f16_bits};
pub use rng::{rand_normal, rand_uniform, randint};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
