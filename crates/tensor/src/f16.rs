//! IEEE binary16 conversion helpers.
//!
//! The simulator stores all values as `f32` but must reproduce the rounding
//! behaviour of half-precision hardware. These routines implement the
//! standard round-to-nearest-even f32 ↔ f16 conversions by bit
//! manipulation, with no dependency on nightly `f16` support.

/// Convert an `f32` to IEEE binary16 bits, rounding to nearest-even.
///
/// Overflow saturates to infinity; NaN payloads collapse to a quiet NaN.
#[inline]
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 // quiet NaN
        };
    }

    // Re-bias from f32 (127) to f16 (15).
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal f16. Keep 10 mantissa bits, round to nearest even.
        let half_exp = ((unbiased + 15) as u32) << 10;
        let shifted = mant >> 13;
        let round_bits = mant & 0x1fff;
        let mut result = sign as u32 | half_exp | shifted;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (shifted & 1) == 1) {
            result += 1; // may carry into exponent, which is still correct
        }
        return result as u16;
    }
    if unbiased >= -25 {
        // Subnormal f16: target mantissa = value * 2^24 = full_mant >> shift.
        let full_mant = mant | 0x0080_0000; // implicit leading one
        let shift = (-unbiased - 1) as u32; // 14..=24 for unbiased -15..=-25
        let shifted = full_mant >> shift;
        let round_bit = 1u32 << (shift - 1);
        let rem = full_mant & ((1u32 << shift) - 1);
        let mut result = sign as u32 | shifted;
        if rem > round_bit || (rem == round_bit && (shifted & 1) == 1) {
            result += 1;
        }
        return result as u16;
    }
    // Underflow to signed zero.
    sign
}

/// Convert IEEE binary16 bits to an `f32`.
#[inline]
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x3ff) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut mant = mant;
            let mut exp = -14i32;
            while mant & 0x400 == 0 {
                mant <<= 1;
                exp -= 1;
            }
            mant &= 0x3ff;
            sign | (((exp + 127) as u32) << 23) | (mant << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Round an `f32` through binary16 precision (the value a half-precision
/// register would hold).
///
/// ```
/// use insum_tensor::f16_round;
/// assert_eq!(f16_round(1.0), 1.0);
/// // 0.1 is not representable in binary16:
/// assert_ne!(f16_round(0.1), 0.1);
/// assert!((f16_round(0.1) - 0.1).abs() < 1e-4);
/// ```
#[inline]
pub fn f16_round(value: f32) -> f32 {
    let bits = value.to_bits();
    let absbits = bits & 0x7fff_ffff;
    // Fast path: results that land on normal f16 values (|v| in
    // [2^-14, 65520); 65520 is the smallest magnitude that rounds to
    // f16 infinity). Rounding the f32 mantissa to 10 bits half-to-even
    // is one integer add — a carry correctly propagates into the
    // exponent — so no bit unpacking/repacking round trip is needed.
    // `tests::fast_path_matches_bit_conversion` checks equivalence
    // against the full conversion.
    if (0x3880_0000..0x477f_f000).contains(&absbits) {
        let round = 0x0fff + ((bits >> 13) & 1);
        return f32::from_bits(bits.wrapping_add(round) & !0x1fff);
    }
    f16_bits_to_f32(f32_to_f16_bits(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_matches_bit_conversion() {
        // Sweep a dense sample of the fast-path range (and its edges)
        // and compare against the reference double conversion.
        let probe = |v: f32| {
            let want = f16_bits_to_f32(f32_to_f16_bits(v));
            let got = f16_round(v);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "f16_round({v}) = {got} != {want}"
            );
        };
        let mut bits: u32 = 0x3800_0000; // below the normal-f16 cutoff
        while bits < 0x4790_0000 {
            // above the overflow cutoff
            probe(f32::from_bits(bits));
            probe(-f32::from_bits(bits));
            bits += 0x101; // dense, misaligned stride hits all rounding cases
        }
        for v in [
            0.0f32,
            -0.0,
            1e-8,
            65504.0,
            65519.9,
            65520.0,
            1e9,
            f32::INFINITY,
        ] {
            probe(v);
            probe(-v);
        }
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(f16_round(x), x, "integer {i} should be exact in f16");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let x = (2.0f32).powi(e);
            assert_eq!(f16_round(x), x);
        }
    }

    #[test]
    fn overflow_saturates_to_inf() {
        assert!(f16_round(1.0e6).is_infinite());
        assert!(f16_round(-1.0e6).is_infinite());
        assert!(f16_round(-1.0e6) < 0.0);
        // Largest finite f16 is 65504.
        assert_eq!(f16_round(65504.0), 65504.0);
        assert!(f16_round(65536.0).is_infinite());
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(f16_round(1e-9), 0.0);
        assert_eq!(f16_round(-1e-9), -0.0);
        assert!(f16_round(-1e-9).is_sign_negative());
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal f16 = 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(f16_round(tiny), tiny);
        // Half of it rounds to zero (ties-to-even).
        assert_eq!(f16_round(tiny / 2.0), 0.0);
        // 0.75 of it rounds up to tiny.
        assert_eq!(f16_round(tiny * 0.75), tiny);
    }

    #[test]
    fn nan_propagates() {
        assert!(f16_round(f32::NAN).is_nan());
    }

    #[test]
    fn inf_propagates() {
        assert_eq!(f16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(f16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16
        // (1.0 + 2^-10); ties-to-even keeps 1.0.
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(f16_round(halfway), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + (2.0f32).powi(-11) + (2.0f32).powi(-16);
        assert_eq!(f16_round(above), 1.0 + (2.0f32).powi(-10));
    }

    #[test]
    fn idempotent() {
        for &x in &[0.1f32, 3.25159, -2.91828, 1234.5678, 6.1e-5, 4.2e-7] {
            let once = f16_round(x);
            assert_eq!(
                f16_round(once),
                once,
                "f16_round must be idempotent for {x}"
            );
        }
    }
}
