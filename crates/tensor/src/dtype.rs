//! Simulated element types.

use std::fmt;

/// The simulated element type of a [`crate::Tensor`].
///
/// All tensor data is stored as `f32` in host memory; the dtype tag tells
/// the GPU memory model how many bytes an element occupies on the simulated
/// device and whether an operation is Tensor-Core eligible. `F16` tensors
/// additionally round every stored value through IEEE binary16 so that
/// half-precision rounding is observable in results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// IEEE binary16 (half precision), 2 bytes, Tensor-Core eligible.
    F16,
    /// IEEE binary32 (single precision), 4 bytes.
    #[default]
    F32,
    /// 32-bit signed integer; used for coordinate/metadata tensors.
    I32,
}

impl DType {
    /// Size in bytes of one element on the simulated device.
    ///
    /// ```
    /// use insum_tensor::DType;
    /// assert_eq!(DType::F16.size_bytes(), 2);
    /// assert_eq!(DType::F32.size_bytes(), 4);
    /// ```
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F16 => 2,
            DType::F32 | DType::I32 => 4,
        }
    }

    /// Whether values of this dtype feed the simulated Tensor Cores.
    ///
    /// The reproduction models an Ampere-class GPU where `tl.dot` is
    /// profitable for both F16 and F32 (TF32 mode), matching the paper's
    /// use of Tensor Cores in both precisions.
    pub fn tensor_core_eligible(self) -> bool {
        matches!(self, DType::F16 | DType::F32)
    }

    /// True for the floating-point dtypes.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F16 | DType::F32)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::F32 => "f32",
            DType::I32 => "i32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I32.size_bytes(), 4);
    }

    #[test]
    fn display() {
        assert_eq!(DType::F16.to_string(), "f16");
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::I32.to_string(), "i32");
    }

    #[test]
    fn default_is_f32() {
        assert_eq!(DType::default(), DType::F32);
    }

    #[test]
    fn tensor_core_eligibility() {
        assert!(DType::F16.tensor_core_eligible());
        assert!(DType::F32.tensor_core_eligible());
        assert!(!DType::I32.tensor_core_eligible());
    }
}
