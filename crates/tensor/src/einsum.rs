//! Reference Einsum implementation.
//!
//! This is the semantic ground truth of the reproduction: every compiled
//! kernel, every sparse-format pipeline, and every baseline is checked
//! against this direct loop-nest evaluation. It favours clarity over speed
//! and is only used on test-sized inputs.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{DType, Result};
use std::collections::BTreeMap;

/// A parsed Einsum specification such as `"yr,rx->yx"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EinsumSpec {
    /// Index letters of each input operand.
    pub inputs: Vec<Vec<char>>,
    /// Index letters of the output.
    pub output: Vec<char>,
}

impl EinsumSpec {
    /// Parse a spec string.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidEinsum`] if the string is malformed:
    /// missing `->`, non-alphabetic index letters, repeated output letters,
    /// or output letters that appear in no input.
    pub fn parse(spec: &str) -> Result<EinsumSpec> {
        let (lhs, rhs) = spec
            .split_once("->")
            .ok_or_else(|| TensorError::InvalidEinsum(format!("missing '->' in {spec:?}")))?;
        if lhs.trim().is_empty() {
            return Err(TensorError::InvalidEinsum(format!(
                "empty operand list in {spec:?}"
            )));
        }
        let inputs: Vec<Vec<char>> = lhs.split(',').map(|s| s.trim().chars().collect()).collect();
        if inputs.iter().any(|t| t.is_empty()) {
            return Err(TensorError::InvalidEinsum(format!(
                "empty operand term in {spec:?}"
            )));
        }
        let output: Vec<char> = rhs.trim().chars().collect();
        for term in inputs.iter().chain(std::iter::once(&output)) {
            for &c in term {
                if !c.is_ascii_alphabetic() {
                    return Err(TensorError::InvalidEinsum(format!(
                        "index letters must be ascii alphabetic, got {c:?} in {spec:?}"
                    )));
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &c in &output {
            if !seen.insert(c) {
                return Err(TensorError::InvalidEinsum(format!(
                    "output index {c:?} repeated in {spec:?}"
                )));
            }
            if !inputs.iter().any(|t| t.contains(&c)) {
                return Err(TensorError::InvalidEinsum(format!(
                    "output index {c:?} does not appear in any input of {spec:?}"
                )));
            }
        }
        Ok(EinsumSpec { inputs, output })
    }

    /// All distinct index letters, reduction letters last, in first-seen
    /// order within each class.
    pub fn all_indices(&self) -> Vec<char> {
        let mut out = self.output.clone();
        for term in &self.inputs {
            for &c in term {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Index letters that are reduced over (appear in inputs only).
    pub fn reduction_indices(&self) -> Vec<char> {
        self.all_indices()
            .into_iter()
            .filter(|c| !self.output.contains(c))
            .collect()
    }
}

/// Evaluate an Einsum over the given operands.
///
/// Supports any number of operands, implicit summation over indices absent
/// from the output, and repeated indices within one operand (diagonal
/// semantics). The result dtype is F16 only if every input is F16,
/// mirroring mixed-precision promotion; accumulation is always performed in
/// f32 (Tensor-Core style) with a final rounding for F16 outputs.
///
/// # Errors
///
/// Returns [`TensorError::InvalidEinsum`] on a malformed spec, operand
/// count mismatch, rank mismatch, or inconsistent index extents.
///
/// ```
/// use insum_tensor::{einsum, Tensor};
/// # fn main() -> Result<(), insum_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![3], vec![1., 1., 1.])?;
/// let c = einsum("ij,j->i", &[&a, &b])?; // row sums
/// assert_eq!(c.data(), &[6.0, 15.0]);
/// # Ok(())
/// # }
/// ```
pub fn einsum(spec: &str, operands: &[&Tensor]) -> Result<Tensor> {
    let spec = EinsumSpec::parse(spec)?;
    if spec.inputs.len() != operands.len() {
        return Err(TensorError::InvalidEinsum(format!(
            "spec has {} operands but {} tensors were provided",
            spec.inputs.len(),
            operands.len()
        )));
    }
    // Bind each index letter to an extent.
    let mut extents: BTreeMap<char, usize> = BTreeMap::new();
    for (term, t) in spec.inputs.iter().zip(operands) {
        if term.len() != t.ndim() {
            return Err(TensorError::InvalidEinsum(format!(
                "operand with shape {:?} does not match index term {:?}",
                t.shape(),
                term.iter().collect::<String>()
            )));
        }
        for (&c, &dim) in term.iter().zip(t.shape()) {
            match extents.get(&c) {
                Some(&e) if e != dim => {
                    return Err(TensorError::InvalidEinsum(format!(
                        "index {c:?} bound to both {e} and {dim}"
                    )))
                }
                _ => {
                    extents.insert(c, dim);
                }
            }
        }
    }

    let out_shape: Vec<usize> = spec.output.iter().map(|c| extents[c]).collect();
    let red: Vec<char> = spec.reduction_indices();
    let red_extents: Vec<usize> = red.iter().map(|c| extents[c]).collect();
    let red_vol: usize = red_extents.iter().product();

    let out_dtype = if !operands.is_empty() && operands.iter().all(|t| t.dtype() == DType::F16) {
        DType::F16
    } else {
        DType::F32
    };

    let mut out = Tensor::zeros(out_shape.clone());
    let out_vol: usize = out_shape.iter().product();
    let od = out.data_mut();

    let mut assignment: BTreeMap<char, usize> = BTreeMap::new();
    let mut out_idx = vec![0usize; out_shape.len()];
    for (o, slot) in od.iter_mut().enumerate().take(out_vol) {
        // Decode output multi-index.
        let mut rem = o;
        for d in (0..out_shape.len()).rev() {
            out_idx[d] = rem % out_shape[d];
            rem /= out_shape[d];
        }
        for (d, &c) in spec.output.iter().enumerate() {
            assignment.insert(c, out_idx[d]);
        }
        let mut acc = 0.0f64;
        for r in 0..red_vol.max(1) {
            let mut rem = r;
            for d in (0..red.len()).rev() {
                assignment.insert(red[d], rem % red_extents[d]);
                rem /= red_extents[d];
            }
            let mut prod = 1.0f64;
            for (term, t) in spec.inputs.iter().zip(operands) {
                let idx: Vec<usize> = term.iter().map(|c| assignment[c]).collect();
                prod *= t.at(&idx) as f64;
                if prod == 0.0 {
                    break;
                }
            }
            acc += prod;
        }
        *slot = acc as f32;
    }
    Ok(if out_dtype == DType::F16 {
        out.cast(DType::F16)
    } else {
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn parse_valid_spec() {
        let s = EinsumSpec::parse("yr,rx->yx").unwrap();
        assert_eq!(s.inputs, vec![vec!['y', 'r'], vec!['r', 'x']]);
        assert_eq!(s.output, vec!['y', 'x']);
        assert_eq!(s.reduction_indices(), vec!['r']);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(EinsumSpec::parse("ij,jk").is_err()); // no arrow
        assert!(EinsumSpec::parse("i1->i").is_err()); // digit index
        assert!(EinsumSpec::parse("ij->ii").is_err()); // repeated output
        assert!(EinsumSpec::parse("ij->ik").is_err()); // unbound output
        assert!(EinsumSpec::parse("ij,,k->i").is_err()); // empty operand term
        assert!(EinsumSpec::parse(",ij->i").is_err()); // leading empty term
        assert!(EinsumSpec::parse("ij,->i").is_err()); // trailing empty term
        assert!(EinsumSpec::parse("->").is_err()); // empty LHS
        assert!(EinsumSpec::parse("  ->i").is_err()); // whitespace-only LHS
    }

    #[test]
    fn parse_allows_empty_output() {
        // Full reduction to a scalar stays legal: only operand terms and
        // the LHS as a whole must be nonempty.
        let s = EinsumSpec::parse("ij->").unwrap();
        assert!(s.output.is_empty());
    }

    #[test]
    fn matmul_matches_reference() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = einsum("ik,kj->ij", &[&a, &b]).unwrap();
        assert_eq!(c, a.matmul(&b).unwrap());
    }

    #[test]
    fn outer_product() {
        let a = t(vec![2], vec![1., 2.]);
        let b = t(vec![3], vec![3., 4., 5.]);
        let c = einsum("i,j->ij", &[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.at(&[1, 2]), 10.0);
    }

    #[test]
    fn trace_via_repeated_index() {
        let a = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let tr = einsum("ii->i", &[&a]).unwrap();
        assert_eq!(tr.data(), &[1.0, 4.0]);
    }

    #[test]
    fn full_reduction_to_scalar() {
        let a = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let s = einsum("ij->", &[&a]).unwrap();
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.at(&[]), 10.0);
    }

    #[test]
    fn three_operand_contraction() {
        // Z[b,w] = X[b,u] * Y[b,k] * W[k,u,w]
        let x = t(vec![2, 2], vec![1., 2., 3., 4.]);
        let y = t(vec![2, 3], vec![1., 0., 1., 0., 1., 0.]);
        let w = Tensor::from_fn(vec![3, 2, 2], |i| (i[0] + i[1] + i[2]) as f32);
        let z = einsum("bu,bk,kuw->bw", &[&x, &y, &w]).unwrap();
        // Check one element by hand: z[0,0] = sum_{u,k} x[0,u] y[0,k] w[k,u,0]
        let mut expect = 0.0;
        for u in 0..2 {
            for k in 0..3 {
                expect += x.at(&[0, u]) * y.at(&[0, k]) * w.at(&[k, u, 0]);
            }
        }
        assert_eq!(z.at(&[0, 0]), expect);
    }

    #[test]
    fn permutation_only() {
        let a = Tensor::from_fn(vec![2, 3, 4], |i| (i[0] * 12 + i[1] * 4 + i[2]) as f32);
        let p = einsum("ijk->kij", &[&a]).unwrap();
        assert_eq!(p, a.permute(&[2, 0, 1]).unwrap());
    }

    #[test]
    fn operand_count_mismatch() {
        let a = t(vec![2], vec![1., 2.]);
        assert!(einsum("i,j->ij", &[&a]).is_err());
    }

    #[test]
    fn extent_conflict_detected() {
        let a = t(vec![2], vec![1., 2.]);
        let b = t(vec![3], vec![1., 2., 3.]);
        assert!(einsum("i,i->i", &[&a, &b]).is_err());
    }

    #[test]
    fn rank_mismatch_detected() {
        let a = t(vec![2, 2], vec![1.; 4]);
        assert!(einsum("i->i", &[&a]).is_err());
    }

    #[test]
    fn f16_inputs_round_output() {
        let a = t(vec![2], vec![0.1, 0.2]).cast(DType::F16);
        let b = t(vec![2], vec![1.0, 1.0]).cast(DType::F16);
        let c = einsum("i,i->i", &[&a, &b]).unwrap();
        assert_eq!(c.dtype(), DType::F16);
        // Output values are representable in f16.
        for &v in c.data() {
            assert_eq!(crate::f16::f16_round(v), v);
        }
    }

    #[test]
    fn batched_matmul() {
        let a = Tensor::from_fn(vec![2, 2, 3], |i| (i[0] + i[1] + i[2]) as f32);
        let b = Tensor::from_fn(vec![2, 3, 2], |i| (i[0] * i[1] + i[2]) as f32);
        let c = einsum("bik,bkj->bij", &[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        // Spot check c[1,0,1].
        let mut expect = 0.0;
        for k in 0..3 {
            expect += a.at(&[1, 0, k]) * b.at(&[1, k, 1]);
        }
        assert_eq!(c.at(&[1, 0, 1]), expect);
    }
}
