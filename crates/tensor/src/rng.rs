//! Random tensor constructors.
//!
//! All randomness flows through caller-provided [`rand::Rng`] instances so
//! that every experiment in the benchmark harness is reproducible from a
//! fixed seed.

use crate::tensor::Tensor;
use crate::DType;
use rand::Rng;

/// Uniform random tensor in `[lo, hi)`.
pub fn rand_uniform(shape: Vec<usize>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.gen_range(lo..hi))
}

/// Standard-normal random tensor (Box–Muller).
pub fn rand_normal(shape: Vec<usize>, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

/// Random integer tensor in `[0, bound)` with dtype [`DType::I32`].
pub fn randint(shape: Vec<usize>, bound: usize, rng: &mut impl Rng) -> Tensor {
    let t = Tensor::from_fn(shape, |_| rng.gen_range(0..bound) as f32);
    t.cast(DType::I32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = rand_uniform(vec![100], -1.0, 1.0, &mut rng);
        assert!(t.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(
            rand_uniform(vec![10], 0.0, 1.0, &mut a),
            rand_uniform(vec![10], 0.0, 1.0, &mut b)
        );
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t = rand_normal(vec![10_000], &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn randint_bounds_and_dtype() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = randint(vec![50], 7, &mut rng);
        assert_eq!(t.dtype(), DType::I32);
        assert!(t
            .data()
            .iter()
            .all(|&v| (0.0..7.0).contains(&v) && v.fract() == 0.0));
    }
}
