//! Gather/scatter primitives: `index_select`, `index_add`, `gather`.
//!
//! These mirror the PyTorch operations the Insum rewriter targets
//! (§5.1 of the paper): indirect right-hand-side accesses lower to
//! [`Tensor::index_select`], indirect left-hand-side accesses lower to
//! [`Tensor::index_add`] with summation semantics for duplicate indices.

use crate::error::TensorError;
use crate::f16::f16_round;
use crate::tensor::Tensor;
use crate::{DType, Result};

impl Tensor {
    /// Select rows (slices along `dim`) of `self` at positions given by the
    /// 1-D integer tensor `index`; PyTorch `torch.index_select`.
    ///
    /// The output shape equals `self.shape()` with dimension `dim` replaced
    /// by `index.len()`.
    ///
    /// # Errors
    ///
    /// * [`TensorError::ShapeMismatch`] if `dim` is out of range or `index`
    ///   is not 1-D.
    /// * [`TensorError::IndexOutOfBounds`] if any index is negative or
    ///   `>= self.shape()[dim]`.
    pub fn index_select(&self, dim: usize, index: &Tensor) -> Result<Tensor> {
        if dim >= self.ndim() {
            return Err(TensorError::ShapeMismatch {
                op: "index_select".into(),
                detail: format!("dim {dim} out of range for rank {}", self.ndim()),
            });
        }
        if index.ndim() != 1 {
            return Err(TensorError::ShapeMismatch {
                op: "index_select".into(),
                detail: format!("index must be 1-D, got shape {:?}", index.shape()),
            });
        }
        let bound = self.shape()[dim];
        let outer: usize = self.shape()[..dim].iter().product();
        let inner: usize = self.shape()[dim + 1..].iter().product();
        let k = index.len();
        let mut out_shape = self.shape().to_vec();
        out_shape[dim] = k;
        let mut out = Tensor::zeros_with(out_shape, self.dtype());
        let od = out.data_mut();
        let src = self.contiguous_data();
        let idx = index.contiguous_data();
        for o in 0..outer {
            for (j, pos) in (0..k).map(|j| (j, idx[j] as i64)) {
                if pos < 0 || pos as usize >= bound {
                    return Err(TensorError::IndexOutOfBounds {
                        index: pos,
                        bound,
                        context: "index_select".into(),
                    });
                }
                let src_off = (o * bound + pos as usize) * inner;
                let dst_off = (o * k + j) * inner;
                od[dst_off..dst_off + inner].copy_from_slice(&src[src_off..src_off + inner]);
            }
        }
        Ok(out)
    }

    /// Accumulate `source` rows into `self` along `dim` at the positions
    /// given by the 1-D integer tensor `index`; PyTorch
    /// `torch.index_add_`. Duplicate indices sum, matching the Einsum
    /// scatter semantics of §3.1.
    ///
    /// # Errors
    ///
    /// * [`TensorError::ShapeMismatch`] if `dim` is out of range, `index`
    ///   is not 1-D, `source` has the wrong rank, or a non-`dim` extent of
    ///   `source` disagrees with `self`.
    /// * [`TensorError::IndexOutOfBounds`] for invalid positions.
    pub fn index_add(&mut self, dim: usize, index: &Tensor, source: &Tensor) -> Result<()> {
        if dim >= self.ndim() {
            return Err(TensorError::ShapeMismatch {
                op: "index_add".into(),
                detail: format!("dim {dim} out of range for rank {}", self.ndim()),
            });
        }
        if index.ndim() != 1 {
            return Err(TensorError::ShapeMismatch {
                op: "index_add".into(),
                detail: format!("index must be 1-D, got shape {:?}", index.shape()),
            });
        }
        if source.ndim() != self.ndim() {
            return Err(TensorError::ShapeMismatch {
                op: "index_add".into(),
                detail: format!(
                    "source rank {} does not match destination rank {}",
                    source.ndim(),
                    self.ndim()
                ),
            });
        }
        for d in 0..self.ndim() {
            let want = if d == dim {
                index.len()
            } else {
                self.shape()[d]
            };
            if source.shape()[d] != want {
                return Err(TensorError::ShapeMismatch {
                    op: "index_add".into(),
                    detail: format!(
                        "source shape {:?} incompatible with destination {:?} at dim {d}",
                        source.shape(),
                        self.shape()
                    ),
                });
            }
        }
        let bound = self.shape()[dim];
        let outer: usize = self.shape()[..dim].iter().product();
        let inner: usize = self.shape()[dim + 1..].iter().product();
        let k = index.len();
        let round = self.dtype() == DType::F16;
        let src = source.contiguous_data();
        let idx = index.contiguous_data();
        let data = self.data_mut();
        for o in 0..outer {
            for j in 0..k {
                let pos = idx[j] as i64;
                if pos < 0 || pos as usize >= bound {
                    return Err(TensorError::IndexOutOfBounds {
                        index: pos,
                        bound,
                        context: "index_add".into(),
                    });
                }
                let dst_off = (o * bound + pos as usize) * inner;
                let src_off = (o * k + j) * inner;
                for i in 0..inner {
                    let v = data[dst_off + i] + src[src_off + i];
                    data[dst_off + i] = if round { f16_round(v) } else { v };
                }
            }
        }
        Ok(())
    }

    /// Gather elements along `dim` using an index tensor of the same rank;
    /// PyTorch `torch.gather`.
    ///
    /// `out[i..][j][k..] = self[i..][index[i..][j][k..]][k..]` where `j` is
    /// the `dim` coordinate.
    ///
    /// # Errors
    ///
    /// * [`TensorError::ShapeMismatch`] on rank/extent disagreements.
    /// * [`TensorError::IndexOutOfBounds`] for invalid positions.
    pub fn gather(&self, dim: usize, index: &Tensor) -> Result<Tensor> {
        if dim >= self.ndim() || index.ndim() != self.ndim() {
            return Err(TensorError::ShapeMismatch {
                op: "gather".into(),
                detail: format!(
                    "dim {dim}, self rank {}, index rank {}",
                    self.ndim(),
                    index.ndim()
                ),
            });
        }
        for d in 0..self.ndim() {
            if d != dim && index.shape()[d] > self.shape()[d] {
                return Err(TensorError::ShapeMismatch {
                    op: "gather".into(),
                    detail: format!(
                        "index shape {:?} exceeds source {:?} at dim {d}",
                        index.shape(),
                        self.shape()
                    ),
                });
            }
        }
        let bound = self.shape()[dim];
        let mut out = Tensor::zeros_with(index.shape().to_vec(), self.dtype());
        let od = out.data_mut();
        let nd = self.ndim();
        let mut idx = vec![0usize; nd];
        let mut src = vec![0usize; nd];
        for (flat, slot) in od.iter_mut().enumerate() {
            let mut rem = flat;
            for d in (0..nd).rev() {
                idx[d] = rem % index.shape()[d];
                rem /= index.shape()[d];
            }
            let pos = index.at(&idx) as i64;
            if pos < 0 || pos as usize >= bound {
                return Err(TensorError::IndexOutOfBounds {
                    index: pos,
                    bound,
                    context: "gather".into(),
                });
            }
            src.copy_from_slice(&idx);
            src[dim] = pos as usize;
            *slot = self.at(&src);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, data).unwrap()
    }

    fn ix(data: Vec<i64>) -> Tensor {
        Tensor::from_indices(vec![data.len()], data).unwrap()
    }

    #[test]
    fn index_select_rows() {
        let a = t(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let s = a.index_select(0, &ix(vec![2, 0, 2])).unwrap();
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.data(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn index_select_columns() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let s = a.index_select(1, &ix(vec![1, 1])).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2., 2., 5., 5.]);
    }

    #[test]
    fn index_select_bounds() {
        let a = t(vec![2, 2], vec![1.; 4]);
        assert!(matches!(
            a.index_select(0, &ix(vec![2])),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            a.index_select(0, &ix(vec![-1])),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(a.index_select(2, &ix(vec![0])).is_err());
    }

    #[test]
    fn index_add_accumulates_duplicates() {
        let mut c = Tensor::zeros(vec![3, 2]);
        let src = t(vec![4, 2], vec![1., 1., 2., 2., 3., 3., 4., 4.]);
        c.index_add(0, &ix(vec![0, 1, 0, 2]), &src).unwrap();
        // Row 0 gets rows 0 and 2 of src summed.
        assert_eq!(c.data(), &[4., 4., 2., 2., 4., 4.]);
    }

    #[test]
    fn index_add_validates() {
        let mut c = Tensor::zeros(vec![3, 2]);
        let bad_rank = Tensor::zeros(vec![2]);
        assert!(c.index_add(0, &ix(vec![0, 1]), &bad_rank).is_err());
        let bad_extent = Tensor::zeros(vec![2, 3]);
        assert!(c.index_add(0, &ix(vec![0, 1]), &bad_extent).is_err());
        let src = Tensor::zeros(vec![1, 2]);
        assert!(c.index_add(0, &ix(vec![5]), &src).is_err());
    }

    #[test]
    fn index_add_along_inner_dim() {
        let mut c = Tensor::zeros(vec![2, 3]);
        let src = t(vec![2, 2], vec![1., 2., 3., 4.]);
        c.index_add(1, &ix(vec![2, 2]), &src).unwrap();
        assert_eq!(c.data(), &[0., 0., 3., 0., 0., 7.]);
    }

    #[test]
    fn gather_basic() {
        let a = t(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let idx = Tensor::from_indices(vec![2, 2], vec![0, 2, 1, 0]).unwrap();
        let g = a.gather(1, &idx).unwrap();
        assert_eq!(g.data(), &[1., 3., 5., 4.]);
    }

    #[test]
    fn gather_dim0() {
        let a = t(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let idx = Tensor::from_indices(vec![1, 2], vec![2, 0]).unwrap();
        let g = a.gather(0, &idx).unwrap();
        assert_eq!(g.data(), &[5., 2.]);
    }

    #[test]
    fn gather_bounds() {
        let a = t(vec![2, 2], vec![1.; 4]);
        let idx = Tensor::from_indices(vec![2, 2], vec![0, 3, 0, 0]).unwrap();
        assert!(a.gather(1, &idx).is_err());
    }

    #[test]
    fn f16_index_add_rounds() {
        let mut c = Tensor::full(vec![1, 1], 1.0).cast(DType::F16);
        let src = t(vec![1, 1], vec![1e-4]).cast(DType::F16);
        c.index_add(0, &ix(vec![0]), &src).unwrap();
        assert_eq!(c.data()[0], 1.0); // swallowed by f16 rounding
    }

    #[test]
    fn index_select_then_index_add_roundtrip() {
        // Scatter of a gather with a permutation index is a permutation.
        let a = t(vec![4, 2], vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let perm = ix(vec![3, 1, 0, 2]);
        let gathered = a.index_select(0, &perm).unwrap();
        let mut back = Tensor::zeros(vec![4, 2]);
        back.index_add(0, &perm, &gathered).unwrap();
        assert_eq!(back, a);
    }
}
