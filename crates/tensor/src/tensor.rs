//! The core dense tensor type.

use crate::broadcast::broadcast_shapes;
use crate::dtype::DType;
use crate::error::TensorError;
use crate::f16::f16_round;
use crate::Result;
use std::borrow::Cow;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of buffer materializations (see
/// [`Tensor::deep_copy_count`]). Incremented only when shared storage is
/// actually copied, so the relaxed atomic add is amortized by the O(n)
/// copy it accounts for.
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// A dense n-dimensional array of `f32` values with a simulated
/// [`DType`] tag. Storage is row-major contiguous unless the handle is a
/// *strided view* ([`Tensor::permute_view`], [`Tensor::diagonal_view`]):
/// those reinterpret shared storage through non-canonical strides without
/// touching a byte — the fast-path dispatch layer's zero-copy transpose.
///
/// `Tensor` is the common currency of the whole reproduction: the eager
/// graph interpreter, the sparse format converters, and the GPU simulator
/// all read and produce `Tensor`s. A scalar is represented as a tensor with
/// an empty shape (`ndim() == 0`, one element).
///
/// # Storage model: shared, copy-on-write
///
/// Element storage is an [`Arc`]-backed buffer. `Clone` is O(1) — the
/// clone shares the same buffer — as are [`Tensor::reshape`],
/// [`Tensor::view`], and [`Tensor::unsqueeze`] (the layout is always
/// row-major contiguous, so a reshape is pure metadata). The first
/// mutation through a handle whose buffer is shared
/// ([`Tensor::data_mut`], [`Tensor::set`], [`Tensor::index_add`])
/// materializes a private copy of the buffer, so writes are never
/// observable through any other handle: every `Tensor` behaves exactly
/// like the deep-copy value type it replaced, it just defers the copy
/// until (and unless) a write happens. [`Tensor::deep_copy_count`]
/// counts the materializations process-wide for clone-accounting checks.
///
/// Two handles can be tested for storage identity with
/// [`Tensor::ptr_eq`]: a `true` result proves them bit-identical without
/// reading the data.
#[derive(Clone)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Arc<Vec<f32>>,
    dtype: DType,
}

/// Logical equality: shape, dtype, and element values in *logical*
/// (row-major index) order, with IEEE float semantics — so `NaN != NaN`
/// regardless of storage sharing. Strides are layout metadata, not
/// identity: a transpose view compares equal to its materialized copy,
/// and tensors that reached the same shape through different
/// construction paths compare equal. Use [`Tensor::ptr_eq`] for a cheap
/// storage-identity check or [`Tensor::bit_eq`] for bit-exact
/// (NaN-inclusive) comparison instead.
impl PartialEq for Tensor {
    fn eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && self.dtype == other.dtype
            && *self.contiguous_data() == *other.contiguous_data()
    }
}

fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (i, &dim) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc *= dim;
    }
    strides
}

fn volume(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Create a tensor of zeros with dtype [`DType::F32`].
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n = volume(&shape);
        Tensor {
            strides: contiguous_strides(&shape),
            shape,
            data: Arc::new(vec![0.0; n]),
            dtype: DType::F32,
        }
    }

    /// Create a tensor of zeros with the given dtype.
    pub fn zeros_with(shape: Vec<usize>, dtype: DType) -> Tensor {
        let mut t = Tensor::zeros(shape);
        t.dtype = dtype;
        t
    }

    /// Create a tensor of ones.
    pub fn ones(shape: Vec<usize>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Create a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Tensor {
        let n = volume(&shape);
        Tensor {
            strides: contiguous_strides(&shape),
            shape,
            data: Arc::new(vec![value; n]),
            dtype: DType::F32,
        }
    }

    /// Create a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor {
            shape: vec![],
            strides: vec![],
            data: Arc::new(vec![value]),
            dtype: DType::F32,
        }
    }

    /// Create the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(vec![n, n]);
        let d = t.buf_mut();
        for i in 0..n {
            d[i * n + i] = 1.0;
        }
        t
    }

    /// Create a tensor from raw data in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape's volume.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Tensor> {
        let n = volume(&shape);
        if data.len() != n {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            strides: contiguous_strides(&shape),
            shape,
            data: Arc::new(data),
            dtype: DType::F32,
        })
    }

    /// Create a tensor from raw data in row-major order with an explicit
    /// dtype, preserving every bit of `data`.
    ///
    /// Unlike [`Tensor::cast`], an [`DType::F16`] dtype does *not*
    /// re-round the values: the caller asserts they are already
    /// binary16-representable. This is the deserialization entry point
    /// for wire formats, where re-rounding would quietly canonicalize
    /// NaN payloads and break bit-exact round trips.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape's volume.
    pub fn from_vec_with(shape: Vec<usize>, data: Vec<f32>, dtype: DType) -> Result<Tensor> {
        let mut t = Tensor::from_vec(shape, data)?;
        t.dtype = dtype;
        Ok(t)
    }

    /// Create an integer (metadata) tensor from `i64` coordinates.
    ///
    /// Values are stored exactly (all coordinates in this reproduction fit
    /// in the 24-bit exact-integer range of `f32`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] on a shape/data disagreement.
    pub fn from_indices(shape: Vec<usize>, data: Vec<i64>) -> Result<Tensor> {
        let mut t = Tensor::from_vec(shape, data.into_iter().map(|v| v as f32).collect())?;
        t.dtype = DType::I32;
        Ok(t)
    }

    /// Build a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(&[usize]) -> f32) -> Tensor {
        let n = volume(&shape);
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..n {
            data.push(f(&idx));
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Tensor {
            strides: contiguous_strides(&shape),
            shape,
            data: Arc::new(data),
            dtype: DType::F32,
        }
    }

    /// `[0, 1, ..., n-1]` as an I32 tensor.
    pub fn arange(n: usize) -> Tensor {
        let mut t = Tensor::from_fn(vec![n], |i| i[0] as f32);
        t.dtype = DType::I32;
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape (extent of each dimension).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Row-major element strides.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of (logical) elements. For strided views this can be
    /// smaller than the backing storage (a diagonal view of an `n`×`n`
    /// matrix has `n` elements over `n²` storage).
    pub fn len(&self) -> usize {
        volume(&self.shape)
    }

    /// True if the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The simulated element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Bytes this tensor occupies on the simulated device.
    pub fn device_bytes(&self) -> usize {
        self.len() * self.dtype.size_bytes()
    }

    /// The raw row-major data. Only meaningful when the handle is
    /// contiguous (storage order == logical order); strided views must go
    /// through [`Tensor::contiguous_data`] or [`Tensor::at`] instead, and
    /// this asserts as much in debug builds.
    pub fn data(&self) -> &[f32] {
        debug_assert!(
            self.is_contiguous(),
            "Tensor::data() on a non-contiguous view (shape {:?}, strides {:?}); \
             use contiguous_data()/contiguous()",
            self.shape,
            self.strides
        );
        &self.data
    }

    /// True when storage order equals logical row-major order and the
    /// buffer holds exactly the logical elements — i.e. this handle is
    /// not a strided view.
    pub fn is_contiguous(&self) -> bool {
        self.strides == contiguous_strides(&self.shape) && self.data.len() == self.len()
    }

    /// The elements in logical row-major order: a zero-cost borrow for
    /// contiguous tensors, a gathered copy for strided views. The gather
    /// is a read (it materializes nothing into the handle), so it does
    /// not count toward [`Tensor::deep_copy_count`].
    pub fn contiguous_data(&self) -> Cow<'_, [f32]> {
        if self.is_contiguous() {
            Cow::Borrowed(&self.data)
        } else {
            Cow::Owned(self.gather_logical())
        }
    }

    /// Gather the logical elements of a strided view into a fresh
    /// row-major vector.
    fn gather_logical(&self) -> Vec<f32> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        let nd = self.ndim();
        let mut idx = vec![0usize; nd];
        for _ in 0..n {
            let mut off = 0usize;
            for (i, s) in idx.iter().zip(&self.strides) {
                off += i * s;
            }
            out.push(self.data[off]);
            for d in (0..nd).rev() {
                idx[d] += 1;
                if idx[d] < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }

    /// A contiguous tensor with the same logical contents: `self` cloned
    /// when already contiguous (O(1), shares storage), otherwise a
    /// materializing gather — which counts as a deep copy, exactly like
    /// any other storage materialization.
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() {
            return self.clone();
        }
        DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        Tensor {
            strides: contiguous_strides(&self.shape),
            shape: self.shape.clone(),
            data: Arc::new(self.gather_logical()),
            dtype: self.dtype,
        }
    }

    /// Copy-on-write access to the backing buffer: materializes a private
    /// copy (and counts it) when the storage is shared, then hands out
    /// the uniquely owned vector.
    fn buf_mut(&mut self) -> &mut Vec<f32> {
        if Arc::get_mut(&mut self.data).is_none() {
            DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
            self.data = Arc::new(self.data.as_ref().clone());
        }
        Arc::get_mut(&mut self.data).expect("storage is unique after copy-on-write")
    }

    /// Mutable access to the raw row-major data.
    ///
    /// If the storage is shared with other handles (clones, views), this
    /// first materializes a private copy — writes are never observable
    /// through any other `Tensor`. A strided view is first gathered into
    /// canonical layout (also counted as a deep copy), so the slice is
    /// always in logical row-major order. Callers are responsible for
    /// preserving the dtype's value invariant (use [`Tensor::cast`] to
    /// re-round after bulk writes to an F16 tensor).
    pub fn data_mut(&mut self) -> &mut [f32] {
        if !self.is_contiguous() {
            DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
            self.data = Arc::new(self.gather_logical());
            self.strides = contiguous_strides(&self.shape);
        }
        self.buf_mut()
    }

    /// Consume the tensor and return its raw data in logical row-major
    /// order (copying only if the storage is still shared with another
    /// handle, or if this handle is a strided view).
    pub fn into_data(self) -> Vec<f32> {
        if !self.is_contiguous() {
            DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
            return self.gather_logical();
        }
        match Arc::try_unwrap(self.data) {
            Ok(data) => data,
            Err(shared) => {
                DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
                shared.as_ref().clone()
            }
        }
    }

    /// True if `self` and `other` share the same backing buffer *and*
    /// interpret it identically (equal shape, strides, and dtype) — a
    /// cheap proof of bit-identity that never reads the data. `false`
    /// says nothing: separately built tensors with equal contents are not
    /// `ptr_eq`.
    pub fn ptr_eq(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
            && self.shape == other.shape
            && self.strides == other.strides
            && self.dtype == other.dtype
    }

    /// True if `self` and `other` share the same backing buffer, whatever
    /// their layout metadata — the assertion a zero-copy view check
    /// wants (`transposed.shares_storage(&original)` proves no bytes
    /// moved even though shape and strides differ).
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Bit-exact equality: equal shape, dtype, and element *bits* in
    /// logical order — `NaN` payloads and the sign of zero included.
    /// This is the comparison the fast-path-vs-general bit-identity
    /// contract is stated in (IEEE `==` would pass `-0.0` vs `+0.0` and
    /// fail `NaN` vs `NaN`).
    pub fn bit_eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && self.dtype == other.dtype
            && self
                .contiguous_data()
                .iter()
                .zip(other.contiguous_data().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// A cheap FNV-1a fingerprint of the logical content: dtype, shape,
    /// and every element's bits in row-major order. Equal fingerprints on
    /// equal-shape/dtype tensors make bit-identity overwhelmingly likely
    /// (the serve scheduler uses this as the content-identity fallback
    /// behind [`Tensor::ptr_eq`] when grouping launch-compatible
    /// requests); it is not a cryptographic guarantee.
    pub fn content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        };
        mix(match self.dtype {
            DType::F16 => 1,
            DType::F32 => 2,
            DType::I32 => 3,
        });
        for &d in &self.shape {
            for b in (d as u64).to_le_bytes() {
                mix(b);
            }
        }
        for v in self.contiguous_data().iter() {
            for b in v.to_bits().to_le_bytes() {
                mix(b);
            }
        }
        h
    }

    /// Process-wide count of storage materializations: the number of
    /// times a shared buffer had to be deep-copied (first write through a
    /// sharing handle, or [`Tensor::into_data`] on shared storage).
    /// Cheap clones, views, and fresh allocations do not count. Intended
    /// for clone-accounting smoke checks (`servebench --smoke` asserts a
    /// warm batched launch of shared-argument analytic requests performs
    /// zero deep copies).
    pub fn deep_copy_count() -> u64 {
        DEEP_COPIES.load(Ordering::Relaxed)
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != ndim()` or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.ndim(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &s)) in index.iter().zip(&self.strides).enumerate() {
            assert!(
                i < self.shape[d],
                "index {i} out of bounds for dim {d} (size {})",
                self.shape[d]
            );
            off += i * s;
        }
        off
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-range coordinates.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Set the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-range coordinates.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        let v = if self.dtype == DType::F16 {
            f16_round(value)
        } else {
            value
        };
        self.buf_mut()[off] = v;
    }

    /// Element interpreted as an integer index (for metadata tensors).
    pub fn at_i64(&self, index: &[usize]) -> i64 {
        self.at(index) as i64
    }

    // ------------------------------------------------------------------
    // DType
    // ------------------------------------------------------------------

    /// Cast to another dtype.
    ///
    /// Casting to F16 rounds every element through binary16; casting to I32
    /// truncates toward zero.
    pub fn cast(&self, dtype: DType) -> Tensor {
        // Storage is always f32, so retagging to F32 transforms no
        // values: the cast shares the buffer (strided views stay views).
        if dtype == DType::F32 {
            return Tensor {
                shape: self.shape.clone(),
                strides: self.strides.clone(),
                data: Arc::clone(&self.data),
                dtype,
            };
        }
        let src = self.contiguous_data();
        let data = match dtype {
            DType::F16 => src.iter().map(|&v| f16_round(v)).collect(),
            DType::I32 => src.iter().map(|&v| v.trunc()).collect(),
            DType::F32 => unreachable!("handled above"),
        };
        Tensor {
            strides: contiguous_strides(&self.shape),
            shape: self.shape.clone(),
            data: Arc::new(data),
            dtype,
        }
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reshape to a new shape with the same volume.
    ///
    /// Zero-copy for contiguous tensors: the result is a new handle onto
    /// the same shared storage (copy-on-write like any clone). A strided
    /// view is gathered into canonical layout first (counted as a deep
    /// copy) — its storage order does not match the requested shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Tensor> {
        if volume(&shape) != self.len() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape".into(),
                detail: format!(
                    "cannot view {:?} ({} elems) as {:?}",
                    self.shape,
                    self.len(),
                    shape
                ),
            });
        }
        let data = if self.is_contiguous() {
            Arc::clone(&self.data)
        } else {
            DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
            Arc::new(self.gather_logical())
        };
        Ok(Tensor {
            strides: contiguous_strides(&shape),
            shape,
            data,
            dtype: self.dtype,
        })
    }

    /// A zero-copy view of the same storage under a new shape (PyTorch
    /// `view`); identical to [`Tensor::reshape`], which never copies
    /// because tensors are always row-major contiguous.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the volumes differ.
    pub fn view(&self, shape: Vec<usize>) -> Result<Tensor> {
        self.reshape(shape)
    }

    /// Permute dimensions; `perm` must be a permutation of `0..ndim()`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `perm` is not a valid
    /// permutation.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let nd = self.ndim();
        let mut seen = vec![false; nd];
        if perm.len() != nd
            || perm
                .iter()
                .any(|&p| p >= nd || std::mem::replace(&mut seen[p], true))
        {
            return Err(TensorError::ShapeMismatch {
                op: "permute".into(),
                detail: format!("{perm:?} is not a permutation of 0..{nd}"),
            });
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut out = Tensor::zeros_with(new_shape.clone(), self.dtype);
        let od = out.buf_mut();
        let mut idx = vec![0usize; nd];
        let mut src = vec![0usize; nd];
        for slot in od.iter_mut() {
            for (d, &p) in perm.iter().enumerate() {
                src[p] = idx[d];
            }
            *slot = self.at(&src);
            for d in (0..nd).rev() {
                idx[d] += 1;
                if idx[d] < new_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(out)
    }

    /// Swap two dimensions (PyTorch `transpose`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if either axis is out of range.
    pub fn transpose(&self, a: usize, b: usize) -> Result<Tensor> {
        let nd = self.ndim();
        if a >= nd || b >= nd {
            return Err(TensorError::ShapeMismatch {
                op: "transpose".into(),
                detail: format!("axes ({a},{b}) out of range for rank {nd}"),
            });
        }
        let mut perm: Vec<usize> = (0..nd).collect();
        perm.swap(a, b);
        self.permute(&perm)
    }

    /// Zero-copy permutation: a strided view whose axis `d` is `self`'s
    /// axis `perm[d]`. No element moves — shape and strides are permuted
    /// over the same shared storage, so this is O(rank) whatever the
    /// tensor size. This is the execution target the fast-path dispatcher
    /// uses for transpose-shaped einsums; materialize with
    /// [`Tensor::contiguous`] when canonical layout is needed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `perm` is not a valid
    /// permutation of `0..ndim()`.
    pub fn permute_view(&self, perm: &[usize]) -> Result<Tensor> {
        let nd = self.ndim();
        let mut seen = vec![false; nd];
        if perm.len() != nd
            || perm
                .iter()
                .any(|&p| p >= nd || std::mem::replace(&mut seen[p], true))
        {
            return Err(TensorError::ShapeMismatch {
                op: "permute_view".into(),
                detail: format!("{perm:?} is not a permutation of 0..{nd}"),
            });
        }
        Ok(Tensor {
            shape: perm.iter().map(|&p| self.shape[p]).collect(),
            strides: perm.iter().map(|&p| self.strides[p]).collect(),
            data: Arc::clone(&self.data),
            dtype: self.dtype,
        })
    }

    /// Zero-copy main diagonal of a square matrix: a rank-1 strided view
    /// of length `n` whose stride is the sum of both axis strides. No
    /// element moves — the fast-path execution target for `ii->i`-shaped
    /// einsums.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self` is a square
    /// rank-2 tensor.
    pub fn diagonal_view(&self) -> Result<Tensor> {
        if self.ndim() != 2 || self.shape[0] != self.shape[1] {
            return Err(TensorError::ShapeMismatch {
                op: "diagonal_view".into(),
                detail: format!("diagonal needs a square matrix, got {:?}", self.shape),
            });
        }
        Ok(Tensor {
            shape: vec![self.shape[0]],
            strides: vec![self.strides[0] + self.strides[1]],
            data: Arc::clone(&self.data),
            dtype: self.dtype,
        })
    }

    /// Insert a size-1 dimension at `dim` (PyTorch `unsqueeze`).
    ///
    /// # Panics
    ///
    /// Panics if `dim > ndim()`.
    pub fn unsqueeze(&self, dim: usize) -> Tensor {
        assert!(dim <= self.ndim(), "unsqueeze dim out of range");
        let mut shape = self.shape.clone();
        shape.insert(dim, 1);
        self.reshape(shape).expect("unsqueeze preserves volume")
    }

    /// Broadcast to a larger shape following NumPy rules.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes are not
    /// broadcast-compatible.
    pub fn broadcast_to(&self, shape: &[usize]) -> Result<Tensor> {
        let joint =
            broadcast_shapes(&self.shape, shape).ok_or_else(|| TensorError::ShapeMismatch {
                op: "broadcast_to".into(),
                detail: format!("{:?} cannot broadcast to {:?}", self.shape, shape),
            })?;
        if joint != shape {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast_to".into(),
                detail: format!(
                    "{:?} broadcasts to {:?}, not requested {:?}",
                    self.shape, joint, shape
                ),
            });
        }
        let nd = shape.len();
        let pad = nd - self.ndim();
        let mut out = Tensor::zeros_with(shape.to_vec(), self.dtype);
        let od = out.buf_mut();
        let mut idx = vec![0usize; nd];
        let mut src = vec![0usize; self.ndim()];
        for slot in od.iter_mut() {
            for d in pad..nd {
                src[d - pad] = if self.shape[d - pad] == 1 { 0 } else { idx[d] };
            }
            *slot = self.at(&src);
            for d in (0..nd).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Elementwise and reductions
    // ------------------------------------------------------------------

    /// Apply `f` to every element, producing a new (contiguous) tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let round = self.dtype == DType::F16;
        let data = self
            .contiguous_data()
            .iter()
            .map(|&v| {
                let r = f(v);
                if round {
                    f16_round(r)
                } else {
                    r
                }
            })
            .collect();
        Tensor {
            strides: contiguous_strides(&self.shape),
            shape: self.shape.clone(),
            data: Arc::new(data),
            dtype: self.dtype,
        }
    }

    /// Combine two tensors elementwise with NumPy broadcasting.
    ///
    /// The result dtype is the wider of the two operand dtypes (F32 wins
    /// over F16; float wins over I32).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes do not broadcast.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        let shape = broadcast_shapes(&self.shape, &other.shape).ok_or_else(|| {
            TensorError::ShapeMismatch {
                op: "elementwise".into(),
                detail: format!("{:?} vs {:?}", self.shape, other.shape),
            }
        })?;
        let dtype = match (self.dtype, other.dtype) {
            (DType::F32, _) | (_, DType::F32) => DType::F32,
            (DType::F16, _) | (_, DType::F16) => DType::F16,
            _ => DType::I32,
        };
        let a = self.broadcast_to(&shape)?;
        let b = other.broadcast_to(&shape)?;
        let round = dtype == DType::F16;
        let data = a
            .data
            .iter()
            .zip(b.data.iter())
            .map(|(&x, &y)| {
                let r = f(x, y);
                if round {
                    f16_round(r)
                } else {
                    r
                }
            })
            .collect();
        Ok(Tensor {
            strides: contiguous_strides(&shape),
            shape,
            data: Arc::new(data),
            dtype,
        })
    }

    /// Elementwise addition with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes do not broadcast.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes do not broadcast.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes do not broadcast.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum over the given axes (kept axes retain their extent).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if an axis is out of range.
    pub fn sum_axes(&self, axes: &[usize]) -> Result<Tensor> {
        let nd = self.ndim();
        for &a in axes {
            if a >= nd {
                return Err(TensorError::ShapeMismatch {
                    op: "sum".into(),
                    detail: format!("axis {a} out of range for rank {nd}"),
                });
            }
        }
        let keep: Vec<usize> = (0..nd).filter(|d| !axes.contains(d)).collect();
        let out_shape: Vec<usize> = keep.iter().map(|&d| self.shape[d]).collect();
        let mut out = Tensor::zeros_with(out_shape.clone(), self.dtype);
        let src = self.contiguous_data();
        let od = out.buf_mut();
        let mut idx = vec![0usize; nd];
        for i in 0..volume(&self.shape) {
            let mut off = 0usize;
            let mut stride = 1usize;
            for &d in keep.iter().rev() {
                off += idx[d] * stride;
                stride *= self.shape[d];
            }
            od[off] += src[i];
            for d in (0..nd).rev() {
                idx[d] += 1;
                if idx[d] < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        if self.dtype == DType::F16 {
            out = out.cast(DType::F16);
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.contiguous_data().iter().sum()
    }

    /// Maximum element (NaN-free data assumed). Returns `-inf` when empty.
    pub fn max(&self) -> f32 {
        self.contiguous_data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-free data assumed). Returns `+inf` when empty.
    pub fn min(&self) -> f32 {
        self.contiguous_data()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Mean absolute value; 0 for empty tensors.
    pub fn mean_abs(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let src = self.contiguous_data();
        src.iter().map(|v| v.abs()).sum::<f32>() / src.len() as f32
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self` is `[m, k]` and
    /// `other` is `[k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.ndim() != 2 || other.ndim() != 2 || self.shape[1] != other.shape[0] {
            return Err(TensorError::ShapeMismatch {
                op: "matmul".into(),
                detail: format!("{:?} x {:?}", self.shape, other.shape),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = Tensor::zeros(vec![m, n]);
        let lhs = self.contiguous_data();
        let rhs = other.contiguous_data();
        let od = out.buf_mut();
        for i in 0..m {
            for l in 0..k {
                let a = lhs[i * k + l];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    od[i * n + j] += a * rhs[l * n + j];
                }
            }
        }
        out.dtype = if self.dtype == DType::F16 && other.dtype == DType::F16 {
            // Tensor-core style: f16 inputs, f32 accumulate, f16 store.
            return Ok(out.cast(DType::F16));
        } else {
            DType::F32
        };
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Comparison
    // ------------------------------------------------------------------

    /// True if both tensors have the same shape and all elements satisfy
    /// `|a - b| <= atol + rtol * |b|`.
    pub fn allclose(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .contiguous_data()
                .iter()
                .zip(other.contiguous_data().iter())
                .all(|(&a, &b)| (a - b).abs() <= atol + rtol * b.abs())
    }

    /// Largest absolute elementwise difference; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.contiguous_data()
                .iter()
                .zip(other.contiguous_data().iter())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f32::max),
        )
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, dtype={}", self.shape, self.dtype)?;
        if !self.is_contiguous() {
            write!(f, ", strides={:?}", self.strides)?;
        }
        if self.len() <= 16 {
            write!(f, ", data={:?}", self.contiguous_data())?;
        } else {
            write!(f, ", data=[{} elems]", self.len())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that assert exact `deep_copy_count` deltas
    /// (the counter is process-wide and tests run concurrently).
    static COUNT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(vec![2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(vec![4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(vec![2, 2], 2.5);
        assert_eq!(f.at(&[1, 1]), 2.5);
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(7.0);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.at(&[]), 7.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn strides_are_row_major() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.strides(), &[12, 4, 1]);
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.data()[5], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_out_of_bounds_panics() {
        let t = Tensor::zeros(vec![2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn eye_and_matmul() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::arange(6).cast(DType::F32);
        let r = t.reshape(vec![2, 3]).unwrap();
        assert_eq!(r.at(&[1, 0]), 3.0);
        assert!(t.reshape(vec![4]).is_err());
    }

    #[test]
    fn permute_and_transpose() {
        let t = Tensor::from_vec(vec![2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let p = t.transpose(0, 1).unwrap();
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.at(&[2, 1]), 5.0);
        assert_eq!(p.at(&[0, 1]), 3.0);
        // permute validation
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::from_fn(vec![2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), 123.0);
    }

    #[test]
    fn unsqueeze_inserts_axis() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.unsqueeze(0).shape(), &[1, 2, 3]);
        assert_eq!(t.unsqueeze(2).shape(), &[2, 3, 1]);
    }

    #[test]
    fn broadcast_to_expands() {
        let t = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = t.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.at(&[0, 1]), 2.0);
        assert_eq!(b.at(&[1, 2]), 3.0);
        assert!(t.broadcast_to(&[2, 4]).is_err());
    }

    #[test]
    fn elementwise_broadcasting() {
        let a = Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![1, 3], vec![10.0, 20.0, 30.0]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.at(&[1, 2]), 32.0);
        let d = a.mul(&b).unwrap();
        assert_eq!(d.at(&[1, 0]), 20.0);
    }

    #[test]
    fn sum_axes_keeps_others() {
        let t = Tensor::from_fn(vec![2, 3, 4], |_| 1.0);
        let s = t.sum_axes(&[1]).unwrap();
        assert_eq!(s.shape(), &[2, 4]);
        assert!(s.data().iter().all(|&v| v == 3.0));
        let s2 = t.sum_axes(&[0, 2]).unwrap();
        assert_eq!(s2.shape(), &[3]);
        assert!(s2.data().iter().all(|&v| v == 8.0));
        assert!(t.sum_axes(&[3]).is_err());
    }

    #[test]
    fn f16_cast_rounds_values() {
        let t = Tensor::from_vec(vec![2], vec![0.1, 1.0]).unwrap();
        let h = t.cast(DType::F16);
        assert_eq!(h.dtype(), DType::F16);
        assert_ne!(h.data()[0], 0.1);
        assert_eq!(h.data()[1], 1.0);
        assert_eq!(h.device_bytes(), 4); // 2 elems * 2 bytes
    }

    #[test]
    fn f16_arithmetic_rounds() {
        let a = Tensor::from_vec(vec![1], vec![1.0])
            .unwrap()
            .cast(DType::F16);
        let b = Tensor::from_vec(vec![1], vec![1e-4])
            .unwrap()
            .cast(DType::F16);
        // 1.0 + 1e-4 rounds back to 1.0 in f16 (ulp at 1.0 is ~9.8e-4).
        let c = a.add(&b).unwrap();
        assert_eq!(c.data()[0], 1.0);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![1.0 + 1e-7, 2.0]).unwrap();
        assert!(a.allclose(&b, 1e-5, 1e-6));
        let c = Tensor::from_vec(vec![2], vec![1.5, 2.0]).unwrap();
        assert!(!a.allclose(&c, 1e-5, 1e-6));
        assert!((a.max_abs_diff(&c).unwrap() - 0.5).abs() < 1e-6);
        assert!(a.max_abs_diff(&Tensor::zeros(vec![3])).is_none());
    }

    #[test]
    fn arange_is_i32() {
        let t = Tensor::arange(5);
        assert_eq!(t.dtype(), DType::I32);
        assert_eq!(t.at_i64(&[3]), 3);
    }

    #[test]
    fn from_fn_ordering() {
        let t = Tensor::from_fn(vec![2, 2], |i| (i[0] * 2 + i[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn clone_shares_storage_and_copies_on_write() {
        let _serial = COUNT_LOCK.lock().unwrap();
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut b = a.clone();
        assert!(a.ptr_eq(&b), "clone shares the buffer");
        b.set(&[0, 0], 9.0);
        assert!(!a.ptr_eq(&b), "first write materializes a private copy");
        assert_eq!(a.at(&[0, 0]), 1.0, "writes never leak to the source");
        assert_eq!(b.at(&[0, 0]), 9.0);
        // Once unique, further writes stay in place.
        let before = Tensor::deep_copy_count();
        b.set(&[0, 1], 8.0);
        b.data_mut()[2] = 7.0;
        assert_eq!(Tensor::deep_copy_count(), before, "unique writes are free");
    }

    #[test]
    fn reshape_and_view_are_zero_copy() {
        // Takes the lock because the write below materializes shared
        // storage, which would race the exact counter asserts.
        let _serial = COUNT_LOCK.lock().unwrap();
        let a = Tensor::from_vec(vec![2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let r = a.reshape(vec![3, 2]).unwrap();
        let v = a.view(vec![6]).unwrap();
        assert!(
            !a.ptr_eq(&r),
            "different shape: not the same tensor identity"
        );
        assert_eq!(r.at(&[2, 1]), 5.0);
        assert_eq!(v.at(&[4]), 4.0);
        // Writing through the view must not leak into the original.
        let mut v = v;
        v.set(&[0], 99.0);
        assert_eq!(a.at(&[0, 0]), 0.0);
        assert_eq!(v.at(&[0]), 99.0);
    }

    #[test]
    fn ptr_eq_requires_identical_interpretation() {
        let a = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        // Same storage, different shape or dtype: not ptr_eq.
        assert!(!a.ptr_eq(&a.reshape(vec![2, 2]).unwrap()));
        assert!(!a.ptr_eq(&a.cast(DType::F16)));
        // Equal contents, separate storage: not ptr_eq, but ==.
        let c = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(!a.ptr_eq(&c));
        assert_eq!(a, c);
    }

    #[test]
    fn cast_to_f32_shares_storage() {
        let a = Tensor::arange(8);
        let f = a.cast(DType::F32);
        assert_eq!(f.dtype(), DType::F32);
        assert!(
            Arc::ptr_eq(&a.data, &f.data),
            "retagging transforms no values"
        );
        let h = Tensor::from_vec(vec![2], vec![0.1, 0.2])
            .unwrap()
            .cast(DType::F16);
        assert!(!Arc::ptr_eq(&a.data, &h.data));
    }

    #[test]
    fn partial_eq_is_layout_independent() {
        // Logical equality must not depend on how the shape was reached
        // or how the elements are laid out: a strided view compares equal
        // to its materialized copy.
        let canonical = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let view = canonical.permute_view(&[1, 0]).unwrap();
        assert_eq!(view, canonical.transpose(0, 1).unwrap());
        assert_eq!(view.permute_view(&[1, 0]).unwrap(), canonical);
        // Shape and dtype still distinguish.
        assert_ne!(canonical, canonical.reshape(vec![4]).unwrap());
        assert_ne!(
            Tensor::zeros(vec![2]),
            Tensor::zeros_with(vec![2], DType::I32)
        );
        // And through different construction paths.
        let rebuilt = canonical
            .reshape(vec![4])
            .unwrap()
            .reshape(vec![2, 2])
            .unwrap();
        assert_eq!(canonical, rebuilt);
        assert_eq!(
            canonical,
            canonical.transpose(0, 1).unwrap().transpose(0, 1).unwrap()
        );
    }

    #[test]
    fn permute_view_is_zero_copy_and_correct() {
        let _serial = COUNT_LOCK.lock().unwrap();
        let t = Tensor::from_fn(vec![2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let before = Tensor::deep_copy_count();
        let v = t.permute_view(&[2, 0, 1]).unwrap();
        assert_eq!(Tensor::deep_copy_count(), before, "views move no bytes");
        assert!(v.shares_storage(&t));
        assert!(!v.is_contiguous());
        assert_eq!(v.shape(), &[4, 2, 3]);
        assert_eq!(v.len(), 24);
        assert_eq!(v.at(&[3, 1, 2]), 123.0);
        // Bit-identical to the materializing permute.
        assert!(v.bit_eq(&t.permute(&[2, 0, 1]).unwrap()));
        // Materializing the view counts one deep copy and detaches.
        let c = v.contiguous();
        assert_eq!(Tensor::deep_copy_count(), before + 1);
        assert!(c.is_contiguous());
        assert!(!c.shares_storage(&t));
        assert!(c.bit_eq(&v));
        // contiguous() on an already-contiguous tensor is a free clone.
        let before = Tensor::deep_copy_count();
        let c2 = c.contiguous();
        assert_eq!(Tensor::deep_copy_count(), before);
        assert!(c2.shares_storage(&c));
        // Invalid permutations are rejected.
        assert!(t.permute_view(&[0, 0, 1]).is_err());
        assert!(t.permute_view(&[0]).is_err());
    }

    #[test]
    fn diagonal_view_is_zero_copy_and_correct() {
        let _serial = COUNT_LOCK.lock().unwrap();
        let t = Tensor::from_fn(vec![3, 3], |i| (i[0] * 10 + i[1]) as f32);
        let before = Tensor::deep_copy_count();
        let d = t.diagonal_view().unwrap();
        assert_eq!(Tensor::deep_copy_count(), before);
        assert!(d.shares_storage(&t));
        assert_eq!(d.shape(), &[3]);
        assert_eq!(d.len(), 3);
        assert_eq!(*d.contiguous_data(), [0.0, 11.0, 22.0]);
        assert!(t.diagonal_view().unwrap().ptr_eq(&d));
        assert!(Tensor::zeros(vec![2, 3]).diagonal_view().is_err());
        assert!(Tensor::zeros(vec![4]).diagonal_view().is_err());
    }

    #[test]
    fn view_writes_never_leak_and_reads_stay_logical() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut v = t.permute_view(&[1, 0]).unwrap();
        // set() through a view copies the storage first (copy-on-write).
        v.set(&[0, 1], 9.0); // logical [0,1] of the transpose == t[1,0]
        assert_eq!(t.at(&[1, 0]), 3.0, "original untouched");
        assert_eq!(v.at(&[0, 1]), 9.0);
        // data_mut gathers a view into logical order first.
        let mut v2 = t.permute_view(&[1, 0]).unwrap();
        v2.data_mut()[1] = 7.0; // logical index 1 == t[1,0]
        assert!(v2.is_contiguous());
        assert_eq!(v2.at(&[0, 1]), 7.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        // into_data returns logical order for views.
        let v3 = t.permute_view(&[1, 0]).unwrap();
        assert_eq!(v3.into_data(), vec![1.0, 3.0, 2.0, 4.0]);
        // reshape of a view gathers (logical order preserved).
        let r = t.permute_view(&[1, 0]).unwrap().reshape(vec![4]).unwrap();
        assert_eq!(r.data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn bit_eq_distinguishes_nan_and_zero_signs() {
        let a = Tensor::from_vec(vec![3], vec![f32::NAN, -0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![f32::NAN, -0.0, 1.0]).unwrap();
        assert!(a.bit_eq(&b), "NaN == NaN under bit_eq");
        assert_ne!(a, b, "PartialEq keeps IEEE NaN semantics");
        let c = Tensor::from_vec(vec![3], vec![f32::NAN, 0.0, 1.0]).unwrap();
        assert!(!a.bit_eq(&c), "-0.0 vs +0.0 differ under bit_eq");
        assert!(!a.bit_eq(&a.reshape(vec![3, 1]).unwrap()));
    }

    #[test]
    fn content_fingerprint_tracks_logical_content() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        // Views fingerprint their logical content, not their storage.
        let v = a.permute_view(&[1, 0]).unwrap();
        assert_eq!(
            v.content_fingerprint(),
            a.transpose(0, 1).unwrap().content_fingerprint()
        );
        assert_ne!(a.content_fingerprint(), v.content_fingerprint());
        // Shape, dtype, and values all feed the hash.
        assert_ne!(
            a.content_fingerprint(),
            a.reshape(vec![4]).unwrap().content_fingerprint()
        );
        assert_ne!(
            a.content_fingerprint(),
            a.cast(DType::F16).content_fingerprint()
        );
        let mut c = b.clone();
        c.set(&[0, 0], -1.0);
        assert_ne!(a.content_fingerprint(), c.content_fingerprint());
        // -0.0 and +0.0 hash differently (bit-level content identity).
        let z1 = Tensor::from_vec(vec![1], vec![0.0]).unwrap();
        let z2 = Tensor::from_vec(vec![1], vec![-0.0]).unwrap();
        assert_ne!(z1.content_fingerprint(), z2.content_fingerprint());
    }

    #[test]
    fn into_data_avoids_copy_when_unique() {
        let _serial = COUNT_LOCK.lock().unwrap();
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let keep = a.clone();
        // Shared: into_data must copy so `keep` stays intact.
        let before = Tensor::deep_copy_count();
        let v = a.into_data();
        assert!(Tensor::deep_copy_count() > before);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert_eq!(keep.data(), &[1.0, 2.0, 3.0]);
        // Unique: no copy.
        let before = Tensor::deep_copy_count();
        let v2 = keep.into_data();
        assert_eq!(Tensor::deep_copy_count(), before);
        assert_eq!(v2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(vec![2]);
        let s = format!("{t:?}");
        assert!(s.contains("shape"));
        let big = Tensor::zeros(vec![100]);
        assert!(format!("{big:?}").contains("100 elems"));
    }
}
