//! NumPy-style shape broadcasting rules.

/// Compute the broadcast of two shapes, or `None` if they are incompatible.
///
/// Shapes are right-aligned; a dimension broadcasts if the extents are
/// equal or either is 1.
///
/// ```
/// use insum_tensor::broadcast_shapes;
/// assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]), Some(vec![2, 3]));
/// assert_eq!(broadcast_shapes(&[4], &[2, 4]), Some(vec![2, 4]));
/// assert_eq!(broadcast_shapes(&[2], &[3]), None);
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let nd = a.len().max(b.len());
    let mut out = vec![0usize; nd];
    for i in 0..nd {
        let da = if i < nd - a.len() {
            1
        } else {
            a[i - (nd - a.len())]
        };
        let db = if i < nd - b.len() {
            1
        } else {
            b[i - (nd - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
    }

    #[test]
    fn scalar_broadcasts_with_anything() {
        assert_eq!(broadcast_shapes(&[], &[5, 2]), Some(vec![5, 2]));
        assert_eq!(broadcast_shapes(&[5, 2], &[]), Some(vec![5, 2]));
    }

    #[test]
    fn ones_expand() {
        assert_eq!(
            broadcast_shapes(&[1, 3, 1], &[2, 1, 4]),
            Some(vec![2, 3, 4])
        );
    }

    #[test]
    fn rank_extension_is_left_padded() {
        assert_eq!(broadcast_shapes(&[3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 3], &[3]), Some(vec![2, 3]));
    }

    #[test]
    fn incompatible() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 4]), None);
        assert_eq!(broadcast_shapes(&[5], &[4]), None);
    }

    #[test]
    fn zero_sized_dims() {
        assert_eq!(broadcast_shapes(&[0], &[1]), Some(vec![0]));
        assert_eq!(broadcast_shapes(&[0], &[0]), Some(vec![0]));
    }
}
