//! Property tests pinning the Arc-backed copy-on-write `Tensor` to the
//! observable semantics of the deep-copy value type it replaced: under
//! random interleavings of clone / view / mutate / drop across many
//! handles, no write is ever visible through any other handle, and every
//! handle's contents always equal an independently maintained deep-copy
//! oracle.

use insum_tensor::{DType, Tensor};
use proptest::prelude::*;

/// One handle under test plus its deep-copy oracle (what the old
/// `data: Vec<f32>` type would hold after the same operation sequence).
struct Handle {
    tensor: Tensor,
    oracle: Vec<f32>,
}

fn check(handles: &[Handle], step: usize) {
    for (i, h) in handles.iter().enumerate() {
        assert_eq!(
            h.tensor.data(),
            h.oracle.as_slice(),
            "handle {i} diverged from the deep-copy oracle after step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op interleavings: writes through one handle must never
    /// leak into any other, exactly as if every clone had been a deep
    /// copy.
    #[test]
    fn cow_handles_are_observationally_deep_copies(
        n in 1usize..48,
        ops in proptest::collection::vec(
            (0usize..5, 0usize..64, -8.0f64..8.0),
            1..80,
        ),
    ) {
        let root = Tensor::from_fn(vec![n], |i| i[0] as f32 * 0.5 - 1.0);
        let mut handles = vec![Handle {
            oracle: root.data().to_vec(),
            tensor: root,
        }];
        for (step, &(op, pick, val)) in ops.iter().enumerate() {
            let h = pick % handles.len();
            match op {
                // Clone: new handle, same observable contents.
                0 => {
                    let t = handles[h].tensor.clone();
                    let o = handles[h].oracle.clone();
                    handles.push(Handle { tensor: t, oracle: o });
                }
                // Zero-copy view/reshape: new handle over the same data.
                1 => {
                    let t = if pick % 2 == 0 {
                        handles[h].tensor.view(vec![n]).unwrap()
                    } else {
                        handles[h].tensor.reshape(vec![1, n]).unwrap()
                            .reshape(vec![n]).unwrap()
                    };
                    let o = handles[h].oracle.clone();
                    handles.push(Handle { tensor: t, oracle: o });
                }
                // Point write through set().
                2 => {
                    let at = pick % n;
                    let hh = &mut handles[h];
                    // set() is applied against the handle's own shape,
                    // which may be [n] or a view; index by flat data.
                    hh.tensor.data_mut()[at] = val as f32;
                    hh.oracle[at] = val as f32;
                }
                // Bulk write through data_mut().
                3 => {
                    let hh = &mut handles[h];
                    for v in hh.tensor.data_mut().iter_mut() {
                        *v += val as f32;
                    }
                    for v in hh.oracle.iter_mut() {
                        *v += val as f32;
                    }
                }
                // Drop a handle (never the last): releasing one sharer
                // must not disturb the others.
                _ => {
                    if handles.len() > 1 {
                        handles.swap_remove(h);
                    }
                }
            }
            check(&handles, step);
        }
    }

    /// `index_add` (the scatter primitive the rewriter lowers to) through
    /// a sharing handle copies before accumulating.
    #[test]
    fn index_add_through_shared_handle_does_not_leak(
        n in 2usize..24,
        idx in proptest::collection::vec(0usize..24, 1..16),
        vals in proptest::collection::vec(-4.0f64..4.0, 1..16),
    ) {
        let base = Tensor::from_fn(vec![n, 2], |i| (i[0] * 2 + i[1]) as f32);
        let mut writer = base.clone();
        let k = idx.len().min(vals.len());
        let index = Tensor::from_indices(
            vec![k],
            idx[..k].iter().map(|&i| (i % n) as i64).collect(),
        ).unwrap();
        let source = Tensor::from_fn(vec![k, 2], |i| vals[i[0]] as f32);
        writer.index_add(0, &index, &source).unwrap();
        // The sharing handle still sees the original values.
        for i in 0..n {
            for j in 0..2 {
                prop_assert_eq!(base.at(&[i, j]), (i * 2 + j) as f32);
            }
        }
        // And the writer accumulated exactly the oracle's result.
        let mut oracle: Vec<f32> = base.data().to_vec();
        for (t, &i) in idx[..k].iter().enumerate() {
            for j in 0..2 {
                oracle[(i % n) * 2 + j] += vals[t] as f32;
            }
        }
        prop_assert_eq!(writer.data(), oracle.as_slice());
    }

    /// Equality is over logical contents only: clones, views-of-views,
    /// and F32 retags of the same data all compare equal, and dtype or
    /// shape changes compare unequal.
    #[test]
    fn equality_is_logical(
        n in 1usize..32,
        seed in -4.0f64..4.0,
    ) {
        let a = Tensor::from_fn(vec![n], |i| i[0] as f32 + seed as f32);
        prop_assert_eq!(&a, &a.clone());
        prop_assert_eq!(&a, &a.view(vec![n]).unwrap());
        prop_assert_eq!(&a, &a.cast(DType::F32));
        prop_assert_eq!(
            &a,
            &Tensor::from_vec(vec![n], a.data().to_vec()).unwrap()
        );
        if n > 1 {
            prop_assert!(a != a.reshape(vec![1, n]).unwrap());
        }
        prop_assert!(a != a.cast(DType::I32));
    }
}
