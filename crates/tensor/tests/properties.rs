//! Property-based tests for the tensor substrate invariants.

use insum_tensor::{einsum, f16_round, DType, Tensor};
use proptest::prelude::*;

fn small_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(vec![r, c], data).unwrap())
    })
}

proptest! {
    #[test]
    fn f16_roundtrip_is_idempotent(x in -1.0e5f32..1.0e5) {
        let once = f16_round(x);
        prop_assert_eq!(f16_round(once), once);
    }

    #[test]
    fn f16_round_is_monotone(a in -1.0e4f32..1.0e4, b in -1.0e4f32..1.0e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f16_round(lo) <= f16_round(hi));
    }

    #[test]
    fn f16_relative_error_bounded(x in 1.0e-3f32..6.0e4) {
        // Normal-range relative error is at most 2^-11.
        let r = f16_round(x);
        prop_assert!(((r - x) / x).abs() <= (2.0f32).powi(-11) + 1e-7);
    }

    #[test]
    fn transpose_is_involution(t in small_tensor(6)) {
        let tt = t.transpose(0, 1).unwrap().transpose(0, 1).unwrap();
        prop_assert_eq!(tt, t);
    }

    #[test]
    fn reshape_preserves_data(t in small_tensor(6)) {
        let n = t.len();
        let flat = t.reshape(vec![n]).unwrap();
        prop_assert_eq!(flat.data(), t.data());
    }

    #[test]
    fn einsum_matmul_matches_matmul(
        a in small_tensor(5),
        b in small_tensor(5),
    ) {
        // Force compatible inner dims by reshaping b.
        let k = a.shape()[1];
        let bn = b.len() / k.max(1);
        prop_assume!(k > 0 && bn > 0 && b.len() >= k);
        let b = Tensor::from_vec(vec![k, bn], b.data()[..k * bn].to_vec()).unwrap();
        let via_einsum = einsum("ik,kj->ij", &[&a, &b]).unwrap();
        let via_matmul = a.matmul(&b).unwrap();
        prop_assert!(via_einsum.allclose(&via_matmul, 1e-4, 1e-4));
    }

    #[test]
    fn einsum_sum_matches_sum_axes(t in small_tensor(6)) {
        let via_einsum = einsum("ij->i", &[&t]).unwrap();
        let via_sum = t.sum_axes(&[1]).unwrap();
        prop_assert!(via_einsum.allclose(&via_sum, 1e-4, 1e-4));
    }

    #[test]
    fn index_select_then_add_is_projection(
        t in small_tensor(6),
        seed in proptest::collection::vec(0usize..6, 1..8),
    ) {
        // Scatter-add of gathered rows accumulates each selected row once
        // per occurrence of its index.
        let rows = t.shape()[0];
        let idx: Vec<i64> = seed.iter().map(|&i| (i % rows) as i64).collect();
        let index = Tensor::from_indices(vec![idx.len()], idx.clone()).unwrap();
        let gathered = t.index_select(0, &index).unwrap();
        let mut out = Tensor::zeros(t.shape().to_vec());
        out.index_add(0, &index, &gathered).unwrap();
        // Row r of out = (count of r in idx) * row r of t.
        for r in 0..rows {
            let count = idx.iter().filter(|&&i| i == r as i64).count() as f32;
            for c in 0..t.shape()[1] {
                let got = out.at(&[r, c]);
                let want = count * t.at(&[r, c]);
                prop_assert!((got - want).abs() <= 1e-4 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn broadcast_add_commutes(a in small_tensor(5), s in -5.0f32..5.0) {
        let scalar = Tensor::scalar(s);
        let left = a.add(&scalar).unwrap();
        let right = scalar.add(&a).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn cast_f16_then_f32_is_stable(t in small_tensor(6)) {
        let h = t.cast(DType::F16);
        let h2 = h.cast(DType::F32).cast(DType::F16);
        prop_assert_eq!(h.data(), h2.data());
    }
}
