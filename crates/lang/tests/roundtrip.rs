//! Property tests for the language front end: printing and re-parsing an
//! arbitrary statement is the identity, and analysis is stable under it.

use insum_lang::{analyze, parse, Access, AssignOp, IndexExpr, Statement};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy for index-variable names (single lowercase letters, distinct
/// from tensor names).
fn var_name() -> impl Strategy<Value = String> {
    "[a-h]".prop_map(|s| s.to_string())
}

/// Strategy for tensor names.
fn tensor_name() -> impl Strategy<Value = String> {
    "[A-Z][A-Z]?".prop_map(|s| s.to_string())
}

fn leaf_index() -> impl Strategy<Value = IndexExpr> {
    var_name().prop_map(IndexExpr::Var)
}

/// Accesses with up to 3 dims; each dim is a var or a depth-1 indirect
/// access over vars.
fn access() -> impl Strategy<Value = Access> {
    (
        tensor_name(),
        proptest::collection::vec(
            prop_oneof![
                leaf_index(),
                (tensor_name(), proptest::collection::vec(var_name(), 1..3)).prop_map(
                    |(t, vars)| {
                        IndexExpr::Indirect(Access {
                            tensor: t,
                            indices: vars.into_iter().map(IndexExpr::Var).collect(),
                        })
                    }
                ),
            ],
            1..4,
        ),
    )
        .prop_map(|(tensor, indices)| Access { tensor, indices })
}

fn statement() -> impl Strategy<Value = Statement> {
    (
        access(),
        proptest::bool::ANY,
        proptest::collection::vec(access(), 1..4),
    )
        .prop_map(|(output, acc, factors)| Statement {
            output,
            op: if acc {
                AssignOp::Accumulate
            } else {
                AssignOp::Assign
            },
            factors,
        })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(stmt in statement()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed).expect("printed statements parse");
        prop_assert_eq!(stmt, reparsed);
    }

    #[test]
    fn tensor_names_are_deduplicated(stmt in statement()) {
        let names = stmt.tensor_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(names.len(), sorted.len());
    }

    #[test]
    fn all_vars_contains_output_vars(stmt in statement()) {
        let all = stmt.all_vars();
        for v in stmt.output_vars() {
            prop_assert!(all.contains(&v));
        }
    }

    #[test]
    fn analysis_is_deterministic(stmt in statement()) {
        // Bind every tensor to a rank-matching shape of 4s; analysis
        // either fails identically or succeeds identically.
        let mut shapes: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        fn bind(a: &Access, shapes: &mut BTreeMap<String, Vec<usize>>) {
            shapes.insert(a.tensor.clone(), vec![4; a.indices.len()]);
            for idx in &a.indices {
                if let IndexExpr::Indirect(inner) = idx {
                    bind(inner, shapes);
                }
            }
        }
        bind(&stmt.output, &mut shapes);
        for f in &stmt.factors {
            bind(f, &mut shapes);
        }
        let r1 = analyze(&stmt, &shapes);
        let r2 = analyze(&stmt, &shapes);
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn successful_analysis_binds_every_var(stmt in statement()) {
        let mut shapes: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        fn bind(a: &Access, shapes: &mut BTreeMap<String, Vec<usize>>) {
            shapes.insert(a.tensor.clone(), vec![4; a.indices.len()]);
            for idx in &a.indices {
                if let IndexExpr::Indirect(inner) = idx {
                    bind(inner, shapes);
                }
            }
        }
        bind(&stmt.output, &mut shapes);
        for f in &stmt.factors {
            bind(f, &mut shapes);
        }
        if let Ok(info) = analyze(&stmt, &shapes) {
            for v in stmt.all_vars() {
                prop_assert_eq!(info.extent(v), Some(4), "var {} unbound", v);
            }
        }
    }
}
