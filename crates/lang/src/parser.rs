//! Recursive-descent parser for indirect Einsum statements.

use crate::ast::{Access, AssignOp, IndexExpr, Statement};
use crate::error::LangError;
use crate::lexer::{lex, Token};
use crate::Result;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> LangError {
        LangError::ParseError {
            expected: expected.to_string(),
            found: self
                .peek()
                .map(|t| format!("{t:?}"))
                .unwrap_or_else(|| "end of input".to_string()),
            pos: self.pos,
        }
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.err(what)),
        }
    }

    /// access := IDENT '[' index (',' index)* ']'
    fn access(&mut self) -> Result<Access> {
        let tensor = self.ident("tensor name")?;
        self.expect(&Token::LBracket, "'['")?;
        let mut indices = Vec::new();
        loop {
            indices.push(self.index()?);
            match self.peek() {
                Some(Token::Comma) => {
                    self.pos += 1;
                }
                Some(Token::RBracket) => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
        Ok(Access { tensor, indices })
    }

    /// index := IDENT '[' ... ']'  (indirect)  |  IDENT  (plain variable)
    fn index(&mut self) -> Result<IndexExpr> {
        let name = self.ident("index variable or tensor")?;
        if self.peek() == Some(&Token::LBracket) {
            // Re-parse as a nested access: rewind one token.
            self.pos -= 1;
            Ok(IndexExpr::Indirect(self.access()?))
        } else {
            Ok(IndexExpr::Var(name))
        }
    }
}

/// Parse an indirect Einsum statement such as
/// `"C[AM[p],n] += AV[p,q] * B[AK[p,q],n]"`.
///
/// The grammar is:
///
/// ```text
/// stmt   := access ('+=' | '=') access ('*' access)*
/// access := IDENT '[' index (',' index)* ']'
/// index  := access | IDENT
/// ```
///
/// # Errors
///
/// Returns [`LangError::UnexpectedChar`] for lexical errors and
/// [`LangError::ParseError`] for grammatical ones (including trailing
/// tokens).
pub fn parse(src: &str) -> Result<Statement> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let output = p.access()?;
    let op = match p.advance() {
        Some(Token::PlusEquals) => AssignOp::Accumulate,
        Some(Token::Equals) => AssignOp::Assign,
        _ => {
            p.pos = p.pos.saturating_sub(1);
            return Err(p.err("'+=' or '='"));
        }
    };
    let mut factors = vec![p.access()?];
    while p.peek() == Some(&Token::Star) {
        p.pos += 1;
        factors.push(p.access()?);
    }
    if p.peek().is_some() {
        return Err(p.err("end of input"));
    }
    Ok(Statement {
        output,
        op,
        factors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_coo_spmm() {
        let s = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        assert_eq!(s.op, AssignOp::Accumulate);
        assert_eq!(s.output.tensor, "C");
        assert_eq!(s.factors.len(), 2);
        assert!(matches!(s.output.indices[0], IndexExpr::Indirect(_)));
        assert!(matches!(s.output.indices[1], IndexExpr::Var(_)));
    }

    #[test]
    fn parse_group_coo_spmm() {
        let s = parse("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]").unwrap();
        let IndexExpr::Indirect(ak) = &s.factors[1].indices[0] else {
            panic!("expected indirect index");
        };
        assert_eq!(ak.tensor, "AK");
        assert_eq!(ak.indices.len(), 2);
    }

    #[test]
    fn parse_block_group_coo_spmm() {
        // 𝐶[AM[p], bm, n] = AV[p,q,bm,bk] * B[AK[p,q], bk, n]
        let s = parse("C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]").unwrap();
        assert_eq!(s.output.indices.len(), 3);
        assert_eq!(s.factors[0].indices.len(), 4);
    }

    #[test]
    fn parse_sparse_conv() {
        let s =
            parse("Out[MAPX[p],q,m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]").unwrap();
        assert_eq!(s.factors.len(), 3);
        assert_eq!(s.all_vars(), vec!["p", "q", "m", "c"]);
    }

    #[test]
    fn parse_equivariant_tp() {
        let s = parse(
            "Z[b,CGI[p,q],w] += CGV[p,q] * X[b,CGJ[p,q],u] * Y[b,CGK[p,q]] * W[b,CGL[p],u,w]",
        )
        .unwrap();
        assert_eq!(s.factors.len(), 4);
        assert_eq!(
            s.tensor_names(),
            vec!["Z", "CGI", "CGV", "X", "CGJ", "Y", "CGK", "W", "CGL"]
        );
    }

    #[test]
    fn parse_plain_assign() {
        let s = parse("C[i,j] = A[i,k] * B[k,j]").unwrap();
        assert_eq!(s.op, AssignOp::Assign);
        assert!(!s.output.has_indirection());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("C[i]").is_err()); // no rhs
        assert!(parse("C[i] += ").is_err());
        assert!(parse("C[i] += A[i] B[i]").is_err()); // missing '*'
        assert!(parse("C[i] += A[i] * ").is_err());
        assert!(parse("C[] += A[i]").is_err()); // empty index list
        assert!(parse("C[i,] += A[i]").is_err()); // trailing comma
        assert!(parse("C[i] += A[i] extra").is_err()); // trailing tokens
    }

    #[test]
    fn parse_nested_indirection() {
        // Depth-2 indirection parses (analysis may later restrict it).
        let s = parse("C[i] += A[P[Q[i]]]").unwrap();
        let IndexExpr::Indirect(p) = &s.factors[0].indices[0] else {
            panic!();
        };
        assert!(matches!(p.indices[0], IndexExpr::Indirect(_)));
    }
}
