//! The indirect-Einsum expression language (§3.1, §5.1 of the paper).
//!
//! An *indirect Einsum* is an Einsum whose index expressions may themselves
//! be tensor accesses. The canonical example from the paper is GroupCOO
//! SpMM:
//!
//! ```text
//! C[AM[p], n] += AV[p, q] * B[AK[p, q], n]
//! ```
//!
//! where `p` iterates over groups, `q` over entries within a group, `AM`
//! and `AK` are coordinate (metadata) tensors, and `AV` holds nonzero
//! values. Indirect accesses on the right-hand side are gathers; indirect
//! accesses on the left-hand side are scatter-adds (duplicates accumulate).
//!
//! This crate provides the textual front end: a lexer ([`lex`]), a parser
//! producing a [`Statement`] AST ([`parse`]), and a semantic analysis
//! ([`analyze`]) that infers every index variable's extent from the bound
//! tensor shapes and classifies variables as *output* (parallel) or
//! *reduction* (summed).
//!
//! # Example
//!
//! ```
//! use insum_lang::{parse, analyze};
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), insum_lang::LangError> {
//! let stmt = parse("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]")?;
//! let mut shapes = BTreeMap::new();
//! shapes.insert("C".to_string(), vec![4usize, 8]);
//! shapes.insert("AM".to_string(), vec![3]);
//! shapes.insert("AV".to_string(), vec![3, 2]);
//! shapes.insert("AK".to_string(), vec![3, 2]);
//! shapes.insert("B".to_string(), vec![16, 8]);
//! let info = analyze(&stmt, &shapes)?;
//! assert_eq!(info.extent("p"), Some(3));
//! assert_eq!(info.extent("q"), Some(2));
//! assert_eq!(info.extent("n"), Some(8));
//! assert!(info.reduction_vars.contains(&"q".to_string()));
//! # Ok(())
//! # }
//! ```

mod analyze;
mod ast;
mod error;
mod lexer;
mod parser;

pub use analyze::{analyze, Analysis};
pub use ast::{Access, AssignOp, IndexExpr, Statement};
pub use error::LangError;
pub use lexer::{lex, Token};
pub use parser::parse;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LangError>;
