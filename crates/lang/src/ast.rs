//! Abstract syntax of indirect Einsum statements.

use std::fmt;

/// How the computed right-hand side combines into the output tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`: the output is assumed zero-initialized and written once per
    /// coordinate (still accumulates on indirect collisions, per the
    /// Einsum operational semantics of §3.1).
    Assign,
    /// `+=`: contributions accumulate into the existing output.
    Accumulate,
}

/// One index position of an access: either a plain index variable or an
/// *indirect* access whose value supplies the coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexExpr {
    /// A plain index variable, e.g. `n` in `B[AK[p], n]`.
    Var(String),
    /// An indirect index, e.g. `AK[p]` in `B[AK[p], n]`.
    Indirect(Access),
}

impl IndexExpr {
    /// The plain variables appearing (transitively) in this index.
    pub fn vars(&self) -> Vec<&str> {
        match self {
            IndexExpr::Var(v) => vec![v.as_str()],
            IndexExpr::Indirect(a) => a.vars(),
        }
    }

    /// True if this index is an indirect access.
    pub fn is_indirect(&self) -> bool {
        matches!(self, IndexExpr::Indirect(_))
    }
}

/// A tensor access `T[i, j, ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The tensor name.
    pub tensor: String,
    /// One index expression per dimension.
    pub indices: Vec<IndexExpr>,
}

impl Access {
    /// All plain index variables used by this access, in positional order
    /// with duplicates preserved.
    pub fn vars(&self) -> Vec<&str> {
        self.indices.iter().flat_map(|i| i.vars()).collect()
    }

    /// The names of metadata tensors used for indirect indexing here.
    pub fn indirect_tensors(&self) -> Vec<&str> {
        self.indices
            .iter()
            .filter_map(|i| match i {
                IndexExpr::Indirect(a) => Some(a.tensor.as_str()),
                IndexExpr::Var(_) => None,
            })
            .collect()
    }

    /// True if any index position is indirect.
    pub fn has_indirection(&self) -> bool {
        self.indices.iter().any(IndexExpr::is_indirect)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.tensor)?;
        for (i, idx) in self.indices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match idx {
                IndexExpr::Var(v) => write!(f, "{v}")?,
                IndexExpr::Indirect(a) => write!(f, "{a}")?,
            }
        }
        write!(f, "]")
    }
}

/// A full indirect Einsum statement: `output op factor * factor * ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// The left-hand-side access (the output tensor).
    pub output: Access,
    /// Assignment operator.
    pub op: AssignOp,
    /// The product of right-hand-side accesses.
    pub factors: Vec<Access>,
}

impl Statement {
    /// Every tensor named in the statement (output, factors, and metadata),
    /// deduplicated in first-appearance order.
    pub fn tensor_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        fn collect<'a>(a: &'a Access, out: &mut Vec<&'a str>) {
            if !out.contains(&a.tensor.as_str()) {
                out.push(&a.tensor);
            }
            for idx in &a.indices {
                if let IndexExpr::Indirect(inner) = idx {
                    collect(inner, out);
                }
            }
        }
        collect(&self.output, &mut out);
        for fac in &self.factors {
            collect(fac, &mut out);
        }
        out
    }

    /// Plain index variables of the output access, deduplicated in order.
    pub fn output_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for v in self.output.vars() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// All plain index variables of the statement, output vars first, then
    /// remaining (reduction) vars in appearance order.
    pub fn all_vars(&self) -> Vec<&str> {
        let mut out = self.output_vars();
        for fac in &self.factors {
            for v in fac.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            AssignOp::Assign => "=",
            AssignOp::Accumulate => "+=",
        };
        write!(f, "{} {} ", self.output, op)?;
        for (i, fac) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, " * ")?;
            }
            write!(f, "{fac}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn display_roundtrips_through_parser() {
        let src = "C[AM[p],n] += AV[p,q] * B[AK[p,q],n]";
        let stmt = parse(src).unwrap();
        let printed = stmt.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn tensor_names_include_metadata() {
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        assert_eq!(stmt.tensor_names(), vec!["C", "AM", "AV", "B", "AK"]);
    }

    #[test]
    fn var_classification() {
        let stmt = parse("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]").unwrap();
        assert_eq!(stmt.output_vars(), vec!["p", "n"]);
        assert_eq!(stmt.all_vars(), vec!["p", "n", "q"]);
    }

    #[test]
    fn access_helpers() {
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        assert!(stmt.output.has_indirection());
        assert_eq!(stmt.output.indirect_tensors(), vec!["AM"]);
        assert!(!stmt.factors[0].has_indirection());
        assert!(stmt.factors[1].has_indirection());
    }
}
