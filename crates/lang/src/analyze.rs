//! Semantic analysis: extent inference and variable classification.

use crate::ast::{Access, IndexExpr, Statement};
use crate::error::LangError;
use crate::Result;
use std::collections::BTreeMap;

/// Result of analyzing a [`Statement`] against concrete tensor shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Inferred extent of every plain index variable.
    pub extents: BTreeMap<String, usize>,
    /// Variables appearing in the output access (parallel dimensions).
    pub output_vars: Vec<String>,
    /// Variables appearing only on the right-hand side (summed over).
    pub reduction_vars: Vec<String>,
    /// Tensors used in index position (gather/scatter metadata).
    pub metadata_tensors: Vec<String>,
}

impl Analysis {
    /// Extent of an index variable, if it exists.
    pub fn extent(&self, var: &str) -> Option<usize> {
        self.extents.get(var).copied()
    }

    /// Total iteration-space volume (product of all extents).
    pub fn iteration_volume(&self) -> usize {
        self.extents.values().product()
    }
}

struct Ctx<'a> {
    shapes: &'a BTreeMap<String, Vec<usize>>,
    extents: BTreeMap<String, usize>,
    metadata: Vec<String>,
}

impl Ctx<'_> {
    fn shape_of(&self, tensor: &str) -> Result<&[usize]> {
        self.shapes
            .get(tensor)
            .map(Vec::as_slice)
            .ok_or_else(|| LangError::UnboundTensor(tensor.to_string()))
    }

    fn bind(&mut self, var: &str, extent: usize) -> Result<()> {
        match self.extents.get(var) {
            Some(&e) if e != extent => Err(LangError::ExtentConflict {
                var: var.to_string(),
                detail: format!("bound to both {e} and {extent}"),
            }),
            _ => {
                self.extents.insert(var.to_string(), extent);
                Ok(())
            }
        }
    }

    /// Visit an access, binding every plain variable it constrains.
    ///
    /// `depth` counts indirection nesting; the compiler supports depth 1
    /// (metadata tensors indexed only by plain variables), matching every
    /// kernel in the paper.
    fn visit(&mut self, access: &Access, depth: usize) -> Result<()> {
        let shape = self.shape_of(&access.tensor)?.to_vec();
        if shape.len() != access.indices.len() {
            return Err(LangError::RankMismatch {
                tensor: access.tensor.clone(),
                indices: access.indices.len(),
                rank: shape.len(),
            });
        }
        for (dim, idx) in access.indices.iter().enumerate() {
            match idx {
                IndexExpr::Var(v) => self.bind(v, shape[dim])?,
                IndexExpr::Indirect(inner) => {
                    if depth >= 1 {
                        return Err(LangError::Unsupported(format!(
                            "nested indirection deeper than one level in {access}"
                        )));
                    }
                    if inner.indices.iter().any(IndexExpr::is_indirect) {
                        return Err(LangError::Unsupported(format!(
                            "indirect index {inner} must be indexed by plain variables"
                        )));
                    }
                    if !self.metadata.contains(&inner.tensor) {
                        self.metadata.push(inner.tensor.clone());
                    }
                    // The metadata access itself binds its index variables.
                    self.visit(inner, depth + 1)?;
                }
            }
        }
        Ok(())
    }
}

/// Analyze a statement against the shapes of its bound tensors.
///
/// Infers the extent of every plain index variable (from the dimensions it
/// directly indexes, either on a data tensor or on a metadata tensor),
/// verifies that all bindings agree, and splits variables into output vs
/// reduction sets.
///
/// # Errors
///
/// * [`LangError::UnboundTensor`] if a named tensor has no shape.
/// * [`LangError::RankMismatch`] if an access has the wrong arity.
/// * [`LangError::ExtentConflict`] if a variable is bound to two sizes.
/// * [`LangError::Unsupported`] for indirection nested deeper than one
///   level.
pub fn analyze(stmt: &Statement, shapes: &BTreeMap<String, Vec<usize>>) -> Result<Analysis> {
    let mut ctx = Ctx {
        shapes,
        extents: BTreeMap::new(),
        metadata: Vec::new(),
    };
    ctx.visit(&stmt.output, 0)?;
    for factor in &stmt.factors {
        ctx.visit(factor, 0)?;
    }
    let output_vars: Vec<String> = stmt.output_vars().into_iter().map(String::from).collect();
    let reduction_vars: Vec<String> = stmt
        .all_vars()
        .into_iter()
        .filter(|v| !output_vars.iter().any(|o| o == v))
        .map(String::from)
        .collect();
    // Every variable must have an extent (visit covers all accesses, so
    // this is an internal invariant rather than a user error).
    for v in output_vars.iter().chain(&reduction_vars) {
        debug_assert!(ctx.extents.contains_key(v), "variable {v} missing extent");
    }
    Ok(Analysis {
        extents: ctx.extents,
        output_vars,
        reduction_vars,
        metadata_tensors: ctx.metadata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn shapes(pairs: &[(&str, &[usize])]) -> BTreeMap<String, Vec<usize>> {
        pairs
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_vec()))
            .collect()
    }

    #[test]
    fn coo_spmm_extents() {
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let info = analyze(
            &stmt,
            &shapes(&[
                ("C", &[4, 8]),
                ("AM", &[7]),
                ("AV", &[7]),
                ("AK", &[7]),
                ("B", &[5, 8]),
            ]),
        )
        .unwrap();
        assert_eq!(info.extent("p"), Some(7));
        assert_eq!(info.extent("n"), Some(8));
        assert_eq!(info.output_vars, vec!["p", "n"]);
        assert!(info.reduction_vars.is_empty());
        assert_eq!(info.metadata_tensors, vec!["AM", "AK"]);
        assert_eq!(info.iteration_volume(), 56);
    }

    #[test]
    fn group_coo_spmm_reduction_var() {
        let stmt = parse("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]").unwrap();
        let info = analyze(
            &stmt,
            &shapes(&[
                ("C", &[4, 8]),
                ("AM", &[3]),
                ("AV", &[3, 2]),
                ("AK", &[3, 2]),
                ("B", &[5, 8]),
            ]),
        )
        .unwrap();
        assert_eq!(info.extent("q"), Some(2));
        assert_eq!(info.reduction_vars, vec!["q"]);
    }

    #[test]
    fn dense_matmul_reduction() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let info = analyze(
            &stmt,
            &shapes(&[("C", &[2, 4]), ("A", &[2, 3]), ("B", &[3, 4])]),
        )
        .unwrap();
        assert_eq!(info.output_vars, vec!["y", "x"]);
        assert_eq!(info.reduction_vars, vec!["r"]);
        assert_eq!(info.extent("r"), Some(3));
    }

    #[test]
    fn unbound_tensor_rejected() {
        let stmt = parse("C[i] = A[i]").unwrap();
        let err = analyze(&stmt, &shapes(&[("C", &[4])])).unwrap_err();
        assert_eq!(err, LangError::UnboundTensor("A".into()));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let stmt = parse("C[i,j] = A[i,j]").unwrap();
        let err = analyze(&stmt, &shapes(&[("C", &[4, 4]), ("A", &[4])])).unwrap_err();
        assert!(matches!(err, LangError::RankMismatch { .. }));
    }

    #[test]
    fn extent_conflict_rejected() {
        let stmt = parse("C[i] = A[i] * B[i]").unwrap();
        let err = analyze(&stmt, &shapes(&[("C", &[4]), ("A", &[4]), ("B", &[5])])).unwrap_err();
        assert!(matches!(err, LangError::ExtentConflict { .. }));
    }

    #[test]
    fn metadata_extent_binds_vars() {
        // p's extent comes from AM even though AV also constrains it.
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let err = analyze(
            &stmt,
            &shapes(&[
                ("C", &[4, 8]),
                ("AM", &[7]),
                ("AV", &[6]), // conflicts with AM's 7
                ("AK", &[7]),
                ("B", &[5, 8]),
            ]),
        )
        .unwrap_err();
        assert!(matches!(err, LangError::ExtentConflict { .. }));
    }

    #[test]
    fn nested_indirection_rejected() {
        let stmt = parse("C[i] += A[P[Q[i]]]").unwrap();
        let err = analyze(
            &stmt,
            &shapes(&[("C", &[4]), ("A", &[4]), ("P", &[4]), ("Q", &[4])]),
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Unsupported(_)));
    }

    #[test]
    fn sparse_conv_analysis() {
        let stmt =
            parse("Out[MAPX[p],q,m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]").unwrap();
        let info = analyze(
            &stmt,
            &shapes(&[
                ("Out", &[100, 4, 16]),
                ("MAPX", &[10]),
                ("MAPV", &[10, 4]),
                ("In", &[100, 32]),
                ("MAPY", &[10, 4]),
                ("Weight", &[27, 32, 16]),
                ("MAPZ", &[10]),
            ]),
        )
        .unwrap();
        assert_eq!(info.extent("p"), Some(10));
        assert_eq!(info.extent("q"), Some(4));
        assert_eq!(info.extent("c"), Some(32));
        assert_eq!(info.extent("m"), Some(16));
        assert_eq!(info.output_vars, vec!["p", "q", "m"]);
        assert_eq!(info.reduction_vars, vec!["c"]);
    }
}
