//! Tokenizer for indirect Einsum expressions.

use crate::error::LangError;
use crate::Result;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A tensor or index identifier.
    Ident(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+=`
    PlusEquals,
    /// `=`
    Equals,
}

/// Tokenize an indirect Einsum source string.
///
/// Identifiers are `[A-Za-z_][A-Za-z0-9_]*`; whitespace is skipped.
///
/// # Errors
///
/// Returns [`LangError::UnexpectedChar`] for any other character.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::PlusEquals);
                    i += 2;
                } else {
                    return Err(LangError::UnexpectedChar { ch: '+', pos: i });
                }
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            other => return Err(LangError::UnexpectedChar { ch: other, pos: i }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_spmm() {
        let toks = lex("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        assert_eq!(toks[0], Token::Ident("C".into()));
        assert_eq!(toks[1], Token::LBracket);
        assert!(toks.contains(&Token::PlusEquals));
        assert!(toks.contains(&Token::Star));
        assert_eq!(toks.iter().filter(|t| **t == Token::LBracket).count(), 5);
    }

    #[test]
    fn lex_assignment() {
        let toks = lex("C[i] = A[i]").unwrap();
        assert!(toks.contains(&Token::Equals));
        assert!(!toks.contains(&Token::PlusEquals));
    }

    #[test]
    fn lex_underscore_and_digits_in_idents() {
        let toks = lex("Out_2[x_1]").unwrap();
        assert_eq!(toks[0], Token::Ident("Out_2".into()));
        assert_eq!(toks[2], Token::Ident("x_1".into()));
    }

    #[test]
    fn lex_rejects_bad_chars() {
        assert!(matches!(
            lex("C[i] := A[i]"),
            Err(LangError::UnexpectedChar { ch: ':', .. })
        ));
        assert!(matches!(
            lex("C[i] + A[i]"),
            Err(LangError::UnexpectedChar { ch: '+', .. })
        ));
        assert!(matches!(
            lex("C[0]"),
            Err(LangError::UnexpectedChar { ch: '0', .. })
        ));
    }

    #[test]
    fn lex_whitespace_insensitive() {
        assert_eq!(
            lex("C[i]=A[i]").unwrap(),
            lex("  C [ i ] \n= A [ i ]  ").unwrap()
        );
    }
}
