//! Errors produced by the language front end.

use std::error::Error;
use std::fmt;

/// Error from lexing, parsing, or analyzing an indirect Einsum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// An unexpected character was encountered while lexing.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Byte position in the source string.
        pos: usize,
    },
    /// The token stream did not match the grammar.
    ParseError {
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
        /// Token position.
        pos: usize,
    },
    /// A tensor named in the expression was not bound to a shape.
    UnboundTensor(String),
    /// An index variable's extent could not be inferred or conflicts.
    ExtentConflict {
        /// The index variable.
        var: String,
        /// Details of the conflict.
        detail: String,
    },
    /// A tensor is accessed with the wrong number of indices.
    RankMismatch {
        /// The tensor name.
        tensor: String,
        /// Indices in the expression.
        indices: usize,
        /// Rank of the bound tensor.
        rank: usize,
    },
    /// The statement violates a structural rule (e.g. nested indirection).
    Unsupported(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::UnexpectedChar { ch, pos } => {
                write!(f, "unexpected character {ch:?} at byte {pos}")
            }
            LangError::ParseError {
                expected,
                found,
                pos,
            } => {
                write!(f, "expected {expected} but found {found} at token {pos}")
            }
            LangError::UnboundTensor(name) => {
                write!(f, "tensor {name:?} is not bound to a shape")
            }
            LangError::ExtentConflict { var, detail } => {
                write!(f, "extent conflict for index {var:?}: {detail}")
            }
            LangError::RankMismatch {
                tensor,
                indices,
                rank,
            } => {
                write!(
                    f,
                    "tensor {tensor:?} has rank {rank} but is accessed with {indices} indices"
                )
            }
            LangError::Unsupported(msg) => write!(f, "unsupported expression: {msg}"),
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LangError::RankMismatch {
            tensor: "A".into(),
            indices: 3,
            rank: 2,
        };
        assert!(e.to_string().contains("rank 2"));
        assert!(e.to_string().contains("3 indices"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LangError>();
    }
}
