//! Eager graph interpreter — the "PyTorch eager mode" of the reproduction.

use crate::error::GraphError;
use crate::ir::{Graph, Op};
use crate::Result;
use insum_tensor::{einsum, Tensor};
use std::collections::BTreeMap;

/// Execute a graph eagerly over the named input tensors, returning the
/// value of the graph's output node.
///
/// Inputs are looked up by placeholder name. Shapes are validated against
/// the shapes recorded at lowering time.
///
/// # Errors
///
/// * [`GraphError::MissingInput`] if a placeholder has no binding.
/// * [`GraphError::Malformed`] if a bound tensor's shape disagrees with
///   the graph.
/// * Tensor-level errors are propagated from the underlying operations.
pub fn execute(graph: &Graph, inputs: &BTreeMap<String, Tensor>) -> Result<Tensor> {
    let mut values: Vec<Option<Tensor>> = vec![None; graph.len()];
    for node in graph.nodes() {
        let value = match &node.op {
            Op::Placeholder { name } => {
                let t = inputs
                    .get(name)
                    .ok_or_else(|| GraphError::MissingInput(name.clone()))?;
                if t.shape() != node.shape.as_slice() {
                    return Err(GraphError::Malformed(format!(
                        "input {name:?} has shape {:?} but the graph expects {:?}",
                        t.shape(),
                        node.shape
                    )));
                }
                t.clone()
            }
            Op::Zeros => Tensor::zeros_with(node.shape.clone(), node.dtype),
            Op::IndexSelect { input, dim, index } => {
                let t = values[*input].as_ref().expect("topological order");
                let ix = values[*index].as_ref().expect("topological order");
                t.index_select(*dim, ix)?
            }
            Op::Reshape { input, shape } => values[*input]
                .as_ref()
                .expect("topological order")
                .reshape(shape.clone())?,
            Op::Einsum { spec, inputs: ins } => {
                let operands: Vec<&Tensor> = ins
                    .iter()
                    .map(|&i| values[i].as_ref().expect("topological order"))
                    .collect();
                einsum(spec, &operands)?
            }
            Op::IndexAdd {
                dest,
                dim,
                index,
                source,
            } => {
                let mut d = values[*dest].as_ref().expect("topological order").clone();
                let ix = values[*index].as_ref().expect("topological order");
                let s = values[*source].as_ref().expect("topological order");
                d.index_add(*dim, ix, s)?;
                d
            }
            Op::Add { lhs, rhs } => {
                let a = values[*lhs].as_ref().expect("topological order");
                let b = values[*rhs].as_ref().expect("topological order");
                a.add(b)?
            }
            Op::Cast { input, dtype } => values[*input]
                .as_ref()
                .expect("topological order")
                .cast(*dtype),
        };
        values[node.id] = Some(value);
    }
    values[graph.output]
        .take()
        .ok_or_else(|| GraphError::Malformed("graph has no output value".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, TensorMeta};
    use insum_lang::parse;
    use insum_tensor::DType;

    fn run(expr: &str, binds: &[(&str, Tensor)]) -> Result<Tensor> {
        let stmt = parse(expr).unwrap();
        let metas: BTreeMap<String, TensorMeta> = binds
            .iter()
            .map(|(n, t)| {
                (
                    n.to_string(),
                    TensorMeta::new(t.shape().to_vec(), t.dtype()),
                )
            })
            .collect();
        let lowered = lower(&stmt, &metas)?;
        let inputs: BTreeMap<String, Tensor> = binds
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect();
        execute(&lowered.graph, &inputs)
    }

    #[test]
    fn coo_spmm_matches_dense_reference() {
        // A (4x5) sparse with 3 nonzeros; B (5x2) dense.
        // A[0,1]=2, A[2,4]=3, A[0,3]=4.
        let am = Tensor::from_indices(vec![3], vec![0, 2, 0]).unwrap();
        let ak = Tensor::from_indices(vec![3], vec![1, 4, 3]).unwrap();
        let av = Tensor::from_vec(vec![3], vec![2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_fn(vec![5, 2], |i| (i[0] * 2 + i[1] + 1) as f32);
        let c = Tensor::zeros(vec![4, 2]);

        let got = run(
            "C[AM[p],n] += AV[p] * B[AK[p],n]",
            &[
                ("C", c),
                ("AM", am),
                ("AK", ak),
                ("AV", av),
                ("B", b.clone()),
            ],
        )
        .unwrap();

        // Dense reference.
        let mut a = Tensor::zeros(vec![4, 5]);
        a.set(&[0, 1], 2.0);
        a.set(&[2, 4], 3.0);
        a.set(&[0, 3], 4.0);
        let want = a.matmul(&b).unwrap();
        assert!(got.allclose(&want, 1e-5, 1e-5), "got {got:?} want {want:?}");
    }

    #[test]
    fn accumulate_adds_to_existing_output() {
        let am = Tensor::from_indices(vec![1], vec![1]).unwrap();
        let ak = Tensor::from_indices(vec![1], vec![0]).unwrap();
        let av = Tensor::from_vec(vec![1], vec![1.0]).unwrap();
        let b = Tensor::ones(vec![2, 2]);
        let c = Tensor::full(vec![3, 2], 10.0);
        let got = run(
            "C[AM[p],n] += AV[p] * B[AK[p],n]",
            &[("C", c), ("AM", am), ("AK", ak), ("AV", av), ("B", b)],
        )
        .unwrap();
        assert_eq!(got.at(&[1, 0]), 11.0);
        assert_eq!(got.at(&[0, 0]), 10.0);
    }

    #[test]
    fn scatter_collisions_accumulate() {
        // Two nonzeros scatter to the same output row.
        let am = Tensor::from_indices(vec![2], vec![0, 0]).unwrap();
        let ak = Tensor::from_indices(vec![2], vec![0, 1]).unwrap();
        let av = Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0]).unwrap();
        let c = Tensor::zeros(vec![1, 1]);
        let got = run(
            "C[AM[p],n] = AV[p] * B[AK[p],n]",
            &[("C", c), ("AM", am), ("AK", ak), ("AV", av), ("B", b)],
        )
        .unwrap();
        assert_eq!(got.at(&[0, 0]), 7.0);
    }

    #[test]
    fn group_coo_spmm_matches_reference() {
        // Groups of 2 along rows; padded entries have AV = 0 and AK = 0.
        // Nonzeros: (0,1)=2, (0,3)=4, (2,4)=3.
        let am = Tensor::from_indices(vec![2], vec![0, 2]).unwrap();
        let ak = Tensor::from_indices(vec![2, 2], vec![1, 3, 4, 0]).unwrap();
        let av = Tensor::from_vec(vec![2, 2], vec![2.0, 4.0, 3.0, 0.0]).unwrap();
        let b = Tensor::from_fn(vec![5, 3], |i| (i[0] + i[1]) as f32);
        let c = Tensor::zeros(vec![4, 3]);
        let got = run(
            "C[AM[p],n] += AV[p,q] * B[AK[p,q],n]",
            &[
                ("C", c),
                ("AM", am),
                ("AK", ak),
                ("AV", av),
                ("B", b.clone()),
            ],
        )
        .unwrap();
        let mut a = Tensor::zeros(vec![4, 5]);
        a.set(&[0, 1], 2.0);
        a.set(&[0, 3], 4.0);
        a.set(&[2, 4], 3.0);
        let want = a.matmul(&b).unwrap();
        assert!(got.allclose(&want, 1e-5, 1e-5));
    }

    #[test]
    fn dense_matmul_through_graph() {
        let a = Tensor::from_fn(vec![3, 4], |i| (i[0] + 2 * i[1]) as f32);
        let b = Tensor::from_fn(vec![4, 2], |i| (i[0] * i[1] + 1) as f32);
        let c = Tensor::zeros(vec![3, 2]);
        let got = run(
            "C[y,x] = A[y,r] * B[r,x]",
            &[("C", c), ("A", a.clone()), ("B", b.clone())],
        )
        .unwrap();
        assert!(got.allclose(&a.matmul(&b).unwrap(), 1e-5, 1e-5));
    }

    #[test]
    fn gather_on_rhs_inner_dim() {
        // C[y,x] = A[y,E[r]] * B[r,x] — the paper's §5.1 example.
        let a = Tensor::from_fn(vec![2, 6], |i| (i[0] * 6 + i[1]) as f32);
        let e = Tensor::from_indices(vec![3], vec![5, 0, 2]).unwrap();
        let b = Tensor::from_fn(vec![3, 2], |i| (i[0] + i[1] + 1) as f32);
        let c = Tensor::zeros(vec![2, 2]);
        let got = run(
            "C[y,x] = A[y,E[r]] * B[r,x]",
            &[
                ("C", c),
                ("A", a.clone()),
                ("E", e.clone()),
                ("B", b.clone()),
            ],
        )
        .unwrap();
        let atmp = a.index_select(1, &e).unwrap();
        let want = atmp.matmul(&b).unwrap();
        assert!(got.allclose(&want, 1e-5, 1e-5));
    }

    #[test]
    fn missing_input_is_reported() {
        let stmt = parse("C[i] = A[i]").unwrap();
        let metas: BTreeMap<String, TensorMeta> = [
            ("C".to_string(), TensorMeta::new(vec![2], DType::F32)),
            ("A".to_string(), TensorMeta::new(vec![2], DType::F32)),
        ]
        .into_iter()
        .collect();
        let lowered = lower(&stmt, &metas).unwrap();
        let only_c: BTreeMap<String, Tensor> = [("C".to_string(), Tensor::zeros(vec![2]))]
            .into_iter()
            .collect();
        assert!(matches!(
            execute(&lowered.graph, &only_c),
            Err(GraphError::MissingInput(name)) if name == "A"
        ));
    }

    #[test]
    fn wrong_shape_input_is_reported() {
        let stmt = parse("C[i] = A[i]").unwrap();
        let metas: BTreeMap<String, TensorMeta> = [
            ("C".to_string(), TensorMeta::new(vec![2], DType::F32)),
            ("A".to_string(), TensorMeta::new(vec![2], DType::F32)),
        ]
        .into_iter()
        .collect();
        let lowered = lower(&stmt, &metas).unwrap();
        let inputs: BTreeMap<String, Tensor> = [
            ("C".to_string(), Tensor::zeros(vec![2])),
            ("A".to_string(), Tensor::zeros(vec![3])),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            execute(&lowered.graph, &inputs),
            Err(GraphError::Malformed(_))
        ));
    }

    #[test]
    fn equivariant_style_four_factor_product() {
        // Z[b,CGI[p],w] += CGV[p] * X[b,CGJ[p],u] * Y[b,CGK[p]] * W[p,u,w]
        let b_sz = 2;
        let (i_dim, j_dim, k_dim) = (3, 4, 5);
        let (p_sz, u_sz, w_sz) = (6, 2, 3);
        let cgi = Tensor::from_indices(vec![p_sz], vec![0, 1, 2, 0, 1, 2]).unwrap();
        let cgj = Tensor::from_indices(vec![p_sz], vec![0, 1, 2, 3, 0, 1]).unwrap();
        let cgk = Tensor::from_indices(vec![p_sz], vec![0, 1, 2, 3, 4, 0]).unwrap();
        let cgv = Tensor::from_vec(vec![p_sz], vec![0.5, 1.0, -1.0, 2.0, 0.25, 1.5]).unwrap();
        let x = Tensor::from_fn(vec![b_sz, j_dim, u_sz], |i| {
            (i[0] + i[1] + i[2]) as f32 * 0.1
        });
        let y = Tensor::from_fn(vec![b_sz, k_dim], |i| (i[0] * 2 + i[1]) as f32 * 0.2);
        let w = Tensor::from_fn(vec![p_sz, u_sz, w_sz], |i| {
            (i[0] + i[1] * i[2]) as f32 * 0.3
        });
        let z = Tensor::zeros(vec![b_sz, i_dim, w_sz]);

        let got = run(
            "Z[b,CGI[p],w] += CGV[p] * X[b,CGJ[p],u] * Y[b,CGK[p]] * W[p,u,w]",
            &[
                ("Z", z),
                ("CGI", cgi.clone()),
                ("CGJ", cgj.clone()),
                ("CGK", cgk.clone()),
                ("CGV", cgv.clone()),
                ("X", x.clone()),
                ("Y", y.clone()),
                ("W", w.clone()),
            ],
        )
        .unwrap();

        // Hand-rolled reference.
        let mut want = Tensor::zeros(vec![b_sz, i_dim, w_sz]);
        for b in 0..b_sz {
            for p in 0..p_sz {
                for u in 0..u_sz {
                    for wi in 0..w_sz {
                        let i = cgi.at_i64(&[p]) as usize;
                        let j = cgj.at_i64(&[p]) as usize;
                        let k = cgk.at_i64(&[p]) as usize;
                        let v = want.at(&[b, i, wi])
                            + cgv.at(&[p]) * x.at(&[b, j, u]) * y.at(&[b, k]) * w.at(&[p, u, wi]);
                        want.set(&[b, i, wi], v);
                    }
                }
            }
        }
        assert!(got.allclose(&want, 1e-4, 1e-4));
    }
}
