//! Lowering indirect Einsum statements to operation graphs.
//!
//! This is the Insum rewriter of §5.1: indirect accesses on the right-hand
//! side become `index_select` gathers (flattening multi-variable metadata
//! tensors first), the residual dense contraction becomes a single
//! `einsum`, and an indirect output access becomes an `index_add` scatter.

use crate::error::GraphError;
use crate::ir::{Graph, NodeId, Op};
use crate::Result;
use insum_lang::{analyze, Access, Analysis, AssignOp, IndexExpr, Statement};
use insum_tensor::DType;
use std::collections::BTreeMap;

/// Shape and dtype of a tensor bound to a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorMeta {
    /// The tensor's shape.
    pub shape: Vec<usize>,
    /// The tensor's dtype.
    pub dtype: DType,
}

impl TensorMeta {
    /// Convenience constructor.
    pub fn new(shape: Vec<usize>, dtype: DType) -> TensorMeta {
        TensorMeta { shape, dtype }
    }
}

/// The result of lowering a statement.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The operation graph; its `output` node evaluates the statement.
    pub graph: Graph,
    /// Extent/classification analysis of the statement.
    pub analysis: Analysis,
    /// The dense einsum spec at the heart of the graph.
    pub spec: String,
    /// Name of the output tensor (the statement's left-hand side).
    pub output_name: String,
}

struct LowerCtx<'a> {
    graph: Graph,
    metas: &'a BTreeMap<String, TensorMeta>,
    placeholders: BTreeMap<String, NodeId>,
    letters: BTreeMap<String, char>,
    extents: BTreeMap<String, usize>,
}

impl LowerCtx<'_> {
    fn placeholder(&mut self, name: &str) -> Result<NodeId> {
        if let Some(&id) = self.placeholders.get(name) {
            return Ok(id);
        }
        let meta = self
            .metas
            .get(name)
            .ok_or_else(|| GraphError::MissingInput(name.to_string()))?;
        let id = self.graph.placeholder(name, meta.shape.clone(), meta.dtype);
        self.placeholders.insert(name.to_string(), id);
        Ok(id)
    }

    fn letter(&self, var: &str) -> char {
        self.letters[var]
    }

    fn extent(&self, var: &str) -> usize {
        self.extents[var]
    }

    /// Flattened metadata index node for an indirect access, plus its
    /// variable list.
    fn flat_index(&mut self, meta_access: &Access) -> Result<(NodeId, Vec<String>)> {
        let node = self.placeholder(&meta_access.tensor)?;
        let vars: Vec<String> = meta_access.vars().into_iter().map(String::from).collect();
        let shape = self.graph.node(node).shape.clone();
        let flat = if shape.len() == 1 {
            node
        } else {
            let vol: usize = shape.iter().product();
            self.graph.push(Op::Reshape {
                input: node,
                shape: vec![vol],
            })?
        };
        Ok((flat, vars))
    }

    /// Lower one right-hand-side access: an `index_select` gather per
    /// indirect dim, then one reshape expanding flattened dims. Returns
    /// the operand node and its einsum term.
    fn lower_factor(&mut self, access: &Access) -> Result<(NodeId, String)> {
        let mut node = self.placeholder(&access.tensor)?;
        // Per-dim variable lists (one var for plain dims, the metadata's
        // vars for indirect dims).
        let mut dim_vars: Vec<Vec<String>> = Vec::with_capacity(access.indices.len());
        let mut needs_expand = false;
        for (dim, idx) in access.indices.iter().enumerate() {
            match idx {
                IndexExpr::Var(v) => dim_vars.push(vec![v.clone()]),
                IndexExpr::Indirect(meta) => {
                    let (flat, vars) = self.flat_index(meta)?;
                    node = self.graph.push(Op::IndexSelect {
                        input: node,
                        dim,
                        index: flat,
                    })?;
                    if vars.len() > 1 {
                        needs_expand = true;
                    }
                    dim_vars.push(vars);
                }
            }
        }
        if needs_expand {
            let expanded: Vec<usize> = dim_vars
                .iter()
                .flat_map(|vars| vars.iter().map(|v| self.extent(v)))
                .collect();
            node = self.graph.push(Op::Reshape {
                input: node,
                shape: expanded,
            })?;
        }
        let term: String = dim_vars.iter().flatten().map(|v| self.letter(v)).collect();
        Ok((node, term))
    }
}

/// Lower a parsed statement to an operation graph.
///
/// # Errors
///
/// * Propagates [`insum_lang::LangError`]s from analysis (unbound tensors,
///   rank mismatches, extent conflicts).
/// * [`GraphError::Unsupported`] if the output access has more than one
///   indirect dimension or repeats an index variable.
pub fn lower(stmt: &Statement, metas: &BTreeMap<String, TensorMeta>) -> Result<Lowered> {
    let shapes: BTreeMap<String, Vec<usize>> = metas
        .iter()
        .map(|(k, v)| (k.clone(), v.shape.clone()))
        .collect();
    let analysis = analyze(stmt, &shapes)?;

    // Assign einsum letters in first-appearance order.
    let letters: BTreeMap<String, char> = stmt
        .all_vars()
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let c = (b'a' + i as u8) as char;
            (v.to_string(), c)
        })
        .collect();
    if letters.len() > 26 {
        return Err(GraphError::Unsupported(
            "more than 26 index variables".to_string(),
        ));
    }

    let mut ctx = LowerCtx {
        graph: Graph::new(),
        metas,
        placeholders: BTreeMap::new(),
        letters,
        extents: analysis.extents.clone(),
    };

    // The output placeholder comes first so `+=` reads the original value.
    let out_name = stmt.output.tensor.clone();
    let out_node = ctx.placeholder(&out_name)?;
    let out_dtype = ctx.graph.node(out_node).dtype;

    // Lower every factor to (operand node, einsum term).
    let mut operand_nodes = Vec::new();
    let mut terms = Vec::new();
    for factor in &stmt.factors {
        let (node, term) = ctx.lower_factor(factor)?;
        operand_nodes.push(node);
        terms.push(term);
    }

    // Build the output term and locate the scatter dim (if any).
    let mut out_term = String::new();
    let mut scatter: Option<(usize, &Access)> = None;
    for (dim, idx) in stmt.output.indices.iter().enumerate() {
        match idx {
            IndexExpr::Var(v) => out_term.push(ctx.letter(v)),
            IndexExpr::Indirect(meta) => {
                if scatter.is_some() {
                    return Err(GraphError::Unsupported(
                        "more than one indirect dimension in the output access".to_string(),
                    ));
                }
                scatter = Some((dim, meta));
                for v in meta.vars() {
                    out_term.push(ctx.letter(v));
                }
            }
        }
    }
    {
        let mut seen = std::collections::HashSet::new();
        for c in out_term.chars() {
            if !seen.insert(c) {
                return Err(GraphError::Unsupported(format!(
                    "output access repeats index variable {c:?}"
                )));
            }
        }
    }

    let spec = format!("{}->{}", terms.join(","), out_term);
    let mut result = ctx.graph.push(Op::Einsum {
        spec: spec.clone(),
        inputs: operand_nodes,
    })?;

    match scatter {
        Some((dim, meta)) => {
            let meta_vars: Vec<String> = meta.vars().into_iter().map(String::from).collect();
            if meta_vars.len() > 1 {
                // Flatten the scatter vars (consecutive in the out term by
                // construction) back into a single dim.
                let mut shape: Vec<usize> = Vec::new();
                for (d, idx) in stmt.output.indices.iter().enumerate() {
                    match idx {
                        IndexExpr::Var(v) => shape.push(ctx.extent(v)),
                        IndexExpr::Indirect(_) => {
                            debug_assert_eq!(d, dim);
                            shape.push(meta_vars.iter().map(|v| ctx.extent(v)).product());
                        }
                    }
                }
                result = ctx.graph.push(Op::Reshape {
                    input: result,
                    shape,
                })?;
            }
            if ctx.graph.node(result).dtype != out_dtype {
                result = ctx.graph.push(Op::Cast {
                    input: result,
                    dtype: out_dtype,
                })?;
            }
            let (flat_index, _) = ctx.flat_index(meta)?;
            let dest = match stmt.op {
                AssignOp::Accumulate => out_node,
                AssignOp::Assign => {
                    let meta_out = &metas[&out_name];
                    ctx.graph.zeros(meta_out.shape.clone(), meta_out.dtype)
                }
            };
            result = ctx.graph.push(Op::IndexAdd {
                dest,
                dim,
                index: flat_index,
                source: result,
            })?;
        }
        None => {
            if ctx.graph.node(result).dtype != out_dtype {
                result = ctx.graph.push(Op::Cast {
                    input: result,
                    dtype: out_dtype,
                })?;
            }
            if stmt.op == AssignOp::Accumulate {
                result = ctx.graph.push(Op::Add {
                    lhs: out_node,
                    rhs: result,
                })?;
            }
        }
    }

    let mut graph = ctx.graph;
    graph.output = result;
    Ok(Lowered {
        graph,
        analysis,
        spec,
        output_name: out_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_lang::parse;

    fn metas(pairs: &[(&str, &[usize], DType)]) -> BTreeMap<String, TensorMeta> {
        pairs
            .iter()
            .map(|(n, s, d)| (n.to_string(), TensorMeta::new(s.to_vec(), *d)))
            .collect()
    }

    #[test]
    fn coo_spmm_lowers_to_gather_einsum_scatter() {
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let m = metas(&[
            ("C", &[4, 8], DType::F32),
            ("AM", &[7], DType::I32),
            ("AV", &[7], DType::F32),
            ("AK", &[7], DType::I32),
            ("B", &[5, 8], DType::F32),
        ]);
        let lowered = lower(&stmt, &m).unwrap();
        assert_eq!(lowered.spec, "a,ab->ab");
        let ops: Vec<&str> = lowered
            .graph
            .nodes()
            .iter()
            .map(|n| match &n.op {
                Op::Placeholder { .. } => "ph",
                Op::IndexSelect { .. } => "gather",
                Op::Einsum { .. } => "einsum",
                Op::IndexAdd { .. } => "scatter",
                Op::Reshape { .. } => "reshape",
                _ => "other",
            })
            .collect();
        assert!(ops.contains(&"gather"));
        assert!(ops.contains(&"einsum"));
        assert!(ops.contains(&"scatter"));
        assert_eq!(lowered.graph.node(lowered.graph.output).shape, vec![4, 8]);
    }

    #[test]
    fn group_coo_expands_flattened_gather() {
        let stmt = parse("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]").unwrap();
        let m = metas(&[
            ("C", &[4, 8], DType::F32),
            ("AM", &[3], DType::I32),
            ("AV", &[3, 2], DType::F32),
            ("AK", &[3, 2], DType::I32),
            ("B", &[5, 8], DType::F32),
        ]);
        let lowered = lower(&stmt, &m).unwrap();
        // Letters: p=a, n=b, q=c. AV term "ac"; B gathered by AK[p,q]
        // then expanded gives "acb"; output "ab".
        assert_eq!(lowered.spec, "ac,acb->ab");
        // A reshape must expand B's gathered dim from 6 to (3, 2).
        assert!(lowered
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(&n.op, Op::Reshape { shape, .. } if shape == &vec![3, 2, 8])));
    }

    #[test]
    fn dense_matmul_has_no_gathers() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let m = metas(&[
            ("C", &[2, 4], DType::F32),
            ("A", &[2, 3], DType::F32),
            ("B", &[3, 4], DType::F32),
        ]);
        let lowered = lower(&stmt, &m).unwrap();
        assert_eq!(lowered.spec, "ac,cb->ab");
        assert!(!lowered
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, Op::IndexSelect { .. } | Op::IndexAdd { .. })));
    }

    #[test]
    fn dense_accumulate_adds_existing_output() {
        let stmt = parse("C[i] += A[i]").unwrap();
        let m = metas(&[("C", &[4], DType::F32), ("A", &[4], DType::F32)]);
        let lowered = lower(&stmt, &m).unwrap();
        assert!(lowered
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, Op::Add { .. })));
    }

    #[test]
    fn assign_scatter_starts_from_zeros() {
        let stmt = parse("C[AM[p],n] = AV[p] * B[AK[p],n]").unwrap();
        let m = metas(&[
            ("C", &[4, 8], DType::F32),
            ("AM", &[7], DType::I32),
            ("AV", &[7], DType::F32),
            ("AK", &[7], DType::I32),
            ("B", &[5, 8], DType::F32),
        ]);
        let lowered = lower(&stmt, &m).unwrap();
        assert!(lowered
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, Op::Zeros)));
    }

    #[test]
    fn multi_var_output_scatter_flattens() {
        // Z[b, CGI[p,q], w] has a 2-var scatter index.
        let stmt = parse("Z[b,CGI[p,q],w] += CGV[p,q] * X[b,CGJ[p,q],u] * W[p,u,w]").unwrap();
        let m = metas(&[
            ("Z", &[2, 5, 3], DType::F32),
            ("CGI", &[4, 2], DType::I32),
            ("CGV", &[4, 2], DType::F32),
            ("X", &[2, 6, 4], DType::F32),
            ("CGJ", &[4, 2], DType::I32),
            ("W", &[4, 4, 3], DType::F32),
        ]);
        let lowered = lower(&stmt, &m).unwrap();
        // Letters in all_vars order: b=a, p=b, q=c, w=d, u=e.
        assert_eq!(lowered.spec, "bc,abce,bed->abcd");
        // The scatter source must be reshaped to flatten (p, q) -> 8.
        assert!(lowered
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(&n.op, Op::Reshape { shape, .. } if shape == &vec![2, 8, 3])));
        assert_eq!(
            lowered.graph.node(lowered.graph.output).shape,
            vec![2, 5, 3]
        );
    }

    #[test]
    fn two_indirect_output_dims_unsupported() {
        let stmt = parse("C[AM[p],AK[p]] += AV[p]").unwrap();
        let m = metas(&[
            ("C", &[4, 4], DType::F32),
            ("AM", &[7], DType::I32),
            ("AK", &[7], DType::I32),
            ("AV", &[7], DType::F32),
        ]);
        assert!(matches!(lower(&stmt, &m), Err(GraphError::Unsupported(_))));
    }

    #[test]
    fn f16_output_inserts_cast_when_inputs_mixed() {
        let stmt = parse("C[i,j] = A[i,k] * B[k,j]").unwrap();
        let m = metas(&[
            ("C", &[2, 2], DType::F16),
            ("A", &[2, 2], DType::F16),
            ("B", &[2, 2], DType::F32),
        ]);
        let lowered = lower(&stmt, &m).unwrap();
        assert!(lowered
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, Op::Cast { .. })));
    }
}
