//! FX-like tensor operation graph and the Insum rewriter (§5.1).
//!
//! The paper's `Insum` front end parses an indirect Einsum string and emits
//! an FX graph built from stock PyTorch primitives:
//!
//! 1. **Gather** — indirect right-hand-side accesses become
//!    `torch.index_select` over a flattened metadata tensor;
//! 2. **Einsum** — the remaining dense contraction becomes `torch.einsum`;
//! 3. **Scatter** — an indirect output access becomes `torch.index_add_`
//!    (duplicate coordinates accumulate).
//!
//! This crate reproduces that pipeline: [`lower`] turns a parsed
//! [`insum_lang::Statement`] into a [`Graph`] of [`Op`]s, and [`execute`]
//! interprets the graph eagerly on [`insum_tensor::Tensor`]s. Eager
//! execution is the *semantics reference* for the whole stack — the
//! compiled GPU kernels produced by `insum-inductor` are tested against it,
//! and it itself is tested against direct dense einsums.

mod error;
mod exec;
mod ir;
mod lower;

pub use error::GraphError;
pub use exec::execute;
pub use ir::{Graph, Node, NodeId, Op};
pub use lower::{lower, Lowered, TensorMeta};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
