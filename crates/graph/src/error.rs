//! Error type for graph construction and execution.

use insum_lang::LangError;
use insum_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error from lowering a statement to a graph or executing one.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Error bubbled up from the language front end.
    Lang(LangError),
    /// Error bubbled up from a tensor operation.
    Tensor(TensorError),
    /// A graph input was not provided at execution time.
    MissingInput(String),
    /// The statement cannot be compiled by this backend.
    Unsupported(String),
    /// The graph is structurally invalid (dangling node reference, etc.).
    Malformed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Lang(e) => write!(f, "language error: {e}"),
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
            GraphError::MissingInput(name) => write!(f, "input tensor {name:?} was not provided"),
            GraphError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            GraphError::Malformed(msg) => write!(f, "malformed graph: {msg}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Lang(e) => Some(e),
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for GraphError {
    fn from(e: LangError) -> Self {
        GraphError::Lang(e)
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = GraphError::from(LangError::UnboundTensor("A".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("A"));
    }
}
