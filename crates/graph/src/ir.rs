//! The operation graph (FX graph analogue).

use crate::error::GraphError;
use crate::Result;
use insum_tensor::{DType, EinsumSpec};
use std::fmt;

/// Identifier of a node within its [`Graph`].
pub type NodeId = usize;

/// A tensor operation. The op set intentionally mirrors the PyTorch
/// primitives the paper's rewriter emits (§5.1) plus the few structural
/// ops the lowering needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A graph input bound by name at execution time.
    Placeholder {
        /// Name used to look up the tensor in the input map.
        name: String,
    },
    /// A constant zero tensor (used as the destination of `=` statements).
    Zeros,
    /// `torch.index_select(input, dim, index)` — gather slices along `dim`.
    IndexSelect {
        /// The data tensor.
        input: NodeId,
        /// Dimension gathered over.
        dim: usize,
        /// 1-D index tensor node.
        index: NodeId,
    },
    /// `tensor.reshape(shape)`.
    Reshape {
        /// The input tensor.
        input: NodeId,
        /// Target shape (same volume).
        shape: Vec<usize>,
    },
    /// `torch.einsum(spec, inputs...)`.
    Einsum {
        /// The einsum specification, e.g. `"ar,rx->ax"`.
        spec: String,
        /// Operand nodes, one per spec term.
        inputs: Vec<NodeId>,
    },
    /// `dest.index_add_(dim, index, source)` — functional: returns the
    /// updated tensor; duplicate indices accumulate.
    IndexAdd {
        /// The tensor being scattered into.
        dest: NodeId,
        /// Dimension scattered along.
        dim: usize,
        /// 1-D index tensor node.
        index: NodeId,
        /// Source rows.
        source: NodeId,
    },
    /// Elementwise addition (used for dense `+=` outputs).
    Add {
        /// Left operand.
        lhs: NodeId,
        /// Right operand.
        rhs: NodeId,
    },
    /// Cast to a dtype (rounding through f16 when applicable).
    Cast {
        /// The input tensor.
        input: NodeId,
        /// Target dtype.
        dtype: DType,
    },
}

impl Op {
    /// Node ids this op reads.
    pub fn inputs(&self) -> Vec<NodeId> {
        match self {
            Op::Placeholder { .. } | Op::Zeros => vec![],
            Op::IndexSelect { input, index, .. } => vec![*input, *index],
            Op::Reshape { input, .. } | Op::Cast { input, .. } => vec![*input],
            Op::Einsum { inputs, .. } => inputs.clone(),
            Op::IndexAdd {
                dest,
                index,
                source,
                ..
            } => vec![*dest, *index, *source],
            Op::Add { lhs, rhs } => vec![*lhs, *rhs],
        }
    }
}

/// A node: an op plus its inferred result shape and dtype.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// This node's id (its position in the graph).
    pub id: NodeId,
    /// The operation.
    pub op: Op,
    /// Result shape.
    pub shape: Vec<usize>,
    /// Result dtype.
    pub dtype: DType,
}

/// A directed acyclic graph of tensor operations in topological order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// The node whose value is the statement's result.
    pub output: NodeId,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// All nodes in topological (insertion) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Look up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a node, inferring its shape and dtype from its operands.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Malformed`] on dangling references and
    /// propagates shape errors from inference.
    pub fn push(&mut self, op: Op) -> Result<NodeId> {
        let id = self.nodes.len();
        for input in op.inputs() {
            if input >= id {
                return Err(GraphError::Malformed(format!(
                    "node {id} references later node {input}"
                )));
            }
        }
        let (shape, dtype) = self.infer(&op)?;
        self.nodes.push(Node {
            id,
            op,
            shape,
            dtype,
        });
        Ok(id)
    }

    /// Append a placeholder with an explicit shape and dtype.
    pub fn placeholder(&mut self, name: &str, shape: Vec<usize>, dtype: DType) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            op: Op::Placeholder {
                name: name.to_string(),
            },
            shape,
            dtype,
        });
        id
    }

    /// Append a zeros node with an explicit shape and dtype.
    pub fn zeros(&mut self, shape: Vec<usize>, dtype: DType) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            op: Op::Zeros,
            shape,
            dtype,
        });
        id
    }

    fn infer(&self, op: &Op) -> Result<(Vec<usize>, DType)> {
        Ok(match op {
            Op::Placeholder { name } => {
                return Err(GraphError::Malformed(format!(
                    "placeholder {name:?} must be added via Graph::placeholder"
                )))
            }
            Op::Zeros => {
                return Err(GraphError::Malformed(
                    "zeros must be added via Graph::zeros".to_string(),
                ))
            }
            Op::IndexSelect { input, dim, index } => {
                let t = self.node(*input);
                let ix = self.node(*index);
                if *dim >= t.shape.len() || ix.shape.len() != 1 {
                    return Err(GraphError::Malformed(format!(
                        "index_select dim {dim} on shape {:?} with index shape {:?}",
                        t.shape, ix.shape
                    )));
                }
                let mut shape = t.shape.clone();
                shape[*dim] = ix.shape[0];
                (shape, t.dtype)
            }
            Op::Reshape { input, shape } => {
                let t = self.node(*input);
                let vol: usize = shape.iter().product();
                if vol != t.shape.iter().product::<usize>() {
                    return Err(GraphError::Malformed(format!(
                        "reshape {:?} -> {:?} changes volume",
                        t.shape, shape
                    )));
                }
                (shape.clone(), t.dtype)
            }
            Op::Einsum { spec, inputs } => {
                let parsed = EinsumSpec::parse(spec).map_err(GraphError::Tensor)?;
                if parsed.inputs.len() != inputs.len() {
                    return Err(GraphError::Malformed(format!(
                        "einsum {spec:?} expects {} operands, got {}",
                        parsed.inputs.len(),
                        inputs.len()
                    )));
                }
                let mut extents = std::collections::BTreeMap::new();
                for (term, &nid) in parsed.inputs.iter().zip(inputs) {
                    let t = self.node(nid);
                    if term.len() != t.shape.len() {
                        return Err(GraphError::Malformed(format!(
                            "einsum term {:?} does not match operand shape {:?}",
                            term.iter().collect::<String>(),
                            t.shape
                        )));
                    }
                    for (&c, &d) in term.iter().zip(&t.shape) {
                        if let Some(&prev) = extents.get(&c) {
                            if prev != d {
                                return Err(GraphError::Malformed(format!(
                                    "einsum index {c} bound to {prev} and {d}"
                                )));
                            }
                        }
                        extents.insert(c, d);
                    }
                }
                let shape: Vec<usize> = parsed.output.iter().map(|c| extents[c]).collect();
                let dtype = if inputs.iter().all(|&i| self.node(i).dtype == DType::F16) {
                    DType::F16
                } else {
                    DType::F32
                };
                (shape, dtype)
            }
            Op::IndexAdd {
                dest,
                dim,
                index,
                source,
            } => {
                let d = self.node(*dest);
                let ix = self.node(*index);
                let s = self.node(*source);
                if *dim >= d.shape.len()
                    || ix.shape.len() != 1
                    || s.shape.len() != d.shape.len()
                    || s.shape[*dim] != ix.shape[0]
                {
                    return Err(GraphError::Malformed(format!(
                        "index_add dim {dim}: dest {:?}, index {:?}, source {:?}",
                        d.shape, ix.shape, s.shape
                    )));
                }
                for (i, (&ds, &ss)) in d.shape.iter().zip(&s.shape).enumerate() {
                    if i != *dim && ds != ss {
                        return Err(GraphError::Malformed(format!(
                            "index_add non-scatter dim {i} mismatch: dest {:?} vs source {:?}",
                            d.shape, s.shape
                        )));
                    }
                }
                (d.shape.clone(), d.dtype)
            }
            Op::Add { lhs, rhs } => {
                let a = self.node(*lhs);
                let b = self.node(*rhs);
                if a.shape != b.shape {
                    return Err(GraphError::Malformed(format!(
                        "add shape mismatch {:?} vs {:?}",
                        a.shape, b.shape
                    )));
                }
                (a.shape.clone(), a.dtype)
            }
            Op::Cast { input, dtype } => (self.node(*input).shape.clone(), *dtype),
        })
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph(output = %{}):", self.output)?;
        for n in &self.nodes {
            writeln!(f, "  %{} : {:?}/{} = {:?}", n.id, n.shape, n.dtype, n.op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_gather_einsum_scatter() {
        let mut g = Graph::new();
        let a = g.placeholder("A", vec![4, 8], DType::F32);
        let idx = g.placeholder("I", vec![3], DType::I32);
        let sel = g
            .push(Op::IndexSelect {
                input: a,
                dim: 0,
                index: idx,
            })
            .unwrap();
        assert_eq!(g.node(sel).shape, vec![3, 8]);
        let b = g.placeholder("B", vec![8, 5], DType::F32);
        let mm = g
            .push(Op::Einsum {
                spec: "pr,rx->px".into(),
                inputs: vec![sel, b],
            })
            .unwrap();
        assert_eq!(g.node(mm).shape, vec![3, 5]);
        let dest = g.zeros(vec![10, 5], DType::F32);
        let out = g
            .push(Op::IndexAdd {
                dest,
                dim: 0,
                index: idx,
                source: mm,
            })
            .unwrap();
        g.output = out;
        assert_eq!(g.node(out).shape, vec![10, 5]);
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn shape_inference_catches_errors() {
        let mut g = Graph::new();
        let a = g.placeholder("A", vec![4, 8], DType::F32);
        let idx2d = g.placeholder("I", vec![3, 2], DType::I32);
        assert!(g
            .push(Op::IndexSelect {
                input: a,
                dim: 0,
                index: idx2d
            })
            .is_err());
        assert!(g
            .push(Op::Reshape {
                input: a,
                shape: vec![5, 5]
            })
            .is_err());
        let b = g.placeholder("B", vec![9, 5], DType::F32);
        assert!(g
            .push(Op::Einsum {
                spec: "pr,rx->px".into(),
                inputs: vec![a, b]
            })
            .is_err());
    }

    #[test]
    fn dangling_reference_rejected() {
        let mut g = Graph::new();
        assert!(g
            .push(Op::Reshape {
                input: 7,
                shape: vec![]
            })
            .is_err());
    }

    #[test]
    fn einsum_dtype_promotion() {
        let mut g = Graph::new();
        let a = g.placeholder("A", vec![2, 2], DType::F16);
        let b = g.placeholder("B", vec![2, 2], DType::F16);
        let c = g
            .push(Op::Einsum {
                spec: "ik,kj->ij".into(),
                inputs: vec![a, b],
            })
            .unwrap();
        assert_eq!(g.node(c).dtype, DType::F16);
        let d = g.placeholder("D", vec![2, 2], DType::F32);
        let e = g
            .push(Op::Einsum {
                spec: "ik,kj->ij".into(),
                inputs: vec![a, d],
            })
            .unwrap();
        assert_eq!(g.node(e).dtype, DType::F32);
    }

    #[test]
    fn display_lists_nodes() {
        let mut g = Graph::new();
        g.placeholder("A", vec![2], DType::F32);
        let s = g.to_string();
        assert!(s.contains("%0"));
        assert!(s.contains("Placeholder"));
    }
}
