//! The chain specification: operands, index terms, and the output term.

use crate::error::PlannerError;
use crate::Result;
use insum_lang::{AssignOp, IndexExpr, Statement};
use insum_tensor::EinsumSpec;
use std::collections::BTreeMap;

/// Maximum distinct index names per chain (the pairwise reference path
/// maps indices onto single letters, and the order search packs them
/// into a 64-bit set; 52 keeps both honest).
pub const MAX_INDICES: usize = 52;

/// Maximum operands per chain (the order search packs the operand set
/// into a 64-bit mask).
pub const MAX_OPERANDS: usize = 64;

/// One chain operand: a tensor name and its ordered index term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operand {
    /// Tensor name the executor binds (auto-generated `op0`, `op1`, …
    /// for spec-form chains).
    pub name: String,
    /// Index names, one per dimension, no repeats.
    pub indices: Vec<String>,
}

/// A validated multi-operand contraction spec — the index graph the
/// planner searches over.
///
/// Built from an `ij,jk,kl->il`-style string ([`ChainSpec::parse`]) or
/// from a dense multi-factor statement ([`ChainSpec::from_statement`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    /// The operands, in source order.
    pub operands: Vec<Operand>,
    /// The output index term (may be empty: a full reduction to a
    /// scalar, expressible only in spec form).
    pub output: Vec<String>,
    /// Tensor name of the chain output (`out` for spec-form chains).
    pub output_name: String,
    /// How the final step combines into the output binding.
    pub op: AssignOp,
}

impl ChainSpec {
    /// Parse an `ij,jk,kl->il`-style spec with any number of operands.
    /// Operands are named `op0`, `op1`, …; the output is named `out`.
    ///
    /// # Errors
    ///
    /// [`PlannerError::Spec`] for malformed specs (missing `->`, empty
    /// terms, non-alphabetic letters, repeated or unbound output
    /// letters); [`PlannerError::Unsupported`] for diagonal terms
    /// (an index repeated within one operand).
    pub fn parse(spec: &str) -> Result<ChainSpec> {
        let parsed = EinsumSpec::parse(spec).map_err(|e| PlannerError::Spec(e.to_string()))?;
        let operands = parsed
            .inputs
            .iter()
            .enumerate()
            .map(|(i, term)| Operand {
                name: format!("op{i}"),
                indices: term.iter().map(|c| c.to_string()).collect(),
            })
            .collect();
        let chain = ChainSpec {
            operands,
            output: parsed.output.iter().map(|c| c.to_string()).collect(),
            output_name: "out".to_string(),
            op: AssignOp::Assign,
        };
        chain.validate()?;
        Ok(chain)
    }

    /// Build a chain spec from a parsed dense statement such as
    /// `O[i,m] = A[i,j] * B[j,k] * C[k,m]`.
    ///
    /// # Errors
    ///
    /// [`PlannerError::Unsupported`] if any access is indirect, repeats
    /// an index, or is rank-0; [`PlannerError::Spec`] if an output index
    /// is bound by no factor.
    pub fn from_statement(stmt: &Statement) -> Result<ChainSpec> {
        let term_of = |access: &insum_lang::Access| -> Result<Vec<String>> {
            if access.has_indirection() {
                return Err(PlannerError::Unsupported(format!(
                    "indirect access {access} cannot be chain-planned"
                )));
            }
            let vars: Vec<String> = access
                .indices
                .iter()
                .map(|idx| match idx {
                    IndexExpr::Var(v) => v.clone(),
                    IndexExpr::Indirect(_) => unreachable!("checked above"),
                })
                .collect();
            for (i, v) in vars.iter().enumerate() {
                if vars[..i].contains(v) {
                    return Err(PlannerError::Unsupported(format!(
                        "diagonal access {access} (index {v:?} repeated) cannot be chain-planned"
                    )));
                }
            }
            Ok(vars)
        };
        let output = term_of(&stmt.output)?;
        let mut operands = Vec::with_capacity(stmt.factors.len());
        for factor in &stmt.factors {
            let indices = term_of(factor)?;
            if indices.is_empty() {
                return Err(PlannerError::Unsupported(format!(
                    "rank-0 operand {} cannot be chain-planned",
                    factor.tensor
                )));
            }
            operands.push(Operand {
                name: factor.tensor.clone(),
                indices,
            });
        }
        let chain = ChainSpec {
            operands,
            output,
            output_name: stmt.output.tensor.clone(),
            op: stmt.op,
        };
        chain.validate()?;
        Ok(chain)
    }

    /// Shared structural validation for both construction paths.
    fn validate(&self) -> Result<()> {
        if self.operands.is_empty() {
            return Err(PlannerError::Spec("no operands".to_string()));
        }
        if self.operands.len() > MAX_OPERANDS {
            return Err(PlannerError::Unsupported(format!(
                "{} operands exceed the {MAX_OPERANDS}-operand limit",
                self.operands.len()
            )));
        }
        for op in &self.operands {
            if op.indices.is_empty() {
                return Err(PlannerError::Unsupported(format!(
                    "rank-0 operand {:?} cannot be chain-planned",
                    op.name
                )));
            }
            for (i, v) in op.indices.iter().enumerate() {
                if op.indices[..i].contains(v) {
                    return Err(PlannerError::Unsupported(format!(
                        "index {v:?} repeated within operand {:?} (diagonal access)",
                        op.name
                    )));
                }
            }
        }
        for (i, v) in self.output.iter().enumerate() {
            if self.output[..i].contains(v) {
                return Err(PlannerError::Spec(format!("output index {v:?} repeated")));
            }
            if !self.operands.iter().any(|op| op.indices.contains(v)) {
                return Err(PlannerError::Spec(format!(
                    "output index {v:?} appears in no operand"
                )));
            }
        }
        if self.index_names().len() > MAX_INDICES {
            return Err(PlannerError::Unsupported(format!(
                "more than {MAX_INDICES} distinct indices"
            )));
        }
        Ok(())
    }

    /// Distinct index names in first-appearance order (operands first;
    /// every output index also appears in some operand).
    pub fn index_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for op in &self.operands {
            for v in &op.indices {
                if !names.contains(v) {
                    names.push(v.clone());
                }
            }
        }
        names
    }

    /// Bind positional operand shapes to index extents.
    ///
    /// # Errors
    ///
    /// [`PlannerError::Shape`] on operand-count or rank mismatch, on
    /// conflicting extents for one index, or when two operands share a
    /// tensor name but were given different shapes.
    pub fn bind_shapes(&self, shapes: &[Vec<usize>]) -> Result<BTreeMap<String, usize>> {
        if shapes.len() != self.operands.len() {
            return Err(PlannerError::Shape(format!(
                "{} shapes for {} operands",
                shapes.len(),
                self.operands.len()
            )));
        }
        let mut extents: BTreeMap<String, usize> = BTreeMap::new();
        for (op, shape) in self.operands.iter().zip(shapes) {
            if shape.len() != op.indices.len() {
                return Err(PlannerError::Shape(format!(
                    "operand {:?} is rank {} but was given a rank-{} shape",
                    op.name,
                    op.indices.len(),
                    shape.len()
                )));
            }
            for (v, &e) in op.indices.iter().zip(shape) {
                match extents.get(v) {
                    Some(&prev) if prev != e => {
                        return Err(PlannerError::Shape(format!(
                            "index {v:?} bound to extent {prev} and {e}"
                        )));
                    }
                    _ => {
                        extents.insert(v.clone(), e);
                    }
                }
            }
        }
        // Same tensor name appearing twice must mean the same tensor.
        for (i, a) in self.operands.iter().enumerate() {
            for (b, shape_b) in self.operands.iter().zip(shapes).skip(i + 1) {
                if a.name == b.name && shapes[i] != *shape_b {
                    return Err(PlannerError::Shape(format!(
                        "operand {:?} appears twice with different shapes",
                        a.name
                    )));
                }
            }
        }
        Ok(extents)
    }

    /// The output shape implied by bound extents.
    pub(crate) fn output_shape(&self, extents: &BTreeMap<String, usize>) -> Vec<usize> {
        self.output.iter().map(|v| extents[v]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names_operands_positionally() {
        let spec = ChainSpec::parse("ij,jk,kl->il").unwrap();
        assert_eq!(spec.operands.len(), 3);
        assert_eq!(spec.operands[1].name, "op1");
        assert_eq!(spec.operands[1].indices, vec!["j", "k"]);
        assert_eq!(spec.output, vec!["i", "l"]);
        assert_eq!(spec.output_name, "out");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["ij,jk", "ij,jk->ii", "ij,jk->im", "ij,->i", "->i", "i1->i"] {
            assert!(
                matches!(ChainSpec::parse(bad), Err(PlannerError::Spec(_))),
                "{bad:?} should be a spec error"
            );
        }
        assert!(matches!(
            ChainSpec::parse("ii,ij->j"),
            Err(PlannerError::Unsupported(_))
        ));
    }

    #[test]
    fn parse_accepts_scalar_output() {
        let spec = ChainSpec::parse("ij,ij->").unwrap();
        assert!(spec.output.is_empty());
    }

    #[test]
    fn from_statement_accepts_dense_chains() {
        let stmt = insum_lang::parse("O[i,m] += A[i,j] * B[j,k] * C[k,m]").unwrap();
        let spec = ChainSpec::from_statement(&stmt).unwrap();
        assert_eq!(spec.operands.len(), 3);
        assert_eq!(spec.operands[0].name, "A");
        assert_eq!(spec.output_name, "O");
        assert_eq!(spec.op, AssignOp::Accumulate);
    }

    #[test]
    fn from_statement_rejects_indirection_diagonals_and_unbound_outputs() {
        let indirect = insum_lang::parse("C[M[p],n] = V[p] * B[K[p],n] * W[n]").unwrap();
        assert!(matches!(
            ChainSpec::from_statement(&indirect),
            Err(PlannerError::Unsupported(_))
        ));
        let diagonal = insum_lang::parse("O[i] = A[i,i] * B[i] * C[i]").unwrap();
        assert!(matches!(
            ChainSpec::from_statement(&diagonal),
            Err(PlannerError::Unsupported(_))
        ));
        let unbound = insum_lang::parse("O[i,z] = A[i,j] * B[j,k] * C[k]").unwrap();
        assert!(matches!(
            ChainSpec::from_statement(&unbound),
            Err(PlannerError::Spec(_))
        ));
    }

    #[test]
    fn bind_shapes_checks_ranks_and_extents() {
        let spec = ChainSpec::parse("ij,jk->ik").unwrap();
        let extents = spec.bind_shapes(&[vec![2, 3], vec![3, 4]]).unwrap();
        assert_eq!(extents["j"], 3);
        assert!(spec.bind_shapes(&[vec![2, 3]]).is_err());
        assert!(spec.bind_shapes(&[vec![2, 3], vec![5, 4]]).is_err());
        assert!(spec.bind_shapes(&[vec![2], vec![3, 4]]).is_err());
    }
}
