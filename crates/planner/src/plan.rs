//! Plan construction: merge tree → pairwise steps with workspace
//! temporaries.

use crate::order::{self, ChainGraph, OrderStrategy};
use crate::spec::ChainSpec;
use crate::Result;
use insum_lang::AssignOp;

/// Where one side of a pairwise step comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The `i`-th chain operand (bound by its [`crate::Operand::name`]).
    Input(usize),
    /// The `k`-th workspace temporary, produced by an earlier step.
    Temp(usize),
}

/// One pairwise contraction step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Left operand of the step.
    pub lhs: Source,
    /// Right operand (`None` for a single-operand chain's copy /
    /// transpose / reduce step).
    pub rhs: Option<Source>,
    /// Which workspace temporary this step writes; `None` for the final
    /// step, which writes the chain output.
    pub out_temp: Option<usize>,
    /// Name the step's output binds (`__t0`, …, or the chain output).
    pub out_name: String,
    /// Ordered index term of the output.
    pub out_indices: Vec<String>,
    /// Shape of the output.
    pub out_shape: Vec<usize>,
    /// Ordered index term the left side is read with.
    pub lhs_indices: Vec<String>,
    /// Ordered index term of the right side.
    pub rhs_indices: Option<Vec<String>>,
    /// The pairwise statement to lower through the device pipeline
    /// (empty for host-evaluated steps).
    pub expression: String,
    /// Single-letter einsum spec of this step, for the host/reference
    /// evaluation path.
    pub einsum_spec: String,
    /// True when the step must run on the host: its output is rank-0, or
    /// it consumes a rank-0 temporary — shapes the statement language
    /// cannot express (`T[]` is not a legal access).
    pub host: bool,
    /// Multiply-add volume of the step (the cost model's FLOPs).
    pub flops: u128,
    /// Temporaries dead once this step completes; the executor drops
    /// them here (the workspace lifetime rule — see the crate docs).
    pub frees: Vec<usize>,
}

/// An ordered sequence of pairwise steps computing a [`ChainSpec`] over
/// concrete shapes. Deterministic: same spec + shapes + strategy, same
/// plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractionPlan {
    /// The chain being computed.
    pub spec: ChainSpec,
    /// The concrete strategy that produced the order (never
    /// [`OrderStrategy::Auto`]).
    pub strategy: OrderStrategy,
    /// The pairwise steps, in execution order.
    pub steps: Vec<PlanStep>,
    /// Total multiply-add volume across steps.
    pub total_flops: u128,
    /// Number of workspace temporaries.
    pub temp_count: usize,
    /// Total elements across all workspace temporaries.
    pub workspace_elems: usize,
    /// High-water mark of concurrently live workspace elements (a step's
    /// inputs and output count as live together).
    pub workspace_peak_elems: usize,
    /// Shape of the chain output.
    pub output_shape: Vec<usize>,
}

/// Letter pool for the per-step einsum specs ([`crate::MAX_INDICES`]
/// distinct indices fit by construction).
const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

impl ContractionPlan {
    /// Search a contraction order for `spec` over positional operand
    /// `shapes` and lay out the pairwise steps.
    ///
    /// # Errors
    ///
    /// [`crate::PlannerError::Shape`] for shape/spec disagreements;
    /// [`crate::PlannerError::Unsupported`] if [`OrderStrategy::Dp`] is
    /// forced beyond [`crate::DP_MAX_OPERANDS`] operands.
    pub fn new(
        spec: ChainSpec,
        shapes: &[Vec<usize>],
        strategy: OrderStrategy,
    ) -> Result<ContractionPlan> {
        let extents_by_name = spec.bind_shapes(shapes)?;
        let index_names = spec.index_names();
        let id_of = |name: &str| -> usize {
            index_names
                .iter()
                .position(|n| n == name)
                .expect("validated: every index interned")
        };
        let mask_of =
            |term: &[String]| -> u64 { term.iter().fold(0u64, |m, v| m | 1u64 << id_of(v)) };
        let graph = ChainGraph {
            extents: index_names.iter().map(|n| extents_by_name[n]).collect(),
            leaf_masks: spec
                .operands
                .iter()
                .map(|op| mask_of(&op.indices))
                .collect(),
            out_mask: mask_of(&spec.output),
        };
        let (merges, strategy) = order::search(&graph, strategy)?;
        let slots = graph.slot_terms(&merges);
        let output_shape = spec.output_shape(&extents_by_name);

        // Per-slot presentation: ordered index term, source, and name.
        let n = spec.operands.len();
        let forbidden: Vec<&str> = spec
            .operands
            .iter()
            .map(|op| op.name.as_str())
            .chain(std::iter::once(spec.output_name.as_str()))
            .collect();
        let mut slot_indices: Vec<Vec<String>> =
            spec.operands.iter().map(|op| op.indices.clone()).collect();
        let mut slot_source: Vec<Source> = (0..n).map(Source::Input).collect();
        let name_of = |src: Source, temps: &[String]| -> String {
            match src {
                Source::Input(i) => spec.operands[i].name.clone(),
                Source::Temp(k) => temps[k].clone(),
            }
        };
        let mut temp_names: Vec<String> = Vec::new();
        let mut temp_elems: Vec<usize> = Vec::new();
        let mut steps: Vec<PlanStep> = Vec::new();
        let mut total_flops: u128 = 0;

        let shape_of =
            |term: &[String]| -> Vec<usize> { term.iter().map(|v| extents_by_name[v]).collect() };
        let letter_term = |term: &[String]| -> String {
            term.iter()
                .map(|v| LETTERS[id_of(v)] as char)
                .collect::<String>()
        };

        let emit = |steps: &mut Vec<PlanStep>,
                    temp_names: &mut Vec<String>,
                    temp_elems: &mut Vec<usize>,
                    total_flops: &mut u128,
                    lhs: Source,
                    rhs: Option<Source>,
                    lhs_indices: Vec<String>,
                    rhs_indices: Option<Vec<String>>,
                    out_indices: Vec<String>,
                    flops: u128,
                    is_final: bool|
         -> Source {
            let out_shape = shape_of(&out_indices);
            let (out_temp, out_name) = if is_final {
                (None, spec.output_name.clone())
            } else {
                let k = temp_names.len();
                let mut name = format!("__t{k}");
                while forbidden.contains(&name.as_str()) {
                    name.insert(0, '_');
                }
                temp_names.push(name.clone());
                temp_elems.push(out_shape.iter().product::<usize>().max(1));
                (Some(k), name)
            };
            let rank0_input = matches!(lhs, Source::Temp(_)) && lhs_indices.is_empty()
                || rhs.is_some()
                    && matches!(rhs, Some(Source::Temp(_)))
                    && rhs_indices.as_ref().is_some_and(Vec::is_empty);
            let host = out_indices.is_empty() || rank0_input;
            let op_str = if is_final && spec.op == AssignOp::Accumulate {
                "+="
            } else {
                "="
            };
            let expression = if host {
                String::new()
            } else {
                let lhs_txt = format!("{}[{}]", name_of(lhs, temp_names), lhs_indices.join(","));
                let rhs_txt = match (&rhs, &rhs_indices) {
                    (Some(r), Some(ri)) => {
                        format!(" * {}[{}]", name_of(*r, temp_names), ri.join(","))
                    }
                    _ => String::new(),
                };
                format!(
                    "{}[{}] {} {}{}",
                    out_name,
                    out_indices.join(","),
                    op_str,
                    lhs_txt,
                    rhs_txt
                )
            };
            let einsum_spec = match &rhs_indices {
                Some(ri) => format!(
                    "{},{}->{}",
                    letter_term(&lhs_indices),
                    letter_term(ri),
                    letter_term(&out_indices)
                ),
                None => format!(
                    "{}->{}",
                    letter_term(&lhs_indices),
                    letter_term(&out_indices)
                ),
            };
            *total_flops = total_flops.saturating_add(flops);
            steps.push(PlanStep {
                lhs,
                rhs,
                out_temp,
                out_name,
                out_indices,
                out_shape,
                lhs_indices,
                rhs_indices,
                expression,
                einsum_spec,
                host,
                flops,
                frees: Vec::new(),
            });
            match out_temp {
                Some(k) => Source::Temp(k),
                None => Source::Input(usize::MAX), // never read: final step
            }
        };

        if n == 1 {
            // Single operand: one copy / transpose / reduce step.
            let flops = graph.volume(graph.leaf_masks[0]);
            emit(
                &mut steps,
                &mut temp_names,
                &mut temp_elems,
                &mut total_flops,
                Source::Input(0),
                None,
                spec.operands[0].indices.clone(),
                None,
                spec.output.clone(),
                flops,
                true,
            );
        } else {
            for (k, &(a, b)) in merges.iter().enumerate() {
                let is_final = k + 1 == merges.len();
                let (lhs, rhs) = (slot_source[a], slot_source[b]);
                let (lhs_indices, rhs_indices) = (slot_indices[a].clone(), slot_indices[b].clone());
                let flops = {
                    let lhs_mask = mask_of(&lhs_indices);
                    let rhs_mask = mask_of(&rhs_indices);
                    graph.volume(lhs_mask | rhs_mask)
                };
                let out_indices = if is_final {
                    spec.output.clone()
                } else {
                    // First-appearance order over the merged sides,
                    // filtered by the slot's materialized term.
                    let (_, term) = slots[n + k];
                    let mut out: Vec<String> = Vec::new();
                    for v in lhs_indices.iter().chain(rhs_indices.iter()) {
                        if term >> id_of(v) & 1 == 1 && !out.contains(v) {
                            out.push(v.clone());
                        }
                    }
                    out
                };
                let src = emit(
                    &mut steps,
                    &mut temp_names,
                    &mut temp_elems,
                    &mut total_flops,
                    lhs,
                    Some(rhs),
                    lhs_indices,
                    Some(rhs_indices),
                    out_indices,
                    flops,
                    is_final,
                );
                slot_source.push(src);
                slot_indices.push(match &steps.last().expect("just pushed").out_temp {
                    Some(_) => steps.last().expect("just pushed").out_indices.clone(),
                    None => Vec::new(),
                });
            }
        }

        // Host-ness propagates: a step consuming a rank-0 temp is marked
        // host inside `emit` already (rank-0 temps only arise from host
        // steps, and `T[]` is inexpressible in the statement language).

        // Workspace lifetimes: free each temp after its last consumer.
        let mut last_use: Vec<Option<usize>> = vec![None; temp_names.len()];
        for (i, step) in steps.iter().enumerate() {
            for src in std::iter::once(&step.lhs).chain(step.rhs.iter()) {
                if let Source::Temp(k) = src {
                    last_use[*k] = Some(i);
                }
            }
        }
        for (k, last) in last_use.iter().enumerate() {
            let i = last.expect("every temporary is consumed by a later step");
            steps[i].frees.push(k);
        }
        let mut live: usize = 0;
        let mut peak: usize = 0;
        for step in &steps {
            if let Some(k) = step.out_temp {
                live += temp_elems[k];
            }
            peak = peak.max(live);
            for &k in &step.frees {
                live -= temp_elems[k];
            }
        }

        Ok(ContractionPlan {
            strategy,
            total_flops,
            temp_count: temp_names.len(),
            workspace_elems: temp_elems.iter().sum(),
            workspace_peak_elems: peak,
            output_shape,
            steps,
            spec,
        })
    }

    /// [`ContractionPlan::new`] with the naive left-to-right order (the
    /// reference evaluator's structure).
    pub fn naive(spec: ChainSpec, shapes: &[Vec<usize>]) -> Result<ContractionPlan> {
        ContractionPlan::new(spec, shapes, OrderStrategy::LeftToRight)
    }

    /// Total workspace bytes (temporaries are always F32).
    pub fn workspace_bytes(&self) -> usize {
        self.workspace_elems * 4
    }

    /// Steps that lower to device kernels (the rest run on the host —
    /// rank-0 corners only; see [`PlanStep::host`]).
    pub fn device_step_count(&self) -> usize {
        self.steps.iter().filter(|s| !s.host).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skew4_spec() -> (ChainSpec, Vec<Vec<usize>>) {
        (
            ChainSpec::parse("ij,jk,kl,lm->im").unwrap(),
            vec![vec![256, 256], vec![256, 4], vec![4, 256], vec![256, 256]],
        )
    }

    #[test]
    fn left_to_right_plan_is_left_deep() {
        let (spec, shapes) = skew4_spec();
        let plan = ContractionPlan::naive(spec, &shapes).unwrap();
        assert_eq!(plan.steps.len(), 3);
        assert_eq!(plan.steps[0].lhs, Source::Input(0));
        assert_eq!(plan.steps[0].rhs, Some(Source::Input(1)));
        assert_eq!(plan.steps[1].lhs, Source::Temp(0));
        assert_eq!(plan.steps[2].out_temp, None);
        assert_eq!(plan.steps[2].out_name, "out");
        assert_eq!(plan.output_shape, vec![256, 256]);
        assert_eq!(plan.steps[0].expression, "__t0[i,k] = op0[i,j] * op1[j,k]");
        assert_eq!(plan.steps[0].einsum_spec, "ab,bc->ac");
        assert!(plan.steps.iter().all(|s| !s.host));
    }

    #[test]
    fn dp_plan_cuts_flops_and_workspace_on_the_skewed_chain() {
        let (spec, shapes) = skew4_spec();
        let naive = ContractionPlan::naive(spec.clone(), &shapes).unwrap();
        let planned = ContractionPlan::new(spec, &shapes, OrderStrategy::Auto).unwrap();
        assert_eq!(planned.strategy, OrderStrategy::Dp);
        assert!(naive.total_flops >= 10 * planned.total_flops);
        assert!(planned.workspace_elems < naive.workspace_elems);
    }

    #[test]
    fn workspace_lifetimes_free_temps_after_last_use() {
        let (spec, shapes) = skew4_spec();
        let plan = ContractionPlan::naive(spec, &shapes).unwrap();
        // Left-deep chain: each temp dies feeding the next step.
        assert_eq!(plan.steps[1].frees, vec![0]);
        assert_eq!(plan.steps[2].frees, vec![1]);
        // Peak: __t0 (256·4) live while __t1 (256·256) is produced.
        assert_eq!(plan.temp_count, 2);
        assert_eq!(plan.workspace_elems, 256 * 4 + 256 * 256);
        assert_eq!(plan.workspace_peak_elems, 256 * 4 + 256 * 256);
    }

    #[test]
    fn scalar_output_routes_through_host_steps() {
        let spec = ChainSpec::parse("ij,ij->").unwrap();
        let plan =
            ContractionPlan::new(spec, &[vec![3, 4], vec![3, 4]], OrderStrategy::Auto).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.steps[0].host);
        assert!(plan.steps[0].expression.is_empty());
        assert_eq!(plan.steps[0].einsum_spec, "ab,ab->");
        assert_eq!(plan.device_step_count(), 0);
        assert!(plan.output_shape.is_empty());
    }

    #[test]
    fn rank0_temp_consumers_are_host_steps() {
        // Optimal order for i,i,j->j contracts the two vectors into a
        // scalar first; the scalar-consuming step must also be host.
        let spec = ChainSpec::parse("i,i,j->j").unwrap();
        let plan =
            ContractionPlan::new(spec, &[vec![64], vec![64], vec![8]], OrderStrategy::Dp).unwrap();
        assert!(plan.steps.iter().any(|s| s.host));
        let scalar_consumer = plan
            .steps
            .iter()
            .find(|s| {
                matches!(s.lhs, Source::Temp(_)) && s.lhs_indices.is_empty()
                    || matches!(s.rhs, Some(Source::Temp(_)))
                        && s.rhs_indices.as_ref().is_some_and(Vec::is_empty)
            })
            .expect("a step consumes the scalar temp");
        assert!(scalar_consumer.host);
    }

    #[test]
    fn single_operand_chain_is_one_step() {
        let spec = ChainSpec::parse("ij->ji").unwrap();
        let plan = ContractionPlan::new(spec, &[vec![2, 3]], OrderStrategy::Auto).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].expression, "out[j,i] = op0[i,j]");
        assert_eq!(plan.output_shape, vec![3, 2]);
        assert_eq!(plan.temp_count, 0);
    }

    #[test]
    fn temp_names_avoid_user_collisions() {
        let stmt = insum_lang::parse("O[i,l] = __t0[i,j] * B[j,k] * C[k,l]").unwrap();
        let spec = ChainSpec::from_statement(&stmt).unwrap();
        let plan = ContractionPlan::new(
            spec,
            &[vec![2, 3], vec![3, 4], vec![4, 5]],
            OrderStrategy::LeftToRight,
        )
        .unwrap();
        assert!(plan.steps[0].out_name.starts_with('_'));
        assert_ne!(plan.steps[0].out_name, "__t0");
    }

    #[test]
    fn accumulate_final_step_uses_plus_equals() {
        let stmt = insum_lang::parse("O[i,l] += A[i,j] * B[j,k] * C[k,l]").unwrap();
        let spec = ChainSpec::from_statement(&stmt).unwrap();
        let plan = ContractionPlan::new(
            spec,
            &[vec![2, 3], vec![3, 4], vec![4, 5]],
            OrderStrategy::LeftToRight,
        )
        .unwrap();
        let last = plan.steps.last().unwrap();
        assert!(last.expression.contains("+="), "{}", last.expression);
        assert!(!plan.steps[0].expression.contains("+="));
    }
}
