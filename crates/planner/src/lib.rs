//! # Contraction planning for multi-operand Einsum chains
//!
//! The compile/serve stack executes one *pairwise* einsum at a time; the
//! workloads the paper targets — attention (QK → AV), multi-hop GNN
//! propagation — are contraction **chains**. This crate turns an
//! `ij,jk,kl->il`-style spec (or a dense multi-factor indirect-Einsum
//! statement) into a [`ContractionPlan`]: a sequence of pairwise steps
//! materializing intermediates into *workspace temporaries*, each step
//! lowerable through the existing compile/autotune pipeline.
//!
//! This crate is purely symbolic (shapes in, plan out); lowering and
//! execution live in `insum` (`insum::plan` / `insum::run_chain`), which
//! keeps the dependency graph acyclic.
//!
//! ## Cost model
//!
//! Contraction order is searched over binary merge trees of the operand
//! set, costed from shapes alone:
//!
//! * **FLOPs** of merging two subtrees = the product of the extents of
//!   the *union* of the two sides' index terms (one multiply-add per
//!   point of the joint iteration space — exactly the simulator's dense
//!   loop-nest volume for that pairwise step).
//! * **Intermediate size** of a subtree `S` = the product of the extents
//!   of `term(S) = indices(S) ∩ (indices(outside S) ∪ output)`: an index
//!   survives a merge only while something outside the subtree (or the
//!   final output) still needs it. `term(S)` depends only on the operand
//!   *set*, not the merge order inside it — the property that makes the
//!   subset DP below exact.
//!
//! Plans are compared by total FLOPs first, total intermediate elements
//! second (a deterministic tie-break that prefers smaller workspaces).
//!
//! ## Search strategies and the DP/greedy switchover
//!
//! * [`OrderStrategy::LeftToRight`] — the naive baseline (and the
//!   reference evaluator's order): fold operands left to right.
//! * [`OrderStrategy::Greedy`] — repeatedly merge the cheapest pair,
//!   then keep whichever of {greedy result, left-to-right} costs less,
//!   so greedy is never worse than the naive order *by construction*.
//! * [`OrderStrategy::Dp`] — exact bitmask dynamic programming over
//!   operand subsets (`O(3^n)` subset splits). Optimal, but only
//!   practical up to [`DP_MAX_OPERANDS`] (= 12) operands.
//! * [`OrderStrategy::Auto`] — DP up to 12 operands, greedy beyond: the
//!   switchover point where `3^n` (~531k splits at n=12) stops being
//!   negligible next to kernel compilation itself.
//!
//! ## Workspace lifetime rules
//!
//! Every non-final step writes a fresh zero-initialized F32 workspace
//! temporary (`__t0`, `__t1`, … — renamed if a user tensor collides). A
//! temporary is *live* from the step that produces it until the step
//! consuming it completes; each [`PlanStep::frees`] lists the
//! temporaries dead after that step, and the executor drops them there
//! (copy-on-write storage frees the buffer with the last handle).
//! [`ContractionPlan::workspace_peak_elems`] is the resulting high-water
//! mark, with a step's output and both inputs counted live together.
//!
//! ## Bit-identity domain
//!
//! Different contraction orders re-associate floating-point reductions,
//! so "planned ≡ naive" can only be promised *bit-exactly* where f32
//! arithmetic is exact: integer-valued data whose intermediate
//! magnitudes stay below 2^24. Benchmarks and property tests draw values
//! from small integer sets for this reason; on general real data the
//! orders agree only to rounding. The planner itself is deterministic:
//! same spec, shapes, and strategy always produce the same plan.

mod error;
mod order;
mod plan;
mod reference;
mod spec;

pub use error::PlannerError;
pub use order::{OrderStrategy, DP_MAX_OPERANDS};
pub use plan::{ContractionPlan, PlanStep, Source};
pub use reference::{eval_pairwise, reference_chain};
pub use spec::{ChainSpec, Operand, MAX_INDICES, MAX_OPERANDS};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PlannerError>;
