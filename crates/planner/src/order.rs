//! Contraction-order search over binary merge trees.
//!
//! See the crate docs for the cost model. All three searches work on a
//! [`ChainGraph`] — operand index terms packed into 64-bit sets — and
//! return a *merge list*: slots `0..n` are the operand leaves, and the
//! `k`-th merge `(a, b)` combines slots `a` and `b` into slot `n + k`.
//! The last merge produces the chain output.

use crate::Result;
use crate::{PlannerError, MAX_OPERANDS};

/// Exact DP is used up to this operand count ([`OrderStrategy::Auto`]
/// falls back to greedy beyond it): the `O(3^n)` subset-split
/// enumeration is ~531k splits at n = 12 — still negligible next to one
/// kernel compilation — and grows 3× per extra operand.
pub const DP_MAX_OPERANDS: usize = 12;

/// Which contraction-order search to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderStrategy {
    /// Naive left-to-right fold — the reference evaluator's order.
    LeftToRight,
    /// Cheapest-pair-first heuristic, never worse than left-to-right.
    Greedy,
    /// Exact bitmask DP over operand subsets (≤ [`DP_MAX_OPERANDS`]).
    Dp,
    /// [`OrderStrategy::Dp`] when exact search is practical, otherwise
    /// [`OrderStrategy::Greedy`].
    #[default]
    Auto,
}

/// A merge of two slots; slots `0..n` are leaves, merge `k` yields slot
/// `n + k`.
pub(crate) type Merge = (usize, usize);

/// Total plan cost: FLOPs first, then intermediate elements (the
/// deterministic tie-break preferring smaller workspaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct TreeCost {
    pub flops: u128,
    pub temp_elems: u128,
}

/// The operand index terms of one chain, packed into bit sets.
pub(crate) struct ChainGraph {
    /// Extent of each interned index id.
    pub extents: Vec<usize>,
    /// Index-set mask of each operand leaf.
    pub leaf_masks: Vec<u64>,
    /// Index-set mask of the output term.
    pub out_mask: u64,
}

impl ChainGraph {
    /// Product of the extents selected by `mask`.
    pub fn volume(&self, mask: u64) -> u128 {
        let mut v: u128 = 1;
        for (id, &e) in self.extents.iter().enumerate() {
            if mask >> id & 1 == 1 {
                v = v.saturating_mul(e as u128);
            }
        }
        v
    }

    fn n(&self) -> usize {
        self.leaf_masks.len()
    }

    /// Union of the leaf index masks selected by the operand-set mask.
    fn ops_indices(&self, ops: u64) -> u64 {
        let mut m = 0;
        for (i, &leaf) in self.leaf_masks.iter().enumerate() {
            if ops >> i & 1 == 1 {
                m |= leaf;
            }
        }
        m
    }

    /// The materialized index term of the operand subset `ops`: indices
    /// the subset touches that are still needed outside it (or by the
    /// output). Order-independent — see the crate docs.
    fn term(&self, ops: u64) -> u64 {
        let full = self.full();
        self.ops_indices(ops) & (self.ops_indices(full & !ops) | self.out_mask)
    }

    /// The index term a subset *contributes to a merge*: a leaf is read
    /// whole (nothing is pre-reduced), a merged subtree was materialized
    /// down to `term`.
    fn side_term(&self, ops: u64) -> u64 {
        if ops.count_ones() == 1 {
            self.ops_indices(ops)
        } else {
            self.term(ops)
        }
    }

    fn full(&self) -> u64 {
        if self.n() == MAX_OPERANDS {
            u64::MAX
        } else {
            (1u64 << self.n()) - 1
        }
    }

    /// Cost a merge list (the same arithmetic every search optimizes).
    pub fn cost(&self, merges: &[Merge]) -> TreeCost {
        let n = self.n();
        let mut ops: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
        let mut cost = TreeCost {
            flops: 0,
            temp_elems: 0,
        };
        for (k, &(a, b)) in merges.iter().enumerate() {
            let joint = self.side_term(ops[a]) | self.side_term(ops[b]);
            cost.flops = cost.flops.saturating_add(self.volume(joint));
            let merged = ops[a] | ops[b];
            if k + 1 < merges.len() {
                cost.temp_elems = cost
                    .temp_elems
                    .saturating_add(self.volume(self.term(merged)));
            }
            ops.push(merged);
        }
        cost
    }

    /// Per-merge slot metadata needed by the plan builder: for each slot,
    /// its operand set and the index term it holds.
    pub fn slot_terms(&self, merges: &[Merge]) -> Vec<(u64, u64)> {
        let n = self.n();
        let mut slots: Vec<(u64, u64)> = (0..n).map(|i| (1u64 << i, self.leaf_masks[i])).collect();
        for &(a, b) in merges {
            let merged = slots[a].0 | slots[b].0;
            slots.push((merged, self.term(merged)));
        }
        slots
    }

    /// FLOPs of the single merge `(a, b)` given current slot terms.
    fn merge_flops(&self, term_a: u64, term_b: u64) -> u128 {
        self.volume(term_a | term_b)
    }
}

/// Left-to-right fold: `(((op0 · op1) · op2) · …)`.
pub(crate) fn left_to_right(n: usize) -> Vec<Merge> {
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut acc = 0;
    for (k, leaf) in (1..n).enumerate() {
        merges.push((acc, leaf));
        acc = n + k;
    }
    merges
}

/// Cheapest-pair-first heuristic, then best-of against left-to-right so
/// the result is never worse than the naive order.
pub(crate) fn greedy(graph: &ChainGraph) -> Vec<Merge> {
    let n = graph.leaf_masks.len();
    // (slot id, operand set, current side term).
    let mut active: Vec<(usize, u64, u64)> = (0..n)
        .map(|i| (i, 1u64 << i, graph.leaf_masks[i]))
        .collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    while active.len() > 1 {
        let mut best: Option<(u128, u128, usize, usize)> = None;
        for i in 0..active.len() {
            for j in i + 1..active.len() {
                let flops = graph.merge_flops(active[i].2, active[j].2);
                let merged = active[i].1 | active[j].1;
                let elems = graph.volume(graph.term(merged));
                let cand = (flops, elems, i, j);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        let (_, _, i, j) = best.expect("at least one pair");
        let (slot_j, ops_j, _) = active.remove(j);
        let (slot_i, ops_i, _) = active.remove(i);
        merges.push((slot_i, slot_j));
        let merged = ops_i | ops_j;
        active.push((n + merges.len() - 1, merged, graph.term(merged)));
    }
    let ltr = left_to_right(n);
    if graph.cost(&ltr) < graph.cost(&merges) {
        ltr
    } else {
        merges
    }
}

/// Exact bitmask DP over operand subsets.
///
/// `dp[S]` is the cheapest cost of computing subset `S`'s term; splits
/// enumerate submasks containing `S`'s lowest bit (each bipartition
/// once). Because [`ChainGraph::term`] is order-independent, child
/// results compose exactly.
pub(crate) fn dp(graph: &ChainGraph) -> Result<Vec<Merge>> {
    let n = graph.leaf_masks.len();
    if n > DP_MAX_OPERANDS {
        return Err(PlannerError::Unsupported(format!(
            "exact DP is limited to {DP_MAX_OPERANDS} operands (got {n}); \
             use the greedy or auto strategy"
        )));
    }
    let full: u64 = (1u64 << n) - 1;
    let size = 1usize << n;
    let mut best: Vec<Option<(TreeCost, u64)>> = vec![None; size];
    // Precompute side terms (leaf masks for singletons, `term` above).
    let side: Vec<u64> = (0..size as u64).map(|s| graph.side_term(s)).collect();
    let zero = TreeCost {
        flops: 0,
        temp_elems: 0,
    };
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        let low = s & s.wrapping_neg();
        let materialized = if s == full {
            0
        } else {
            graph.volume(graph.term(s))
        };
        let mut t = (s - 1) & s;
        while t > 0 {
            if t & low != 0 {
                let u = s & !t;
                let (ct, cu) = (
                    best[t as usize].map_or(zero, |(c, _)| c),
                    best[u as usize].map_or(zero, |(c, _)| c),
                );
                let cand = TreeCost {
                    flops: ct
                        .flops
                        .saturating_add(cu.flops)
                        .saturating_add(graph.volume(side[t as usize] | side[u as usize])),
                    temp_elems: ct
                        .temp_elems
                        .saturating_add(cu.temp_elems)
                        .saturating_add(materialized),
                };
                if best[s as usize].is_none_or(|(c, _)| cand < c) {
                    best[s as usize] = Some((cand, t));
                }
            }
            t = (t - 1) & s;
        }
    }
    // Reconstruct the merge list in post-order.
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    fn build(s: u64, n: usize, best: &[Option<(TreeCost, u64)>], merges: &mut Vec<Merge>) -> usize {
        if s.count_ones() == 1 {
            return s.trailing_zeros() as usize;
        }
        let (_, t) = best[s as usize].expect("dp filled every multi-operand subset");
        let a = build(t, n, best, merges);
        let b = build(s & !t, n, best, merges);
        merges.push((a, b));
        n + merges.len() - 1
    }
    build(full, n, &best, &mut merges);
    Ok(merges)
}

/// Run the requested search, resolving [`OrderStrategy::Auto`]. Returns
/// the merge list and the concrete strategy that produced it.
pub(crate) fn search(
    graph: &ChainGraph,
    strategy: OrderStrategy,
) -> Result<(Vec<Merge>, OrderStrategy)> {
    let n = graph.leaf_masks.len();
    Ok(match strategy {
        OrderStrategy::LeftToRight => (left_to_right(n), OrderStrategy::LeftToRight),
        OrderStrategy::Greedy => (greedy(graph), OrderStrategy::Greedy),
        OrderStrategy::Dp => (dp(graph)?, OrderStrategy::Dp),
        OrderStrategy::Auto => {
            if n <= DP_MAX_OPERANDS {
                (dp(graph)?, OrderStrategy::Dp)
            } else {
                (greedy(graph), OrderStrategy::Greedy)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ij,jk,kl,lm->im` with k tiny: the optimal tree is the
    /// non-left-deep `(op0·op1)·(op2·op3)`, meeting at the tiny k.
    fn skew4() -> ChainGraph {
        // indices: i=0, j=1, k=2, l=3, m=4
        ChainGraph {
            extents: vec![256, 256, 4, 256, 256],
            leaf_masks: vec![0b00011, 0b00110, 0b01100, 0b11000],
            out_mask: 0b10001,
        }
    }

    #[test]
    fn left_to_right_is_a_left_deep_fold() {
        assert_eq!(left_to_right(4), vec![(0, 1), (4, 2), (5, 3)]);
        assert_eq!(left_to_right(1), vec![]);
    }

    #[test]
    fn term_is_order_independent_and_tracks_consumers() {
        let g = skew4();
        // {op0, op1} materializes i,k (j is internal, m/l outside).
        assert_eq!(g.term(0b0011), 0b00101);
        // {op0, op1, op2} materializes i,l.
        assert_eq!(g.term(0b0111), 0b01001);
        // Full set materializes exactly the output.
        assert_eq!(g.term(0b1111), g.out_mask);
    }

    #[test]
    fn dp_beats_left_to_right_by_10x_on_the_skewed_chain() {
        let g = skew4();
        let ltr = g.cost(&left_to_right(4));
        let best = g.cost(&dp(&g).unwrap());
        assert!(
            ltr.flops >= 10 * best.flops,
            "ltr {} vs dp {}",
            ltr.flops,
            best.flops
        );
        // Optimal: (op0·op1) and (op2·op3) each 256·4·256, then a tiny
        // 256·256 outer-ish contraction over j…l terms.
        assert!(best.flops < 2_000_000);
    }

    #[test]
    fn greedy_never_worse_than_left_to_right() {
        let g = skew4();
        assert!(g.cost(&greedy(&g)) <= g.cost(&left_to_right(4)));
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        let g = skew4();
        assert!(g.cost(&dp(&g).unwrap()) <= g.cost(&greedy(&g)));
    }

    #[test]
    fn dp_rejects_oversized_chains() {
        let n = DP_MAX_OPERANDS + 1;
        let g = ChainGraph {
            extents: vec![2; n + 1],
            leaf_masks: (0..n).map(|i| 0b11u64 << i).collect(),
            out_mask: 1 | (1u64 << n),
        };
        assert!(matches!(dp(&g), Err(PlannerError::Unsupported(_))));
        let (_, resolved) = search(&g, OrderStrategy::Auto).unwrap();
        assert_eq!(resolved, OrderStrategy::Greedy);
    }
}
