//! The bit-identity oracle: naive left-to-right pairwise evaluation.
//!
//! [`reference_chain`] folds the operands left to right, evaluating each
//! pairwise step with the [`insum_tensor::einsum`] reference — the same
//! step structure [`crate::OrderStrategy::LeftToRight`] compiles, so a
//! planned execution can be compared against it step shape by step
//! shape. On integer-valued data (see the crate docs) every contraction
//! order is exact, and planned output must equal this reference bit for
//! bit.

use crate::plan::{ContractionPlan, Source};
use crate::spec::ChainSpec;
use crate::{PlannerError, Result};
use insum_tensor::{einsum, Tensor};

/// Evaluate one pairwise step given its single-letter spec
/// ([`crate::PlanStep::einsum_spec`]).
///
/// This is both the oracle's step evaluator and the executor's host
/// fallback for the rank-0 corners the statement language cannot
/// express — sharing one implementation is what makes host-evaluated
/// steps bit-identical to the reference by construction. A rank-0
/// (empty-term) side, which the einsum spec grammar also cannot parse,
/// multiplies as a scalar into the other side's contraction; exact on
/// the integer-valued domain, since scaling distributes exactly there.
///
/// # Errors
///
/// [`PlannerError::Shape`] when the operands disagree with the spec.
pub fn eval_pairwise(spec: &str, lhs: &Tensor, rhs: Option<&Tensor>) -> Result<Tensor> {
    let (input_part, out_term) = spec
        .split_once("->")
        .ok_or_else(|| PlannerError::Spec(format!("missing '->' in step spec {spec:?}")))?;
    let terms: Vec<&str> = input_part.split(',').collect();
    let wrap = |e: insum_tensor::TensorError| PlannerError::Shape(e.to_string());
    match (&terms[..], rhs) {
        // No rank-0 side: the plain reference einsum.
        ([l, r], Some(rhs)) if !l.is_empty() && !r.is_empty() => {
            einsum(spec, &[lhs, rhs]).map_err(wrap)
        }
        ([l], None) if !l.is_empty() => einsum(spec, &[lhs]).map_err(wrap),
        // A scalar side scales the other side's (possibly trivial)
        // contraction.
        ([l, r], Some(rhs)) => {
            let (scalar, dense, dense_term) = if l.is_empty() {
                (lhs, rhs, r)
            } else {
                (rhs, lhs, l)
            };
            let s = scalar.data()[0];
            let base = if dense_term.is_empty() {
                dense.clone()
            } else {
                einsum(&format!("{dense_term}->{out_term}"), &[dense]).map_err(wrap)?
            };
            Ok(base.map(|v| v * s))
        }
        ([_], None) => Ok(lhs.clone()),
        _ => Err(PlannerError::Spec(format!(
            "step spec {spec:?} does not match its operand count"
        ))),
    }
}

/// Evaluate a chain with the naive left-to-right pairwise order,
/// returning the pure chain value (`+=` accumulation into an existing
/// output is the executor's concern, not the oracle's).
///
/// `operands` are positional, matching [`ChainSpec::operands`].
///
/// # Errors
///
/// [`PlannerError::Shape`] when operand shapes disagree with the spec.
pub fn reference_chain(spec: &ChainSpec, operands: &[&Tensor]) -> Result<Tensor> {
    let shapes: Vec<Vec<usize>> = operands.iter().map(|t| t.shape().to_vec()).collect();
    let plan = ContractionPlan::naive(spec.clone(), &shapes)?;
    let mut temps: Vec<Option<Tensor>> = vec![None; plan.temp_count];
    let mut result = None;
    for step in &plan.steps {
        let fetch = |src: Source, temps: &[Option<Tensor>]| -> Tensor {
            match src {
                Source::Input(i) => operands[i].clone(),
                Source::Temp(k) => temps[k].clone().expect("produced by an earlier step"),
            }
        };
        let lhs = fetch(step.lhs, &temps);
        let rhs = step.rhs.map(|src| fetch(src, &temps));
        let out = eval_pairwise(&step.einsum_spec, &lhs, rhs.as_ref())?;
        for &k in &step.frees {
            temps[k] = None;
        }
        match step.out_temp {
            Some(k) => temps[k] = Some(out),
            None => result = Some(out),
        }
    }
    Ok(result.expect("plans always end with the output step"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::DType;

    fn int_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut state = seed;
        Tensor::from_fn(shape, |_| {
            // xorshift; values in {-2, -1, 0, 1, 2}.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 5) as f32 - 2.0
        })
    }

    #[test]
    fn reference_matches_direct_einsum() {
        let spec = ChainSpec::parse("ij,jk,kl->il").unwrap();
        let a = int_tensor(vec![4, 5], 1);
        let b = int_tensor(vec![5, 3], 2);
        let c = int_tensor(vec![3, 6], 3);
        let chained = reference_chain(&spec, &[&a, &b, &c]).unwrap();
        let direct = einsum("ij,jk,kl->il", &[&a, &b, &c]).unwrap();
        assert_eq!(chained.data(), direct.data());
        assert_eq!(chained.shape(), direct.shape());
        assert_eq!(chained.dtype(), DType::F32);
    }

    #[test]
    fn reference_handles_scalar_intermediates() {
        // Left-to-right on i,i,j->j goes through a rank-0 intermediate.
        let spec = ChainSpec::parse("i,i,j->j").unwrap();
        let a = int_tensor(vec![8], 4);
        let b = int_tensor(vec![8], 5);
        let c = int_tensor(vec![3], 6);
        let got = reference_chain(&spec, &[&a, &b, &c]).unwrap();
        let want = einsum("i,i,j->j", &[&a, &b, &c]).unwrap();
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn reference_handles_scalar_output() {
        let spec = ChainSpec::parse("ij,ij->").unwrap();
        let a = int_tensor(vec![3, 4], 7);
        let b = int_tensor(vec![3, 4], 8);
        let got = reference_chain(&spec, &[&a, &b]).unwrap();
        let want = einsum("ij,ij->", &[&a, &b]).unwrap();
        assert_eq!(got.data(), want.data());
        assert!(got.shape().is_empty());
    }
}
