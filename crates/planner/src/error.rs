//! Planner error type.

use std::error::Error;
use std::fmt;

/// Any error the contraction planner can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannerError {
    /// The chain spec itself is malformed: unparseable, an output index
    /// bound by no operand, a repeated output index, an empty term.
    Spec(String),
    /// The spec is well-formed but outside the planner's supported
    /// fragment: indirect indexing, diagonal (repeated-index) access,
    /// non-F32 operands, or more than [`crate::MAX_OPERANDS`] operands /
    /// [`crate::MAX_INDICES`] distinct indices.
    Unsupported(String),
    /// Operand shapes disagree with the spec: rank mismatch or
    /// conflicting extents for one index.
    Shape(String),
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::Spec(msg) => write!(f, "invalid chain spec: {msg}"),
            PlannerError::Unsupported(msg) => write!(f, "unsupported chain: {msg}"),
            PlannerError::Shape(msg) => write!(f, "chain shape error: {msg}"),
        }
    }
}

impl Error for PlannerError {}
