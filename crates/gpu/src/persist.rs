//! Snapshot codec for compiled [`Program`]s.
//!
//! The encoding persists exactly the fields that are *expensive* to
//! reproduce — the lowered units (with fusion, caching levels, and
//! liveness release lists), the per-site address-stream classification,
//! and the derived capability flags. Everything else (names, grid
//! dimensions, the parameter table) is recomputed deterministically
//! from the kernel and launch shape the caller already holds as the
//! cache key, so a decoded program is field-for-field identical to one
//! produced by [`Program::compile`] — without running any of the
//! lowering pipeline.
//!
//! Decoding is defensive: registers, parameter indices, and site ids
//! are range-checked, sequence lengths go through the allocation guard,
//! and loop nesting is depth-capped — forged-but-CRC-valid bytes
//! produce a typed [`SnapshotError`], never a panic and never a program
//! that indexes out of bounds at launch.

use crate::interp::GpuError;
use crate::program::{CInstr, CNode, CUnit, ParamTable, Program, SiteInfo, UnitMode};
use insum_kernel::{BinOp, Kernel, Reg};
use insum_snapshot::{Reader, SnapshotError, Writer};
use insum_tensor::DType;

/// Maximum loop nesting the decoder will follow (matches the kernel
/// codec's cap; lowering never deepens nesting).
const MAX_LOOP_DEPTH: usize = 64;

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::FloorDiv => 4,
        BinOp::Mod => 5,
        BinOp::Min => 6,
        BinOp::Max => 7,
        BinOp::Lt => 8,
        BinOp::Le => 9,
        BinOp::Eq => 10,
        BinOp::Ge => 11,
        BinOp::And => 12,
    }
}

fn tag_binop(tag: u8) -> Result<BinOp, SnapshotError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::FloorDiv,
        5 => BinOp::Mod,
        6 => BinOp::Min,
        7 => BinOp::Max,
        8 => BinOp::Lt,
        9 => BinOp::Le,
        10 => BinOp::Eq,
        11 => BinOp::Ge,
        12 => BinOp::And,
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "program binary-op tag",
            })
        }
    })
}

fn write_mask(w: &mut Writer, mask: &Option<Reg>) {
    match mask {
        Some(r) => {
            w.u8(1);
            w.usize(*r);
        }
        None => w.u8(0),
    }
}

fn write_shape(w: &mut Writer, shape: &[usize]) {
    w.usize(shape.len());
    for &d in shape {
        w.usize(d);
    }
}

fn write_cinstr(w: &mut Writer, instr: &CInstr) {
    match instr {
        CInstr::ProgramId { dst, axis } => {
            w.u8(1);
            w.usize(*dst);
            w.usize(*axis);
        }
        CInstr::Const { dst, value } => {
            w.u8(2);
            w.usize(*dst);
            w.f64_bits(*value);
        }
        CInstr::Arange { dst, len } => {
            w.u8(3);
            w.usize(*dst);
            w.usize(*len);
        }
        CInstr::Full { dst, shape, value } => {
            w.u8(4);
            w.usize(*dst);
            write_shape(w, shape);
            w.f64_bits(*value);
        }
        CInstr::Binary { dst, op, a, b } => {
            w.u8(5);
            w.usize(*dst);
            w.u8(binop_tag(*op));
            w.usize(*a);
            w.usize(*b);
        }
        CInstr::FusedBinary {
            dst,
            op1,
            a,
            b,
            op2,
            c,
            swapped,
        } => {
            w.u8(6);
            w.usize(*dst);
            w.u8(binop_tag(*op1));
            w.usize(*a);
            w.usize(*b);
            w.u8(binop_tag(*op2));
            w.usize(*c);
            w.bool(*swapped);
        }
        CInstr::ExpandDims { dst, src, axis } => {
            w.u8(7);
            w.usize(*dst);
            w.usize(*src);
            w.usize(*axis);
        }
        CInstr::Broadcast { dst, src, shape } => {
            w.u8(8);
            w.usize(*dst);
            w.usize(*src);
            write_shape(w, shape);
        }
        CInstr::View { dst, src, shape } => {
            w.u8(9);
            w.usize(*dst);
            w.usize(*src);
            write_shape(w, shape);
        }
        CInstr::Trans { dst, src } => {
            w.u8(10);
            w.usize(*dst);
            w.usize(*src);
        }
        CInstr::Load {
            dst,
            param,
            offset,
            mask,
            other,
            site,
        } => {
            w.u8(11);
            w.usize(*dst);
            w.usize(*param);
            w.usize(*offset);
            write_mask(w, mask);
            w.f64_bits(*other);
            w.u32(*site);
        }
        CInstr::Store {
            param,
            offset,
            value,
            mask,
            site,
        } => {
            w.u8(12);
            w.usize(*param);
            w.usize(*offset);
            w.usize(*value);
            write_mask(w, mask);
            w.u32(*site);
        }
        CInstr::AtomicAdd {
            param,
            offset,
            value,
            mask,
            site,
        } => {
            w.u8(13);
            w.usize(*param);
            w.usize(*offset);
            w.usize(*value);
            write_mask(w, mask);
            w.u32(*site);
        }
        CInstr::Dot { dst, a, b } => {
            w.u8(14);
            w.usize(*dst);
            w.usize(*a);
            w.usize(*b);
        }
        CInstr::Sum { dst, src, axis } => {
            w.u8(15);
            w.usize(*dst);
            w.usize(*src);
            w.usize(*axis);
        }
        CInstr::Loop {
            var,
            start,
            end,
            step,
            body,
        } => {
            w.u8(16);
            w.usize(*var);
            w.i64(*start);
            w.i64(*end);
            w.i64(*step);
            write_cnodes(w, body);
        }
        CInstr::LoopDyn {
            var,
            start,
            end,
            body,
        } => {
            w.u8(17);
            w.usize(*var);
            w.usize(*start);
            w.usize(*end);
            write_cnodes(w, body);
        }
    }
}

fn write_cnodes(w: &mut Writer, body: &[CNode]) {
    w.usize(body.len());
    for node in body {
        match node.cached {
            Some(lvl) => {
                w.u8(1);
                w.u8(lvl);
            }
            None => w.u8(0),
        }
        write_cinstr(w, &node.instr);
    }
}

struct Bounds {
    num_regs: usize,
    num_params: usize,
    num_sites: usize,
}

fn read_reg(r: &mut Reader<'_>, bounds: &Bounds) -> Result<Reg, SnapshotError> {
    let reg = r.usize("program register")?;
    if reg >= bounds.num_regs {
        return Err(SnapshotError::Invalid {
            context: format!(
                "program register {reg} out of range ({} declared)",
                bounds.num_regs
            ),
        });
    }
    Ok(reg)
}

fn read_param(r: &mut Reader<'_>, bounds: &Bounds) -> Result<usize, SnapshotError> {
    let param = r.usize("program parameter")?;
    if param >= bounds.num_params {
        return Err(SnapshotError::Invalid {
            context: format!(
                "program parameter {param} out of range ({} declared)",
                bounds.num_params
            ),
        });
    }
    Ok(param)
}

fn read_site(r: &mut Reader<'_>, bounds: &Bounds) -> Result<u32, SnapshotError> {
    let site = r.u32("program site id")?;
    if (site as usize) >= bounds.num_sites {
        return Err(SnapshotError::Invalid {
            context: format!("site id {site} out of range ({} sites)", bounds.num_sites),
        });
    }
    Ok(site)
}

fn read_mask(r: &mut Reader<'_>, bounds: &Bounds) -> Result<Option<Reg>, SnapshotError> {
    if r.bool("program mask presence")? {
        Ok(Some(read_reg(r, bounds)?))
    } else {
        Ok(None)
    }
}

fn read_shape(r: &mut Reader<'_>) -> Result<Vec<usize>, SnapshotError> {
    let n = r.seq_len(8, "program shape length")?;
    let mut shape = Vec::with_capacity(n);
    for _ in 0..n {
        shape.push(r.usize("program shape dim")?);
    }
    Ok(shape)
}

fn read_cinstr(r: &mut Reader<'_>, bounds: &Bounds, depth: usize) -> Result<CInstr, SnapshotError> {
    Ok(match r.u8("program instruction tag")? {
        1 => CInstr::ProgramId {
            dst: read_reg(r, bounds)?,
            axis: r.usize("program_id axis")?,
        },
        2 => CInstr::Const {
            dst: read_reg(r, bounds)?,
            value: r.f64_bits("const value")?,
        },
        3 => CInstr::Arange {
            dst: read_reg(r, bounds)?,
            len: r.usize("arange len")?,
        },
        4 => CInstr::Full {
            dst: read_reg(r, bounds)?,
            shape: read_shape(r)?,
            value: r.f64_bits("full value")?,
        },
        5 => CInstr::Binary {
            dst: read_reg(r, bounds)?,
            op: tag_binop(r.u8("binary op")?)?,
            a: read_reg(r, bounds)?,
            b: read_reg(r, bounds)?,
        },
        6 => CInstr::FusedBinary {
            dst: read_reg(r, bounds)?,
            op1: tag_binop(r.u8("fused op1")?)?,
            a: read_reg(r, bounds)?,
            b: read_reg(r, bounds)?,
            op2: tag_binop(r.u8("fused op2")?)?,
            c: read_reg(r, bounds)?,
            swapped: r.bool("fused swapped")?,
        },
        7 => CInstr::ExpandDims {
            dst: read_reg(r, bounds)?,
            src: read_reg(r, bounds)?,
            axis: r.usize("expand axis")?,
        },
        8 => CInstr::Broadcast {
            dst: read_reg(r, bounds)?,
            src: read_reg(r, bounds)?,
            shape: read_shape(r)?,
        },
        9 => CInstr::View {
            dst: read_reg(r, bounds)?,
            src: read_reg(r, bounds)?,
            shape: read_shape(r)?,
        },
        10 => CInstr::Trans {
            dst: read_reg(r, bounds)?,
            src: read_reg(r, bounds)?,
        },
        11 => CInstr::Load {
            dst: read_reg(r, bounds)?,
            param: read_param(r, bounds)?,
            offset: read_reg(r, bounds)?,
            mask: read_mask(r, bounds)?,
            other: r.f64_bits("load other")?,
            site: read_site(r, bounds)?,
        },
        12 => CInstr::Store {
            param: read_param(r, bounds)?,
            offset: read_reg(r, bounds)?,
            value: read_reg(r, bounds)?,
            mask: read_mask(r, bounds)?,
            site: read_site(r, bounds)?,
        },
        13 => CInstr::AtomicAdd {
            param: read_param(r, bounds)?,
            offset: read_reg(r, bounds)?,
            value: read_reg(r, bounds)?,
            mask: read_mask(r, bounds)?,
            site: read_site(r, bounds)?,
        },
        14 => CInstr::Dot {
            dst: read_reg(r, bounds)?,
            a: read_reg(r, bounds)?,
            b: read_reg(r, bounds)?,
        },
        15 => CInstr::Sum {
            dst: read_reg(r, bounds)?,
            src: read_reg(r, bounds)?,
            axis: r.usize("sum axis")?,
        },
        16 => CInstr::Loop {
            var: read_reg(r, bounds)?,
            start: r.i64("loop start")?,
            end: r.i64("loop end")?,
            step: r.i64("loop step")?,
            body: read_cnodes(r, bounds, depth + 1)?,
        },
        17 => CInstr::LoopDyn {
            var: read_reg(r, bounds)?,
            start: read_reg(r, bounds)?,
            end: read_reg(r, bounds)?,
            body: read_cnodes(r, bounds, depth + 1)?,
        },
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "program instruction tag",
            })
        }
    })
}

fn read_cnodes(
    r: &mut Reader<'_>,
    bounds: &Bounds,
    depth: usize,
) -> Result<Vec<CNode>, SnapshotError> {
    if depth > MAX_LOOP_DEPTH {
        return Err(SnapshotError::Invalid {
            context: format!("program loop nesting exceeds {MAX_LOOP_DEPTH}"),
        });
    }
    let n = r.seq_len(2, "program body length")?;
    let mut body = Vec::with_capacity(n);
    for _ in 0..n {
        let cached = if r.bool("cached presence")? {
            Some(r.u8("cached level")?)
        } else {
            None
        };
        let instr = read_cinstr(r, bounds, depth)?;
        body.push(CNode { cached, instr });
    }
    Ok(body)
}

impl Program {
    /// Append this program's snapshot encoding to `w`. The caller is
    /// expected to store the kernel and launch shape alongside (they
    /// are the cache key); only lowering products are encoded here.
    pub fn encode_snapshot(&self, w: &mut Writer) {
        w.usize(self.num_regs);
        w.bool(self.dedup_ok);
        w.bool(self.dot_f16);
        w.bool(self.parallel_execute_ok);
        w.usize(self.sites.len());
        for s in &self.sites {
            w.usize(s.param);
            w.bool(s.is_atomic);
            w.bool(s.is_write);
            w.f64_bits(s.coeff);
            w.bool(s.traced);
        }
        w.usize(self.level2_regs.len());
        for &reg in &self.level2_regs {
            w.usize(reg);
        }
        w.usize(self.units.len());
        for unit in &self.units {
            w.u8(match unit.mode {
                UnitMode::Once => 0,
                UnitMode::PerRow => 1,
                UnitMode::PerInstance => 2,
            });
            w.usize(unit.release.len());
            for &reg in &unit.release {
                w.usize(reg);
            }
            write_cinstr(w, &unit.instr);
        }
    }

    /// Decode a program previously written by
    /// [`Program::encode_snapshot`], recomputing every kernel- and
    /// shape-derived field from the given key. No lowering runs.
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError`] on any damaged or forged encoding
    /// (truncation, unknown tags, out-of-range indices, bad grid or
    /// parameter counts) — never a panic.
    pub fn decode_snapshot(
        kernel: &Kernel,
        grid: &[usize],
        lens: &[usize],
        dtypes: &[DType],
        r: &mut Reader<'_>,
    ) -> Result<Program, SnapshotError> {
        let invalid = |e: GpuError| SnapshotError::Invalid {
            context: format!("program key: {e}"),
        };
        if lens.len() != kernel.params.len() || dtypes.len() != kernel.params.len() {
            return Err(invalid(GpuError::ParamCountMismatch {
                expected: kernel.params.len(),
                actual: lens.len(),
            }));
        }
        if grid.is_empty() || grid.len() > 3 || grid.contains(&0) {
            return Err(invalid(GpuError::BadGrid(grid.to_vec())));
        }
        let mut gdims = [1usize; 3];
        gdims[..grid.len()].copy_from_slice(grid);
        let instances = gdims[0] * gdims[1] * gdims[2];

        let num_regs = r.usize("program num_regs")?;
        if num_regs != kernel.num_regs {
            return Err(SnapshotError::Invalid {
                context: format!(
                    "program num_regs {num_regs} disagrees with kernel ({})",
                    kernel.num_regs
                ),
            });
        }
        let dedup_ok = r.bool("program dedup_ok")?;
        let dot_f16 = r.bool("program dot_f16")?;
        let parallel_execute_ok = r.bool("program parallel_execute_ok")?;

        let n_sites = r.seq_len(12, "site count")?;
        let mut sites = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            let param = r.usize("site param")?;
            if param >= lens.len() {
                return Err(SnapshotError::Invalid {
                    context: format!("site param {param} out of range ({})", lens.len()),
                });
            }
            sites.push(SiteInfo {
                param,
                is_atomic: r.bool("site is_atomic")?,
                is_write: r.bool("site is_write")?,
                coeff: r.f64_bits("site coeff")?,
                traced: r.bool("site traced")?,
            });
        }

        let bounds = Bounds {
            num_regs,
            num_params: lens.len(),
            num_sites: sites.len(),
        };

        let n_l2 = r.seq_len(8, "level2 reg count")?;
        let mut level2_regs = Vec::with_capacity(n_l2);
        for _ in 0..n_l2 {
            level2_regs.push(read_reg(r, &bounds)?);
        }

        let n_units = r.seq_len(2, "unit count")?;
        let mut units = Vec::with_capacity(n_units);
        for _ in 0..n_units {
            let mode = match r.u8("unit mode")? {
                0 => UnitMode::Once,
                1 => UnitMode::PerRow,
                2 => UnitMode::PerInstance,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        context: "unit mode tag",
                    })
                }
            };
            let n_rel = r.seq_len(8, "release count")?;
            let mut release = Vec::with_capacity(n_rel);
            for _ in 0..n_rel {
                release.push(read_reg(r, &bounds)?);
            }
            let instr = read_cinstr(r, &bounds, 0)?;
            units.push(CUnit {
                mode,
                instr,
                release,
            });
        }

        Ok(Program {
            name: kernel.name.clone(),
            param_names: kernel.params.iter().map(|p| p.name.clone()).collect(),
            num_regs,
            grid: grid.to_vec(),
            gdims,
            instances,
            units,
            level2_regs,
            sites,
            dedup_ok,
            params: ParamTable::new(lens, dtypes),
            dot_f16,
            parallel_execute_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_kernel::KernelBuilder;
    use insum_tensor::Tensor;

    // A small kernel exercising loads, stores, arithmetic, and a loop —
    // enough to cover fusion and site classification in the encoding.
    fn sample() -> (Kernel, Vec<usize>, Vec<usize>, Vec<DType>) {
        let mut b = KernelBuilder::new("persist_sample");
        let a = b.input("A");
        let c = b.output("C");
        let pid = b.program_id(0);
        let lanes = b.arange(16);
        let sixteen = b.constant(16.0);
        let base = b.binary(BinOp::Mul, pid, sixteen);
        let offs = b.binary(BinOp::Add, base, lanes);
        let x = b.load(a, offs, None, 0.0);
        let y = b.binary(BinOp::Add, x, x);
        let z = b.binary(BinOp::Mul, y, x);
        b.store(c, offs, z, None);
        let kernel = b.build();
        (kernel, vec![4], vec![64, 64], vec![DType::F32, DType::F32])
    }

    #[test]
    fn decode_matches_fresh_compile_bit_for_bit() {
        let (kernel, grid, lens, dtypes) = sample();
        let compiled = Program::compile(&kernel, &grid, &lens, &dtypes).unwrap();
        let mut w = Writer::new();
        compiled.encode_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = Program::decode_snapshot(&kernel, &grid, &lens, &dtypes, &mut r).unwrap();
        assert!(r.is_exhausted());

        // Re-encoding the decoded program must reproduce the bytes —
        // structural identity without a derived PartialEq.
        let mut w2 = Writer::new();
        decoded.encode_snapshot(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);

        // And launching it must produce bit-identical results.
        let device = crate::DeviceModel::rtx3090();
        let input = Tensor::from_fn(vec![64], |i| (i[0] as f32) * 0.25 - 3.0);
        let mut in_a = input.clone();
        let mut out_a = Tensor::zeros(vec![64]);
        compiled
            .launch(&mut [&mut in_a, &mut out_a], &device, crate::Mode::Execute)
            .unwrap();
        let mut in_b = input.clone();
        let mut out_b = Tensor::zeros(vec![64]);
        decoded
            .launch(&mut [&mut in_b, &mut out_b], &device, crate::Mode::Execute)
            .unwrap();
        assert_eq!(out_a, out_b);
        let bits_a: Vec<u32> = out_a.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = out_b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }

    #[test]
    fn truncations_and_garbage_are_typed() {
        let (kernel, grid, lens, dtypes) = sample();
        let compiled = Program::compile(&kernel, &grid, &lens, &dtypes).unwrap();
        let mut w = Writer::new();
        compiled.encode_snapshot(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = Program::decode_snapshot(&kernel, &grid, &lens, &dtypes, &mut r);
            // Prefixes must fail or (if a prefix happens to decode) be
            // detected by the caller's exhaustion check.
            if res.is_ok() {
                assert!(!r.is_exhausted() || cut == bytes.len());
            }
        }
    }

    #[test]
    fn key_mismatches_are_rejected() {
        let (kernel, grid, lens, dtypes) = sample();
        let compiled = Program::compile(&kernel, &grid, &lens, &dtypes).unwrap();
        let mut w = Writer::new();
        compiled.encode_snapshot(&mut w);
        let bytes = w.into_bytes();

        // Wrong parameter count.
        let mut r = Reader::new(&bytes);
        assert!(
            Program::decode_snapshot(&kernel, &grid, &lens[..1], &dtypes[..1], &mut r).is_err()
        );
        // Bad grid.
        let mut r = Reader::new(&bytes);
        assert!(Program::decode_snapshot(&kernel, &[], &lens, &dtypes, &mut r).is_err());
        // Kernel with a different register count.
        let mut small = kernel.clone();
        small.num_regs += 1;
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Program::decode_snapshot(&small, &grid, &lens, &dtypes, &mut r),
            Err(SnapshotError::Invalid { .. })
        ));
    }
}
