//! Ahead-of-time program compilation: lower a [`Kernel`] once per launch
//! shape into a [`Program`] that thousands of grid instances execute.
//!
//! The seed interpreter re-walked the kernel IR tree for every grid
//! instance, re-materializing `arange`/constant blocks and re-deriving
//! every schedule-invariant offset each time. Compilation hoists that
//! work with four coordinated analyses:
//!
//! 1. **pid-dependence levels** — every register is classified by the
//!    grid axes its value (transitively) depends on: level 0 values are
//!    *grid-invariant* (computed once per launch/shard and shared
//!    read-only by every instance), level 1 values are invariant along
//!    grid axis 0 (computed once per *row* of instances — axis 0
//!    iterates fastest), and level 2 values are re-computed per
//!    instance. Invariant instructions trapped inside per-instance loops
//!    are cached as *occurrence streams*: the row representative records
//!    one value per dynamic execution, later instances replay the
//!    stream. Costs are still charged to every instance (they are
//!    deterministic), so [`crate::KernelStats`] and timing stay
//!    bit-identical to the reference interpreter.
//! 2. **last-use liveness** — per-unit release lists return dead
//!    register buffers to the allocation pool immediately instead of
//!    waiting for the end-of-instance sweep, and the sweep itself only
//!    touches the per-instance registers.
//! 3. **superinstructions** — adjacent `Binary` pairs whose intermediate
//!    register is used exactly once fuse into one dispatch
//!    ([`CInstr::FusedBinary`]), skipping the intermediate's register
//!    traffic while preserving both instructions' counters and the
//!    two-rounding floating-point semantics.
//! 4. **address-stream classification** — every memory-access site's
//!    offset stream is classified as grid-invariant, affine in the
//!    axis-0 coordinate (`offsets = base + pid0 · c` with a compile-time
//!    integer constant `c` whose byte stride is sector-aligned), or
//!    opaque. When every site is invariant/affine (and masks, loop trip
//!    counts, and metadata loads are axis-0-invariant), all instances of
//!    a row form one *instance class*: [`Mode::Analytic`](crate::Mode)
//!    launches execute the row representative once and replay the
//!    remaining members by shifting the recorded sector runs and atomic
//!    address streams — O(classes) interpretation instead of
//!    O(instances), with identical stats, DRAM first-touch sets, atomic
//!    collision counts, and per-instance times.
//!
//! Compilation is cheap (one pass per analysis over the instruction
//! tree), but `insum_inductor`'s `ProgramCache` still memoizes programs
//! across launches keyed by kernel fingerprint + grid + argument
//! metadata, so repeated executions and autotuning sweeps never re-lower.

use crate::block::apply_binop;
use crate::interp::{GpuError, SECTOR};
use insum_kernel::{param_usage, BinOp, Instr, Kernel, Reg};
use insum_tensor::DType;

/// How often a top-level unit executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnitMode {
    /// Once per launch (per shard); values persist in their registers.
    Once,
    /// Once per row of instances sharing grid coordinates (y, z).
    PerRow,
    /// Every instance.
    PerInstance,
}

/// A compiled instruction. Mirrors [`Instr`] with loop bodies lowered to
/// [`CNode`]s, memory accesses annotated with site ids, and fused
/// superinstructions.
#[derive(Debug, Clone)]
pub(crate) enum CInstr {
    ProgramId {
        dst: Reg,
        axis: usize,
    },
    Const {
        dst: Reg,
        value: f64,
    },
    Arange {
        dst: Reg,
        len: usize,
    },
    Full {
        dst: Reg,
        shape: Vec<usize>,
        value: f64,
    },
    Binary {
        dst: Reg,
        op: BinOp,
        a: Reg,
        b: Reg,
    },
    /// `tmp = a op1 b; dst = tmp op2 c` (or `c op2 tmp` when `swapped`),
    /// with `tmp` dead afterwards: one dispatch, two instructions'
    /// counters, and the same two per-element roundings as the unfused
    /// pair.
    FusedBinary {
        dst: Reg,
        op1: BinOp,
        a: Reg,
        b: Reg,
        op2: BinOp,
        c: Reg,
        swapped: bool,
    },
    ExpandDims {
        dst: Reg,
        src: Reg,
        axis: usize,
    },
    Broadcast {
        dst: Reg,
        src: Reg,
        shape: Vec<usize>,
    },
    View {
        dst: Reg,
        src: Reg,
        shape: Vec<usize>,
    },
    Trans {
        dst: Reg,
        src: Reg,
    },
    Load {
        dst: Reg,
        param: usize,
        offset: Reg,
        mask: Option<Reg>,
        other: f64,
        site: u32,
    },
    Store {
        param: usize,
        offset: Reg,
        value: Reg,
        mask: Option<Reg>,
        site: u32,
    },
    AtomicAdd {
        param: usize,
        offset: Reg,
        value: Reg,
        mask: Option<Reg>,
        site: u32,
    },
    Dot {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Sum {
        dst: Reg,
        src: Reg,
        axis: usize,
    },
    Loop {
        var: Reg,
        start: i64,
        end: i64,
        step: i64,
        body: Vec<CNode>,
    },
    LoopDyn {
        var: Reg,
        start: Reg,
        end: Reg,
        body: Vec<CNode>,
    },
}

/// One instruction inside a per-instance region. `cached` is the
/// invariance level (0 grid-invariant, 1 row-invariant) of instructions
/// whose per-occurrence values the representative records and later
/// instances replay; `None` executes every time.
#[derive(Debug, Clone)]
pub(crate) struct CNode {
    pub(crate) cached: Option<u8>,
    pub(crate) instr: CInstr,
}

/// A top-level unit: one instruction (possibly a whole loop) plus its
/// execution frequency and the per-instance registers that die with it.
#[derive(Debug, Clone)]
pub(crate) struct CUnit {
    pub(crate) mode: UnitMode,
    pub(crate) instr: CInstr,
    /// Level-2 registers whose last use is inside this unit: released to
    /// the buffer pool right after it executes.
    pub(crate) release: Vec<Reg>,
}

/// Per-site address-stream classification.
#[derive(Debug, Clone)]
pub(crate) struct SiteInfo {
    pub(crate) param: usize,
    pub(crate) is_atomic: bool,
    pub(crate) is_write: bool,
    /// Along grid axis 0, the site's element offsets shift by
    /// `pid0 · coeff`, with `coeff · esize` a whole number of sectors
    /// (0 for axis-0-invariant streams). Meaningless when the program's
    /// `dedup_ok` is false.
    pub(crate) coeff: f64,
    /// Whether the row representative must record this site's streams
    /// for member replay (all atomics, plus shifted loads/stores).
    pub(crate) traced: bool,
}

/// Shared per-launch parameter table (address layout, sizes, dtypes) —
/// identical to the seed interpreter's layout.
pub(crate) struct ParamTable {
    pub(crate) bases: Vec<u64>,
    pub(crate) esizes: Vec<u64>,
    pub(crate) lens: Vec<usize>,
    pub(crate) dtypes: Vec<DType>,
    pub(crate) total_sectors: u64,
}

impl ParamTable {
    pub(crate) fn new(lens: &[usize], dtypes: &[DType]) -> ParamTable {
        // Parameter layout in the simulated address space (256-byte
        // aligned), exactly as the seed interpreter laid it out.
        let mut bases = Vec::with_capacity(lens.len());
        let mut esizes = Vec::with_capacity(lens.len());
        let mut cursor = 0u64;
        for (&len, &dt) in lens.iter().zip(dtypes) {
            bases.push(cursor);
            let esize = dt.size_bytes() as u64;
            esizes.push(esize);
            cursor += (len as u64 * esize).div_ceil(256) * 256 + 256;
        }
        ParamTable {
            bases,
            esizes,
            lens: lens.to_vec(),
            dtypes: dtypes.to_vec(),
            total_sectors: cursor.div_ceil(SECTOR),
        }
    }
}

/// A kernel lowered for one launch shape: grid dimensions and argument
/// metadata are baked in. Compile once with [`Program::compile`], then
/// launch any number of times with [`Program::launch`] /
/// [`Program::launch_with`] — results are bit-identical to
/// [`crate::launch`] on the same kernel and inputs.
pub struct Program {
    /// Kernel name (for reports).
    pub(crate) name: String,
    /// Parameter names (for out-of-bounds diagnostics); execution runs
    /// the lowered units, so the original instruction tree is not kept.
    pub(crate) param_names: Vec<String>,
    pub(crate) num_regs: usize,
    pub(crate) grid: Vec<usize>,
    pub(crate) gdims: [usize; 3],
    pub(crate) instances: usize,
    pub(crate) units: Vec<CUnit>,
    /// Registers written by per-instance code: the only ones cleared
    /// between instances (level-0/1 registers persist by construction).
    pub(crate) level2_regs: Vec<Reg>,
    pub(crate) sites: Vec<SiteInfo>,
    /// True when every access site is invariant/affine along axis 0 —
    /// analytic launches may dedup each row into one instance class.
    pub(crate) dedup_ok: bool,
    pub(crate) params: ParamTable,
    pub(crate) dot_f16: bool,
    /// No parameter is both loaded and written: Execute-mode instances
    /// may run out of order across host threads.
    pub(crate) parallel_execute_ok: bool,
}

impl Program {
    /// The launch grid this program was compiled for.
    pub fn grid(&self) -> &[usize] {
        &self.grid
    }

    /// Total grid instances per launch.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// True when analytic launches can dedup each row of instances into
    /// one costed representative (see the module docs).
    pub fn analytic_dedup_available(&self) -> bool {
        self.dedup_ok
    }

    /// Classification summary for diagnostics and benchmarks:
    /// `(once_units, per_row_units, per_instance_units, cached_nodes)`.
    pub fn classification(&self) -> (usize, usize, usize, usize) {
        let mut once = 0;
        let mut row = 0;
        let mut inst = 0;
        let mut cached = 0;
        fn count_cached(i: &CInstr, cached: &mut usize) {
            if let CInstr::Loop { body, .. } | CInstr::LoopDyn { body, .. } = i {
                for n in body {
                    if n.cached.is_some() {
                        *cached += 1;
                    }
                    count_cached(&n.instr, cached);
                }
            }
        }
        for u in &self.units {
            match u.mode {
                UnitMode::Once => once += 1,
                UnitMode::PerRow => row += 1,
                UnitMode::PerInstance => inst += 1,
            }
            count_cached(&u.instr, &mut cached);
        }
        (once, row, inst, cached)
    }

    /// Compile a kernel for a launch shape. `lens`/`dtypes` describe the
    /// argument tensors positionally (element counts and dtypes — the
    /// values are bound later, at launch time).
    ///
    /// # Errors
    ///
    /// * [`GpuError::Kernel`] if the kernel fails validation.
    /// * [`GpuError::ParamCountMismatch`] if `lens`/`dtypes` do not match
    ///   the kernel's parameter list.
    /// * [`GpuError::BadGrid`] if the grid is empty, has more than three
    ///   dimensions, or contains a zero.
    pub fn compile(
        kernel: &Kernel,
        grid: &[usize],
        lens: &[usize],
        dtypes: &[DType],
    ) -> Result<Program, GpuError> {
        kernel.validate()?;
        if lens.len() != kernel.params.len() || dtypes.len() != kernel.params.len() {
            return Err(GpuError::ParamCountMismatch {
                expected: kernel.params.len(),
                actual: lens.len(),
            });
        }
        if grid.is_empty() || grid.len() > 3 || grid.contains(&0) {
            return Err(GpuError::BadGrid(grid.to_vec()));
        }
        let mut gdims = [1usize; 3];
        gdims[..grid.len()].copy_from_slice(grid);
        let instances = gdims[0] * gdims[1] * gdims[2];

        let usage = param_usage(kernel);
        let mut levels = compute_levels(kernel, &usage.written);
        if gdims[0] == 1 {
            // Rows are singletons: per-row caching would record streams
            // every instance and replay them never. Folding level 1 into
            // level 2 keeps only the profitable grid-invariant tier.
            for l in &mut levels.reg {
                if *l == 1 {
                    *l = 2;
                }
            }
        }
        let uses = reg_use_counts(kernel);
        let avals = compute_avals(kernel, dtypes, &usage.written);
        let params = ParamTable::new(lens, dtypes);

        let mut ctx = Lowering {
            levels: &levels,
            uses: &uses,
            avals: &avals,
            params: &params,
            sites: Vec::new(),
            dedup_ok: avals.loops_ok,
        };
        let mut units = Vec::new();
        for chunk in fuse_body(&kernel.body, &levels, &uses) {
            // A unit's frequency covers its whole subtree *and* every
            // register it writes: a prologue `full(...)` that a
            // per-instance loop also writes (the accumulator pattern)
            // must re-execute per instance to reset the register.
            let lvl = chunk_unit_level(&chunk, &levels);
            let instr = ctx.lower_chunk(&chunk, lvl >= 2, 0);
            units.push(CUnit {
                mode: match lvl {
                    0 => UnitMode::Once,
                    1 => UnitMode::PerRow,
                    _ => UnitMode::PerInstance,
                },
                instr,
                release: Vec::new(),
            });
        }

        // Last-use liveness at top-level granularity: after the final
        // unit that reads a per-instance register, its buffer is dead.
        let mut last_use: Vec<Option<usize>> = vec![None; kernel.num_regs];
        for (i, unit) in units.iter().enumerate() {
            for_each_read_ci(&unit.instr, &mut |r| last_use[r] = Some(i));
        }
        for (i, unit) in units.iter_mut().enumerate() {
            unit.release = last_use
                .iter()
                .enumerate()
                .filter(|&(r, lu)| *lu == Some(i) && levels.reg[r] >= 2)
                .map(|(r, _)| r)
                .collect();
        }

        let level2_regs: Vec<Reg> = (0..kernel.num_regs)
            .filter(|&r| levels.reg[r] >= 2)
            .collect();

        let dot_f16 = {
            let floats: Vec<DType> = dtypes.iter().copied().filter(|d| d.is_float()).collect();
            !floats.is_empty() && floats.iter().all(|&d| d == DType::F16)
        };

        Ok(Program {
            name: kernel.name.clone(),
            param_names: kernel.params.iter().map(|p| p.name.clone()).collect(),
            num_regs: kernel.num_regs,
            grid: grid.to_vec(),
            gdims,
            instances,
            units,
            level2_regs,
            sites: ctx.sites,
            dedup_ok: ctx.dedup_ok,
            params,
            dot_f16,
            parallel_execute_ok: usage.no_read_write_params(),
        })
    }
}

// ---------------------------------------------------------------------
// pid-dependence levels
// ---------------------------------------------------------------------

pub(crate) struct Levels {
    /// Invariance level per register: 0 grid-invariant, 1 row-invariant
    /// (axis 0 free), 2 per-instance.
    pub(crate) reg: Vec<u8>,
}

/// Fixpoint over the instruction tree: an instruction's level is the max
/// of its intrinsic level (`program_id` axes, loads from written
/// parameters) and its operands' register levels; a register's level is
/// the max over its writers. Loop-carried dependences converge in a few
/// passes.
fn compute_levels(kernel: &Kernel, written: &[bool]) -> Levels {
    let mut reg = vec![0u8; kernel.num_regs];
    loop {
        let before = reg.clone();
        levels_pass(&kernel.body, written, &mut reg);
        if reg == before {
            break;
        }
    }
    Levels { reg }
}

fn levels_pass(body: &[Instr], written: &[bool], reg: &mut [u8]) {
    for instr in body {
        match instr {
            Instr::ProgramId { dst, axis } => {
                let lvl = if *axis == 0 { 2 } else { 1 };
                reg[*dst] = reg[*dst].max(lvl);
            }
            Instr::Const { dst, .. } | Instr::Arange { dst, .. } | Instr::Full { dst, .. } => {
                // Intrinsically invariant; level raised only by other
                // writers of the same register.
                let _ = dst;
            }
            Instr::Binary { dst, a, b, .. } => {
                let lvl = reg[*a].max(reg[*b]);
                reg[*dst] = reg[*dst].max(lvl);
            }
            Instr::ExpandDims { dst, src, .. }
            | Instr::Broadcast { dst, src, .. }
            | Instr::View { dst, src, .. }
            | Instr::Trans { dst, src }
            | Instr::Sum { dst, src, .. } => {
                let lvl = reg[*src];
                reg[*dst] = reg[*dst].max(lvl);
            }
            Instr::Load {
                dst,
                param,
                offset,
                mask,
                ..
            } => {
                // Loads from parameters the kernel also writes see
                // evolving data: never cacheable across instances.
                let base = if written[*param] { 2 } else { 0 };
                let lvl = base.max(reg[*offset]).max(mask.map_or(0, |m| reg[m]));
                reg[*dst] = reg[*dst].max(lvl);
            }
            Instr::Store { .. } | Instr::AtomicAdd { .. } => {}
            Instr::Dot { dst, a, b } => {
                let lvl = reg[*a].max(reg[*b]);
                reg[*dst] = reg[*dst].max(lvl);
            }
            Instr::Loop { body, .. } => levels_pass(body, written, reg),
            Instr::LoopDyn {
                var,
                start,
                end,
                body,
            } => {
                let bounds = reg[*start].max(reg[*end]);
                reg[*var] = reg[*var].max(bounds);
                levels_pass(body, written, reg);
            }
        }
    }
}

/// The level at which a top-level chunk must execute: the max level of
/// every register it writes, plus 2 for memory writes (their effects
/// accumulate or must stay ordered against other instances) and the
/// levels of dynamic loop bounds (they control trip counts).
fn chunk_unit_level(chunk: &Chunk<'_>, levels: &Levels) -> u8 {
    let mut lvl = 0u8;
    let mut visit = |instr: &Instr| {
        let walk = |i: &Instr, lvl: &mut u8| match i {
            Instr::Store { .. } | Instr::AtomicAdd { .. } => *lvl = 2,
            Instr::LoopDyn { start, end, .. } => {
                *lvl = (*lvl).max(levels.reg[*start]).max(levels.reg[*end]);
            }
            _ => {}
        };
        visit_tree(instr, &mut |i| walk(i, &mut lvl));
        for_each_write(instr, &mut |r| lvl = lvl.max(levels.reg[r]));
    };
    match chunk {
        Chunk::One(i) => visit(i),
        Chunk::Pair(a, b) => {
            visit(a);
            visit(b);
        }
    }
    lvl
}

fn visit_tree(instr: &Instr, f: &mut impl FnMut(&Instr)) {
    f(instr);
    if let Instr::Loop { body, .. } | Instr::LoopDyn { body, .. } = instr {
        for i in body {
            visit_tree(i, f);
        }
    }
}

fn for_each_write(instr: &Instr, f: &mut impl FnMut(Reg)) {
    match instr {
        Instr::ProgramId { dst, .. }
        | Instr::Const { dst, .. }
        | Instr::Arange { dst, .. }
        | Instr::Full { dst, .. }
        | Instr::Binary { dst, .. }
        | Instr::ExpandDims { dst, .. }
        | Instr::Broadcast { dst, .. }
        | Instr::View { dst, .. }
        | Instr::Trans { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::Dot { dst, .. }
        | Instr::Sum { dst, .. } => f(*dst),
        Instr::Store { .. } | Instr::AtomicAdd { .. } => {}
        Instr::Loop { var, body, .. } | Instr::LoopDyn { var, body, .. } => {
            f(*var);
            for i in body {
                for_each_write(i, f);
            }
        }
    }
}

/// Visit every register `instr` reads, recursing into loop bodies.
fn for_each_read(instr: &Instr, f: &mut impl FnMut(Reg)) {
    match instr {
        Instr::ProgramId { .. }
        | Instr::Const { .. }
        | Instr::Arange { .. }
        | Instr::Full { .. } => {}
        Instr::Binary { a, b, .. } | Instr::Dot { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Instr::ExpandDims { src, .. }
        | Instr::Broadcast { src, .. }
        | Instr::View { src, .. }
        | Instr::Trans { src, .. }
        | Instr::Sum { src, .. } => f(*src),
        Instr::Load { offset, mask, .. } => {
            f(*offset);
            if let Some(m) = mask {
                f(*m);
            }
        }
        Instr::Store {
            offset,
            value,
            mask,
            ..
        }
        | Instr::AtomicAdd {
            offset,
            value,
            mask,
            ..
        } => {
            f(*offset);
            f(*value);
            if let Some(m) = mask {
                f(*m);
            }
        }
        Instr::Loop { body, .. } => {
            for i in body {
                for_each_read(i, f);
            }
        }
        Instr::LoopDyn {
            start, end, body, ..
        } => {
            f(*start);
            f(*end);
            for i in body {
                for_each_read(i, f);
            }
        }
    }
}

fn for_each_read_ci(instr: &CInstr, f: &mut impl FnMut(Reg)) {
    match instr {
        CInstr::ProgramId { .. }
        | CInstr::Const { .. }
        | CInstr::Arange { .. }
        | CInstr::Full { .. } => {}
        CInstr::Binary { a, b, .. } | CInstr::Dot { a, b, .. } => {
            f(*a);
            f(*b);
        }
        CInstr::FusedBinary { a, b, c, .. } => {
            f(*a);
            f(*b);
            f(*c);
        }
        CInstr::ExpandDims { src, .. }
        | CInstr::Broadcast { src, .. }
        | CInstr::View { src, .. }
        | CInstr::Trans { src, .. }
        | CInstr::Sum { src, .. } => f(*src),
        CInstr::Load { offset, mask, .. } => {
            f(*offset);
            if let Some(m) = mask {
                f(*m);
            }
        }
        CInstr::Store {
            offset,
            value,
            mask,
            ..
        }
        | CInstr::AtomicAdd {
            offset,
            value,
            mask,
            ..
        } => {
            f(*offset);
            f(*value);
            if let Some(m) = mask {
                f(*m);
            }
        }
        CInstr::Loop { body, .. } => {
            for n in body {
                for_each_read_ci(&n.instr, f);
            }
        }
        CInstr::LoopDyn {
            start, end, body, ..
        } => {
            f(*start);
            f(*end);
            for n in body {
                for_each_read_ci(&n.instr, f);
            }
        }
    }
}

fn reg_use_counts(kernel: &Kernel) -> Vec<u32> {
    let mut uses = vec![0u32; kernel.num_regs];
    // `for_each_read` recurses into loop bodies, so one pass over the top
    // level counts every read in the program.
    for instr in &kernel.body {
        for_each_read(instr, &mut |r| uses[r] += 1);
    }
    uses
}

// ---------------------------------------------------------------------
// Superinstruction fusion
// ---------------------------------------------------------------------

/// A view of a body with adjacent fusable `Binary` pairs merged.
enum Chunk<'a> {
    One(&'a Instr),
    /// `(first, second)` — `first.dst` feeds `second` and dies there.
    Pair(&'a Instr, &'a Instr),
}

fn fuse_body<'a>(body: &'a [Instr], levels: &Levels, uses: &[u32]) -> Vec<Chunk<'a>> {
    let mut out = Vec::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if i + 1 < body.len() {
            if let (
                Instr::Binary { dst: d1, .. },
                Instr::Binary {
                    dst: d2,
                    a: a2,
                    b: b2,
                    ..
                },
            ) = (&body[i], &body[i + 1])
            {
                // Exactly one operand of the second instruction is the
                // intermediate, the intermediate is read nowhere else in
                // the whole program, and both registers are per-instance
                // (cached instructions keep one stream entry each).
                let feeds = (a2 == d1) ^ (b2 == d1);
                let hot = levels.reg[*d1] >= 2 && levels.reg[*d2] >= 2;
                if feeds && hot && uses[*d1] == 1 && d2 != d1 {
                    out.push(Chunk::Pair(&body[i], &body[i + 1]));
                    i += 2;
                    continue;
                }
            }
        }
        out.push(Chunk::One(&body[i]));
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

struct Lowering<'a> {
    levels: &'a Levels,
    uses: &'a [u32],
    avals: &'a Avals,
    params: &'a ParamTable,
    sites: Vec<SiteInfo>,
    dedup_ok: bool,
}

impl Lowering<'_> {
    fn lower_chunk(&mut self, chunk: &Chunk<'_>, per_instance: bool, trip_level: u8) -> CInstr {
        match chunk {
            Chunk::Pair(first, second) => {
                let (
                    Instr::Binary {
                        dst: d1,
                        op: op1,
                        a,
                        b,
                    },
                    Instr::Binary {
                        dst: d2,
                        op: op2,
                        a: a2,
                        b: b2,
                    },
                ) = (*first, *second)
                else {
                    unreachable!("pairs are built from adjacent Binary instrs")
                };
                let swapped = b2 == d1;
                let c = if swapped { *a2 } else { *b2 };
                CInstr::FusedBinary {
                    dst: *d2,
                    op1: *op1,
                    a: *a,
                    b: *b,
                    op2: *op2,
                    c,
                    swapped,
                }
            }
            Chunk::One(instr) => self.lower_one(instr, per_instance, trip_level),
        }
    }

    /// Lower a loop body. `trip_level` is the invariance level of every
    /// enclosing loop's trip count: a node's occurrence stream is only
    /// aligned across instances when both its value *and* the number of
    /// times control reaches it are invariant, so the effective cache
    /// level is the max of the two.
    fn lower_body(&mut self, body: &[Instr], per_instance: bool, trip_level: u8) -> Vec<CNode> {
        let mut nodes = Vec::with_capacity(body.len());
        for chunk in fuse_body(body, self.levels, self.uses) {
            let lvl = chunk_unit_level(&chunk, self.levels).max(trip_level);
            let instr = self.lower_chunk(&chunk, per_instance, trip_level);
            let cacheable = per_instance
                && lvl <= 1
                && !matches!(
                    instr,
                    CInstr::Loop { .. }
                        | CInstr::LoopDyn { .. }
                        | CInstr::Store { .. }
                        | CInstr::AtomicAdd { .. }
                );
            nodes.push(CNode {
                cached: if cacheable { Some(lvl) } else { None },
                instr,
            });
        }
        nodes
    }

    fn lower_one(&mut self, instr: &Instr, per_instance: bool, trip_level: u8) -> CInstr {
        match instr {
            Instr::ProgramId { dst, axis } => CInstr::ProgramId {
                dst: *dst,
                axis: *axis,
            },
            Instr::Const { dst, value } => CInstr::Const {
                dst: *dst,
                value: *value,
            },
            Instr::Arange { dst, len } => CInstr::Arange {
                dst: *dst,
                len: *len,
            },
            Instr::Full { dst, shape, value } => CInstr::Full {
                dst: *dst,
                shape: shape.clone(),
                value: *value,
            },
            Instr::Binary { dst, op, a, b } => CInstr::Binary {
                dst: *dst,
                op: *op,
                a: *a,
                b: *b,
            },
            Instr::ExpandDims { dst, src, axis } => CInstr::ExpandDims {
                dst: *dst,
                src: *src,
                axis: *axis,
            },
            Instr::Broadcast { dst, src, shape } => CInstr::Broadcast {
                dst: *dst,
                src: *src,
                shape: shape.clone(),
            },
            Instr::View { dst, src, shape } => CInstr::View {
                dst: *dst,
                src: *src,
                shape: shape.clone(),
            },
            Instr::Trans { dst, src } => CInstr::Trans {
                dst: *dst,
                src: *src,
            },
            Instr::Load {
                dst,
                param,
                offset,
                mask,
                other,
            } => {
                let site = self.push_site(*param, *offset, *mask, false, false);
                CInstr::Load {
                    dst: *dst,
                    param: *param,
                    offset: *offset,
                    mask: *mask,
                    other: *other,
                    site,
                }
            }
            Instr::Store {
                param,
                offset,
                value,
                mask,
            } => {
                let site = self.push_site(*param, *offset, *mask, true, false);
                CInstr::Store {
                    param: *param,
                    offset: *offset,
                    value: *value,
                    mask: *mask,
                    site,
                }
            }
            Instr::AtomicAdd {
                param,
                offset,
                value,
                mask,
            } => {
                let site = self.push_site(*param, *offset, *mask, true, true);
                CInstr::AtomicAdd {
                    param: *param,
                    offset: *offset,
                    value: *value,
                    mask: *mask,
                    site,
                }
            }
            Instr::Dot { dst, a, b } => CInstr::Dot {
                dst: *dst,
                a: *a,
                b: *b,
            },
            Instr::Sum { dst, src, axis } => CInstr::Sum {
                dst: *dst,
                src: *src,
                axis: *axis,
            },
            Instr::Loop {
                var,
                start,
                end,
                step,
                body,
            } => CInstr::Loop {
                var: *var,
                start: *start,
                end: *end,
                step: *step,
                body: self.lower_body(body, per_instance, trip_level),
            },
            Instr::LoopDyn {
                var,
                start,
                end,
                body,
            } => CInstr::LoopDyn {
                var: *var,
                start: *start,
                end: *end,
                body: self.lower_body(
                    body,
                    per_instance,
                    trip_level
                        .max(self.levels.reg[*start])
                        .max(self.levels.reg[*end]),
                ),
            },
        }
    }

    fn push_site(
        &mut self,
        param: usize,
        offset: Reg,
        mask: Option<Reg>,
        is_write: bool,
        is_atomic: bool,
    ) -> u32 {
        let esize = self.params.esizes[param];
        let coeff = match self.avals.reg[offset] {
            AV::Known { .. } | AV::NX { .. } => Some(0.0),
            AV::Aff(c) if ((c.abs() as u64) * esize).is_multiple_of(SECTOR) => Some(c),
            _ => None,
        };
        let mask_ok = match mask {
            None => true,
            Some(m) => !matches!(self.avals.reg[m], AV::Aff(_) | AV::Bad),
        };
        if coeff.is_none() || !mask_ok {
            self.dedup_ok = false;
        }
        let coeff = coeff.unwrap_or(0.0);
        let id = self.sites.len() as u32;
        self.sites.push(SiteInfo {
            param,
            is_atomic,
            is_write,
            coeff,
            traced: is_atomic || coeff != 0.0,
        });
        id
    }
}

// ---------------------------------------------------------------------
// Affine address-stream analysis (analytic instance classes)
// ---------------------------------------------------------------------

/// Abstract value of a register along grid axis 0, under *analytic*
/// execution semantics (float loads produce zeros). `int` tracks
/// provably-integer values: affine shifts are exact in `f64` only along
/// all-integer chains, so `Aff` is produced and propagated only through
/// them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum AV {
    /// Scalar compile-time constant (axis-0-invariant; usable as a
    /// multiplication coefficient when integral).
    Known { value: f64 },
    /// Axis-0-invariant, not a known constant.
    NX { int: bool },
    /// `value = base + pid0 · c` elementwise, with integer values and a
    /// compile-time integer constant `c != 0`.
    Aff(f64),
    /// Unknown axis-0 dependence.
    Bad,
}

impl AV {
    fn invariant(self) -> bool {
        matches!(self, AV::Known { .. } | AV::NX { .. })
    }

    fn integral(self) -> bool {
        match self {
            AV::Known { value } => value.fract() == 0.0,
            AV::NX { int } => int,
            AV::Aff(_) => true,
            AV::Bad => false,
        }
    }

    fn join(self, other: AV) -> AV {
        if self == other {
            return self;
        }
        match (self, other) {
            (AV::Known { .. } | AV::NX { .. }, AV::Known { .. } | AV::NX { .. }) => AV::NX {
                int: self.integral() && other.integral(),
            },
            _ => AV::Bad,
        }
    }
}

pub(crate) struct Avals {
    pub(crate) reg: Vec<AV>,
    /// No dynamic loop has axis-0-varying trip counts.
    pub(crate) loops_ok: bool,
}

fn compute_avals(kernel: &Kernel, dtypes: &[DType], written: &[bool]) -> Avals {
    let mut reg = vec![AV::NX { int: true }; kernel.num_regs];
    let mut initialized = vec![false; kernel.num_regs];
    let mut loops_ok = true;
    // Fixpoint with join-on-rewrite: loop-carried values that change
    // across iterations widen until stable (or to Bad). Joins are
    // monotone on a 3-level lattice, so convergence takes at most
    // ~3 · num_regs passes; if the safety cap is somehow hit anyway,
    // degrade every register to Bad rather than ship an
    // under-approximation (a stale "invariant" classification would
    // silently break the bit-identity of instance-class replay).
    let cap = 3 * kernel.num_regs + 8;
    let mut converged = false;
    for _ in 0..cap {
        let before = reg.clone();
        avals_pass(
            &kernel.body,
            dtypes,
            written,
            &mut reg,
            &mut initialized,
            &mut loops_ok,
        );
        if reg == before {
            converged = true;
            break;
        }
    }
    if !converged {
        reg.fill(AV::Bad);
        loops_ok = false;
    }
    Avals { reg, loops_ok }
}

fn set_aval(reg: &mut [AV], initialized: &mut [bool], r: Reg, v: AV) {
    if initialized[r] {
        reg[r] = reg[r].join(v);
    } else {
        reg[r] = v;
        initialized[r] = true;
    }
}

fn avals_pass(
    body: &[Instr],
    dtypes: &[DType],
    written: &[bool],
    reg: &mut [AV],
    initialized: &mut [bool],
    loops_ok: &mut bool,
) {
    for instr in body {
        match instr {
            Instr::ProgramId { dst, axis } => {
                let v = if *axis == 0 {
                    AV::Aff(1.0)
                } else {
                    AV::NX { int: true }
                };
                set_aval(reg, initialized, *dst, v);
            }
            Instr::Const { dst, value } => {
                set_aval(reg, initialized, *dst, AV::Known { value: *value })
            }
            Instr::Arange { dst, .. } => set_aval(reg, initialized, *dst, AV::NX { int: true }),
            Instr::Full { dst, value, .. } => set_aval(
                reg,
                initialized,
                *dst,
                AV::NX {
                    int: value.fract() == 0.0,
                },
            ),
            Instr::Binary { dst, op, a, b } => {
                let v = binary_aval(*op, reg[*a], reg[*b]);
                set_aval(reg, initialized, *dst, v);
            }
            Instr::ExpandDims { dst, src, .. }
            | Instr::Broadcast { dst, src, .. }
            | Instr::View { dst, src, .. }
            | Instr::Trans { dst, src } => {
                let v = reg[*src];
                set_aval(reg, initialized, *dst, v);
            }
            Instr::Sum { dst, src, .. } => {
                // Sums of invariant blocks are invariant; affine blocks
                // would need the (runtime) axis length as a coefficient.
                let v = match reg[*src] {
                    AV::Known { .. } | AV::NX { .. } => AV::NX {
                        int: reg[*src].integral(),
                    },
                    _ => AV::Bad,
                };
                set_aval(reg, initialized, *dst, v);
            }
            Instr::Dot { dst, .. } => {
                // Analytic `tl.dot` yields a zeros block whatever the
                // inputs; only the (invariant) shapes matter.
                set_aval(reg, initialized, *dst, AV::NX { int: true });
            }
            Instr::Load {
                dst,
                param,
                offset,
                mask,
                other,
            } => {
                let mask_av = mask.map_or(AV::NX { int: true }, |m| reg[m]);
                let v = if written[*param] {
                    // Conservative: data under a written parameter may
                    // change between launches of the same program.
                    AV::Bad
                } else if dtypes[*param] == DType::I32 {
                    // Metadata loads read real values in analytic mode.
                    if reg[*offset].invariant() && mask_av.invariant() {
                        AV::NX { int: true }
                    } else {
                        AV::Bad
                    }
                } else {
                    // Float loads are zeros/`other` in analytic mode: the
                    // value depends only on the mask.
                    if mask_av.invariant() {
                        AV::NX {
                            int: other.fract() == 0.0,
                        }
                    } else {
                        AV::Bad
                    }
                };
                set_aval(reg, initialized, *dst, v);
            }
            Instr::Store { .. } | Instr::AtomicAdd { .. } => {}
            Instr::Loop { var, body, .. } => {
                set_aval(reg, initialized, *var, AV::NX { int: true });
                avals_pass(body, dtypes, written, reg, initialized, loops_ok);
            }
            Instr::LoopDyn {
                var,
                start,
                end,
                body,
            } => {
                if !(reg[*start].invariant() && reg[*end].invariant()) {
                    // Axis-0-varying trip counts: per-instance costs
                    // genuinely differ, no class dedup.
                    *loops_ok = false;
                }
                set_aval(reg, initialized, *var, AV::NX { int: true });
                avals_pass(body, dtypes, written, reg, initialized, loops_ok);
            }
        }
    }
}

fn binary_aval(op: BinOp, a: AV, b: AV) -> AV {
    use BinOp::*;
    if a == AV::Bad || b == AV::Bad {
        return AV::Bad;
    }
    if let (AV::Known { value: x }, AV::Known { value: y }) = (a, b) {
        return AV::Known {
            value: apply_binop(op, x, y),
        };
    }
    let coeff = |v: AV| match v {
        AV::Aff(c) => c,
        _ => 0.0,
    };
    let both_int = a.integral() && b.integral();
    match op {
        Add | Sub => {
            let c = if op == Add {
                coeff(a) + coeff(b)
            } else {
                coeff(a) - coeff(b)
            };
            if matches!(a, AV::Aff(_)) || matches!(b, AV::Aff(_)) {
                // Affine shifts are exact only along all-integer chains.
                if !both_int {
                    return AV::Bad;
                }
                if c == 0.0 {
                    // Cancelling coefficients: exact integer arithmetic
                    // means the value is axis-0-invariant again.
                    AV::NX { int: true }
                } else {
                    AV::Aff(c)
                }
            } else {
                AV::NX { int: both_int }
            }
        }
        Mul => match (a, b) {
            (AV::Known { value: k }, AV::Aff(c)) | (AV::Aff(c), AV::Known { value: k }) => {
                if k.fract() != 0.0 {
                    AV::Bad
                } else if c * k == 0.0 {
                    AV::NX { int: true }
                } else {
                    AV::Aff(c * k)
                }
            }
            _ if a.invariant() && b.invariant() => AV::NX { int: both_int },
            _ => AV::Bad,
        },
        Div => {
            if a.invariant() && b.invariant() {
                AV::NX { int: false }
            } else {
                AV::Bad
            }
        }
        FloorDiv | Lt | Le | Eq | Ge | And => {
            if a.invariant() && b.invariant() {
                AV::NX { int: true }
            } else {
                AV::Bad
            }
        }
        Mod | Min | Max => {
            if a.invariant() && b.invariant() {
                AV::NX { int: both_int }
            } else {
                AV::Bad
            }
        }
    }
}
