//! Functional + analytic GPU simulator for the kernel IR.
//!
//! This crate is the hardware substitution documented in DESIGN.md: the
//! paper runs Triton kernels on an RTX 3090; the reproduction runs
//! [`insum_kernel::Kernel`] programs on an instruction-level simulator of
//! an RTX-3090-class device. The simulator does two jobs at once:
//!
//! * **Functional execution** ([`Mode::Execute`]) — every load, store,
//!   atomic add, `tl.dot` and block op computes real values against
//!   [`insum_tensor::Tensor`] storage, so compiled kernels are verified
//!   bit-for-bit against the eager reference.
//! * **Cost accounting** (both modes) — every memory access is decomposed
//!   into per-warp 32-byte sector transactions (coalescing model) with a
//!   kernel-resident L2 filter in front of DRAM; `tl.dot` charges Tensor
//!   Core flops, block arithmetic charges scalar ALU flops,
//!   `tl.view`/`tl.trans`/`tl.broadcast_to` charge shared-memory traffic
//!   (the eager-broadcasting tax of §5.2.3), and atomics track per-address
//!   collision counts. A [`DeviceModel`] converts the counters into
//!   seconds, including a load-imbalance term (longest-processor bound
//!   over the SMs) that matters for skewed sparse workloads.
//!
//! [`Mode::Analytic`] runs the same interpreter but skips floating-point
//! value math (metadata loads still execute so gather/scatter addresses
//! are exact); counters are identical to Execute mode. The benchmark
//! harness uses it for large sweeps.

mod block;
mod device;
mod interp;
mod stats;

pub use block::Block;
pub use device::DeviceModel;
pub use interp::{launch, GpuError, Mode};
pub use stats::{KernelReport, KernelStats, Profile};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GpuError>;
