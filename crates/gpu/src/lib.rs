//! Functional + analytic GPU simulator for the kernel IR.
//!
//! This crate is the hardware substitution documented in DESIGN.md: the
//! paper runs Triton kernels on an RTX 3090; the reproduction runs
//! [`insum_kernel::Kernel`] programs on an instruction-level simulator of
//! an RTX-3090-class device. The simulator does two jobs at once:
//!
//! * **Functional execution** ([`Mode::Execute`]) — every load, store,
//!   atomic add, `tl.dot` and block op computes real values against
//!   [`insum_tensor::Tensor`] storage, so compiled kernels are verified
//!   bit-for-bit against the eager reference.
//! * **Cost accounting** (both modes) — every memory access is decomposed
//!   into per-warp 32-byte sector transactions (coalescing model) with a
//!   kernel-resident L2 filter in front of DRAM; `tl.dot` charges Tensor
//!   Core flops, block arithmetic charges scalar ALU flops,
//!   `tl.view`/`tl.trans`/`tl.broadcast_to` charge shared-memory traffic
//!   (the eager-broadcasting tax of §5.2.3), and atomics track per-address
//!   collision counts. A [`DeviceModel`] converts the counters into
//!   seconds, including a load-imbalance term (longest-processor bound
//!   over the SMs) that matters for skewed sparse workloads.
//!
//! [`Mode::Analytic`] runs the same interpreter but skips floating-point
//! value math (metadata loads still execute so gather/scatter addresses
//! are exact); counters are identical to Execute mode. The benchmark
//! harness uses it for large sweeps.
//!
//! # Simulator performance model
//!
//! The interpreter is the hot path of every experiment harness, so its
//! execution core is engineered for host throughput while staying
//! bit-identical to the straightforward seed implementation (kept in
//! the `reference` module as an oracle; `insum_bench`'s `simbench` binary tracks
//! the speedup in `BENCH_sim.json`):
//!
//! * **Strided copy-on-write blocks** — [`Block`] is a view
//!   (`Arc` storage + shape/strides), so `expand_dims`/`view`/
//!   `broadcast_to`/`trans` are metadata edits and scalars (loop
//!   counters, constants) live inline without heap storage. The *cost
//!   model* still charges shared-memory traffic for `view`/`trans`/
//!   `broadcast_to`: the modeled hardware pays it even though the host
//!   no longer copies.
//! * **Register-slot recycling** — overwritten registers donate their
//!   buffers (refcount block included) to a pool, so steady-state loop
//!   iterations allocate nothing.
//! * **Compact access tracking** — the kernel-resident L2 filter is an
//!   address-space bitmap and atomic collisions are per-parameter count
//!   vectors; the per-warp coalescing scan runs over stack buffers with
//!   an arithmetic shortcut for the dominant `base + arange` pattern.
//! * **Bit-exact SIMD** — elementwise f64 arithmetic and the `tl.dot`
//!   inner loops dispatch to 4-wide vector code at runtime where the
//!   host supports it (no fused multiply-add, no reassociation of any
//!   per-element reduction chain, so results are unchanged).
//! * **Deterministic parallelism** — [`launch_with`] can shard the
//!   grid-instance loop across threads ([`LaunchOptions`]); DRAM
//!   first-touch sets union, collision counters add, and Execute-mode
//!   writes replay from per-shard logs in instance order, so outputs and
//!   [`KernelStats`] are bit-for-bit identical to the sequential path at
//!   every thread count. Kernels that read a parameter they also write
//!   fall back to sequential execution.
//!
//! # Compile pipeline
//!
//! Since the "compile-once, launch-many" rework, every launch executes a
//! [`Program`]: the kernel IR is lowered ahead of time (once per launch
//! shape; [`launch`]/[`launch_with`] compile on the fly, while
//! `insum_inductor`'s `ProgramCache` memoizes programs across launches
//! and autotuning trials). Lowering runs four analyses, all with
//! conservative fallbacks so results stay bit-identical to the seed:
//!
//! * **Grid-invariant prologue** — registers are classified by the grid
//!   axes their values transitively depend on. Level-0 (grid-invariant)
//!   instructions — `arange`, constants, `full`, and any arithmetic or
//!   read-only loads closed over them — execute once per launch/shard
//!   and persist in their registers; level-1 (row-invariant, grid axis 0
//!   free) instructions execute once per row of instances. Invariant
//!   instructions trapped inside per-instance loops are recorded as
//!   *occurrence streams* by the row representative and replayed (a
//!   copy-on-write clone plus the recorded cost) by every other
//!   instance. Costs are deterministic, so each instance is still
//!   charged exactly what re-execution would have charged.
//! * **Last-use liveness** — per-unit release lists return dead
//!   register buffers to the allocation pool immediately, and the
//!   between-instance sweep touches only per-instance registers.
//! * **Superinstructions** — adjacent `Binary` pairs whose intermediate
//!   register dies immediately fuse into one dispatch with both
//!   instructions' counters and unchanged per-element rounding.
//! * **Analytic instance classes** — each memory site's offset stream is
//!   classified as grid-invariant or *affine* in the axis-0 coordinate
//!   with a sector-aligned stride. When every site qualifies (masks,
//!   trip counts, and metadata loads axis-0-invariant), an analytic
//!   launch costs one representative per row and replays the members by
//!   shifting the recorded sector runs and atomic address streams —
//!   O(instance classes) interpretation instead of O(instances), with
//!   identical stats, DRAM first-touch sets, collision counts, and
//!   per-instance times. [`LaunchOptions::analytic_dedup`] disables the
//!   replay for equivalence testing.
//!
//! See `crates/gpu/src/program.rs` for the analysis details and
//! `crates/gpu/tests/program_properties.rs` for the equivalence
//! properties that pin the pipeline to the reference interpreter.

mod block;
mod device;
mod interp;
mod micro;
mod persist;
mod program;
#[doc(hidden)]
pub mod reference;
mod stats;

pub use block::Block;
pub use device::DeviceModel;
pub use interp::{launch, launch_with, GpuError, LaunchOptions, Mode};
pub use micro::{copy_view_eligible, run_micro};
pub use program::Program;
pub use stats::{KernelReport, KernelStats, Profile};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GpuError>;
