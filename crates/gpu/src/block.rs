//! Block values: the small n-d arrays kernels compute on.
//!
//! Optimized representation: a block is a *strided view* over shared
//! copy-on-write storage (`Arc<Vec<f64>>`), with scalars held inline so
//! loop counters and constants never touch the heap. Shape transforms —
//! [`Block::expand_dims`], [`Block::broadcast_to`], [`Block::trans`], and
//! contiguous [`Block::view`] — are pure metadata edits that share the
//! underlying buffer; only value-producing ops (loads, arithmetic,
//! reductions) materialize data. The cost model is unaffected: the
//! interpreter charges shared-memory traffic for `view`/`trans`/
//! `broadcast_to` exactly as when they copied eagerly, because that is
//! what the modeled hardware pays.

use insum_kernel::BinOp;
use std::sync::Arc;

/// Maximum block rank (as before the strided rewrite: rank ≤ 4).
pub const MAX_RANK: usize = 4;

/// A uniquely-owned heap buffer recycled through the interpreter's
/// register pool. Wrapping the `Arc` (not just the `Vec`) means the
/// reference-count control block is reused too, so steady-state loop
/// iterations allocate nothing at all.
pub struct PoolBuf {
    arc: Arc<Vec<f64>>,
}

impl PoolBuf {
    /// A fresh, empty buffer.
    pub fn new() -> PoolBuf {
        PoolBuf {
            arc: Arc::new(Vec::new()),
        }
    }

    /// The buffer contents (always accessible: pool buffers are sole
    /// owners by construction).
    pub fn vec(&mut self) -> &mut Vec<f64> {
        Arc::get_mut(&mut self.arc).expect("pool buffers are uniquely owned")
    }
}

impl Default for PoolBuf {
    fn default() -> PoolBuf {
        PoolBuf::new()
    }
}

/// Runtime check for 4-wide f64 SIMD. Elementwise f64 add/mul/compare
/// vectorize bit-exactly (no fused multiply-add, no reassociation of any
/// per-element chain), so the wide path produces identical results; the
/// detection result is cached by the standard library.
#[cfg(target_arch = "x86_64")]
#[inline]
fn wide_f64_available() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn wide_f64_available() -> bool {
    false
}

#[derive(Debug, Clone)]
enum Storage {
    /// A rank-0 scalar held inline (no heap allocation).
    Inline(f64),
    /// Shared row-major-allocated storage addressed through the strides.
    Heap(Arc<Vec<f64>>),
}

/// A block value held in a virtual register: a rank ≤ 4 array of `f64`.
///
/// All kernel arithmetic happens in `f64` so that integer offsets (up to
/// 2^53) and `f32` data are both represented exactly; stores round to the
/// destination tensor's dtype.
#[derive(Debug, Clone)]
pub struct Block {
    rank: u8,
    shape: [usize; MAX_RANK],
    /// Element strides; 0 on broadcast dimensions.
    strides: [usize; MAX_RANK],
    offset: usize,
    storage: Storage,
}

/// Row-major contiguous strides for `shape[..rank]`.
fn contiguous_strides(shape: &[usize; MAX_RANK], rank: usize) -> [usize; MAX_RANK] {
    let mut strides = [0usize; MAX_RANK];
    let mut acc = 1usize;
    for d in (0..rank).rev() {
        strides[d] = acc;
        acc *= shape[d];
    }
    strides
}

fn pack_shape(shape: &[usize]) -> (u8, [usize; MAX_RANK]) {
    assert!(
        shape.len() <= MAX_RANK,
        "block rank {} exceeds {MAX_RANK}",
        shape.len()
    );
    let mut s = [1usize; MAX_RANK];
    s[..shape.len()].copy_from_slice(shape);
    (shape.len() as u8, s)
}

/// A rank ≤ 4 shape without heap storage — the interpreter-internal
/// currency for joint shapes, so hot instructions never allocate a
/// `Vec<usize>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape4 {
    rank: u8,
    dims: [usize; MAX_RANK],
}

impl Shape4 {
    /// Pack from a slice.
    ///
    /// # Panics
    ///
    /// Panics if the rank exceeds `MAX_RANK`.
    pub fn from_slice(shape: &[usize]) -> Shape4 {
        let (rank, dims) = pack_shape(shape);
        Shape4 { rank, dims }
    }

    /// The dimensions.
    pub fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Element count.
    pub fn volume(&self) -> usize {
        self.as_slice().iter().product()
    }

    /// NumPy-style joint broadcast shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn joint(a: &[usize], b: &[usize]) -> Shape4 {
        let nd = a.len().max(b.len());
        assert!(nd <= MAX_RANK, "block rank {nd} exceeds {MAX_RANK}");
        let mut dims = [1usize; MAX_RANK];
        for i in 0..nd {
            let da = if i < nd - a.len() {
                1
            } else {
                a[i - (nd - a.len())]
            };
            let db = if i < nd - b.len() {
                1
            } else {
                b[i - (nd - b.len())]
            };
            assert!(
                da == db || da == 1 || db == 1,
                "incompatible block shapes {a:?} / {b:?}"
            );
            dims[i] = da.max(db);
        }
        Shape4 {
            rank: nd as u8,
            dims,
        }
    }
}

impl Block {
    /// A scalar block (inline; no allocation).
    pub fn scalar(value: f64) -> Block {
        Block {
            rank: 0,
            shape: [1; MAX_RANK],
            strides: [0; MAX_RANK],
            offset: 0,
            storage: Storage::Inline(value),
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the shape volume or the rank
    /// exceeds `MAX_RANK`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f64>) -> Block {
        Block::from_pool(
            shape,
            PoolBuf {
                arc: Arc::new(data),
            },
        )
    }

    /// Build from row-major data held in a recycled pool buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length differs from the shape volume or the
    /// rank exceeds `MAX_RANK`.
    pub fn from_pool(shape: Vec<usize>, buf: PoolBuf) -> Block {
        Block::from_packed(Shape4::from_slice(&shape), buf)
    }

    /// [`Block::from_pool`] from a packed shape (no `Vec` needed).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length differs from the shape volume.
    pub fn from_packed(shape: Shape4, mut buf: PoolBuf) -> Block {
        assert_eq!(
            shape.volume(),
            buf.vec().len(),
            "shape/data volume mismatch"
        );
        if shape.rank == 0 {
            return Block::scalar(buf.vec()[0]);
        }
        Block {
            rank: shape.rank,
            shape: shape.dims,
            strides: contiguous_strides(&shape.dims, shape.rank as usize),
            offset: 0,
            storage: Storage::Heap(buf.arc),
        }
    }

    /// This block's shape in packed form.
    pub fn shape4(&self) -> Shape4 {
        Shape4 {
            rank: self.rank,
            dims: self.shape,
        }
    }

    /// [`Block::full`] reusing a pool buffer for the single backing slot.
    pub fn full_pooled(shape: Vec<usize>, value: f64, buf: PoolBuf) -> Block {
        Block::full_packed(Shape4::from_slice(&shape), value, buf)
    }

    /// [`Block::full_pooled`] from a packed shape (no `Vec` needed).
    pub fn full_packed(shape: Shape4, value: f64, mut buf: PoolBuf) -> Block {
        if shape.rank == 0 {
            return Block::scalar(value);
        }
        let v = buf.vec();
        v.clear();
        v.push(value);
        Block {
            rank: shape.rank,
            shape: shape.dims,
            strides: [0; MAX_RANK],
            offset: 0,
            storage: Storage::Heap(buf.arc),
        }
    }

    /// A block filled with `value`.
    pub fn full(shape: Vec<usize>, value: f64) -> Block {
        if shape.is_empty() {
            return Block::scalar(value);
        }
        // A broadcast view of one element: full blocks are constant, so
        // every dimension can stride 0 over a single slot.
        let (rank, s) = pack_shape(&shape);
        Block {
            rank,
            shape: s,
            strides: [0; MAX_RANK],
            offset: 0,
            storage: Storage::Heap(Arc::new(vec![value])),
        }
    }

    /// `[0, 1, ..., len-1]`.
    pub fn iota(len: usize) -> Block {
        Block::from_vec(vec![len], (0..len).map(|i| i as f64).collect())
    }

    /// The logical shape (empty for scalars).
    pub fn shape(&self) -> &[usize] {
        &self.shape[..self.rank as usize]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape().iter().product()
    }

    /// True if the block has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scalar value of a rank-0 or single-element block.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty.
    pub fn first(&self) -> f64 {
        match &self.storage {
            Storage::Inline(v) => *v,
            Storage::Heap(data) => data[self.offset],
        }
    }

    /// True when logical order equals storage order with no gaps, i.e.
    /// the block can be read as a flat slice.
    pub fn is_contiguous(&self) -> bool {
        match &self.storage {
            Storage::Inline(_) => true,
            Storage::Heap(_) => {
                let mut acc = 1usize;
                for d in (0..self.rank as usize).rev() {
                    if self.shape[d] != 1 && self.strides[d] != acc {
                        return false;
                    }
                    acc *= self.shape[d];
                }
                true
            }
        }
    }

    /// The elements as a flat row-major slice, if contiguous.
    pub fn as_slice(&self) -> Option<&[f64]> {
        match &self.storage {
            Storage::Inline(_) => None,
            Storage::Heap(data) if self.is_contiguous() => {
                Some(&data[self.offset..self.offset + self.len()])
            }
            Storage::Heap(_) => None,
        }
    }

    /// Elements in logical row-major order as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.walk(|v| out.push(v));
        out
    }

    /// Shape and strides padded to `MAX_RANK` with leading unit dims.
    /// The walkers iterate these four fixed loops.
    #[inline]
    fn dims4(&self) -> ([usize; MAX_RANK], [usize; MAX_RANK]) {
        let rank = self.rank as usize;
        let pad = MAX_RANK - rank;
        let mut shape = [1usize; MAX_RANK];
        let mut strides = [0usize; MAX_RANK];
        shape[pad..].copy_from_slice(&self.shape[..rank]);
        strides[pad..].copy_from_slice(&self.strides[..rank]);
        (shape, strides)
    }

    /// Visit every element in logical row-major order.
    #[inline]
    pub fn walk<F: FnMut(f64)>(&self, mut f: F) {
        if let Some(s) = self.as_slice() {
            for &v in s {
                f(v);
            }
            return;
        }
        if let Storage::Inline(v) = self.storage {
            // Rank 0 ⇒ exactly one element.
            f(v);
            return;
        }
        let Storage::Heap(data) = &self.storage else {
            unreachable!()
        };
        let (shape, st) = self.dims4();
        let mut o0 = self.offset;
        for _ in 0..shape[0] {
            let mut o1 = o0;
            for _ in 0..shape[1] {
                let mut o2 = o1;
                for _ in 0..shape[2] {
                    let mut o3 = o2;
                    for _ in 0..shape[3] {
                        f(data[o3]);
                        o3 += st[3];
                    }
                    o2 += st[2];
                }
                o1 += st[1];
            }
            o0 += st[0];
        }
    }

    /// Visit `(a[i], b[i])` over the joint broadcast shape in logical
    /// row-major order.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    #[inline]
    pub fn walk2<F: FnMut(f64, f64)>(a: &Block, b: &Block, mut f: F) {
        let joint = Block::joint_shape(a, b);
        let av = a.broadcast_view(&joint);
        let bv = b.broadcast_view(&joint);
        let (shape, sa) = av.dims4();
        let (_, sb) = bv.dims4();
        let da = av.storage_slice();
        let db = bv.storage_slice();
        let (mut a0, mut b0) = (av.offset, bv.offset);
        for _ in 0..shape[0] {
            let (mut a1, mut b1) = (a0, b0);
            for _ in 0..shape[1] {
                let (mut a2, mut b2) = (a1, b1);
                for _ in 0..shape[2] {
                    let (mut a3, mut b3) = (a2, b2);
                    for _ in 0..shape[3] {
                        f(da[a3], db[b3]);
                        a3 += sa[3];
                        b3 += sb[3];
                    }
                    a2 += sa[2];
                    b2 += sb[2];
                }
                a1 += sa[1];
                b1 += sb[1];
            }
            a0 += sa[0];
            b0 += sb[0];
        }
    }

    /// Visit `(a[i], b[i], c[i])` over the joint broadcast shape in
    /// logical row-major order.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    #[inline]
    pub fn walk3<F: FnMut(f64, f64, f64)>(a: &Block, b: &Block, c: &Block, mut f: F) {
        let mut joint = Block::joint_shape(a, b);
        joint = joint_of(&joint, c.shape());
        let av = a.broadcast_view(&joint);
        let bv = b.broadcast_view(&joint);
        let cv = c.broadcast_view(&joint);
        let (shape, sa) = av.dims4();
        let (_, sb) = bv.dims4();
        let (_, sc) = cv.dims4();
        let da = av.storage_slice();
        let db = bv.storage_slice();
        let dc = cv.storage_slice();
        let (mut a0, mut b0, mut c0) = (av.offset, bv.offset, cv.offset);
        for _ in 0..shape[0] {
            let (mut a1, mut b1, mut c1) = (a0, b0, c0);
            for _ in 0..shape[1] {
                let (mut a2, mut b2, mut c2) = (a1, b1, c1);
                for _ in 0..shape[2] {
                    let (mut a3, mut b3, mut c3) = (a2, b2, c2);
                    for _ in 0..shape[3] {
                        f(da[a3], db[b3], dc[c3]);
                        a3 += sa[3];
                        b3 += sb[3];
                        c3 += sc[3];
                    }
                    a2 += sa[2];
                    b2 += sb[2];
                    c2 += sc[2];
                }
                a1 += sa[1];
                b1 += sb[1];
                c1 += sc[1];
            }
            a0 += sa[0];
            b0 += sb[0];
            c0 += sc[0];
        }
    }

    /// The backing slice a non-scalar view indexes into; scalars expose a
    /// one-element slice via a broadcast-view conversion first.
    #[inline]
    fn storage_slice(&self) -> &[f64] {
        match &self.storage {
            Storage::Heap(data) => data,
            Storage::Inline(v) => std::slice::from_ref(v),
        }
    }

    /// Insert a size-1 axis at `axis` (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if `axis > rank` or the result exceeds `MAX_RANK`.
    pub fn expand_dims(&self, axis: usize) -> Block {
        let rank = self.rank as usize;
        assert!(axis <= rank, "expand_dims axis out of range");
        assert!(rank < MAX_RANK, "expand_dims beyond rank {MAX_RANK}");
        let mut shape = [1usize; MAX_RANK];
        let mut strides = [0usize; MAX_RANK];
        shape[..axis].copy_from_slice(&self.shape[..axis]);
        strides[..axis].copy_from_slice(&self.strides[..axis]);
        shape[axis] = 1;
        strides[axis] = 0;
        shape[axis + 1..=rank].copy_from_slice(&self.shape[axis..rank]);
        strides[axis + 1..=rank].copy_from_slice(&self.strides[axis..rank]);
        Block {
            rank: self.rank + 1,
            shape,
            strides,
            offset: self.offset,
            storage: self.storage.clone(),
        }
    }

    /// Reshape (same volume). Zero-copy when the block is contiguous;
    /// otherwise materializes once.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn view(&self, shape: Vec<usize>) -> Block {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.len(),
            "view changes volume"
        );
        if self.is_contiguous() {
            if shape.is_empty() {
                return Block::scalar(self.first());
            }
            let (rank, s) = pack_shape(&shape);
            return Block {
                rank,
                shape: s,
                strides: contiguous_strides(&s, rank as usize),
                offset: self.offset,
                storage: self.storage.clone(),
            };
        }
        Block::from_vec(shape, self.to_vec())
    }

    /// 2-D transpose (zero-copy stride swap).
    ///
    /// # Panics
    ///
    /// Panics unless the block is rank 2.
    pub fn trans(&self) -> Block {
        assert_eq!(self.rank, 2, "trans requires a rank-2 block");
        let mut out = self.clone();
        out.shape.swap(0, 1);
        out.strides.swap(0, 1);
        out
    }

    /// Broadcast to a larger shape, NumPy rules (zero-copy: broadcast
    /// dims get stride 0).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn broadcast_to(&self, shape: &[usize]) -> Block {
        self.broadcast_view(shape)
    }

    fn broadcast_view(&self, shape: &[usize]) -> Block {
        let rank = self.rank as usize;
        if self.shape() == shape {
            return self.clone();
        }
        let nd = shape.len();
        assert!(nd >= rank, "broadcast cannot reduce rank");
        assert!(nd <= MAX_RANK, "block rank {nd} exceeds {MAX_RANK}");
        let pad = nd - rank;
        let mut new_shape = [1usize; MAX_RANK];
        let mut new_strides = [0usize; MAX_RANK];
        new_shape[..nd].copy_from_slice(shape);
        for d in 0..rank {
            let dim = self.shape[d];
            let target = shape[pad + d];
            assert!(
                dim == target || dim == 1,
                "cannot broadcast {:?} to {:?}",
                self.shape(),
                shape
            );
            new_strides[pad + d] = if dim == 1 { 0 } else { self.strides[d] };
        }
        let storage = match &self.storage {
            // Promote inline scalars so the walkers have a slice.
            Storage::Inline(v) => Storage::Heap(Arc::new(vec![*v])),
            heap => heap.clone(),
        };
        Block {
            rank: nd as u8,
            shape: new_shape,
            strides: new_strides,
            offset: self.offset,
            storage,
        }
    }

    /// Joint broadcast shape of two blocks.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn joint_shape(a: &Block, b: &Block) -> Vec<usize> {
        joint_of(a.shape(), b.shape())
    }

    /// Elementwise binary op with broadcasting.
    pub fn binary(op: BinOp, a: &Block, b: &Block) -> Block {
        Block::try_scalar_binary(op, a, b)
            .unwrap_or_else(|| Block::binary_with(op, a, b, PoolBuf::new()))
    }

    /// Scalar ∘ scalar without touching the heap (the loop-counter
    /// arithmetic path); `None` when either operand is non-scalar.
    pub fn try_scalar_binary(op: BinOp, a: &Block, b: &Block) -> Option<Block> {
        if let (Storage::Inline(x), Storage::Inline(y)) = (&a.storage, &b.storage) {
            return Some(Block::scalar(apply_binop(op, *x, *y)));
        }
        None
    }

    /// [`Block::binary`] writing into `buf` (cleared; used as the output
    /// allocation so register slots can be recycled across iterations).
    ///
    /// The op dispatch happens once out here so each operator gets fully
    /// monomorphized inner loops.
    pub fn binary_with(op: BinOp, a: &Block, b: &Block, buf: PoolBuf) -> Block {
        #[cfg(target_arch = "x86_64")]
        if wide_f64_available() {
            // SAFETY: `avx` was just detected; the body is plain safe
            // Rust compiled with wider vectors (see `wide_f64_available`
            // for why results are bit-identical).
            return unsafe { Block::binary_with_wide(op, a, b, buf) };
        }
        Block::binary_with_body(op, a, b, buf)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn binary_with_wide(op: BinOp, a: &Block, b: &Block, buf: PoolBuf) -> Block {
        Block::binary_with_body(op, a, b, buf)
    }

    #[inline(always)]
    fn binary_with_body(op: BinOp, a: &Block, b: &Block, buf: PoolBuf) -> Block {
        match op {
            BinOp::Add => Block::binary_impl(a, b, buf, |x, y| x + y),
            BinOp::Sub => Block::binary_impl(a, b, buf, |x, y| x - y),
            BinOp::Mul => Block::binary_impl(a, b, buf, |x, y| x * y),
            BinOp::Div => Block::binary_impl(a, b, buf, |x, y| x / y),
            BinOp::FloorDiv => Block::binary_impl(a, b, buf, |x, y| (x / y).floor()),
            BinOp::Mod => Block::binary_impl(a, b, buf, |x, y| x - (x / y).floor() * y),
            BinOp::Min => Block::binary_impl(a, b, buf, f64::min),
            BinOp::Max => Block::binary_impl(a, b, buf, f64::max),
            BinOp::Lt => Block::binary_impl(a, b, buf, |x, y| f64::from(x < y)),
            BinOp::Le => Block::binary_impl(a, b, buf, |x, y| f64::from(x <= y)),
            BinOp::Eq => Block::binary_impl(a, b, buf, |x, y| f64::from(x == y)),
            BinOp::Ge => Block::binary_impl(a, b, buf, |x, y| f64::from(x >= y)),
            BinOp::And => Block::binary_impl(a, b, buf, |x, y| f64::from(x != 0.0 && y != 0.0)),
        }
    }

    /// Elementwise `a = a <op> b` in place, when `a` is contiguous,
    /// uniquely-owned heap storage and `b` is a scalar or has the same
    /// shape (the compiled accumulator pattern `acc = acc + v`). Returns
    /// false — leaving `a` untouched — when the layout doesn't allow it.
    pub fn binary_assign(op: BinOp, a: &mut Block, b: &Block) -> bool {
        #[cfg(target_arch = "x86_64")]
        if wide_f64_available() {
            // SAFETY: `avx` was just detected; same-body dispatch as in
            // `binary_with`.
            return unsafe { Block::binary_assign_wide(op, a, b) };
        }
        Block::binary_assign_body(op, a, b)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn binary_assign_wide(op: BinOp, a: &mut Block, b: &Block) -> bool {
        Block::binary_assign_body(op, a, b)
    }

    #[inline(always)]
    fn binary_assign_body(op: BinOp, a: &mut Block, b: &Block) -> bool {
        match op {
            BinOp::Add => Block::binary_assign_impl(a, b, |x, y| x + y),
            BinOp::Sub => Block::binary_assign_impl(a, b, |x, y| x - y),
            BinOp::Mul => Block::binary_assign_impl(a, b, |x, y| x * y),
            BinOp::Div => Block::binary_assign_impl(a, b, |x, y| x / y),
            BinOp::FloorDiv => Block::binary_assign_impl(a, b, |x, y| (x / y).floor()),
            BinOp::Mod => Block::binary_assign_impl(a, b, |x, y| x - (x / y).floor() * y),
            BinOp::Min => Block::binary_assign_impl(a, b, f64::min),
            BinOp::Max => Block::binary_assign_impl(a, b, f64::max),
            BinOp::Lt => Block::binary_assign_impl(a, b, |x, y| f64::from(x < y)),
            BinOp::Le => Block::binary_assign_impl(a, b, |x, y| f64::from(x <= y)),
            BinOp::Eq => Block::binary_assign_impl(a, b, |x, y| f64::from(x == y)),
            BinOp::Ge => Block::binary_assign_impl(a, b, |x, y| f64::from(x >= y)),
            BinOp::And => Block::binary_assign_impl(a, b, |x, y| f64::from(x != 0.0 && y != 0.0)),
        }
    }

    #[inline(always)]
    fn binary_assign_impl<F: Fn(f64, f64) -> f64 + Copy>(a: &mut Block, b: &Block, f: F) -> bool {
        if !(b.rank == 0 || (a.shape() == b.shape() && b.as_slice().is_some())) {
            return false;
        }
        if !a.is_contiguous() {
            return false;
        }
        let n = a.len();
        let offset = a.offset;
        let Storage::Heap(arc) = &mut a.storage else {
            return false;
        };
        let Some(data) = Arc::get_mut(arc) else {
            return false;
        };
        let dst = &mut data[offset..offset + n];
        if b.rank == 0 {
            let y = b.first();
            for x in dst.iter_mut() {
                *x = f(*x, y);
            }
        } else {
            let sb = b.as_slice().expect("checked above");
            for (x, &y) in dst.iter_mut().zip(sb) {
                *x = f(*x, y);
            }
        }
        true
    }

    #[inline(always)]
    fn binary_impl<F: Fn(f64, f64) -> f64 + Copy>(
        a: &Block,
        b: &Block,
        mut buf: PoolBuf,
        f: F,
    ) -> Block {
        // Scalar ∘ scalar stays inline: this is the loop-counter
        // arithmetic path, which must not allocate.
        if let (Storage::Inline(x), Storage::Inline(y)) = (&a.storage, &b.storage) {
            return Block::scalar(f(*x, *y));
        }
        let out = buf.vec();
        out.clear();
        // Scalar-operand fast paths avoid joint-shape work entirely.
        if b.rank == 0 {
            let y = b.first();
            if let Some(sa) = a.as_slice() {
                out.extend(sa.iter().map(|&x| f(x, y)));
            } else {
                out.reserve(a.len());
                a.walk(|x| out.push(f(x, y)));
            }
            return Block::from_packed(a.shape4(), buf);
        }
        if a.rank == 0 {
            let x = a.first();
            if let Some(sb) = b.as_slice() {
                out.extend(sb.iter().map(|&y| f(x, y)));
            } else {
                out.reserve(b.len());
                b.walk(|y| out.push(f(x, y)));
            }
            return Block::from_packed(b.shape4(), buf);
        }
        if a.shape() == b.shape() {
            if let (Some(sa), Some(sb)) = (a.as_slice(), b.as_slice()) {
                out.extend(sa.iter().zip(sb).map(|(&x, &y)| f(x, y)));
                return Block::from_packed(a.shape4(), buf);
            }
        }
        let joint = Shape4::joint(a.shape(), b.shape());
        let av = a.broadcast_view(joint.as_slice());
        let bv = b.broadcast_view(joint.as_slice());
        let n: usize = joint.volume();
        out.reserve(n);
        let (shape, sa) = av.dims4();
        let (_, sb) = bv.dims4();
        let da = av.storage_slice();
        let db = bv.storage_slice();
        let inner = shape[3];
        // Rows append through exact-size iterators (no per-element
        // capacity checks); the three stride regimes of the innermost
        // axis get dedicated loops so LLVM can unswitch and vectorize.
        let (mut a0, mut b0) = (av.offset, bv.offset);
        for _ in 0..shape[0] {
            let (mut a1, mut b1) = (a0, b0);
            for _ in 0..shape[1] {
                let (mut a2, mut b2) = (a1, b1);
                for _ in 0..shape[2] {
                    let (pa, pb) = (a2, b2);
                    if sa[3] == 1 && sb[3] == 1 {
                        let ra = &da[pa..pa + inner];
                        let rb = &db[pb..pb + inner];
                        out.extend(ra.iter().zip(rb).map(|(&x, &y)| f(x, y)));
                    } else if sa[3] == 1 && sb[3] == 0 {
                        let ra = &da[pa..pa + inner];
                        let y = db[pb];
                        out.extend(ra.iter().map(|&x| f(x, y)));
                    } else if sa[3] == 0 && sb[3] == 1 {
                        let x = da[pa];
                        let rb = &db[pb..pb + inner];
                        out.extend(rb.iter().map(|&y| f(x, y)));
                    } else {
                        for t in 0..inner {
                            out.push(f(da[pa + t * sa[3]], db[pb + t * sb[3]]));
                        }
                    }
                    a2 += sa[2];
                    b2 += sb[2];
                }
                a1 += sa[1];
                b1 += sb[1];
            }
            a0 += sa[0];
            b0 += sb[0];
        }
        Block::from_packed(joint, buf)
    }

    /// Sum over one axis (rank decreases by one).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: usize) -> Block {
        let rank = self.rank as usize;
        assert!(axis < rank, "sum axis out of range");
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..rank].iter().product();
        let mut shape = self.shape().to_vec();
        shape.remove(axis);
        let mut data = vec![0.0; outer * inner];
        if let Some(src) = self.as_slice() {
            for o in 0..outer {
                for m in 0..mid {
                    let s = (o * mid + m) * inner;
                    let d = o * inner;
                    for i in 0..inner {
                        data[d + i] += src[s + i];
                    }
                }
            }
        } else {
            // Strided source: iterate logical order, accumulating into
            // the (outer, inner) slot — the accumulation order per slot
            // matches the contiguous path (ascending m), so results are
            // bit-identical.
            let mut lane = 0usize;
            self.walk(|v| {
                let o = lane / (mid * inner);
                let i = lane % inner;
                data[o * inner + i] += v;
                lane += 1;
            });
        }
        Block::from_vec(shape, data)
    }

    /// Matrix multiply of rank-2 blocks `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch.
    pub fn dot(a: &Block, b: &Block) -> Block {
        Block::dot_with(a, b, PoolBuf::new())
    }

    /// [`Block::dot`] writing into a recycled pool buffer.
    ///
    /// The output tiles along columns with a stack-resident accumulator,
    /// so the `c` row is not reloaded from memory on every `l` step. For
    /// each output element the reduction still runs in ascending `l`
    /// order with the same zero-skip as the seed implementation, so
    /// results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch.
    pub fn dot_with(a: &Block, b: &Block, buf: PoolBuf) -> Block {
        #[cfg(target_arch = "x86_64")]
        if wide_f64_available() {
            // SAFETY: `avx` was just detected; same-body dispatch as in
            // `binary_with`.
            return unsafe { Block::dot_with_wide(a, b, buf) };
        }
        Block::dot_with_body(a, b, buf)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn dot_with_wide(a: &Block, b: &Block, buf: PoolBuf) -> Block {
        Block::dot_with_body(a, b, buf)
    }

    #[inline(always)]
    fn dot_with_body(a: &Block, b: &Block, mut buf: PoolBuf) -> Block {
        assert_eq!(a.rank, 2, "dot lhs must be rank 2");
        assert_eq!(b.rank, 2, "dot rhs must be rank 2");
        let (m, k) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "dot inner dimensions disagree");
        // Per output row: collect the nonzero lhs entries once (the
        // seed's zero-skip, hoisted out of the column loop), then sweep
        // 8-wide column tiles whose accumulators fully unroll into SIMD
        // registers — the inner loop is branchless multiply-add.
        const JTILE: usize = 32;
        let data = buf.vec();
        data.clear();
        data.reserve(m * n);
        let da = a.storage_slice();
        let db = b.storage_slice();
        let (sa0, sa1) = (a.strides[0], a.strides[1]);
        let (sb0, sb1) = (b.strides[0], b.strides[1]);
        let mut nz: Vec<(f64, usize)> = Vec::with_capacity(k);
        for i in 0..m {
            let arow = a.offset + i * sa0;
            nz.clear();
            for l in 0..k {
                let av = da[arow + l * sa1];
                if av != 0.0 {
                    nz.push((av, b.offset + l * sb0));
                }
            }
            let mut j0 = 0usize;
            while j0 + JTILE <= n {
                let mut acc = [0.0f64; JTILE];
                if sb1 == 1 {
                    for &(av, lbase) in &nz {
                        let bs = &db[lbase + j0..][..JTILE];
                        for t in 0..JTILE {
                            acc[t] += av * bs[t];
                        }
                    }
                } else {
                    for &(av, lbase) in &nz {
                        for (t, at) in acc.iter_mut().enumerate() {
                            *at += av * db[lbase + (j0 + t) * sb1];
                        }
                    }
                }
                // Row-major append: i ascending, j0 ascending.
                data.extend_from_slice(&acc);
                j0 += JTILE;
            }
            // Remainder columns (n not a multiple of the tile).
            while j0 < n {
                let mut acc = 0.0f64;
                for &(av, lbase) in &nz {
                    acc += av * db[lbase + j0 * sb1];
                }
                data.push(acc);
                j0 += 1;
            }
        }
        Block::from_packed(
            Shape4 {
                rank: 2,
                dims: [m, n, 1, 1],
            },
            buf,
        )
    }

    /// Try to reclaim this block's heap buffer (with its refcount block)
    /// for reuse; succeeds when nothing else shares the storage.
    pub(crate) fn reclaim(self) -> Option<PoolBuf> {
        match self.storage {
            Storage::Inline(_) => None,
            Storage::Heap(mut arc) => {
                if Arc::get_mut(&mut arc).is_some() {
                    Some(PoolBuf { arc })
                } else {
                    None
                }
            }
        }
    }
}

/// One scalar application of a [`BinOp`].
#[inline]
pub(crate) fn apply_binop(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::FloorDiv => (x / y).floor(),
        BinOp::Mod => x - (x / y).floor() * y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::Lt => f64::from(x < y),
        BinOp::Le => f64::from(x <= y),
        BinOp::Eq => f64::from(x == y),
        BinOp::Ge => f64::from(x >= y),
        BinOp::And => f64::from(x != 0.0 && y != 0.0),
    }
}

/// NumPy-style joint broadcast shape of two shapes.
fn joint_of(a: &[usize], b: &[usize]) -> Vec<usize> {
    let nd = a.len().max(b.len());
    let mut out = vec![0usize; nd];
    for i in 0..nd {
        let da = if i < nd - a.len() {
            1
        } else {
            a[i - (nd - a.len())]
        };
        let db = if i < nd - b.len() {
            1
        } else {
            b[i - (nd - b.len())]
        };
        assert!(
            da == db || da == 1 || db == 1,
            "incompatible block shapes {a:?} / {b:?}"
        );
        out[i] = da.max(db);
    }
    out
}

impl PartialEq for Block {
    /// Logical equality: same shape and same elements (representation —
    /// strides, sharing, inline vs heap — is invisible).
    fn eq(&self, other: &Block) -> bool {
        self.shape() == other.shape() && self.to_vec() == other.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iota_and_full() {
        assert_eq!(Block::iota(3).to_vec(), vec![0.0, 1.0, 2.0]);
        assert_eq!(Block::full(vec![2, 2], 7.0).to_vec(), vec![7.0; 4]);
    }

    #[test]
    fn expand_and_broadcast() {
        let r = Block::iota(3).expand_dims(0); // [1,3]
        assert_eq!(r.shape(), &[1, 3]);
        let b = r.broadcast_to(&[2, 3]);
        assert_eq!(b.to_vec(), vec![0.0, 1.0, 2.0, 0.0, 1.0, 2.0]);
        let c = Block::iota(2).expand_dims(1).broadcast_to(&[2, 3]);
        assert_eq!(c.to_vec(), vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn binary_broadcasting_matrix() {
        // y[:,None] * 4 + x[None,:] — the flattened-offset pattern.
        let y = Block::iota(2).expand_dims(1);
        let x = Block::iota(4).expand_dims(0);
        let four = Block::scalar(4.0);
        let off = Block::binary(BinOp::Add, &Block::binary(BinOp::Mul, &y, &four), &x);
        assert_eq!(off.shape(), &[2, 4]);
        assert_eq!(off.to_vec(), vec![0., 1., 2., 3., 4., 5., 6., 7.]);
    }

    #[test]
    fn comparison_produces_masks() {
        let x = Block::iota(4);
        let two = Block::scalar(2.0);
        let m = Block::binary(BinOp::Lt, &x, &two);
        assert_eq!(m.to_vec(), vec![1.0, 1.0, 0.0, 0.0]);
        let m2 = Block::binary(BinOp::Ge, &x, &two);
        let both = Block::binary(BinOp::And, &m, &m2);
        assert_eq!(both.to_vec(), vec![0.0; 4]);
    }

    #[test]
    fn floor_div_and_mod() {
        let x = Block::iota(6);
        let three = Block::scalar(3.0);
        let d = Block::binary(BinOp::FloorDiv, &x, &three);
        let m = Block::binary(BinOp::Mod, &x, &three);
        assert_eq!(d.to_vec(), vec![0., 0., 0., 1., 1., 1.]);
        assert_eq!(m.to_vec(), vec![0., 1., 2., 0., 1., 2.]);
    }

    #[test]
    fn trans_and_view() {
        let x = Block::from_vec(vec![2, 3], (0..6).map(|v| v as f64).collect());
        let t = x.trans();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![0., 3., 1., 4., 2., 5.]);
        let v = x.view(vec![3, 2]);
        assert_eq!(v.to_vec(), x.to_vec());
    }

    #[test]
    fn view_of_transposed_materializes() {
        let x = Block::from_vec(vec![2, 3], (0..6).map(|v| v as f64).collect());
        let t = x.trans();
        assert!(!t.is_contiguous());
        let flat = t.view(vec![6]);
        assert_eq!(flat.to_vec(), vec![0., 3., 1., 4., 2., 5.]);
        assert!(flat.is_contiguous());
    }

    #[test]
    fn sum_axis_reduces() {
        let x = Block::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(x.sum_axis(1).to_vec(), vec![6.0, 15.0]);
        assert_eq!(x.sum_axis(0).to_vec(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sum_axis_on_strided_matches_contiguous() {
        let x = Block::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = x.trans(); // [3, 2], strided
        let want = Block::from_vec(vec![3, 2], t.to_vec());
        assert_eq!(t.sum_axis(0).to_vec(), want.sum_axis(0).to_vec());
        assert_eq!(t.sum_axis(1).to_vec(), want.sum_axis(1).to_vec());
    }

    #[test]
    fn dot_matches_reference() {
        let a = Block::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Block::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = Block::dot(&a, &b);
        assert_eq!(c.to_vec(), vec![58., 64., 139., 154.]);
    }

    #[test]
    fn dot_with_strided_operands() {
        let a = Block::from_vec(vec![3, 2], vec![1., 4., 2., 5., 3., 6.]).trans(); // [2,3]
        let b = Block::from_vec(vec![2, 3], vec![7., 9., 11., 8., 10., 12.]).trans(); // [3,2]
        let c = Block::dot(&a, &b);
        assert_eq!(c.to_vec(), vec![58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dot_shape_mismatch_panics() {
        let a = Block::full(vec![2, 3], 1.0);
        let b = Block::full(vec![2, 2], 1.0);
        Block::dot(&a, &b);
    }

    #[test]
    fn scalar_fast_paths() {
        let x = Block::iota(3);
        let s = Block::scalar(10.0);
        assert_eq!(
            Block::binary(BinOp::Add, &x, &s).to_vec(),
            vec![10., 11., 12.]
        );
        assert_eq!(
            Block::binary(BinOp::Sub, &s, &x).to_vec(),
            vec![10., 9., 8.]
        );
    }

    #[test]
    fn scalar_ops_stay_inline() {
        let a = Block::scalar(3.0);
        let b = Block::scalar(4.0);
        let c = Block::binary(BinOp::Mul, &a, &b);
        assert!(matches!(c.storage, Storage::Inline(v) if v == 12.0));
    }

    #[test]
    fn zero_copy_transforms_share_storage() {
        let x = Block::iota(16);
        let v = x.view(vec![4, 4]);
        let t = v.trans();
        let b = t.broadcast_to(&[2, 4, 4]);
        let (Storage::Heap(dx), Storage::Heap(db)) = (&x.storage, &b.storage) else {
            panic!("expected heap storage");
        };
        assert!(
            Arc::ptr_eq(dx, db),
            "expand/view/trans/broadcast must not copy"
        );
    }

    #[test]
    fn walk2_matches_materialized_broadcast() {
        let y = Block::iota(2).expand_dims(1);
        let x = Block::iota(4).expand_dims(0);
        let mut pairs = Vec::new();
        Block::walk2(&y, &x, |a, b| pairs.push((a, b)));
        assert_eq!(pairs.len(), 8);
        assert_eq!(pairs[0], (0.0, 0.0));
        assert_eq!(pairs[5], (1.0, 1.0));
    }

    #[test]
    fn buffer_reclaim_respects_sharing() {
        let x = Block::iota(8);
        let alias = x.clone();
        assert!(
            x.reclaim().is_none(),
            "shared storage must not be reclaimed"
        );
        assert!(alias.reclaim().is_some(), "sole owner reclaims");
        assert!(Block::scalar(1.0).reclaim().is_none());
    }
}
