//! Block values: the small n-d arrays kernels compute on.

use insum_kernel::BinOp;

/// A block value held in a virtual register: a rank ≤ 4 array of `f64`.
///
/// All kernel arithmetic happens in `f64` so that integer offsets (up to
/// 2^53) and `f32` data are both represented exactly; stores round to the
/// destination tensor's dtype.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block shape; empty for scalars.
    pub shape: Vec<usize>,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Block {
    /// A scalar block.
    pub fn scalar(value: f64) -> Block {
        Block { shape: vec![], data: vec![value] }
    }

    /// A block filled with `value`.
    pub fn full(shape: Vec<usize>, value: f64) -> Block {
        let n = shape.iter().product();
        Block { shape, data: vec![value; n] }
    }

    /// `[0, 1, ..., len-1]`.
    pub fn iota(len: usize) -> Block {
        Block { shape: vec![len], data: (0..len).map(|i| i as f64).collect() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the block has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert a size-1 axis at `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis > rank`.
    pub fn expand_dims(&self, axis: usize) -> Block {
        assert!(axis <= self.shape.len(), "expand_dims axis out of range");
        let mut shape = self.shape.clone();
        shape.insert(axis, 1);
        Block { shape, data: self.data.clone() }
    }

    /// Reshape (same volume).
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn view(&self, shape: Vec<usize>) -> Block {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "view changes volume"
        );
        Block { shape, data: self.data.clone() }
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics unless the block is rank 2.
    pub fn trans(&self) -> Block {
        assert_eq!(self.shape.len(), 2, "trans requires a rank-2 block");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = self.data[i * n + j];
            }
        }
        Block { shape: vec![n, m], data }
    }

    /// Broadcast to a larger shape (NumPy rules).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn broadcast_to(&self, shape: &[usize]) -> Block {
        if self.shape == shape {
            return self.clone();
        }
        let nd = shape.len();
        assert!(nd >= self.shape.len(), "broadcast cannot reduce rank");
        let pad = nd - self.shape.len();
        // Source strides in the padded coordinate system (0 for broadcast dims).
        let mut strides = vec![0usize; nd];
        let mut acc = 1usize;
        for d in (0..self.shape.len()).rev() {
            let dim = self.shape[d];
            let target = shape[pad + d];
            assert!(dim == target || dim == 1, "cannot broadcast {:?} to {:?}", self.shape, shape);
            strides[pad + d] = if dim == 1 { 0 } else { acc };
            acc *= dim;
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; nd];
        for _ in 0..n {
            let off: usize = idx.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            data.push(self.data[off]);
            for d in (0..nd).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Block { shape: shape.to_vec(), data }
    }

    /// Joint broadcast shape of two blocks.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn joint_shape(a: &Block, b: &Block) -> Vec<usize> {
        let nd = a.shape.len().max(b.shape.len());
        let mut out = vec![0usize; nd];
        for i in 0..nd {
            let da = if i < nd - a.shape.len() { 1 } else { a.shape[i - (nd - a.shape.len())] };
            let db = if i < nd - b.shape.len() { 1 } else { b.shape[i - (nd - b.shape.len())] };
            assert!(da == db || da == 1 || db == 1, "incompatible block shapes {:?} / {:?}", a.shape, b.shape);
            out[i] = da.max(db);
        }
        out
    }

    /// Elementwise binary op with broadcasting.
    pub fn binary(op: BinOp, a: &Block, b: &Block) -> Block {
        let f = |x: f64, y: f64| -> f64 {
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::FloorDiv => (x / y).floor(),
                BinOp::Mod => x - (x / y).floor() * y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::Lt => f64::from(x < y),
                BinOp::Le => f64::from(x <= y),
                BinOp::Eq => f64::from(x == y),
                BinOp::Ge => f64::from(x >= y),
                BinOp::And => f64::from(x != 0.0 && y != 0.0),
            }
        };
        // Fast paths.
        if a.shape == b.shape {
            let data = a.data.iter().zip(&b.data).map(|(&x, &y)| f(x, y)).collect();
            return Block { shape: a.shape.clone(), data };
        }
        if b.shape.is_empty() {
            let y = b.data[0];
            return Block { shape: a.shape.clone(), data: a.data.iter().map(|&x| f(x, y)).collect() };
        }
        if a.shape.is_empty() {
            let x = a.data[0];
            return Block { shape: b.shape.clone(), data: b.data.iter().map(|&y| f(x, y)).collect() };
        }
        let shape = Block::joint_shape(a, b);
        let ab = a.broadcast_to(&shape);
        let bb = b.broadcast_to(&shape);
        let data = ab.data.iter().zip(&bb.data).map(|(&x, &y)| f(x, y)).collect();
        Block { shape, data }
    }

    /// Sum over one axis (rank decreases by one).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: usize) -> Block {
        assert!(axis < self.shape.len(), "sum axis out of range");
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut shape = self.shape.clone();
        shape.remove(axis);
        let mut data = vec![0.0; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let src = (o * mid + m) * inner;
                let dst = o * inner;
                for i in 0..inner {
                    data[dst + i] += self.data[src + i];
                }
            }
        }
        Block { shape, data }
    }

    /// Matrix multiply of rank-2 blocks `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch.
    pub fn dot(a: &Block, b: &Block) -> Block {
        assert_eq!(a.shape.len(), 2, "dot lhs must be rank 2");
        assert_eq!(b.shape.len(), 2, "dot rhs must be rank 2");
        let (m, k) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "dot inner dimensions disagree");
        let mut data = vec![0.0; m * n];
        for i in 0..m {
            for l in 0..k {
                let av = a.data[i * k + l];
                if av == 0.0 {
                    continue;
                }
                let brow = l * n;
                let crow = i * n;
                for j in 0..n {
                    data[crow + j] += av * b.data[brow + j];
                }
            }
        }
        Block { shape: vec![m, n], data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iota_and_full() {
        assert_eq!(Block::iota(3).data, vec![0.0, 1.0, 2.0]);
        assert_eq!(Block::full(vec![2, 2], 7.0).data, vec![7.0; 4]);
    }

    #[test]
    fn expand_and_broadcast() {
        let r = Block::iota(3).expand_dims(0); // [1,3]
        assert_eq!(r.shape, vec![1, 3]);
        let b = r.broadcast_to(&[2, 3]);
        assert_eq!(b.data, vec![0.0, 1.0, 2.0, 0.0, 1.0, 2.0]);
        let c = Block::iota(2).expand_dims(1).broadcast_to(&[2, 3]);
        assert_eq!(c.data, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn binary_broadcasting_matrix() {
        // y[:,None] * 4 + x[None,:] — the flattened-offset pattern.
        let y = Block::iota(2).expand_dims(1);
        let x = Block::iota(4).expand_dims(0);
        let four = Block::scalar(4.0);
        let off = Block::binary(BinOp::Add, &Block::binary(BinOp::Mul, &y, &four), &x);
        assert_eq!(off.shape, vec![2, 4]);
        assert_eq!(off.data, vec![0., 1., 2., 3., 4., 5., 6., 7.]);
    }

    #[test]
    fn comparison_produces_masks() {
        let x = Block::iota(4);
        let two = Block::scalar(2.0);
        let m = Block::binary(BinOp::Lt, &x, &two);
        assert_eq!(m.data, vec![1.0, 1.0, 0.0, 0.0]);
        let m2 = Block::binary(BinOp::Ge, &x, &two);
        let both = Block::binary(BinOp::And, &m, &m2);
        assert_eq!(both.data, vec![0.0; 4]);
    }

    #[test]
    fn floor_div_and_mod() {
        let x = Block::iota(6);
        let three = Block::scalar(3.0);
        let d = Block::binary(BinOp::FloorDiv, &x, &three);
        let m = Block::binary(BinOp::Mod, &x, &three);
        assert_eq!(d.data, vec![0., 0., 0., 1., 1., 1.]);
        assert_eq!(m.data, vec![0., 1., 2., 0., 1., 2.]);
    }

    #[test]
    fn trans_and_view() {
        let x = Block { shape: vec![2, 3], data: (0..6).map(|v| v as f64).collect() };
        let t = x.trans();
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.data, vec![0., 3., 1., 4., 2., 5.]);
        let v = x.view(vec![3, 2]);
        assert_eq!(v.data, x.data);
    }

    #[test]
    fn sum_axis_reduces() {
        let x = Block { shape: vec![2, 3], data: vec![1., 2., 3., 4., 5., 6.] };
        assert_eq!(x.sum_axis(1).data, vec![6.0, 15.0]);
        assert_eq!(x.sum_axis(0).data, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn dot_matches_reference() {
        let a = Block { shape: vec![2, 3], data: vec![1., 2., 3., 4., 5., 6.] };
        let b = Block { shape: vec![3, 2], data: vec![7., 8., 9., 10., 11., 12.] };
        let c = Block::dot(&a, &b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dot_shape_mismatch_panics() {
        let a = Block::full(vec![2, 3], 1.0);
        let b = Block::full(vec![2, 2], 1.0);
        Block::dot(&a, &b);
    }

    #[test]
    fn scalar_fast_paths() {
        let x = Block::iota(3);
        let s = Block::scalar(10.0);
        assert_eq!(Block::binary(BinOp::Add, &x, &s).data, vec![10., 11., 12.]);
        assert_eq!(Block::binary(BinOp::Sub, &s, &x).data, vec![10., 9., 8.]);
    }
}
