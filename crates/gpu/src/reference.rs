//! The original (pre-optimization) interpreter, kept verbatim as a
//! correctness oracle and performance baseline.
//!
//! This module is the seed implementation of the simulator: materialized
//! `Vec<f64>` blocks, per-sector `HashSet` DRAM tracking, a `HashMap`
//! atomic ledger, and a strictly sequential grid loop. The optimized
//! interpreter behind [`crate::launch`] must produce **bit-identical**
//! [`KernelStats`], timing, and output tensors; the equivalence tests in
//! `tests/simulator_properties.rs` and the `simbench` harness in
//! `insum_bench` compare against this module. It is `#[doc(hidden)]`
//! because it is an internal yardstick, not API.

use crate::device::DeviceModel;
use crate::interp::GpuError;
use crate::stats::{combine_times, KernelReport, KernelStats};
use insum_kernel::{BinOp, Instr, Kernel, Reg};
use insum_tensor::{DType, Tensor};
use std::collections::{HashMap, HashSet};

pub use crate::interp::Mode;

/// Materialized row-major block value (the seed representation).
#[derive(Debug, Clone, PartialEq)]
struct RefBlock {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl RefBlock {
    fn scalar(value: f64) -> RefBlock {
        RefBlock {
            shape: vec![],
            data: vec![value],
        }
    }

    fn full(shape: Vec<usize>, value: f64) -> RefBlock {
        let n = shape.iter().product();
        RefBlock {
            shape,
            data: vec![value; n],
        }
    }

    fn iota(len: usize) -> RefBlock {
        RefBlock {
            shape: vec![len],
            data: (0..len).map(|i| i as f64).collect(),
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn expand_dims(&self, axis: usize) -> RefBlock {
        assert!(axis <= self.shape.len(), "expand_dims axis out of range");
        let mut shape = self.shape.clone();
        shape.insert(axis, 1);
        RefBlock {
            shape,
            data: self.data.clone(),
        }
    }

    fn view(&self, shape: Vec<usize>) -> RefBlock {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "view changes volume"
        );
        RefBlock {
            shape,
            data: self.data.clone(),
        }
    }

    fn trans(&self) -> RefBlock {
        assert_eq!(self.shape.len(), 2, "trans requires a rank-2 block");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = self.data[i * n + j];
            }
        }
        RefBlock {
            shape: vec![n, m],
            data,
        }
    }

    fn broadcast_to(&self, shape: &[usize]) -> RefBlock {
        if self.shape == shape {
            return self.clone();
        }
        let nd = shape.len();
        assert!(nd >= self.shape.len(), "broadcast cannot reduce rank");
        let pad = nd - self.shape.len();
        let mut strides = vec![0usize; nd];
        let mut acc = 1usize;
        for d in (0..self.shape.len()).rev() {
            let dim = self.shape[d];
            let target = shape[pad + d];
            assert!(
                dim == target || dim == 1,
                "cannot broadcast {:?} to {:?}",
                self.shape,
                shape
            );
            strides[pad + d] = if dim == 1 { 0 } else { acc };
            acc *= dim;
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; nd];
        for _ in 0..n {
            let off: usize = idx.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            data.push(self.data[off]);
            for d in (0..nd).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        RefBlock {
            shape: shape.to_vec(),
            data,
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn joint_shape(a: &RefBlock, b: &RefBlock) -> Vec<usize> {
        let nd = a.shape.len().max(b.shape.len());
        let mut out = vec![0usize; nd];
        for i in 0..nd {
            let da = if i < nd - a.shape.len() {
                1
            } else {
                a.shape[i - (nd - a.shape.len())]
            };
            let db = if i < nd - b.shape.len() {
                1
            } else {
                b.shape[i - (nd - b.shape.len())]
            };
            assert!(
                da == db || da == 1 || db == 1,
                "incompatible block shapes {:?} / {:?}",
                a.shape,
                b.shape
            );
            out[i] = da.max(db);
        }
        out
    }

    fn binary(op: BinOp, a: &RefBlock, b: &RefBlock) -> RefBlock {
        let f = |x: f64, y: f64| -> f64 {
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::FloorDiv => (x / y).floor(),
                BinOp::Mod => x - (x / y).floor() * y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::Lt => f64::from(x < y),
                BinOp::Le => f64::from(x <= y),
                BinOp::Eq => f64::from(x == y),
                BinOp::Ge => f64::from(x >= y),
                BinOp::And => f64::from(x != 0.0 && y != 0.0),
            }
        };
        if a.shape == b.shape {
            let data = a.data.iter().zip(&b.data).map(|(&x, &y)| f(x, y)).collect();
            return RefBlock {
                shape: a.shape.clone(),
                data,
            };
        }
        if b.shape.is_empty() {
            let y = b.data[0];
            return RefBlock {
                shape: a.shape.clone(),
                data: a.data.iter().map(|&x| f(x, y)).collect(),
            };
        }
        if a.shape.is_empty() {
            let x = a.data[0];
            return RefBlock {
                shape: b.shape.clone(),
                data: b.data.iter().map(|&y| f(x, y)).collect(),
            };
        }
        let shape = RefBlock::joint_shape(a, b);
        let ab = a.broadcast_to(&shape);
        let bb = b.broadcast_to(&shape);
        let data = ab
            .data
            .iter()
            .zip(&bb.data)
            .map(|(&x, &y)| f(x, y))
            .collect();
        RefBlock { shape, data }
    }

    fn sum_axis(&self, axis: usize) -> RefBlock {
        assert!(axis < self.shape.len(), "sum axis out of range");
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut shape = self.shape.clone();
        shape.remove(axis);
        let mut data = vec![0.0; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let src = (o * mid + m) * inner;
                let dst = o * inner;
                for i in 0..inner {
                    data[dst + i] += self.data[src + i];
                }
            }
        }
        RefBlock { shape, data }
    }

    fn dot(a: &RefBlock, b: &RefBlock) -> RefBlock {
        assert_eq!(a.shape.len(), 2, "dot lhs must be rank 2");
        assert_eq!(b.shape.len(), 2, "dot rhs must be rank 2");
        let (m, k) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "dot inner dimensions disagree");
        let mut data = vec![0.0; m * n];
        for i in 0..m {
            for l in 0..k {
                let av = a.data[i * k + l];
                if av == 0.0 {
                    continue;
                }
                let brow = l * n;
                let crow = i * n;
                for j in 0..n {
                    data[crow + j] += av * b.data[brow + j];
                }
            }
        }
        RefBlock {
            shape: vec![m, n],
            data,
        }
    }
}

#[derive(Default, Clone, Copy)]
struct InstCost {
    l2_read_sectors: u64,
    l2_write_sectors: u64,
    flops_tc_f16: u64,
    flops_tc_f32: u64,
    flops_scalar: u64,
    smem_bytes: u64,
    atomics: u64,
    instructions: u64,
    dyn_iters: u64,
}

struct Machine<'a> {
    kernel: &'a Kernel,
    mode: Mode,
    dot_f16: bool,
    bases: Vec<u64>,
    esizes: Vec<u64>,
    lens: Vec<usize>,
    dtypes: Vec<DType>,
    dram_read_seen: HashSet<u64>,
    dram_write_seen: HashSet<u64>,
    atomic_counts: HashMap<u64, u64>,
    stats: KernelStats,
    inst: InstCost,
}

const SECTOR: u64 = 32;
const WARP: usize = 32;

impl Machine<'_> {
    fn record_access(
        &mut self,
        param: usize,
        offsets: &RefBlock,
        mask: Option<&RefBlock>,
        is_write: bool,
    ) -> Result<(), GpuError> {
        let base = self.bases[param];
        let esize = self.esizes[param];
        let len = self.lens[param];
        let mut sectors: Vec<u64> = Vec::with_capacity(WARP);
        let n = offsets.len();
        let mut lane = 0;
        while lane < n {
            let warp_end = (lane + WARP).min(n);
            sectors.clear();
            for l in lane..warp_end {
                let active = mask.is_none_or(|m| m.data[l] != 0.0);
                if !active {
                    continue;
                }
                let off = offsets.data[l];
                let off_i = off as i64;
                if off_i < 0 || off_i as usize >= len {
                    return Err(GpuError::OffsetOutOfBounds {
                        param: self.kernel.params[param].name.clone(),
                        offset: off_i,
                        len,
                    });
                }
                let addr = base + off_i as u64 * esize;
                sectors.push(addr / SECTOR);
            }
            sectors.sort_unstable();
            sectors.dedup();
            let uniq = sectors.len() as u64;
            if is_write {
                self.inst.l2_write_sectors += uniq;
                for &s in &sectors {
                    if self.dram_write_seen.insert(s) {
                        self.stats.dram_write_sectors += 1;
                    }
                }
            } else {
                self.inst.l2_read_sectors += uniq;
                for &s in &sectors {
                    if self.dram_read_seen.insert(s) {
                        self.stats.dram_read_sectors += 1;
                    }
                }
            }
            lane = warp_end;
        }
        Ok(())
    }

    fn reg(regs: &[Option<RefBlock>], r: Reg) -> Result<&RefBlock, GpuError> {
        regs[r].as_ref().ok_or(GpuError::UninitializedRegister(r))
    }

    fn run_body(
        &mut self,
        body: &[Instr],
        regs: &mut Vec<Option<RefBlock>>,
        pid: [usize; 3],
        args: &mut [&mut Tensor],
    ) -> Result<(), GpuError> {
        for instr in body {
            self.inst.instructions += 1;
            match instr {
                Instr::ProgramId { dst, axis } => {
                    regs[*dst] = Some(RefBlock::scalar(pid[*axis] as f64));
                }
                Instr::Const { dst, value } => {
                    regs[*dst] = Some(RefBlock::scalar(*value));
                }
                Instr::Arange { dst, len } => {
                    regs[*dst] = Some(RefBlock::iota(*len));
                }
                Instr::Full { dst, shape, value } => {
                    regs[*dst] = Some(RefBlock::full(shape.clone(), *value));
                }
                Instr::Binary { dst, op, a, b } => {
                    let out = {
                        let av = Self::reg(regs, *a)?;
                        let bv = Self::reg(regs, *b)?;
                        RefBlock::binary(*op, av, bv)
                    };
                    self.inst.flops_scalar += out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::ExpandDims { dst, src, axis } => {
                    regs[*dst] = Some(Self::reg(regs, *src)?.expand_dims(*axis));
                }
                Instr::Broadcast { dst, src, shape } => {
                    let out = Self::reg(regs, *src)?.broadcast_to(shape);
                    self.inst.smem_bytes += 4 * out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::View { dst, src, shape } => {
                    let out = Self::reg(regs, *src)?.view(shape.clone());
                    self.inst.smem_bytes += 4 * out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::Trans { dst, src } => {
                    let out = Self::reg(regs, *src)?.trans();
                    self.inst.smem_bytes += 4 * out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::Load {
                    dst,
                    param,
                    offset,
                    mask,
                    other,
                } => {
                    let (offsets, maskb) = {
                        let off = Self::reg(regs, *offset)?;
                        match mask {
                            Some(m) => {
                                let mb = Self::reg(regs, *m)?;
                                let joint = RefBlock::joint_shape(off, mb);
                                (off.broadcast_to(&joint), Some(mb.broadcast_to(&joint)))
                            }
                            None => (off.clone(), None),
                        }
                    };
                    self.record_access(*param, &offsets, maskb.as_ref(), false)?;
                    let read_values =
                        self.mode == Mode::Execute || self.dtypes[*param] == DType::I32;
                    let data: Vec<f64> = offsets
                        .data
                        .iter()
                        .enumerate()
                        .map(|(l, &off)| {
                            let active = maskb.as_ref().is_none_or(|m| m.data[l] != 0.0);
                            if !active {
                                *other
                            } else if read_values {
                                args[*param].data()[off as usize] as f64
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    regs[*dst] = Some(RefBlock {
                        shape: offsets.shape.clone(),
                        data,
                    });
                }
                Instr::Store {
                    param,
                    offset,
                    value,
                    mask,
                } => {
                    let (offsets, values, maskb) =
                        self.prepare_write(regs, *offset, *value, *mask)?;
                    self.record_access(*param, &offsets, maskb.as_ref(), true)?;
                    if self.mode == Mode::Execute {
                        let round = self.dtypes[*param] == DType::F16;
                        for (l, &off) in offsets.data.iter().enumerate() {
                            let active = maskb.as_ref().is_none_or(|m| m.data[l] != 0.0);
                            if active {
                                let mut v = values.data[l] as f32;
                                if round {
                                    v = insum_tensor::f16_round(v);
                                }
                                args[*param].data_mut()[off as usize] = v;
                            }
                        }
                    }
                }
                Instr::AtomicAdd {
                    param,
                    offset,
                    value,
                    mask,
                } => {
                    let (offsets, values, maskb) =
                        self.prepare_write(regs, *offset, *value, *mask)?;
                    self.record_access(*param, &offsets, maskb.as_ref(), true)?;
                    let base = self.bases[*param];
                    let esize = self.esizes[*param];
                    let round = self.dtypes[*param] == DType::F16;
                    for (l, &off) in offsets.data.iter().enumerate() {
                        let active = maskb.as_ref().is_none_or(|m| m.data[l] != 0.0);
                        if !active {
                            continue;
                        }
                        self.inst.atomics += 1;
                        let addr = base + off as u64 * esize;
                        *self.atomic_counts.entry(addr).or_insert(0) += 1;
                        if self.mode == Mode::Execute {
                            let slot = &mut args[*param].data_mut()[off as usize];
                            let mut v = *slot + values.data[l] as f32;
                            if round {
                                v = insum_tensor::f16_round(v);
                            }
                            *slot = v;
                        }
                    }
                }
                Instr::Dot { dst, a, b } => {
                    let (m, k, n, out) = {
                        let av = Self::reg(regs, *a)?;
                        let bv = Self::reg(regs, *b)?;
                        let (m, k) = (av.shape[0], av.shape[1]);
                        let n = bv.shape[1];
                        let out = if self.mode == Mode::Execute {
                            RefBlock::dot(av, bv)
                        } else {
                            debug_assert_eq!(bv.shape[0], k, "dot inner dims");
                            RefBlock::full(vec![m, n], 0.0)
                        };
                        (m, k, n, out)
                    };
                    let flops = 2 * (m * k * n) as u64;
                    if self.dot_f16 {
                        self.inst.flops_tc_f16 += flops;
                    } else {
                        self.inst.flops_tc_f32 += flops;
                    }
                    regs[*dst] = Some(out);
                }
                Instr::Sum { dst, src, axis } => {
                    let out = {
                        let sv = Self::reg(regs, *src)?;
                        self.inst.flops_scalar += sv.len() as u64;
                        sv.sum_axis(*axis)
                    };
                    regs[*dst] = Some(out);
                }
                Instr::Loop {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    let mut v = *start;
                    while v < *end {
                        regs[*var] = Some(RefBlock::scalar(v as f64));
                        self.run_body(body, regs, pid, args)?;
                        v += *step;
                    }
                }
                Instr::LoopDyn {
                    var,
                    start,
                    end,
                    body,
                } => {
                    let lo = Self::reg(regs, *start)?.data[0] as i64;
                    let hi = Self::reg(regs, *end)?.data[0] as i64;
                    self.inst.dyn_iters += (hi - lo).max(0) as u64;
                    let mut v = lo;
                    while v < hi {
                        regs[*var] = Some(RefBlock::scalar(v as f64));
                        self.run_body(body, regs, pid, args)?;
                        v += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn prepare_write(
        &self,
        regs: &[Option<RefBlock>],
        offset: Reg,
        value: Reg,
        mask: Option<Reg>,
    ) -> Result<(RefBlock, RefBlock, Option<RefBlock>), GpuError> {
        let off = Self::reg(regs, offset)?;
        let val = Self::reg(regs, value)?;
        let mut joint = RefBlock::joint_shape(off, val);
        let maskb = match mask {
            Some(m) => {
                let mb = Self::reg(regs, m)?;
                joint = RefBlock::joint_shape(&RefBlock::full(joint.clone(), 0.0), mb);
                Some(mb.broadcast_to(&joint))
            }
            None => None,
        };
        Ok((off.broadcast_to(&joint), val.broadcast_to(&joint), maskb))
    }
}

/// Launch a kernel on the seed (unoptimized) interpreter.
///
/// Semantics are identical to [`crate::launch`]; see the module docs for
/// why this copy exists.
///
/// # Errors
///
/// Same error conditions as [`crate::launch`].
pub fn launch_reference(
    kernel: &Kernel,
    grid: &[usize],
    args: &mut [&mut Tensor],
    device: &DeviceModel,
    mode: Mode,
) -> Result<KernelReport, GpuError> {
    kernel.validate()?;
    if args.len() != kernel.params.len() {
        return Err(GpuError::ParamCountMismatch {
            expected: kernel.params.len(),
            actual: args.len(),
        });
    }
    if grid.is_empty() || grid.len() > 3 || grid.contains(&0) {
        return Err(GpuError::BadGrid(grid.to_vec()));
    }
    let mut gdims = [1usize; 3];
    gdims[..grid.len()].copy_from_slice(grid);

    let mut bases = Vec::with_capacity(args.len());
    let mut esizes = Vec::with_capacity(args.len());
    let mut cursor = 0u64;
    for t in args.iter() {
        bases.push(cursor);
        let esize = t.dtype().size_bytes() as u64;
        esizes.push(esize);
        cursor += (t.len() as u64 * esize).div_ceil(256) * 256 + 256;
    }
    let dot_f16 = {
        let floats: Vec<&&mut Tensor> = args.iter().filter(|t| t.dtype().is_float()).collect();
        !floats.is_empty() && floats.iter().all(|t| t.dtype() == DType::F16)
    };

    let instances = gdims[0] * gdims[1] * gdims[2];
    let lens: Vec<usize> = args.iter().map(|t| t.len()).collect();
    let dtypes: Vec<DType> = args.iter().map(|t| t.dtype()).collect();
    let mut machine = Machine {
        kernel,
        mode,
        dot_f16,
        bases,
        esizes,
        lens,
        dtypes,
        dram_read_seen: HashSet::new(),
        dram_write_seen: HashSet::new(),
        atomic_counts: HashMap::new(),
        stats: KernelStats::default(),
        inst: InstCost::default(),
    };

    let mut instance_times = Vec::with_capacity(instances);
    let mut regs: Vec<Option<RefBlock>> = vec![None; kernel.num_regs];
    for iz in 0..gdims[2] {
        for iy in 0..gdims[1] {
            for ix in 0..gdims[0] {
                machine.inst = InstCost::default();
                regs.iter_mut().for_each(|r| *r = None);
                machine.run_body(&kernel.body, &mut regs, [ix, iy, iz], args)?;
                let c = machine.inst;
                machine.stats.l2_read_sectors += c.l2_read_sectors;
                machine.stats.l2_write_sectors += c.l2_write_sectors;
                machine.stats.flops_tc_f16 += c.flops_tc_f16;
                machine.stats.flops_tc_f32 += c.flops_tc_f32;
                machine.stats.flops_scalar += c.flops_scalar;
                machine.stats.smem_bytes += c.smem_bytes;
                machine.stats.atomics += c.atomics;
                machine.stats.instructions += c.instructions;
                let mem = 32.0 * (c.l2_read_sectors + c.l2_write_sectors) as f64
                    / device.per_sm(device.l2_bw);
                let compute = c.flops_tc_f16 as f64 / device.per_sm(device.tc_f16_flops)
                    + c.flops_tc_f32 as f64 / device.per_sm(device.tc_f32_flops)
                    + c.flops_scalar as f64 / device.per_sm(device.alu_flops)
                    + c.smem_bytes as f64 / device.per_sm(device.smem_bw);
                let t = device.instr_issue * c.instructions as f64
                    + device.dyn_loop_stall * c.dyn_iters as f64
                    + mem.max(compute);
                instance_times.push(t);
            }
        }
    }

    machine.stats.instances = instances as u64;
    let conflicts: u64 = machine.atomic_counts.values().map(|&c| c - 1).sum();
    machine.stats.atomic_conflicts = conflicts;
    let max_chain: u64 = machine
        .atomic_counts
        .values()
        .map(|&c| c - 1)
        .max()
        .unwrap_or(0);

    let dram_time = machine.stats.dram_bytes() as f64 / device.dram_bw
        + machine.stats.atomics as f64 / device.atomic_rate
        + max_chain as f64 * device.atomic_conflict_penalty;
    let (time, sm_time, dram_time) = combine_times(device, &instance_times, dram_time);
    let max_instance_time = instance_times.iter().copied().fold(0.0, f64::max);

    Ok(KernelReport {
        name: kernel.name.clone(),
        grid: grid.to_vec(),
        stats: machine.stats,
        time,
        sm_time,
        dram_time,
        max_instance_time,
    })
}
