//! Dedicated execution targets for recognized einsum patterns.
//!
//! The general interpreter ([`crate::launch`]) executes a lowered kernel
//! IR instruction by instruction; that generality is exactly what makes
//! it expensive on the host. For the canonical contraction shapes that
//! [`insum_pattern`] recognizes, this module provides two far cheaper
//! targets that preserve the simulator's contract (bit-exact values,
//! deterministic [`KernelStats`]):
//!
//! * **Zero-copy stride transforms** — transpose (any permutation,
//!   identity included) and diagonal extraction become
//!   [`Tensor::permute_view`] / [`Tensor::diagonal_view`]: no kernel, no
//!   launch overhead, no bytes moved, `deep_copy_count()` unchanged. The
//!   fused general pipeline stores the *raw input bits* for these
//!   copy-shaped statements (NaN payloads and `-0.0` survive), so a view
//!   over the same storage is bit-identical by construction.
//! * **Microkernels** — matmul, batched matmul, reduction, Hadamard,
//!   outer, dot, trace run as tight host loops that reproduce the fused
//!   pipeline's accumulation semantics exactly (see below) and charge an
//!   analytic cost model.
//!
//! # Bit-identity contract
//!
//! The fused general lowering is the oracle. Its empirically pinned
//! semantics, which every microkernel here reproduces:
//!
//! * Products compute in `f64` and round once to `f32`
//!   (`(a as f64 * b as f64) as f32` equals the single-rounded `f32`
//!   product); `-0.0` is preserved and `0 * inf` produces NaN.
//! * Dot-style reductions (matmul, batched matmul, dot) accumulate into
//!   an `f64` initialized to `0.0`, visiting the contraction axis in
//!   ascending order, and **skip terms whose left factor is `0.0`**
//!   (the interpreter's sparse-operand short-circuit; `-0.0` counts as
//!   zero, so a `0.0 * NaN` term is skipped, not propagated). To pin the
//!   remaining unspecified IEEE corners (which NaN sign survives
//!   `-inf + NaN` depends on how the compiler schedules the loop), these
//!   microkernels call the interpreter's [`Block::dot`] with the general
//!   kernel's default R/X tile boundaries rather than re-rolling the
//!   loop — see [`matmul_block`]. Because those boundaries are the
//!   *default* ones, the fast-path gate declines dot-family statements
//!   compiled with autotuning or explicit block overrides, and declines
//!   them entirely when Tensor Cores are off (the scalar lowering has no
//!   zero skip).
//! * Plain reductions sum in `f64` in row-major input order with no
//!   splitting, then round once to `f32`.
//! * `+=` (accumulate) adds the rounded `f32` result to the existing
//!   output value in `f32`; an `f16` output rounds through [`f16_round`]
//!   after every store.
//!
//! # Cost model
//!
//! Microkernel launches are modeled as one 1-D grid over output elements
//! (256 per instance) with perfect operand reuse: every operand crosses
//! L2/DRAM exactly once (compulsory traffic), dense FLOP issue (the
//! zero-skip is a value optimization, not a cost one), and one modeled
//! instruction per FLOP plus one per element moved. Times follow the
//! same [`DeviceModel`] arithmetic as the interpreter:
//! `launch_overhead + max(SM makespan, DRAM time)`. Stride-transform
//! views report zeroed counters and `time == 0.0` — no kernel runs. All
//! counters derive from shapes and dtypes only, so [`Mode::Execute`] and
//! [`Mode::Analytic`] report identical profiles.

use crate::block::Block;
use crate::device::DeviceModel;
use crate::interp::{GpuError, Mode};
use crate::stats::{combine_times, KernelReport, KernelStats};
use insum_kernel::BinOp;
use insum_pattern::Pattern;
use insum_tensor::{f16_round, DType, Tensor};

/// Output elements modeled per grid instance.
const BLOCK: usize = 256;

/// True when a copy-shaped pattern (transpose/diagonal) can be served as
/// a pure stride view for this dtype pair.
///
/// Same dtype: the view *is* the raw bits the general pipeline would
/// store. `F16 -> F32`: widening preserves raw bits, so a retagged view
/// still matches. `F32 -> F16` narrows through [`f16_round`] and
/// therefore needs a real kernel — callers must route it to the general
/// path.
pub fn copy_view_eligible(input: DType, output: DType) -> bool {
    input == output || (input == DType::F16 && output == DType::F32)
}

fn micro_err(detail: impl Into<String>) -> GpuError {
    GpuError::Micro(detail.into())
}

/// Execute a recognized pattern against its factor tensors.
///
/// `factors` are the statement's right-hand-side tensors in source
/// order; `output` is the bound output tensor (its contents are the
/// accumulation base when `accumulate` is true, and define the output
/// shape/dtype always). In [`Mode::Analytic`] value math is skipped and
/// the unmodified `output` binding is returned, exactly like the general
/// pipeline; the report is identical in both modes.
///
/// # Errors
///
/// [`GpuError::Micro`] when the factor/output shapes or dtypes do not
/// match the pattern (the fast-path gate in `crates/core` validates
/// these before ever constructing a fast-path artifact).
pub fn run_micro(
    pattern: &Pattern,
    factors: &[Tensor],
    output: &Tensor,
    accumulate: bool,
    mode: Mode,
    device: &DeviceModel,
) -> Result<(Tensor, KernelReport), GpuError> {
    // A microkernel execution is a launch for telemetry purposes: the
    // profiling hook sees the same Launch interval the interpreter
    // records, so serve-layer traces stay uniform across both paths.
    let _launch_span = insum_telemetry::hook::timed(insum_telemetry::HookPhase::Launch);
    for t in factors {
        if t.dtype() == DType::I32 {
            return Err(micro_err("integer factors have no fast path"));
        }
    }
    if output.dtype() == DType::I32 {
        return Err(micro_err("integer outputs have no fast path"));
    }
    match pattern {
        Pattern::Transpose { perm } => {
            let [a] = factors else {
                return Err(micro_err("transpose expects one factor"));
            };
            let view = a.permute_view(perm).map_err(|e| micro_err(e.to_string()))?;
            copy_result(view, a, output, accumulate, mode, "view_transpose")
        }
        Pattern::Diagonal => {
            let [a] = factors else {
                return Err(micro_err("diagonal expects one factor"));
            };
            let view = a.diagonal_view().map_err(|e| micro_err(e.to_string()))?;
            copy_result(view, a, output, accumulate, mode, "view_diagonal")
        }
        Pattern::Reduction { axes } => {
            let [a] = factors else {
                return Err(micro_err("reduction expects one factor"));
            };
            let kept: Vec<usize> = (0..a.ndim()).filter(|d| !axes.contains(d)).collect();
            let want: Vec<usize> = kept.iter().map(|&d| a.shape()[d]).collect();
            check_out_shape(output, &want, "reduction")?;
            let reads = a.len() as u64;
            compute(
                "micro_reduction",
                factors,
                output,
                accumulate,
                mode,
                device,
                reads,
                |out| reduce_sum(a, axes, out),
            )
        }
        Pattern::Hadamard => {
            let [a, b] = factors else {
                return Err(micro_err("hadamard expects two factors"));
            };
            if a.shape() != b.shape() {
                return Err(micro_err("hadamard factors must share a shape"));
            }
            check_out_shape(output, a.shape(), "hadamard")?;
            compute(
                "micro_hadamard",
                factors,
                output,
                accumulate,
                mode,
                device,
                output.len() as u64,
                |out| {
                    let av = a.contiguous_data();
                    let bv = b.contiguous_data();
                    // The f64 product of two f32s is exact (24+24 < 53
                    // mantissa bits), so its single rounding to f32 IS
                    // the native f32 product — and the f32 loop
                    // vectorizes where the widening one does not.
                    for (o, (&x, &y)) in out.iter_mut().zip(av.iter().zip(bv.iter())) {
                        *o = x * y;
                    }
                },
            )
        }
        Pattern::Outer => {
            let [a, b] = factors else {
                return Err(micro_err("outer expects two factors"));
            };
            if a.ndim() != 1 || b.ndim() != 1 {
                return Err(micro_err("outer factors must be vectors"));
            }
            check_out_shape(output, &[a.len(), b.len()], "outer")?;
            compute(
                "micro_outer",
                factors,
                output,
                accumulate,
                mode,
                device,
                output.len() as u64,
                |out| {
                    let av = a.contiguous_data();
                    let bv = b.contiguous_data();
                    // Exact-product argument as for Hadamard above: the
                    // single-rounded f32 multiply is the f64 route's
                    // result bit for bit.
                    for (row, &x) in out.chunks_mut(bv.len()).zip(av.iter()) {
                        for (o, &y) in row.iter_mut().zip(bv.iter()) {
                            *o = x * y;
                        }
                    }
                },
            )
        }
        Pattern::Dot => {
            let [a, b] = factors else {
                return Err(micro_err("dot expects two factors"));
            };
            if a.ndim() != 1 || b.ndim() != 1 || a.len() != b.len() {
                return Err(micro_err("dot factors must be equal-length vectors"));
            }
            check_out_shape(output, &[], "dot")?;
            compute(
                "micro_dot",
                factors,
                output,
                accumulate,
                mode,
                device,
                2 * a.len() as u64,
                |out| {
                    let av = a.contiguous_data();
                    let bv = b.contiguous_data();
                    matmul_block(&av, &bv, out, 1, av.len(), 1);
                },
            )
        }
        Pattern::Trace => {
            let [a] = factors else {
                return Err(micro_err("trace expects one factor"));
            };
            if a.ndim() != 2 || a.shape()[0] != a.shape()[1] {
                return Err(micro_err("trace expects a square matrix"));
            }
            check_out_shape(output, &[], "trace")?;
            let n = a.shape()[0];
            compute(
                "micro_trace",
                factors,
                output,
                accumulate,
                mode,
                device,
                n as u64,
                |out| {
                    let av = a.contiguous_data();
                    let mut acc = 0.0f64;
                    for i in 0..n {
                        acc += av[i * n + i] as f64;
                    }
                    out[0] = acc as f32;
                },
            )
        }
        Pattern::Matmul => {
            let [a, b] = factors else {
                return Err(micro_err("matmul expects two factors"));
            };
            if a.ndim() != 2 || b.ndim() != 2 || a.shape()[1] != b.shape()[0] {
                return Err(micro_err("matmul factor shapes disagree"));
            }
            let (m, k, n) = (a.shape()[0], a.shape()[1], b.shape()[1]);
            check_out_shape(output, &[m, n], "matmul")?;
            compute(
                "micro_matmul",
                factors,
                output,
                accumulate,
                mode,
                device,
                2 * (m * n * k) as u64,
                |out| matmul_block(&a.contiguous_data(), &b.contiguous_data(), out, m, k, n),
            )
        }
        Pattern::BatchedMatmul => {
            let [a, b] = factors else {
                return Err(micro_err("batched matmul expects two factors"));
            };
            if a.ndim() != 3
                || b.ndim() != 3
                || a.shape()[0] != b.shape()[0]
                || a.shape()[2] != b.shape()[1]
            {
                return Err(micro_err("batched matmul factor shapes disagree"));
            }
            let (g, m, k, n) = (a.shape()[0], a.shape()[1], a.shape()[2], b.shape()[2]);
            check_out_shape(output, &[g, m, n], "batched matmul")?;
            compute(
                "micro_batched_matmul",
                factors,
                output,
                accumulate,
                mode,
                device,
                2 * (g * m * n * k) as u64,
                |out| {
                    let av = a.contiguous_data();
                    let bv = b.contiguous_data();
                    for gi in 0..g {
                        matmul_block(
                            &av[gi * m * k..(gi + 1) * m * k],
                            &bv[gi * k * n..(gi + 1) * k * n],
                            &mut out[gi * m * n..(gi + 1) * m * n],
                            m,
                            k,
                            n,
                        );
                    }
                },
            )
        }
        Pattern::General => Err(micro_err("the general pattern has no microkernel")),
    }
}

/// Finish a copy-shaped pattern (transpose/diagonal) served by `view`.
fn copy_result(
    view: Tensor,
    input: &Tensor,
    output: &Tensor,
    accumulate: bool,
    mode: Mode,
    name: &str,
) -> Result<(Tensor, KernelReport), GpuError> {
    if accumulate {
        return Err(micro_err("copy patterns only fast-path `=` statements"));
    }
    if output.shape() != view.shape() {
        return Err(micro_err(format!(
            "output shape {:?} does not match {} result {:?}",
            output.shape(),
            name,
            view.shape()
        )));
    }
    if !copy_view_eligible(input.dtype(), output.dtype()) {
        return Err(micro_err("dtype pair is not view-eligible"));
    }
    let report = KernelReport {
        name: name.to_string(),
        grid: vec![],
        stats: KernelStats::default(),
        time: 0.0,
        sm_time: 0.0,
        dram_time: 0.0,
        max_instance_time: 0.0,
    };
    let out = match mode {
        Mode::Analytic => output.clone(),
        // A widening retag shares storage (`cast` to F32 is stride- and
        // Arc-preserving); same-dtype views are returned as-is.
        Mode::Execute => {
            if output.dtype() == view.dtype() {
                view
            } else {
                view.cast(output.dtype())
            }
        }
    };
    Ok((out, report))
}

fn check_out_shape(output: &Tensor, want: &[usize], what: &str) -> Result<(), GpuError> {
    if output.shape() != want {
        return Err(micro_err(format!(
            "output shape {:?} does not match {what} result {want:?}",
            output.shape()
        )));
    }
    Ok(())
}

/// Run a compute microkernel: `fill` produces the raw `f32` results in
/// row-major order, then the accumulate/f16 epilogue and the analytic
/// cost model are applied uniformly.
#[allow(clippy::too_many_arguments)]
fn compute(
    name: &str,
    factors: &[Tensor],
    output: &Tensor,
    accumulate: bool,
    mode: Mode,
    device: &DeviceModel,
    flops: u64,
    fill: impl FnOnce(&mut [f32]),
) -> Result<(Tensor, KernelReport), GpuError> {
    let report = model_launch(name, factors, output, accumulate, flops, device);
    if mode == Mode::Analytic {
        return Ok((output.clone(), report));
    }
    // Fill straight into the fresh (zeroed, uniquely-owned) output
    // buffer and run the epilogue in place — no scratch `raw` vector.
    let round = output.dtype() == DType::F16;
    let mut out = Tensor::zeros_with(output.shape().to_vec(), output.dtype());
    {
        let od = out.data_mut();
        fill(od);
        if accumulate {
            let base = output.contiguous_data();
            for (slot, &b) in od.iter_mut().zip(base.iter()) {
                *slot += b;
            }
        }
        if round {
            for slot in od.iter_mut() {
                *slot = f16_round(*slot);
            }
        }
    }
    Ok((out, report))
}

/// `out[i*n + j] = sum_r a[i*k + r] * b[r*n + j]`, replicating the
/// general kernel's execution structure exactly: R is tiled by
/// `rb = next_pow2(k).clamp(16, 32)` and X by
/// `xb = next_pow2(n).clamp(16, 32)` (B tiles zero-padded the way the
/// kernel's masked loads pad them), each tile runs through the
/// interpreter's own [`Block::dot`], and per-tile partials combine with
/// [`Block::binary`] adds — the same machine code the general pipeline
/// executes, in the same call pattern. Matching source-level semantics
/// is not enough: the optimizer is free to pick which NaN survives a
/// float add or a vectorized reduction, so bit-identity on NaN corners
/// requires sharing both the compiled kernels and their tile
/// boundaries.
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let rb = k.next_power_of_two().clamp(16, 32);
    let xb = n.next_power_of_two().clamp(16, 32);
    let mut x0 = 0usize;
    while x0 < n {
        let xw = (n - x0).min(xb);
        let mut acc: Option<Block> = None;
        let mut r0 = 0usize;
        while r0 < k {
            let r1 = (r0 + rb).min(k);
            let kw = r1 - r0;
            let mut at = Vec::with_capacity(m * kw);
            for i in 0..m {
                at.extend(a[i * k + r0..i * k + r1].iter().map(|&v| v as f64));
            }
            let mut bt = vec![0.0f64; kw * xb];
            for r in r0..r1 {
                for t in 0..xw {
                    bt[(r - r0) * xb + t] = b[r * n + x0 + t] as f64;
                }
            }
            let d = Block::dot(
                &Block::from_vec(vec![m, kw], at),
                &Block::from_vec(vec![kw, xb], bt),
            );
            acc = Some(match acc {
                None => d,
                Some(p) => Block::binary(BinOp::Add, &p, &d),
            });
            r0 = r1;
        }
        let av = acc.expect("contraction extent is nonzero").to_vec();
        for i in 0..m {
            for t in 0..xw {
                out[i * n + x0 + t] = av[i * xb + t] as f32;
            }
        }
        x0 += xb;
    }
}

/// Row-major `f64` sum over `axes` of `a` into `out` (raw `f32`s).
fn reduce_sum(a: &Tensor, axes: &[usize], out: &mut [f32]) {
    let shape = a.shape();
    let nd = shape.len();
    let data = a.contiguous_data();
    // Trailing-suffix reductions (`S[i] = A[i,j]`, the canonical shape)
    // sum contiguous chunks: same f64 adds in the same row-major order
    // as the generic walk below, minus the per-element index odometer.
    if let Some(&ma) = axes.iter().min() {
        if axes.len() == nd - ma && axes.iter().all(|&d| d >= ma) {
            let inner: usize = shape[ma..].iter().product();
            for (slot, chunk) in out.iter_mut().zip(data.chunks(inner.max(1))) {
                *slot = chunk.iter().map(|&v| v as f64).sum::<f64>() as f32;
            }
            return;
        }
    }
    let mut out_stride = vec![0usize; nd];
    let mut s = 1usize;
    for d in (0..nd).rev() {
        if !axes.contains(&d) {
            out_stride[d] = s;
            s *= shape[d];
        }
    }
    let mut acc = vec![0.0f64; out.len()];
    let mut idx = vec![0usize; nd];
    for &v in data.iter() {
        let o: usize = idx.iter().zip(&out_stride).map(|(i, st)| i * st).sum();
        acc[o] += v as f64;
        for d in (0..nd).rev() {
            idx[d] += 1;
            if idx[d] < shape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    for (slot, &x) in out.iter_mut().zip(acc.iter()) {
        *slot = x as f32;
    }
}

/// Analytic launch model shared by every compute microkernel; derives
/// exclusively from shapes/dtypes so Execute and Analytic agree.
fn model_launch(
    name: &str,
    factors: &[Tensor],
    output: &Tensor,
    accumulate: bool,
    flops: u64,
    device: &DeviceModel,
) -> KernelReport {
    let read_bytes: u64 = factors
        .iter()
        .map(|t| (t.len() * t.dtype().size_bytes()) as u64)
        .sum::<u64>()
        + if accumulate {
            (output.len() * output.dtype().size_bytes()) as u64
        } else {
            0
        };
    let write_bytes = (output.len() * output.dtype().size_bytes()) as u64;
    let read_sectors = read_bytes.div_ceil(32);
    let write_sectors = write_bytes.div_ceil(32);
    let in_elems: u64 = factors.iter().map(|t| t.len() as u64).sum();
    let out_elems = output.len() as u64;
    let flops = flops + if accumulate { out_elems } else { 0 };
    let instructions = flops + in_elems + out_elems;
    let instances = out_elems.div_ceil(BLOCK as u64).max(1);
    let stats = KernelStats {
        instances,
        dram_read_sectors: read_sectors,
        dram_write_sectors: write_sectors,
        l2_read_sectors: read_sectors,
        l2_write_sectors: write_sectors,
        flops_scalar: flops,
        instructions,
        ..Default::default()
    };
    let per_instance = (instructions as f64 / instances as f64) * device.instr_issue
        + (flops as f64 / instances as f64) / device.per_sm(device.alu_flops);
    let times = vec![per_instance; instances as usize];
    let dram_time = stats.dram_bytes() as f64 / device.dram_bw;
    let (time, sm_time, dram_time) = combine_times(device, &times, dram_time);
    KernelReport {
        name: name.to_string(),
        grid: vec![instances as usize],
        stats,
        time,
        sm_time,
        dram_time,
        max_instance_time: per_instance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceModel {
        DeviceModel::rtx3090()
    }

    /// Deterministic non-trivial data (sign flips, non-dyadic values).
    fn ramp(shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|i| ((i as f32) * 0.37 - 2.1) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn transpose_is_a_zero_copy_view() {
        let a = ramp(vec![5, 7]);
        let out = Tensor::zeros(vec![7, 5]);
        let (got, report) = run_micro(
            &Pattern::Transpose { perm: vec![1, 0] },
            std::slice::from_ref(&a),
            &out,
            false,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        // Sharing storage proves no bytes moved (the deep-copy counter is
        // asserted in simbench, which runs single-threaded).
        assert!(got.shares_storage(&a));
        assert_eq!(report.time, 0.0);
        assert_eq!(report.stats, KernelStats::default());
        for i in 0..7 {
            for j in 0..5 {
                assert_eq!(got.at(&[i, j]), a.at(&[j, i]));
            }
        }
    }

    #[test]
    fn diagonal_is_a_zero_copy_view() {
        let a = ramp(vec![6, 6]);
        let out = Tensor::zeros(vec![6]);
        let (got, _) = run_micro(
            &Pattern::Diagonal,
            std::slice::from_ref(&a),
            &out,
            false,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        assert!(got.shares_storage(&a));
        for i in 0..6 {
            assert_eq!(got.at(&[i]), a.at(&[i, i]));
        }
    }

    #[test]
    fn copy_patterns_reject_accumulate_and_narrowing() {
        let a = Tensor::zeros(vec![2, 3]);
        let out = Tensor::zeros(vec![3, 2]);
        let p = Pattern::Transpose { perm: vec![1, 0] };
        assert!(run_micro(
            &p,
            std::slice::from_ref(&a),
            &out,
            true,
            Mode::Execute,
            &dev()
        )
        .is_err());
        let out16 = Tensor::zeros_with(vec![3, 2], DType::F16);
        assert!(run_micro(&p, &[a], &out16, false, Mode::Execute, &dev()).is_err());
        assert!(copy_view_eligible(DType::F16, DType::F32));
        assert!(!copy_view_eligible(DType::F32, DType::F16));
    }

    #[test]
    fn matmul_matches_dense_reference() {
        let a = ramp(vec![4, 6]);
        let b = ramp(vec![6, 3]);
        let out = Tensor::zeros(vec![4, 3]);
        let (got, report) = run_micro(
            &Pattern::Matmul,
            &[a.clone(), b.clone()],
            &out,
            false,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        let want = a.matmul(&b).unwrap();
        assert!(got.allclose(&want, 1e-6, 1e-6));
        assert_eq!(report.stats.flops_scalar, 2 * 4 * 3 * 6);
        assert!(report.time > 0.0);
    }

    #[test]
    fn analytic_mode_skips_values_but_reports_identically() {
        let a = ramp(vec![8, 8]);
        let b = ramp(vec![8, 8]);
        let out = Tensor::zeros(vec![8, 8]);
        let (v, r_exec) = run_micro(
            &Pattern::Matmul,
            &[a.clone(), b.clone()],
            &out,
            false,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        let (skipped, r_ana) = run_micro(
            &Pattern::Matmul,
            &[a, b],
            &out,
            false,
            Mode::Analytic,
            &dev(),
        )
        .unwrap();
        assert_eq!(r_exec, r_ana);
        assert!(skipped.bit_eq(&out), "analytic returns the binding");
        assert!(!v.bit_eq(&out));
    }

    #[test]
    fn accumulate_adds_to_the_binding() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]).unwrap();
        let base = Tensor::from_vec(vec![2], vec![0.5, 0.25]).unwrap();
        let (got, _) = run_micro(
            &Pattern::Hadamard,
            &[a, b],
            &base,
            true,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        assert_eq!(*got.contiguous_data(), [10.5, 40.25]);
    }

    #[test]
    fn dot_and_trace_produce_scalars() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        let out = Tensor::zeros(vec![]);
        let (d, _) = run_micro(&Pattern::Dot, &[a, b], &out, false, Mode::Execute, &dev()).unwrap();
        assert_eq!(d.contiguous_data()[0], 32.0);
        let m = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (t, _) = run_micro(&Pattern::Trace, &[m], &out, false, Mode::Execute, &dev()).unwrap();
        assert_eq!(t.contiguous_data()[0], 5.0);
    }

    #[test]
    fn reduction_sums_dropped_axes() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let out = Tensor::zeros(vec![2]);
        let (got, _) = run_micro(
            &Pattern::Reduction { axes: vec![1] },
            std::slice::from_ref(&a),
            &out,
            false,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        assert_eq!(*got.contiguous_data(), [6.0, 15.0]);
        let full = Tensor::zeros(vec![]);
        let (g2, _) = run_micro(
            &Pattern::Reduction { axes: vec![0, 1] },
            &[a],
            &full,
            false,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        assert_eq!(g2.contiguous_data()[0], 21.0);
    }

    #[test]
    fn outer_and_shape_mismatches() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![3.0, 4.0, 5.0]).unwrap();
        let out = Tensor::zeros(vec![2, 3]);
        let (got, _) = run_micro(
            &Pattern::Outer,
            &[a.clone(), b.clone()],
            &out,
            false,
            Mode::Execute,
            &dev(),
        )
        .unwrap();
        assert_eq!(*got.contiguous_data(), [3., 4., 5., 6., 8., 10.]);
        let bad = Tensor::zeros(vec![3, 2]);
        assert!(run_micro(&Pattern::Outer, &[a, b], &bad, false, Mode::Execute, &dev()).is_err());
        assert!(run_micro(&Pattern::General, &[], &out, false, Mode::Execute, &dev()).is_err());
    }
}
