//! The kernel interpreter: functional execution + cost accounting.

use crate::block::Block;
use crate::device::DeviceModel;
use crate::stats::{combine_times, KernelReport, KernelStats};
use insum_kernel::{Instr, Kernel, KernelError, Reg};
use insum_tensor::{DType, Tensor};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Interpreter mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Compute real values and mutate output tensors (used by tests and
    /// small runs). Counters are exact.
    Execute,
    /// Skip floating-point value math and output writes; metadata (I32)
    /// loads still read real data so addresses, masks, and all counters
    /// are exactly as in [`Mode::Execute`].
    Analytic,
}

/// Error from launching a kernel on the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// Argument count does not match the kernel's parameter list.
    ParamCountMismatch {
        /// Parameters declared by the kernel.
        expected: usize,
        /// Arguments supplied.
        actual: usize,
    },
    /// A lane computed an out-of-bounds element offset.
    OffsetOutOfBounds {
        /// Parameter name.
        param: String,
        /// The offending element offset.
        offset: i64,
        /// The parameter's element count.
        len: usize,
    },
    /// The launch grid is empty or has more than 3 dimensions.
    BadGrid(Vec<usize>),
    /// The kernel failed structural validation.
    Kernel(KernelError),
    /// A register was read before being written.
    UninitializedRegister(Reg),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::ParamCountMismatch { expected, actual } => {
                write!(f, "kernel expects {expected} arguments, got {actual}")
            }
            GpuError::OffsetOutOfBounds { param, offset, len } => {
                write!(f, "offset {offset} out of bounds for parameter {param:?} ({len} elements)")
            }
            GpuError::BadGrid(g) => write!(f, "bad launch grid {g:?}"),
            GpuError::Kernel(e) => write!(f, "{e}"),
            GpuError::UninitializedRegister(r) => write!(f, "register v{r} read before write"),
        }
    }
}

impl Error for GpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpuError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for GpuError {
    fn from(e: KernelError) -> Self {
        GpuError::Kernel(e)
    }
}

/// Per-instance cost accumulator.
#[derive(Default, Clone, Copy)]
struct InstCost {
    l2_read_sectors: u64,
    l2_write_sectors: u64,
    flops_tc_f16: u64,
    flops_tc_f32: u64,
    flops_scalar: u64,
    smem_bytes: u64,
    atomics: u64,
    instructions: u64,
    dyn_iters: u64,
}

struct Machine<'a> {
    kernel: &'a Kernel,
    mode: Mode,
    dot_f16: bool,
    bases: Vec<u64>,
    esizes: Vec<u64>,
    lens: Vec<usize>,
    dtypes: Vec<DType>,
    dram_read_seen: HashSet<u64>,
    dram_write_seen: HashSet<u64>,
    atomic_counts: HashMap<u64, u64>,
    stats: KernelStats,
    inst: InstCost,
}

const SECTOR: u64 = 32;
const WARP: usize = 32;

impl Machine<'_> {
    /// Record a warp-granular memory access over the active lanes of an
    /// offset block; returns an error on out-of-bounds offsets.
    fn record_access(
        &mut self,
        param: usize,
        offsets: &Block,
        mask: Option<&Block>,
        is_write: bool,
    ) -> Result<(), GpuError> {
        let base = self.bases[param];
        let esize = self.esizes[param];
        let len = self.lens[param];
        let mut sectors: Vec<u64> = Vec::with_capacity(WARP);
        let n = offsets.len();
        let mut lane = 0;
        while lane < n {
            let warp_end = (lane + WARP).min(n);
            sectors.clear();
            for l in lane..warp_end {
                let active = mask.map_or(true, |m| m.data[l] != 0.0);
                if !active {
                    continue;
                }
                let off = offsets.data[l];
                let off_i = off as i64;
                if off_i < 0 || off_i as usize >= len {
                    return Err(GpuError::OffsetOutOfBounds {
                        param: self.kernel.params[param].name.clone(),
                        offset: off_i,
                        len,
                    });
                }
                let addr = base + off_i as u64 * esize;
                sectors.push(addr / SECTOR);
                // A multi-byte element can straddle a sector boundary only
                // if unaligned; our tensors are element-aligned so one
                // sector per element access suffices.
            }
            sectors.sort_unstable();
            sectors.dedup();
            let uniq = sectors.len() as u64;
            if is_write {
                self.inst.l2_write_sectors += uniq;
                for &s in &sectors {
                    if self.dram_write_seen.insert(s) {
                        self.stats.dram_write_sectors += 1;
                    }
                }
            } else {
                self.inst.l2_read_sectors += uniq;
                for &s in &sectors {
                    if self.dram_read_seen.insert(s) {
                        self.stats.dram_read_sectors += 1;
                    }
                }
            }
            lane = warp_end;
        }
        Ok(())
    }

    fn reg<'b>(regs: &'b [Option<Block>], r: Reg) -> Result<&'b Block, GpuError> {
        regs[r].as_ref().ok_or(GpuError::UninitializedRegister(r))
    }

    fn run_body(
        &mut self,
        body: &[Instr],
        regs: &mut Vec<Option<Block>>,
        pid: [usize; 3],
        args: &mut [&mut Tensor],
    ) -> Result<(), GpuError> {
        for instr in body {
            self.inst.instructions += 1;
            match instr {
                Instr::ProgramId { dst, axis } => {
                    regs[*dst] = Some(Block::scalar(pid[*axis] as f64));
                }
                Instr::Const { dst, value } => {
                    regs[*dst] = Some(Block::scalar(*value));
                }
                Instr::Arange { dst, len } => {
                    regs[*dst] = Some(Block::iota(*len));
                }
                Instr::Full { dst, shape, value } => {
                    regs[*dst] = Some(Block::full(shape.clone(), *value));
                }
                Instr::Binary { dst, op, a, b } => {
                    let out = {
                        let av = Self::reg(regs, *a)?;
                        let bv = Self::reg(regs, *b)?;
                        Block::binary(*op, av, bv)
                    };
                    self.inst.flops_scalar += out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::ExpandDims { dst, src, axis } => {
                    regs[*dst] = Some(Self::reg(regs, *src)?.expand_dims(*axis));
                }
                Instr::Broadcast { dst, src, shape } => {
                    let out = Self::reg(regs, *src)?.broadcast_to(shape);
                    self.inst.smem_bytes += 4 * out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::View { dst, src, shape } => {
                    let out = Self::reg(regs, *src)?.view(shape.clone());
                    self.inst.smem_bytes += 4 * out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::Trans { dst, src } => {
                    let out = Self::reg(regs, *src)?.trans();
                    self.inst.smem_bytes += 4 * out.len() as u64;
                    regs[*dst] = Some(out);
                }
                Instr::Load { dst, param, offset, mask, other } => {
                    let (offsets, maskb) = {
                        let off = Self::reg(regs, *offset)?;
                        match mask {
                            Some(m) => {
                                let mb = Self::reg(regs, *m)?;
                                let joint = Block::joint_shape(off, mb);
                                (off.broadcast_to(&joint), Some(mb.broadcast_to(&joint)))
                            }
                            None => (off.clone(), None),
                        }
                    };
                    self.record_access(*param, &offsets, maskb.as_ref(), false)?;
                    let read_values =
                        self.mode == Mode::Execute || self.dtypes[*param] == DType::I32;
                    let data: Vec<f64> = offsets
                        .data
                        .iter()
                        .enumerate()
                        .map(|(l, &off)| {
                            let active = maskb.as_ref().map_or(true, |m| m.data[l] != 0.0);
                            if !active {
                                *other
                            } else if read_values {
                                args[*param].data()[off as usize] as f64
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    regs[*dst] = Some(Block { shape: offsets.shape.clone(), data });
                }
                Instr::Store { param, offset, value, mask } => {
                    let (offsets, values, maskb) =
                        self.prepare_write(regs, *offset, *value, *mask)?;
                    self.record_access(*param, &offsets, maskb.as_ref(), true)?;
                    if self.mode == Mode::Execute {
                        let round = self.dtypes[*param] == DType::F16;
                        for (l, &off) in offsets.data.iter().enumerate() {
                            let active = maskb.as_ref().map_or(true, |m| m.data[l] != 0.0);
                            if active {
                                let mut v = values.data[l] as f32;
                                if round {
                                    v = insum_tensor::f16_round(v);
                                }
                                args[*param].data_mut()[off as usize] = v;
                            }
                        }
                    }
                }
                Instr::AtomicAdd { param, offset, value, mask } => {
                    let (offsets, values, maskb) =
                        self.prepare_write(regs, *offset, *value, *mask)?;
                    self.record_access(*param, &offsets, maskb.as_ref(), true)?;
                    let base = self.bases[*param];
                    let esize = self.esizes[*param];
                    let round = self.dtypes[*param] == DType::F16;
                    for (l, &off) in offsets.data.iter().enumerate() {
                        let active = maskb.as_ref().map_or(true, |m| m.data[l] != 0.0);
                        if !active {
                            continue;
                        }
                        self.inst.atomics += 1;
                        let addr = base + off as u64 * esize;
                        *self.atomic_counts.entry(addr).or_insert(0) += 1;
                        if self.mode == Mode::Execute {
                            let slot = &mut args[*param].data_mut()[off as usize];
                            let mut v = *slot + values.data[l] as f32;
                            if round {
                                v = insum_tensor::f16_round(v);
                            }
                            *slot = v;
                        }
                    }
                }
                Instr::Dot { dst, a, b } => {
                    let (m, k, n, out) = {
                        let av = Self::reg(regs, *a)?;
                        let bv = Self::reg(regs, *b)?;
                        let (m, k) = (av.shape[0], av.shape[1]);
                        let n = bv.shape[1];
                        let out = if self.mode == Mode::Execute {
                            Block::dot(av, bv)
                        } else {
                            debug_assert_eq!(bv.shape[0], k, "dot inner dims");
                            Block::full(vec![m, n], 0.0)
                        };
                        (m, k, n, out)
                    };
                    let flops = 2 * (m * k * n) as u64;
                    if self.dot_f16 {
                        self.inst.flops_tc_f16 += flops;
                    } else {
                        self.inst.flops_tc_f32 += flops;
                    }
                    regs[*dst] = Some(out);
                }
                Instr::Sum { dst, src, axis } => {
                    let out = {
                        let sv = Self::reg(regs, *src)?;
                        self.inst.flops_scalar += sv.len() as u64;
                        sv.sum_axis(*axis)
                    };
                    regs[*dst] = Some(out);
                }
                Instr::Loop { var, start, end, step, body } => {
                    let mut v = *start;
                    while v < *end {
                        regs[*var] = Some(Block::scalar(v as f64));
                        self.run_body(body, regs, pid, args)?;
                        v += *step;
                    }
                }
                Instr::LoopDyn { var, start, end, body } => {
                    let lo = Self::reg(regs, *start)?.data[0] as i64;
                    let hi = Self::reg(regs, *end)?.data[0] as i64;
                    self.inst.dyn_iters += (hi - lo).max(0) as u64;
                    let mut v = lo;
                    while v < hi {
                        regs[*var] = Some(Block::scalar(v as f64));
                        self.run_body(body, regs, pid, args)?;
                        v += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Broadcast offset/value/mask to a joint shape for a write.
    fn prepare_write(
        &self,
        regs: &[Option<Block>],
        offset: Reg,
        value: Reg,
        mask: Option<Reg>,
    ) -> Result<(Block, Block, Option<Block>), GpuError> {
        let off = Self::reg(regs, offset)?;
        let val = Self::reg(regs, value)?;
        let mut joint = Block::joint_shape(off, val);
        let maskb = match mask {
            Some(m) => {
                let mb = Self::reg(regs, m)?;
                joint = Block::joint_shape(&Block::full(joint.clone(), 0.0), mb);
                Some(mb.broadcast_to(&joint))
            }
            None => None,
        };
        Ok((off.broadcast_to(&joint), val.broadcast_to(&joint), maskb))
    }
}

/// Launch a kernel on the simulated device.
///
/// `args` bind positionally to `kernel.params`. In [`Mode::Execute`] the
/// written parameters are mutated in place; in [`Mode::Analytic`] no
/// tensor is modified but all counters (and the returned timing) are
/// identical.
///
/// # Errors
///
/// * [`GpuError::Kernel`] if the kernel fails validation.
/// * [`GpuError::ParamCountMismatch`] / [`GpuError::BadGrid`] on binding
///   errors.
/// * [`GpuError::OffsetOutOfBounds`] if any active lane addresses outside
///   its parameter (this catches codegen bugs; real GPUs would corrupt
///   memory).
pub fn launch(
    kernel: &Kernel,
    grid: &[usize],
    args: &mut [&mut Tensor],
    device: &DeviceModel,
    mode: Mode,
) -> Result<KernelReport, GpuError> {
    kernel.validate()?;
    if args.len() != kernel.params.len() {
        return Err(GpuError::ParamCountMismatch { expected: kernel.params.len(), actual: args.len() });
    }
    if grid.is_empty() || grid.len() > 3 || grid.iter().any(|&g| g == 0) {
        return Err(GpuError::BadGrid(grid.to_vec()));
    }
    let mut gdims = [1usize; 3];
    gdims[..grid.len()].copy_from_slice(grid);

    // Parameter layout in the simulated address space (256-byte aligned).
    let mut bases = Vec::with_capacity(args.len());
    let mut esizes = Vec::with_capacity(args.len());
    let mut cursor = 0u64;
    for t in args.iter() {
        bases.push(cursor);
        let esize = t.dtype().size_bytes() as u64;
        esizes.push(esize);
        cursor += (t.len() as u64 * esize).div_ceil(256) * 256 + 256;
    }
    let dot_f16 = {
        let floats: Vec<&&mut Tensor> = args.iter().filter(|t| t.dtype().is_float()).collect();
        !floats.is_empty() && floats.iter().all(|t| t.dtype() == DType::F16)
    };

    let instances = gdims[0] * gdims[1] * gdims[2];
    let lens: Vec<usize> = args.iter().map(|t| t.len()).collect();
    let dtypes: Vec<DType> = args.iter().map(|t| t.dtype()).collect();
    let mut machine = Machine {
        kernel,
        mode,
        dot_f16,
        bases,
        esizes,
        lens,
        dtypes,
        dram_read_seen: HashSet::new(),
        dram_write_seen: HashSet::new(),
        atomic_counts: HashMap::new(),
        stats: KernelStats::default(),
        inst: InstCost::default(),
    };

    let mut instance_times = Vec::with_capacity(instances);
    let mut regs: Vec<Option<Block>> = vec![None; kernel.num_regs];
    for iz in 0..gdims[2] {
        for iy in 0..gdims[1] {
            for ix in 0..gdims[0] {
                machine.inst = InstCost::default();
                regs.iter_mut().for_each(|r| *r = None);
                machine.run_body(&kernel.body, &mut regs, [ix, iy, iz], args)?;
                // Fold instance cost into totals.
                let c = machine.inst;
                machine.stats.l2_read_sectors += c.l2_read_sectors;
                machine.stats.l2_write_sectors += c.l2_write_sectors;
                machine.stats.flops_tc_f16 += c.flops_tc_f16;
                machine.stats.flops_tc_f32 += c.flops_tc_f32;
                machine.stats.flops_scalar += c.flops_scalar;
                machine.stats.smem_bytes += c.smem_bytes;
                machine.stats.atomics += c.atomics;
                machine.stats.instructions += c.instructions;
                // Per-instance time on one SM.
                let mem = 32.0 * (c.l2_read_sectors + c.l2_write_sectors) as f64
                    / device.per_sm(device.l2_bw);
                let compute = c.flops_tc_f16 as f64 / device.per_sm(device.tc_f16_flops)
                    + c.flops_tc_f32 as f64 / device.per_sm(device.tc_f32_flops)
                    + c.flops_scalar as f64 / device.per_sm(device.alu_flops)
                    + c.smem_bytes as f64 / device.per_sm(device.smem_bw);
                let t = device.instr_issue * c.instructions as f64
                    + device.dyn_loop_stall * c.dyn_iters as f64
                    + mem.max(compute);
                instance_times.push(t);
            }
        }
    }

    machine.stats.instances = instances as u64;
    let conflicts: u64 = machine.atomic_counts.values().map(|&c| c - 1).sum();
    machine.stats.atomic_conflicts = conflicts;
    // Atomics to distinct addresses pipeline across the L2 slices
    // (throughput term); only the longest same-address chain serializes
    // (latency term).
    let max_chain: u64 =
        machine.atomic_counts.values().map(|&c| c - 1).max().unwrap_or(0);

    let dram_time = machine.stats.dram_bytes() as f64 / device.dram_bw
        + machine.stats.atomics as f64 / device.atomic_rate
        + max_chain as f64 * device.atomic_conflict_penalty;
    let (time, sm_time, dram_time) = combine_times(device, &instance_times, dram_time);
    let max_instance_time = instance_times.iter().copied().fold(0.0, f64::max);

    Ok(KernelReport {
        name: kernel.name.clone(),
        grid: grid.to_vec(),
        stats: machine.stats,
        time,
        sm_time,
        dram_time,
        max_instance_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_kernel::{BinOp, KernelBuilder};

    fn device() -> DeviceModel {
        DeviceModel::rtx3090()
    }

    /// y[i] = 2 * x[i] over a 64-element vector, 32 lanes per program.
    fn axpy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("axpy");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let lanes = b.arange(32);
        let width = b.constant(32.0);
        let base = b.binary(BinOp::Mul, pid, width);
        let offs = b.binary(BinOp::Add, base, lanes);
        let v = b.load(x, offs, None, 0.0);
        let two = b.constant(2.0);
        let v2 = b.binary(BinOp::Mul, v, two);
        b.store(y, offs, v2, None);
        b.build()
    }

    #[test]
    fn execute_computes_values() {
        let mut x = Tensor::from_fn(vec![64], |i| i[0] as f32);
        let mut y = Tensor::zeros(vec![64]);
        let report =
            launch(&axpy_kernel(), &[2], &mut [&mut x, &mut y], &device(), Mode::Execute).unwrap();
        assert_eq!(y.at(&[10]), 20.0);
        assert_eq!(y.at(&[63]), 126.0);
        assert_eq!(report.stats.instances, 2);
        assert!(report.time > 0.0);
    }

    #[test]
    fn analytic_counts_match_execute_but_skips_writes() {
        let mut x = Tensor::from_fn(vec![64], |i| i[0] as f32);
        let mut y1 = Tensor::zeros(vec![64]);
        let mut y2 = Tensor::zeros(vec![64]);
        let r1 =
            launch(&axpy_kernel(), &[2], &mut [&mut x, &mut y1], &device(), Mode::Execute).unwrap();
        let r2 =
            launch(&axpy_kernel(), &[2], &mut [&mut x, &mut y2], &device(), Mode::Analytic).unwrap();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.time, r2.time);
        assert!(y2.data().iter().all(|&v| v == 0.0), "analytic mode must not write");
    }

    #[test]
    fn coalesced_load_sector_count() {
        // 64 contiguous f32 = 256 bytes = 8 sectors read; same written.
        let mut x = Tensor::zeros(vec![64]);
        let mut y = Tensor::zeros(vec![64]);
        let r = launch(&axpy_kernel(), &[2], &mut [&mut x, &mut y], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.l2_read_sectors, 8);
        assert_eq!(r.stats.dram_read_sectors, 8);
        assert_eq!(r.stats.l2_write_sectors, 8);
    }

    #[test]
    fn strided_access_costs_more_sectors() {
        // Gather x[8*i] for 32 lanes: each lane lands in its own sector.
        let mut b = KernelBuilder::new("strided");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let stride = b.constant(8.0);
        let offs = b.binary(BinOp::Mul, lanes, stride);
        let v = b.load(x, offs, None, 0.0);
        b.store(y, lanes, v, None);
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![256]);
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(&k, &[1], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.l2_read_sectors, 32, "one sector per strided lane");
    }

    #[test]
    fn repeated_loads_hit_l2_not_dram() {
        // Two programs load the same 32 elements.
        let mut b = KernelBuilder::new("reuse");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let lanes = b.arange(32);
        let v = b.load(x, lanes, None, 0.0);
        let width = b.constant(32.0);
        let base = b.binary(BinOp::Mul, pid, width);
        let offs = b.binary(BinOp::Add, base, lanes);
        b.store(y, offs, v, None);
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![32]);
        let mut y_t = Tensor::zeros(vec![64]);
        let r = launch(&k, &[2], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.l2_read_sectors, 8, "both programs read 4 sectors");
        assert_eq!(r.stats.dram_read_sectors, 4, "DRAM sees the data once");
    }

    #[test]
    fn masked_lanes_generate_no_traffic() {
        let mut b = KernelBuilder::new("masked");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let bound = b.constant(8.0);
        let mask = b.binary(BinOp::Lt, lanes, bound);
        let v = b.load(x, lanes, Some(mask), 0.0);
        b.store(y, lanes, v, Some(mask));
        let k = b.build();
        let mut x_t = Tensor::from_fn(vec![32], |i| i[0] as f32);
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(&k, &[1], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.l2_read_sectors, 1, "8 f32 = 1 sector");
        assert_eq!(y_t.at(&[7]), 7.0);
        assert_eq!(y_t.at(&[8]), 0.0);
    }

    #[test]
    fn masked_out_of_bounds_is_safe() {
        // Lanes beyond the tensor are masked off; no error.
        let mut b = KernelBuilder::new("tailmask");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let bound = b.constant(10.0);
        let mask = b.binary(BinOp::Lt, lanes, bound);
        let v = b.load(x, lanes, Some(mask), 0.0);
        b.store(y, lanes, v, Some(mask));
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![10]);
        let mut y_t = Tensor::zeros(vec![10]);
        launch(&k, &[1], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute).unwrap();
    }

    #[test]
    fn unmasked_out_of_bounds_reported() {
        let mut b = KernelBuilder::new("oob");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let v = b.load(x, lanes, None, 0.0);
        b.store(y, lanes, v, None);
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![10]);
        let mut y_t = Tensor::zeros(vec![32]);
        assert!(matches!(
            launch(&k, &[1], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute),
            Err(GpuError::OffsetOutOfBounds { .. })
        ));
    }

    #[test]
    fn atomic_conflicts_are_counted() {
        // All 32 lanes atomically add 1.0 to Y[0].
        let mut b = KernelBuilder::new("conflict");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let zero = b.constant(0.0);
        let offs = b.binary(BinOp::Mul, lanes, zero);
        let one = b.constant(1.0);
        let ones = b.binary(BinOp::Add, offs, one); // block of 1.0
        b.atomic_add(y, offs, ones, None);
        let k = b.build();
        let mut y_t = Tensor::zeros(vec![4]);
        let r = launch(&k, &[1], &mut [&mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(y_t.at(&[0]), 32.0);
        assert_eq!(r.stats.atomics, 32);
        assert_eq!(r.stats.atomic_conflicts, 31);
    }

    #[test]
    fn atomics_to_distinct_addresses_do_not_conflict() {
        let mut b = KernelBuilder::new("noconflict");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let one = b.constant(1.0);
        let zero = b.constant(0.0);
        let vals = b.binary(BinOp::Mul, lanes, zero);
        let vals1 = b.binary(BinOp::Add, vals, one);
        b.atomic_add(y, lanes, vals1, None);
        let k = b.build();
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(&k, &[1], &mut [&mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.atomic_conflicts, 0);
        assert!(y_t.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn dot_counts_tensor_core_flops_by_dtype() {
        let mut b = KernelBuilder::new("dot");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.output("C");
        let offs_a = b.arange(16 * 8);
        let a2 = b.load(a, offs_a, None, 0.0);
        let a2v = b.view(a2, vec![16, 8]);
        let offs_b = b.arange(8 * 16);
        let b2 = b.load(bb, offs_b, None, 0.0);
        let b2v = b.view(b2, vec![8, 16]);
        let d = b.dot(a2v, b2v);
        let offs_c = b.arange(16 * 16);
        let dflat = b.view(d, vec![256]);
        b.store(c, offs_c, dflat, None);
        let k = b.build();

        let mut a_t = Tensor::ones(vec![16, 8]);
        let mut b_t = Tensor::ones(vec![8, 16]);
        let mut c_t = Tensor::zeros(vec![16, 16]);
        let r =
            launch(&k, &[1], &mut [&mut a_t, &mut b_t, &mut c_t], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.flops_tc_f32, 2 * 16 * 8 * 16);
        assert_eq!(r.stats.flops_tc_f16, 0);
        assert_eq!(c_t.at(&[0, 0]), 8.0);

        // Same kernel with f16 inputs charges the f16 pipe.
        let mut a_h = Tensor::ones(vec![16, 8]).cast(DType::F16);
        let mut b_h = Tensor::ones(vec![8, 16]).cast(DType::F16);
        let mut c_h = Tensor::zeros(vec![16, 16]).cast(DType::F16);
        let r2 =
            launch(&k, &[1], &mut [&mut a_h, &mut b_h, &mut c_h], &device(), Mode::Execute).unwrap();
        assert_eq!(r2.stats.flops_tc_f16, 2 * 16 * 8 * 16);
        assert_eq!(r2.stats.flops_tc_f32, 0);
    }

    #[test]
    fn f16_tensors_move_fewer_bytes() {
        let mut x32 = Tensor::zeros(vec![64]);
        let mut y32 = Tensor::zeros(vec![64]);
        let r32 =
            launch(&axpy_kernel(), &[2], &mut [&mut x32, &mut y32], &device(), Mode::Execute)
                .unwrap();
        let mut x16 = Tensor::zeros(vec![64]).cast(DType::F16);
        let mut y16 = Tensor::zeros(vec![64]).cast(DType::F16);
        let r16 =
            launch(&axpy_kernel(), &[2], &mut [&mut x16, &mut y16], &device(), Mode::Execute)
                .unwrap();
        assert!(r16.stats.dram_bytes() < r32.stats.dram_bytes());
    }

    #[test]
    fn loop_accumulates() {
        // y[0..32] = sum over 4 chunks of x.
        let mut b = KernelBuilder::new("loopsum");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let acc = b.full(vec![32], 0.0);
        let i = b.begin_loop(0, 4, 1);
        let width = b.constant(32.0);
        let base = b.binary(BinOp::Mul, i, width);
        let offs = b.binary(BinOp::Add, base, lanes);
        let v = b.load(x, offs, None, 0.0);
        b.binary_into(acc, BinOp::Add, acc, v);
        b.end_loop();
        b.store(y, lanes, acc, None);
        let k = b.build();
        let mut x_t = Tensor::ones(vec![128]);
        let mut y_t = Tensor::zeros(vec![32]);
        launch(&k, &[1], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute).unwrap();
        assert!(y_t.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn param_count_mismatch_reported() {
        let mut x = Tensor::zeros(vec![64]);
        assert!(matches!(
            launch(&axpy_kernel(), &[1], &mut [&mut x], &device(), Mode::Execute),
            Err(GpuError::ParamCountMismatch { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn bad_grid_reported() {
        let mut x = Tensor::zeros(vec![64]);
        let mut y = Tensor::zeros(vec![64]);
        assert!(matches!(
            launch(&axpy_kernel(), &[], &mut [&mut x, &mut y], &device(), Mode::Execute),
            Err(GpuError::BadGrid(_))
        ));
        assert!(matches!(
            launch(&axpy_kernel(), &[0], &mut [&mut x, &mut y], &device(), Mode::Execute),
            Err(GpuError::BadGrid(_))
        ));
    }

    #[test]
    fn smem_traffic_charged_for_view_and_trans() {
        let mut b = KernelBuilder::new("smem");
        let x = b.input("X");
        let y = b.output("Y");
        let offs = b.arange(64);
        let v = b.load(x, offs, None, 0.0);
        let v2 = b.view(v, vec![8, 8]);
        let v3 = b.trans(v2);
        let v4 = b.view(v3, vec![64]);
        b.store(y, offs, v4, None);
        let k = b.build();
        let mut x_t = Tensor::from_fn(vec![64], |i| i[0] as f32);
        let mut y_t = Tensor::zeros(vec![64]);
        let r = launch(&k, &[1], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.smem_bytes, 3 * 64 * 4);
        // Transposed copy really happened.
        assert_eq!(y_t.at(&[1]), 8.0);
    }

    #[test]
    fn straggler_dominates_kernel_time() {
        // Program 0 loops 256 times, programs 1..64 do nothing much.
        let mut b = KernelBuilder::new("skew");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let zero = b.constant(0.0);
        let is_zero = b.binary(BinOp::Eq, pid, zero);
        let iters = b.constant(256.0);
        let my_iters = b.binary(BinOp::Mul, is_zero, iters);
        let lanes = b.arange(32);
        let acc = b.full(vec![32], 0.0);
        let i = b.begin_loop(0, 256, 1);
        let live = b.binary(BinOp::Lt, i, my_iters);
        let v = b.load(x, lanes, Some(live), 0.0);
        b.binary_into(acc, BinOp::Add, acc, v);
        b.end_loop();
        b.store(y, lanes, acc, None);
        let k = b.build();
        let mut x_t = Tensor::ones(vec![32]);
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(&k, &[64], &mut [&mut x_t, &mut y_t], &device(), Mode::Execute).unwrap();
        // The longest instance is far above the mean.
        assert!(r.max_instance_time > 10.0 * r.sm_time / 64.0);
        assert!(r.sm_time >= r.max_instance_time);
    }
}
