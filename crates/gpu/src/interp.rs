//! The kernel interpreter: functional execution + cost accounting.
//!
//! This is the optimized execution core (see `reference.rs` for the seed
//! implementation it must match bit-for-bit). Kernels are first lowered
//! by [`crate::program`] into a [`Program`] — grid-invariant prologue,
//! per-row caching, occurrence streams, superinstructions, liveness
//! release lists, and analytic instance classes — and this module
//! executes compiled programs. The speed comes from:
//!
//! 1. [`Block`] is a strided copy-on-write view, so shape transforms are
//!    metadata edits and scalars (loop counters!) never allocate.
//! 2. Register slots are recycled through a buffer pool, and last-use
//!    liveness releases dead buffers eagerly: steady-state loop
//!    iterations perform zero heap allocation.
//! 3. DRAM first-touch tracking uses address-space bitmaps and atomics
//!    use per-parameter count vectors — no hashing on the hot path; the
//!    per-warp coalescing walk runs over a stack buffer.
//! 4. Grid-invariant and row-invariant work executes once and is shared
//!    (or stream-replayed) across instances; fully affine analytic
//!    launches cost one representative per row and replay the rest.
//! 5. The grid-instance loop can run sharded across threads with a
//!    deterministic merge (see [`LaunchOptions`]); results are
//!    bit-identical to the sequential order.

use crate::block::{Block, PoolBuf, Shape4};
use crate::device::DeviceModel;
use crate::program::{CInstr, CNode, Program, UnitMode};
use crate::stats::{combine_times, KernelReport, KernelStats};
use insum_kernel::{Kernel, KernelError, Reg};
use insum_tensor::{DType, Tensor};
use std::error::Error;
use std::fmt;

/// Interpreter mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Compute real values and mutate output tensors (used by tests and
    /// small runs). Counters are exact.
    Execute,
    /// Skip floating-point value math and output writes; metadata (I32)
    /// loads still read real data so addresses, masks, and all counters
    /// are exactly as in [`Mode::Execute`].
    Analytic,
}

/// Error from launching a kernel on the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// Argument count does not match the kernel's parameter list.
    ParamCountMismatch {
        /// Parameters declared by the kernel.
        expected: usize,
        /// Arguments supplied.
        actual: usize,
    },
    /// A lane computed an out-of-bounds element offset.
    OffsetOutOfBounds {
        /// Parameter name.
        param: String,
        /// The offending element offset.
        offset: i64,
        /// The parameter's element count.
        len: usize,
    },
    /// The launch grid is empty or has more than 3 dimensions.
    BadGrid(Vec<usize>),
    /// The kernel failed structural validation.
    Kernel(KernelError),
    /// A register was read before being written.
    UninitializedRegister(Reg),
    /// A fast-path microkernel rejected its bindings (see
    /// [`crate::run_micro`]).
    Micro(String),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::ParamCountMismatch { expected, actual } => {
                write!(f, "kernel expects {expected} arguments, got {actual}")
            }
            GpuError::OffsetOutOfBounds { param, offset, len } => {
                write!(
                    f,
                    "offset {offset} out of bounds for parameter {param:?} ({len} elements)"
                )
            }
            GpuError::BadGrid(g) => write!(f, "bad launch grid {g:?}"),
            GpuError::Kernel(e) => write!(f, "{e}"),
            GpuError::UninitializedRegister(r) => write!(f, "register v{r} read before write"),
            GpuError::Micro(detail) => write!(f, "fast-path microkernel: {detail}"),
        }
    }
}

impl Error for GpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpuError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for GpuError {
    fn from(e: KernelError) -> Self {
        GpuError::Kernel(e)
    }
}

/// Controls how the simulator schedules grid instances on host threads.
///
/// Instances are independent except for DRAM first-touch accounting,
/// atomic-collision accounting, and (in [`Mode::Execute`]) tensor writes.
/// The first two merge exactly (set unions and counter sums), so analytic
/// launches always parallelize. Execute-mode launches parallelize only
/// when every written parameter is write-only within the kernel: shards
/// then emit ordered write logs that are replayed in instance order,
/// reproducing the sequential result bit-for-bit. Kernels that read a
/// parameter they also write (a cross-instance hazard) fall back to the
/// sequential path.
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Worker threads; `None` resolves `INSUM_SIM_THREADS` or the
    /// machine's available parallelism.
    pub threads: Option<usize>,
    /// Grids smaller than this always run sequentially (per-shard setup
    /// costs dominate tiny launches).
    pub min_parallel_instances: usize,
    /// Allow [`Mode::Analytic`] launches of fully affine programs to
    /// dedup each row of instances into one costed representative (see
    /// [`Program::analytic_dedup_available`]). Results are bit-identical
    /// either way; disabling is useful for equivalence testing.
    pub analytic_dedup: bool,
}

impl Default for LaunchOptions {
    fn default() -> LaunchOptions {
        LaunchOptions {
            threads: None,
            min_parallel_instances: 64,
            analytic_dedup: true,
        }
    }
}

impl LaunchOptions {
    /// A strictly sequential configuration.
    pub fn sequential() -> LaunchOptions {
        LaunchOptions {
            threads: Some(1),
            ..Default::default()
        }
    }

    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> LaunchOptions {
        LaunchOptions {
            threads: Some(threads.max(1)),
            ..Default::default()
        }
    }

    fn resolve_threads(&self) -> usize {
        if let Some(t) = self.threads {
            return t.max(1);
        }
        if let Some(t) = std::env::var("INSUM_SIM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            return t.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Per-instance cost accumulator.
#[derive(Default, Clone, Copy)]
pub(crate) struct InstCost {
    l2_read_sectors: u64,
    l2_write_sectors: u64,
    flops_tc_f16: u64,
    flops_tc_f32: u64,
    flops_scalar: u64,
    smem_bytes: u64,
    atomics: u64,
    instructions: u64,
    dyn_iters: u64,
}

impl InstCost {
    #[inline]
    fn add(&mut self, o: &InstCost) {
        self.l2_read_sectors += o.l2_read_sectors;
        self.l2_write_sectors += o.l2_write_sectors;
        self.flops_tc_f16 += o.flops_tc_f16;
        self.flops_tc_f32 += o.flops_tc_f32;
        self.flops_scalar += o.flops_scalar;
        self.smem_bytes += o.smem_bytes;
        self.atomics += o.atomics;
        self.instructions += o.instructions;
        self.dyn_iters += o.dyn_iters;
    }

    #[inline]
    fn minus(&self, o: &InstCost) -> InstCost {
        InstCost {
            l2_read_sectors: self.l2_read_sectors - o.l2_read_sectors,
            l2_write_sectors: self.l2_write_sectors - o.l2_write_sectors,
            flops_tc_f16: self.flops_tc_f16 - o.flops_tc_f16,
            flops_tc_f32: self.flops_tc_f32 - o.flops_tc_f32,
            flops_scalar: self.flops_scalar - o.flops_scalar,
            smem_bytes: self.smem_bytes - o.smem_bytes,
            atomics: self.atomics - o.atomics,
            instructions: self.instructions - o.instructions,
            dyn_iters: self.dyn_iters - o.dyn_iters,
        }
    }
}

pub(crate) const SECTOR: u64 = 32;
const WARP: usize = 32;

/// Fixed-size bitmap over the launch's simulated sector space: the
/// kernel-resident L2 filter (replaces the seed's `HashSet<u64>`).
#[derive(Clone)]
struct SectorSet {
    words: Vec<u64>,
}

impl SectorSet {
    fn new(sectors: u64) -> SectorSet {
        SectorSet {
            words: vec![0u64; sectors.div_ceil(64) as usize],
        }
    }

    /// Insert; returns true when the sector was new.
    #[inline]
    fn insert(&mut self, sector: u64) -> bool {
        let word = &mut self.words[(sector >> 6) as usize];
        let bit = 1u64 << (sector & 63);
        let new = *word & bit == 0;
        *word |= bit;
        new
    }

    fn union(&mut self, other: &SectorSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

/// Read-only or exclusive access to the launch arguments. Parallel shards
/// share immutable views; the sequential Execute path owns the tensors.
enum ArgsView<'a, 'b> {
    Shared(&'a [&'b Tensor]),
    Exclusive(&'a mut [&'b mut Tensor]),
}

impl ArgsView<'_, '_> {
    #[inline]
    fn data(&self, param: usize) -> &[f32] {
        match self {
            ArgsView::Shared(ts) => ts[param].data(),
            ArgsView::Exclusive(ts) => ts[param].data(),
        }
    }

    #[inline]
    fn data_mut(&mut self, param: usize) -> &mut [f32] {
        match self {
            ArgsView::Shared(_) => unreachable!("parallel shards never mutate tensors directly"),
            ArgsView::Exclusive(ts) => ts[param].data_mut(),
        }
    }
}

/// One deferred Execute-mode write, replayed in instance order after a
/// parallel launch.
struct WriteOp {
    off: u32,
    val: f32,
    param: u16,
    atomic: bool,
}

/// Where Execute-mode value writes go.
enum WriteSink {
    /// Mutate tensors in place (sequential path).
    Direct,
    /// Defer into an ordered log (parallel path).
    Log(Vec<WriteOp>),
}

/// One recorded occurrence of an invariant instruction inside a
/// per-instance region: later instances replay the value (a cheap
/// copy-on-write clone) and charge the recorded cost.
struct CacheEntry {
    dst: Reg,
    block: Block,
    cost: InstCost,
}

/// Per-shard stream-cache state: aggregate costs of the once/per-row
/// units, and occurrence streams for invariant instructions trapped in
/// per-instance loops (level 0 = grid-invariant, level 1 = row-invariant).
#[derive(Default)]
struct CacheState {
    agg0: InstCost,
    agg1: InstCost,
    stream0: Vec<CacheEntry>,
    stream1: Vec<CacheEntry>,
    cur0: usize,
    cur1: usize,
    record0: bool,
    record1: bool,
}

impl CacheState {
    fn new() -> CacheState {
        CacheState {
            stream0: Vec::new(),
            stream1: Vec::new(),
            ..Default::default()
        }
    }
}

/// One access-site execution recorded by a row representative for
/// instance-class replay: the touched sectors (as inclusive runs), the
/// atomic address stream, and the active-offset bounds used to prove
/// members in-range.
struct TraceEntry {
    site: u32,
    runs: Vec<(u64, u64)>,
    /// Atomic hits as `(start_addr, run_len, hits)`: `run_len`
    /// consecutive addresses each hit `hits` times (scatter tiles are
    /// row-major, so this compresses ~32:1).
    counts: Vec<(i64, u32, u32)>,
    min_off: i64,
    max_off: i64,
}

/// Instance-class state for the current row (see `program.rs` docs):
/// the representative's cost, simulated time, and per-site traces.
struct TraceState {
    active: bool,
    valid: bool,
    entries: Vec<TraceEntry>,
    rep_cost: InstCost,
    rep_time: f64,
    rep_p0: usize,
    /// Scratch lane buffers reused across sites (representatives only).
    scratch: Vec<i64>,
    scratch_pairs: Vec<(i64, u32)>,
}

impl TraceState {
    fn new() -> TraceState {
        TraceState {
            active: false,
            valid: false,
            entries: Vec::new(),
            rep_cost: InstCost::default(),
            rep_time: 0.0,
            rep_p0: 0,
            scratch: Vec::new(),
            scratch_pairs: Vec::new(),
        }
    }
}

struct Machine<'a> {
    program: &'a Program,
    mode: Mode,
    dram_read_seen: SectorSet,
    dram_write_seen: SectorSet,
    /// Per-parameter atomic hit counts, allocated on first use.
    atomic_counts: Vec<Vec<u64>>,
    stats: KernelStats,
    inst: InstCost,
    sink: WriteSink,
    /// Recycled heap buffers: registers overwritten by later instructions
    /// (or released by liveness) donate their allocations back, refcount
    /// block included.
    pool: Vec<PoolBuf>,
    cs: CacheState,
    trace: TraceState,
}

impl<'a> Machine<'a> {
    fn new(program: &'a Program, mode: Mode, sink: WriteSink) -> Machine<'a> {
        Machine {
            program,
            mode,
            dram_read_seen: SectorSet::new(program.params.total_sectors),
            dram_write_seen: SectorSet::new(program.params.total_sectors),
            atomic_counts: vec![Vec::new(); program.params.lens.len()],
            stats: KernelStats::default(),
            inst: InstCost::default(),
            sink,
            pool: Vec::new(),
            cs: CacheState::new(),
            trace: TraceState::new(),
        }
    }

    /// A buffer from the pool (or a fresh one); contents are stale.
    #[inline]
    fn alloc(&mut self) -> PoolBuf {
        self.pool.pop().unwrap_or_default()
    }

    /// Overwrite a register, reclaiming the old value's buffer when this
    /// register was its sole owner.
    #[inline]
    fn set_reg(&mut self, regs: &mut [Option<Block>], dst: Reg, val: Block) {
        if let Some(old) = regs[dst].take() {
            if let Some(buf) = old.reclaim() {
                self.pool.push(buf);
            }
        }
        regs[dst] = Some(val);
    }

    /// Release a register's buffer back to the pool.
    #[inline]
    fn drop_reg(&mut self, regs: &mut [Option<Block>], r: Reg) {
        if let Some(old) = regs[r].take() {
            if let Some(buf) = old.reclaim() {
                self.pool.push(buf);
            }
        }
    }

    fn reg(regs: &[Option<Block>], r: Reg) -> Result<&Block, GpuError> {
        regs[r].as_ref().ok_or(GpuError::UninitializedRegister(r))
    }

    /// Accumulate one instance's cost into the launch totals.
    fn charge(&mut self, c: &InstCost) {
        self.stats.l2_read_sectors += c.l2_read_sectors;
        self.stats.l2_write_sectors += c.l2_write_sectors;
        self.stats.flops_tc_f16 += c.flops_tc_f16;
        self.stats.flops_tc_f32 += c.flops_tc_f32;
        self.stats.flops_scalar += c.flops_scalar;
        self.stats.smem_bytes += c.smem_bytes;
        self.stats.atomics += c.atomics;
        self.stats.instructions += c.instructions;
    }

    /// Record a warp-granular memory access over the active lanes of an
    /// offset block (in the logical order of `joint`); returns an error
    /// on the first out-of-bounds active offset.
    ///
    /// Matches the seed semantics exactly: lanes chunk into warps of 32
    /// in logical row-major order, each warp's active sector ids dedup
    /// into L2 transactions, and the launch-wide bitmap provides the
    /// DRAM first-touch filter.
    fn record_access(
        &mut self,
        param: usize,
        offsets: &Block,
        mask: Option<&Block>,
        joint: &[usize],
        is_write: bool,
    ) -> Result<(), GpuError> {
        // Lane values in logical `joint` order. Nearly every access in
        // compiled kernels hits the contiguous fast paths; strided or
        // broadcast layouts stage through pooled scratch buffers first so
        // the warp scan below always runs over plain slices with its
        // state in registers.
        let base = self.program.params.bases[param];
        let esize = self.program.params.esizes[param];
        let len = self.program.params.lens[param];
        let off_direct = if offsets.shape() == joint {
            offsets.as_slice()
        } else {
            None
        };
        let off_scratch = if off_direct.is_some() {
            None
        } else {
            let mut b = self.alloc();
            let v = b.vec();
            v.clear();
            v.reserve(joint.iter().product());
            offsets.broadcast_to(joint).walk(|x| v.push(x));
            Some(b)
        };
        let mask_direct = match mask {
            Some(m) if m.shape() == joint => m.as_slice(),
            _ => None,
        };
        let mut mask_scratch = match mask {
            Some(m) if mask_direct.is_none() => {
                let mut b = self.alloc();
                let v = b.vec();
                v.clear();
                v.reserve(joint.iter().product());
                m.broadcast_to(joint).walk(|x| v.push(x));
                Some(b)
            }
            _ => None,
        };
        let mut off_scratch_for_read = off_scratch;
        let (l2, oob) = {
            let so: &[f64] = match (&mut off_scratch_for_read, off_direct) {
                (Some(b), _) => b.vec(),
                (None, Some(s)) => s,
                (None, None) => unreachable!("offsets staged or direct"),
            };
            let sm: Option<&[f64]> = match (mask, &mut mask_scratch, mask_direct) {
                (None, _, _) => None,
                (Some(_), Some(b), _) => Some(b.vec()),
                (Some(_), None, Some(s)) => Some(s),
                (Some(_), None, None) => unreachable!("mask staged or direct"),
            };
            let seen = if is_write {
                &mut self.dram_write_seen
            } else {
                &mut self.dram_read_seen
            };
            warp_scan(so, sm, base, esize, len, seen)
        };
        if let Some(b) = off_scratch_for_read {
            self.pool.push(b);
        }
        if let Some(b) = mask_scratch {
            self.pool.push(b);
        }
        if let Some(offset) = oob {
            return Err(GpuError::OffsetOutOfBounds {
                param: self.program.param_names[param].clone(),
                offset,
                len: self.program.params.lens[param],
            });
        }
        if is_write {
            self.inst.l2_write_sectors += l2;
        } else {
            self.inst.l2_read_sectors += l2;
        }
        Ok(())
    }

    /// Record one access-site execution for instance-class replay: the
    /// set of touched sectors (compressed to runs), the atomic address
    /// stream, and the active-offset bounds. Runs on row representatives
    /// only; costs nothing on the replay path.
    fn trace_site(&mut self, site: u32, off: &Block, mask: Option<&Block>, joint: &[usize]) {
        let info = &self.program.sites[site as usize];
        if !info.traced {
            return;
        }
        let base = self.program.params.bases[info.param];
        let esize = self.program.params.esizes[info.param];
        let mut offs = std::mem::take(&mut self.trace.scratch);
        offs.clear();
        let mut exact = true;
        let mut sorted = true;
        let mut prev = i64::MIN;
        let mut push = |o: f64, exact: &mut bool, sorted: &mut bool, prev: &mut i64| {
            *exact &= o.fract() == 0.0 && o.abs() < 9.0e15;
            let oi = o as i64;
            *sorted &= *prev <= oi;
            *prev = oi;
            offs.push(oi);
        };
        let ob = off.broadcast_to(joint);
        match mask {
            None => ob.walk(|o| push(o, &mut exact, &mut sorted, &mut prev)),
            Some(m) => {
                let mb = m.broadcast_to(joint);
                Block::walk2(&ob, &mb, |o, mk| {
                    if mk != 0.0 {
                        push(o, &mut exact, &mut sorted, &mut prev);
                    }
                });
            }
        }
        if !exact {
            // Non-integer offsets: the affine-shift argument does not
            // hold, so the whole row falls back to full execution.
            self.trace.valid = false;
            self.trace.scratch = offs;
            return;
        }
        let mut entry = TraceEntry {
            site,
            runs: Vec::new(),
            counts: Vec::new(),
            min_off: 0,
            max_off: -1,
        };
        if !offs.is_empty() {
            if !sorted {
                offs.sort_unstable();
            }
            entry.min_off = offs[0];
            entry.max_off = *offs.last().expect("nonempty");
            if entry.min_off < 0
                || entry.max_off as u64 >= self.program.params.lens[info.param] as u64
            {
                // The representative itself is out of bounds; execution
                // will report the error — no replay for this row.
                self.trace.valid = false;
                self.trace.scratch = offs;
                return;
            }
            if info.is_atomic {
                // Collapse the sorted address stream to (addr, hits)
                // pairs, then pairs with consecutive addresses and equal
                // hit counts to runs.
                let mut pairs = std::mem::take(&mut self.trace.scratch_pairs);
                pairs.clear();
                let mut i = 0;
                while i < offs.len() {
                    let addr = offs[i];
                    let mut n = 1u32;
                    while i + (n as usize) < offs.len() && offs[i + n as usize] == addr {
                        n += 1;
                    }
                    pairs.push((addr, n));
                    i += n as usize;
                }
                let mut k = 0;
                while k < pairs.len() {
                    let (start, c) = pairs[k];
                    let mut len = 1usize;
                    while k + len < pairs.len()
                        && pairs[k + len].0 == start + len as i64
                        && pairs[k + len].1 == c
                    {
                        len += 1;
                    }
                    entry.counts.push((start, len as u32, c));
                    k += len;
                }
                self.trace.scratch_pairs = pairs;
            }
            // Sector runs straight off the sorted offsets.
            let mut run_start = (base + offs[0] as u64 * esize) / SECTOR;
            let mut prev_sec = run_start;
            for &o in &offs[1..] {
                let sec = (base + o as u64 * esize) / SECTOR;
                if sec == prev_sec || sec == prev_sec + 1 {
                    prev_sec = sec;
                    continue;
                }
                entry.runs.push((run_start, prev_sec));
                run_start = sec;
                prev_sec = sec;
            }
            entry.runs.push((run_start, prev_sec));
        }
        self.trace.scratch = offs;
        self.trace.entries.push(entry);
    }

    /// Replay one row member from the representative's trace: shift the
    /// recorded sector runs and atomic streams by the member's axis-0
    /// delta, charge the representative's cost, and return its (equal)
    /// simulated time. `None` when the trace is unusable or the member
    /// would go out of bounds — the caller then executes it in full.
    fn replay_member(&mut self, p0: usize) -> Option<f64> {
        if !self.trace.valid {
            return None;
        }
        let program = self.program;
        let delta = p0 as i64 - self.trace.rep_p0 as i64;
        for e in &self.trace.entries {
            if e.min_off > e.max_off {
                continue;
            }
            let site = &program.sites[e.site as usize];
            let shift = delta * site.coeff as i64;
            let len = program.params.lens[site.param] as i64;
            if e.min_off + shift < 0 || e.max_off + shift >= len {
                return None;
            }
        }
        for e in &self.trace.entries {
            let site = &program.sites[e.site as usize];
            let esize = program.params.esizes[site.param] as i64;
            let shift_elems = delta * site.coeff as i64;
            // Exact by construction: `coeff · esize` is a whole number
            // of sectors.
            let shift_secs = shift_elems * esize / SECTOR as i64;
            let seen = if site.is_write {
                &mut self.dram_write_seen
            } else {
                &mut self.dram_read_seen
            };
            for &(lo, hi) in &e.runs {
                for sec in lo..=hi {
                    seen.insert((sec as i64 + shift_secs) as u64);
                }
            }
            if site.is_atomic && !e.counts.is_empty() {
                let p = site.param;
                if self.atomic_counts[p].is_empty() {
                    self.atomic_counts[p] = vec![0u64; program.params.lens[p]];
                }
                let counts = &mut self.atomic_counts[p];
                for &(start, len, n) in &e.counts {
                    let s = (start + shift_elems) as usize;
                    for slot in &mut counts[s..s + len as usize] {
                        *slot += n as u64;
                    }
                }
            }
        }
        let c = self.trace.rep_cost;
        self.charge(&c);
        Some(self.trace.rep_time)
    }

    /// Execute the instance range `[lo, hi)` with row-change tracking,
    /// stream caching, and (when `dedup`) analytic instance-class replay.
    /// Pushes one simulated time per instance; errors carry the flat
    /// instance id for first-error-wins ordering.
    #[allow(clippy::too_many_arguments)]
    fn run_range(
        &mut self,
        lo: usize,
        hi: usize,
        gdims: [usize; 3],
        regs: &mut Vec<Option<Block>>,
        args: &mut ArgsView<'_, '_>,
        device: &DeviceModel,
        dedup: bool,
        times: &mut Vec<f64>,
    ) -> Result<(), (usize, GpuError)> {
        let mut started = false;
        let mut row = (usize::MAX, usize::MAX);
        for flat in lo..hi {
            let pid = pid_of(flat, gdims);
            let new_shard = !started;
            let new_row = new_shard || (pid[1], pid[2]) != row;
            if dedup && !new_row {
                if let Some(t) = self.replay_member(pid[0]) {
                    times.push(t);
                    continue;
                }
            }
            let record = dedup && new_row;
            match self.run_instance(regs, pid, args, device, new_shard, new_row, record) {
                Ok(t) => times.push(t),
                Err(e) => return Err((flat, e)),
            }
            started = true;
            row = (pid[1], pid[2]);
        }
        Ok(())
    }

    /// Run one grid instance, returning its simulated time on one SM.
    #[allow(clippy::too_many_arguments)]
    fn run_instance(
        &mut self,
        regs: &mut Vec<Option<Block>>,
        pid: [usize; 3],
        args: &mut ArgsView<'_, '_>,
        device: &DeviceModel,
        new_shard: bool,
        new_row: bool,
        record_trace: bool,
    ) -> Result<f64, GpuError> {
        let program = self.program;
        self.inst = InstCost::default();
        for &r in &program.level2_regs {
            self.drop_reg(regs, r);
        }
        self.cs.record0 = new_shard;
        self.cs.record1 = new_row;
        self.cs.cur0 = 0;
        self.cs.cur1 = 0;
        if new_shard {
            self.cs.stream0.clear();
            self.cs.agg0 = InstCost::default();
        }
        if new_row {
            self.cs.stream1.clear();
            self.cs.agg1 = InstCost::default();
        }
        self.trace.active = record_trace;
        if record_trace {
            self.trace.entries.clear();
            self.trace.valid = true;
            self.trace.rep_p0 = pid[0];
        }
        for unit in &program.units {
            match unit.mode {
                UnitMode::Once => {
                    if new_shard {
                        let before = self.inst;
                        self.exec_cinstr(&unit.instr, regs, pid, args)?;
                        let delta = self.inst.minus(&before);
                        self.cs.agg0.add(&delta);
                    }
                }
                UnitMode::PerRow => {
                    if new_row {
                        let before = self.inst;
                        self.exec_cinstr(&unit.instr, regs, pid, args)?;
                        let delta = self.inst.minus(&before);
                        self.cs.agg1.add(&delta);
                    }
                }
                UnitMode::PerInstance => {
                    self.exec_cinstr(&unit.instr, regs, pid, args)?;
                    for &r in &unit.release {
                        self.drop_reg(regs, r);
                    }
                }
            }
        }
        if !new_shard {
            let a = self.cs.agg0;
            self.inst.add(&a);
        }
        if !new_row {
            let a = self.cs.agg1;
            self.inst.add(&a);
        }
        let c = self.inst;
        self.charge(&c);
        let t = instance_time(device, &c);
        if record_trace {
            self.trace.rep_cost = c;
            self.trace.rep_time = t;
            self.trace.active = false;
        }
        Ok(t)
    }

    /// Execute a per-instance body with stream-cache dispatch: invariant
    /// nodes record their value/cost on the representative and replay a
    /// copy-on-write clone afterwards.
    fn run_nodes(
        &mut self,
        nodes: &[CNode],
        regs: &mut Vec<Option<Block>>,
        pid: [usize; 3],
        args: &mut ArgsView<'_, '_>,
    ) -> Result<(), GpuError> {
        for node in nodes {
            match node.cached {
                None => self.exec_cinstr(&node.instr, regs, pid, args)?,
                Some(level) => {
                    let record = if level == 0 {
                        self.cs.record0
                    } else {
                        self.cs.record1
                    };
                    if record {
                        let before = self.inst;
                        self.exec_cinstr(&node.instr, regs, pid, args)?;
                        let cost = self.inst.minus(&before);
                        let dst = cached_dst(&node.instr);
                        let block = regs[dst]
                            .as_ref()
                            .expect("cached instruction writes its destination")
                            .clone();
                        let stream = if level == 0 {
                            &mut self.cs.stream0
                        } else {
                            &mut self.cs.stream1
                        };
                        stream.push(CacheEntry { dst, block, cost });
                    } else {
                        let (dst, block, cost) = {
                            let (stream, cur) = if level == 0 {
                                (&self.cs.stream0, &mut self.cs.cur0)
                            } else {
                                (&self.cs.stream1, &mut self.cs.cur1)
                            };
                            let e = &stream[*cur];
                            *cur += 1;
                            (e.dst, e.block.clone(), e.cost)
                        };
                        self.inst.add(&cost);
                        self.set_reg(regs, dst, block);
                    }
                }
            }
        }
        Ok(())
    }

    fn exec_cinstr(
        &mut self,
        instr: &CInstr,
        regs: &mut Vec<Option<Block>>,
        pid: [usize; 3],
        args: &mut ArgsView<'_, '_>,
    ) -> Result<(), GpuError> {
        self.inst.instructions += 1;
        match instr {
            CInstr::ProgramId { dst, axis } => {
                self.set_reg(regs, *dst, Block::scalar(pid[*axis] as f64));
            }
            CInstr::Const { dst, value } => {
                self.set_reg(regs, *dst, Block::scalar(*value));
            }
            CInstr::Arange { dst, len } => {
                let mut buf = self.alloc();
                let v = buf.vec();
                v.clear();
                v.extend((0..*len).map(|i| i as f64));
                self.set_reg(regs, *dst, Block::from_pool(vec![*len], buf));
            }
            CInstr::Full { dst, shape, value } => {
                let buf = self.alloc();
                self.set_reg(regs, *dst, Block::full_pooled(shape.clone(), *value, buf));
            }
            CInstr::Binary { dst, op, a, b } => {
                self.exec_binary(regs, *dst, *op, *a, *b)?;
            }
            CInstr::FusedBinary {
                dst,
                op1,
                a,
                b,
                op2,
                c,
                swapped,
            } => {
                // Superinstruction: `tmp = a op1 b; dst = tmp op2 c`
                // without parking `tmp` in a register. Both instructions'
                // counters are charged and each element is rounded twice,
                // exactly as the unfused pair.
                self.inst.instructions += 1;
                let tmp = {
                    let av = Self::reg(regs, *a)?;
                    let bv = Self::reg(regs, *b)?;
                    Block::try_scalar_binary(*op1, av, bv)
                };
                let tmp = match tmp {
                    Some(t) => {
                        self.inst.flops_scalar += 1;
                        t
                    }
                    None => {
                        let buf = self.alloc();
                        let t = {
                            let av = Self::reg(regs, *a)?;
                            let bv = Self::reg(regs, *b)?;
                            Block::binary_with(*op1, av, bv, buf)
                        };
                        self.inst.flops_scalar += t.len() as u64;
                        t
                    }
                };
                let scalar = {
                    let cv = Self::reg(regs, *c)?;
                    let (l, r) = if *swapped { (cv, &tmp) } else { (&tmp, cv) };
                    Block::try_scalar_binary(*op2, l, r)
                };
                let out = match scalar {
                    Some(o) => {
                        self.inst.flops_scalar += 1;
                        o
                    }
                    None => {
                        let buf = self.alloc();
                        let o = {
                            let cv = Self::reg(regs, *c)?;
                            let (l, r) = if *swapped { (cv, &tmp) } else { (&tmp, cv) };
                            Block::binary_with(*op2, l, r, buf)
                        };
                        self.inst.flops_scalar += o.len() as u64;
                        o
                    }
                };
                if let Some(buf) = tmp.reclaim() {
                    self.pool.push(buf);
                }
                self.set_reg(regs, *dst, out);
            }
            CInstr::ExpandDims { dst, src, axis } => {
                let out = Self::reg(regs, *src)?.expand_dims(*axis);
                self.set_reg(regs, *dst, out);
            }
            CInstr::Broadcast { dst, src, shape } => {
                let out = Self::reg(regs, *src)?.broadcast_to(shape);
                self.inst.smem_bytes += 4 * out.len() as u64;
                self.set_reg(regs, *dst, out);
            }
            CInstr::View { dst, src, shape } => {
                let out = Self::reg(regs, *src)?.view(shape.clone());
                self.inst.smem_bytes += 4 * out.len() as u64;
                self.set_reg(regs, *dst, out);
            }
            CInstr::Trans { dst, src } => {
                let out = Self::reg(regs, *src)?.trans();
                self.inst.smem_bytes += 4 * out.len() as u64;
                self.set_reg(regs, *dst, out);
            }
            CInstr::Load {
                dst,
                param,
                offset,
                mask,
                other,
                site,
            } => {
                let out = self.exec_load(regs, *param, *offset, *mask, *other, *site, args)?;
                self.set_reg(regs, *dst, out);
            }
            CInstr::Store {
                param,
                offset,
                value,
                mask,
                site,
            } => {
                self.exec_store(regs, *param, *offset, *value, *mask, *site, args)?;
            }
            CInstr::AtomicAdd {
                param,
                offset,
                value,
                mask,
                site,
            } => {
                self.exec_atomic_add(regs, *param, *offset, *value, *mask, *site, args)?;
            }
            CInstr::Dot { dst, a, b } => {
                let buf = self.alloc();
                let (m, k, n, out) = {
                    let av = Self::reg(regs, *a)?;
                    let bv = Self::reg(regs, *b)?;
                    let (m, k) = (av.shape()[0], av.shape()[1]);
                    let n = bv.shape()[1];
                    let out = if self.mode == Mode::Execute {
                        Block::dot_with(av, bv, buf)
                    } else {
                        debug_assert_eq!(bv.shape()[0], k, "dot inner dims");
                        Block::full_pooled(vec![m, n], 0.0, buf)
                    };
                    (m, k, n, out)
                };
                let flops = 2 * (m * k * n) as u64;
                if self.program.dot_f16 {
                    self.inst.flops_tc_f16 += flops;
                } else {
                    self.inst.flops_tc_f32 += flops;
                }
                self.set_reg(regs, *dst, out);
            }
            CInstr::Sum { dst, src, axis } => {
                let out = {
                    let sv = Self::reg(regs, *src)?;
                    self.inst.flops_scalar += sv.len() as u64;
                    sv.sum_axis(*axis)
                };
                self.set_reg(regs, *dst, out);
            }
            CInstr::Loop {
                var,
                start,
                end,
                step,
                body,
            } => {
                let mut v = *start;
                while v < *end {
                    self.set_reg(regs, *var, Block::scalar(v as f64));
                    self.run_nodes(body, regs, pid, args)?;
                    v += *step;
                }
            }
            CInstr::LoopDyn {
                var,
                start,
                end,
                body,
            } => {
                let lo = Self::reg(regs, *start)?.first() as i64;
                let hi = Self::reg(regs, *end)?.first() as i64;
                self.inst.dyn_iters += (hi - lo).max(0) as u64;
                let mut v = lo;
                while v < hi {
                    self.set_reg(regs, *var, Block::scalar(v as f64));
                    self.run_nodes(body, regs, pid, args)?;
                    v += 1;
                }
            }
        }
        Ok(())
    }

    fn exec_binary(
        &mut self,
        regs: &mut [Option<Block>],
        dst: Reg,
        op: insum_kernel::BinOp,
        a: Reg,
        b: Reg,
    ) -> Result<(), GpuError> {
        // Accumulator fast path (`acc = acc <op> v`): mutate the
        // destination's own buffer when it is the sole owner — no copy,
        // no register churn.
        if dst == a && a != b {
            let mut av = regs[a].take().ok_or(GpuError::UninitializedRegister(a))?;
            let done = {
                let bv = Self::reg(regs, b)?;
                Block::binary_assign(op, &mut av, bv)
            };
            if done {
                self.inst.flops_scalar += av.len() as u64;
                regs[dst] = Some(av);
                return Ok(());
            }
            let buf = self.alloc();
            let out = {
                let bv = Self::reg(regs, b)?;
                Block::binary_with(op, &av, bv, buf)
            };
            self.inst.flops_scalar += out.len() as u64;
            if let Some(old) = av.reclaim() {
                self.pool.push(old);
            }
            regs[dst] = Some(out);
            return Ok(());
        }
        let scalar = {
            let av = Self::reg(regs, a)?;
            let bv = Self::reg(regs, b)?;
            Block::try_scalar_binary(op, av, bv)
        };
        if let Some(out) = scalar {
            self.inst.flops_scalar += 1;
            self.set_reg(regs, dst, out);
            return Ok(());
        }
        let buf = self.alloc();
        let out = {
            let av = Self::reg(regs, a)?;
            let bv = Self::reg(regs, b)?;
            Block::binary_with(op, av, bv, buf)
        };
        self.inst.flops_scalar += out.len() as u64;
        self.set_reg(regs, dst, out);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        regs: &[Option<Block>],
        param: usize,
        offset: Reg,
        mask: Option<Reg>,
        other: f64,
        site: u32,
        args: &ArgsView<'_, '_>,
    ) -> Result<Block, GpuError> {
        let off = Self::reg(regs, offset)?;
        let mb = match mask {
            Some(m) => Some(Self::reg(regs, m)?),
            None => None,
        };
        let joint = match mb {
            Some(m) => Shape4::joint(off.shape(), m.shape()),
            None => off.shape4(),
        };
        if self.trace.active {
            self.trace_site(site, off, mb, joint.as_slice());
        }
        let read_values =
            self.mode == Mode::Execute || self.program.params.dtypes[param] == DType::I32;

        // Scalar loads (row-pointer reads and the like) need no buffer
        // at all — the result is an inline scalar.
        if joint.as_slice().is_empty() {
            self.record_access(param, off, mb, joint.as_slice(), false)?;
            let active = match mb {
                Some(m) => m.first() != 0.0,
                None => true,
            };
            let value = if !active {
                other
            } else if read_values {
                args.data(param)[off.first() as usize] as f64
            } else {
                0.0
            };
            return Ok(Block::scalar(value));
        }

        // Fused fast path: unmasked contiguous offsets with real value
        // reads — one pass does the warp/sector accounting and the
        // gather together (these dominate Execute-mode launches).
        if read_values && mb.is_none() {
            if let Some(offs) = off.as_slice() {
                let mut buf = self.alloc();
                let out = buf.vec();
                out.clear();
                out.reserve(offs.len());
                let base = self.program.params.bases[param];
                let esize = self.program.params.esizes[param];
                let len = self.program.params.lens[param];
                let data = args.data(param);
                let seen = &mut self.dram_read_seen;
                let mut l2 = 0u64;
                let mut oob = None;
                for chunk in offs.chunks(WARP) {
                    if chunk.len() == WARP && consecutive(chunk) {
                        match scan_consecutive(chunk, base, esize, len, seen) {
                            Ok(uniq) => l2 += uniq,
                            Err(offset) => {
                                oob = Some(offset);
                                break;
                            }
                        }
                        let o0 = chunk[0] as usize;
                        out.extend(data[o0..o0 + WARP].iter().map(|&x| x as f64));
                    } else {
                        let (uniq, bad) = scan_chunk(chunk, None, base, esize, len, seen);
                        l2 += uniq;
                        if bad.is_some() {
                            oob = bad;
                            break;
                        }
                        out.extend(chunk.iter().map(|&o| data[o as usize] as f64));
                    }
                }
                if let Some(offset) = oob {
                    self.pool.push(buf);
                    return Err(GpuError::OffsetOutOfBounds {
                        param: self.program.param_names[param].clone(),
                        offset,
                        len,
                    });
                }
                self.inst.l2_read_sectors += l2;
                return Ok(Block::from_packed(joint, buf));
            }
        }

        // Fused fast path for masked loads with flat layouts.
        if read_values {
            if let Some(m) = mb {
                let off_flat = if off.shape() == joint.as_slice() {
                    off.as_slice()
                } else {
                    None
                };
                let mask_flat = if m.shape() == joint.as_slice() {
                    m.as_slice()
                } else {
                    None
                };
                if let (Some(offs), Some(ms)) = (off_flat, mask_flat) {
                    let mut buf = self.alloc();
                    let out = buf.vec();
                    out.clear();
                    out.reserve(offs.len());
                    let base = self.program.params.bases[param];
                    let esize = self.program.params.esizes[param];
                    let len = self.program.params.lens[param];
                    let data = args.data(param);
                    let seen = &mut self.dram_read_seen;
                    let mut l2 = 0u64;
                    let mut oob = None;
                    for (chunk, mchunk) in offs.chunks(WARP).zip(ms.chunks(WARP)) {
                        let (uniq, bad) = scan_chunk(chunk, Some(mchunk), base, esize, len, seen);
                        l2 += uniq;
                        if bad.is_some() {
                            oob = bad;
                            break;
                        }
                        out.extend(chunk.iter().zip(mchunk).map(|(&o, &mk)| {
                            if mk != 0.0 {
                                data[o as usize] as f64
                            } else {
                                other
                            }
                        }));
                    }
                    if let Some(offset) = oob {
                        self.pool.push(buf);
                        return Err(GpuError::OffsetOutOfBounds {
                            param: self.program.param_names[param].clone(),
                            offset,
                            len,
                        });
                    }
                    self.inst.l2_read_sectors += l2;
                    return Ok(Block::from_packed(joint, buf));
                }
            }
        }

        self.record_access(param, off, mb, joint.as_slice(), false)?;
        // Analytic fast path: float loads with no mask are all zeros; a
        // constant block costs one slot instead of a full gather.
        if !read_values && mb.is_none() {
            let buf = self.alloc();
            return Ok(Block::full_packed(joint, 0.0, buf));
        }
        let mut buf = self.alloc();
        let out = buf.vec();
        out.clear();
        out.reserve(joint.volume());
        match (mb, read_values) {
            (None, _) => {
                let data = args.data(param);
                let ob = off.broadcast_to(joint.as_slice());
                ob.walk(|o| out.push(data[o as usize] as f64));
            }
            (Some(m), true) => {
                let data = args.data(param);
                Block::walk2(off, m, |o, mk| {
                    out.push(if mk != 0.0 {
                        data[o as usize] as f64
                    } else {
                        other
                    });
                });
            }
            (Some(m), false) => {
                // Analytic values depend only on the mask (0.0 active,
                // `other` inactive) — walk it alone.
                let mv = m.broadcast_to(joint.as_slice());
                mv.walk(|mk| out.push(if mk != 0.0 { 0.0 } else { other }));
            }
        }
        Ok(Block::from_packed(joint, buf))
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        regs: &[Option<Block>],
        param: usize,
        offset: Reg,
        value: Reg,
        mask: Option<Reg>,
        site: u32,
        args: &mut ArgsView<'_, '_>,
    ) -> Result<(), GpuError> {
        let off = Self::reg(regs, offset)?;
        let val = Self::reg(regs, value)?;
        let mb = match mask {
            Some(m) => Some(Self::reg(regs, m)?),
            None => None,
        };
        let mut joint = Shape4::joint(off.shape(), val.shape());
        if let Some(m) = mb {
            joint = Shape4::joint(joint.as_slice(), m.shape());
        }
        if self.trace.active {
            self.trace_site(site, off, mb, joint.as_slice());
        }
        self.record_access(param, off, mb, joint.as_slice(), true)?;
        if self.mode != Mode::Execute {
            return Ok(());
        }
        let round = self.program.params.dtypes[param] == DType::F16;
        match &mut self.sink {
            WriteSink::Direct => {
                let data = args.data_mut(param);
                // Flat fast path: unmasked, same-shape contiguous offset
                // and value blocks.
                if mb.is_none() && off.shape() == val.shape() {
                    if let (Some(so), Some(sv)) = (off.as_slice(), val.as_slice()) {
                        for (&o, &v) in so.iter().zip(sv) {
                            let mut x = v as f32;
                            if round {
                                x = insum_tensor::f16_round(x);
                            }
                            data[o as usize] = x;
                        }
                        return Ok(());
                    }
                }
                match mb {
                    Some(m) => Block::walk3(off, val, m, |o, v, mk| {
                        if mk != 0.0 {
                            let mut x = v as f32;
                            if round {
                                x = insum_tensor::f16_round(x);
                            }
                            data[o as usize] = x;
                        }
                    }),
                    None => Block::walk2(off, val, |o, v| {
                        let mut x = v as f32;
                        if round {
                            x = insum_tensor::f16_round(x);
                        }
                        data[o as usize] = x;
                    }),
                }
            }
            WriteSink::Log(log) => {
                let p = param as u16;
                match mb {
                    Some(m) => Block::walk3(off, val, m, |o, v, mk| {
                        if mk != 0.0 {
                            log.push(WriteOp {
                                off: o as u32,
                                val: v as f32,
                                param: p,
                                atomic: false,
                            });
                        }
                    }),
                    None => Block::walk2(off, val, |o, v| {
                        log.push(WriteOp {
                            off: o as u32,
                            val: v as f32,
                            param: p,
                            atomic: false,
                        });
                    }),
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atomic_add(
        &mut self,
        regs: &[Option<Block>],
        param: usize,
        offset: Reg,
        value: Reg,
        mask: Option<Reg>,
        site: u32,
        args: &mut ArgsView<'_, '_>,
    ) -> Result<(), GpuError> {
        let off = Self::reg(regs, offset)?;
        let val = Self::reg(regs, value)?;
        let mb = match mask {
            Some(m) => Some(Self::reg(regs, m)?),
            None => None,
        };
        let mut joint = Shape4::joint(off.shape(), val.shape());
        if let Some(m) = mb {
            joint = Shape4::joint(joint.as_slice(), m.shape());
        }
        if self.trace.active {
            self.trace_site(site, off, mb, joint.as_slice());
        }
        self.record_access(param, off, mb, joint.as_slice(), true)?;

        if self.atomic_counts[param].is_empty() {
            self.atomic_counts[param] = vec![0u64; self.program.params.lens[param]];
        }
        let round = self.program.params.dtypes[param] == DType::F16;
        let execute = self.mode == Mode::Execute;
        let counts = &mut self.atomic_counts[param];
        let inst = &mut self.inst;
        match (&mut self.sink, execute) {
            (WriteSink::Direct, true) => {
                let data = args.data_mut(param);
                // Flat fast path: unmasked, same-shape contiguous offset
                // and value blocks (the compiled scatter pattern) — a
                // plain zip with register-resident state.
                if mb.is_none() && off.shape() == val.shape() {
                    if let (Some(so), Some(sv)) = (off.as_slice(), val.as_slice()) {
                        let mut atomics = 0u64;
                        for (&o, &v) in so.iter().zip(sv) {
                            let o = o as usize;
                            counts[o] += 1;
                            let slot = &mut data[o];
                            let mut x = *slot + v as f32;
                            if round {
                                x = insum_tensor::f16_round(x);
                            }
                            *slot = x;
                            atomics += 1;
                        }
                        inst.atomics += atomics;
                        return Ok(());
                    }
                }
                let mut per_lane = |o: f64, v: f64, active: bool| {
                    if active {
                        inst.atomics += 1;
                        let o = o as usize;
                        counts[o] += 1;
                        let slot = &mut data[o];
                        let mut x = *slot + v as f32;
                        if round {
                            x = insum_tensor::f16_round(x);
                        }
                        *slot = x;
                    }
                };
                match mb {
                    Some(m) => Block::walk3(off, val, m, |o, v, mk| per_lane(o, v, mk != 0.0)),
                    None => Block::walk2(off, val, |o, v| per_lane(o, v, true)),
                }
            }
            (WriteSink::Log(log), true) => {
                let p = param as u16;
                let mut per_lane = |o: f64, v: f64, active: bool| {
                    if active {
                        inst.atomics += 1;
                        let o = o as usize;
                        counts[o] += 1;
                        log.push(WriteOp {
                            off: o as u32,
                            val: v as f32,
                            param: p,
                            atomic: true,
                        });
                    }
                };
                match mb {
                    Some(m) => Block::walk3(off, val, m, |o, v, mk| per_lane(o, v, mk != 0.0)),
                    None => Block::walk2(off, val, |o, v| per_lane(o, v, true)),
                }
            }
            // Analytic: count collisions, write nothing.
            (_, false) => {
                if mb.is_none() && off.shape() == joint.as_slice() {
                    if let Some(so) = off.as_slice() {
                        for &o in so {
                            counts[o as usize] += 1;
                        }
                        inst.atomics += so.len() as u64;
                        return Ok(());
                    }
                }
                let mut per_lane = |o: f64, active: bool| {
                    if active {
                        inst.atomics += 1;
                        counts[o as usize] += 1;
                    }
                };
                match mb {
                    Some(m) => Block::walk3(off, val, m, |o, _, mk| per_lane(o, mk != 0.0)),
                    None => Block::walk2(off, val, |o, _| per_lane(o, true)),
                }
            }
        }
        Ok(())
    }
}

/// The destination register of a cached (value-producing) instruction.
fn cached_dst(instr: &CInstr) -> Reg {
    match instr {
        CInstr::ProgramId { dst, .. }
        | CInstr::Const { dst, .. }
        | CInstr::Arange { dst, .. }
        | CInstr::Full { dst, .. }
        | CInstr::Binary { dst, .. }
        | CInstr::FusedBinary { dst, .. }
        | CInstr::ExpandDims { dst, .. }
        | CInstr::Broadcast { dst, .. }
        | CInstr::View { dst, .. }
        | CInstr::Trans { dst, .. }
        | CInstr::Load { dst, .. }
        | CInstr::Dot { dst, .. }
        | CInstr::Sum { dst, .. } => *dst,
        CInstr::Store { .. }
        | CInstr::AtomicAdd { .. }
        | CInstr::Loop { .. }
        | CInstr::LoopDyn { .. } => {
            unreachable!("stores and loops are never stream-cached")
        }
    }
}

/// The warp-coalescing scan over one access's lane stream: chunk lanes
/// into warps of 32, bounds-check active offsets, dedup each warp's
/// sector ids into L2 transactions, and feed the launch-wide DRAM
/// first-touch bitmap. Returns `(l2_sectors, first_oob_offset)`.
///
/// All per-warp state lives in locals so the loop stays in registers;
/// offsets are almost always ascending within a warp (tile base plus
/// `arange`), so sortedness is tracked while filling and only the rare
/// crooked warp pays for a sort.
/// True when the lane offsets are `chunk[0] + [0, 1, 2, ...]` — the tile
/// pattern `base + arange` that dominates compiled kernels. Offsets are
/// integers below 2^53, so the f64 comparison is exact.
#[inline]
fn consecutive(chunk: &[f64]) -> bool {
    // Branchless difference fold (no int-to-float conversions) so the
    // probe vectorizes.
    let mut ok = true;
    for t in 1..chunk.len() {
        ok &= chunk[t] - chunk[t - 1] == 1.0;
    }
    ok
}

/// Sector accounting for one consecutive full warp (`chunk[0] + arange`):
/// the touched sectors are exactly the arithmetic range [first, last].
/// Returns the L2 transaction count, or the first offending offset using
/// the same convention as the lane-order scan (the lowest out-of-range
/// value, since offsets ascend).
#[inline]
fn scan_consecutive(
    chunk: &[f64],
    base: u64,
    esize: u64,
    len: usize,
    seen: &mut SectorSet,
) -> Result<u64, i64> {
    let o0 = chunk[0] as i64;
    if o0 as u64 >= len as u64 {
        return Err(o0);
    }
    let o1 = o0 + chunk.len() as i64 - 1;
    if o1 as u64 >= len as u64 {
        // First offending lane is the first offset == len.
        return Err(len as i64);
    }
    let sec0 = (base + o0 as u64 * esize) / SECTOR;
    let sec1 = (base + o1 as u64 * esize) / SECTOR;
    for sec in sec0..=sec1 {
        seen.insert(sec);
    }
    Ok(sec1 - sec0 + 1)
}

fn warp_scan(
    offs: &[f64],
    mask: Option<&[f64]>,
    base: u64,
    esize: u64,
    len: usize,
    seen: &mut SectorSet,
) -> (u64, Option<i64>) {
    let mut l2 = 0u64;
    match mask {
        None => {
            for chunk in offs.chunks(WARP) {
                // Consecutive warps resolve arithmetically: the touched
                // sectors are exactly the range [first, last].
                if chunk.len() == WARP && consecutive(chunk) {
                    match scan_consecutive(chunk, base, esize, len, seen) {
                        Ok(uniq) => l2 += uniq,
                        Err(offset) => return (l2, Some(offset)),
                    }
                    continue;
                }
                let (uniq, oob) = scan_chunk(chunk, None, base, esize, len, seen);
                l2 += uniq;
                if oob.is_some() {
                    return (l2, oob);
                }
            }
        }
        Some(mask) => {
            for (chunk, mchunk) in offs.chunks(WARP).zip(mask.chunks(WARP)) {
                let (uniq, oob) = scan_chunk(chunk, Some(mchunk), base, esize, len, seen);
                l2 += uniq;
                if oob.is_some() {
                    return (l2, oob);
                }
            }
        }
    }
    (l2, None)
}

/// One warp's generic sector scan: dedup by adjacent transition while
/// filling (exact when the warp is sorted — the common case), recount
/// after a sort otherwise. `seen` inserts are idempotent, so inserting
/// before sortedness is known is harmless.
#[inline]
fn scan_chunk(
    chunk: &[f64],
    mask: Option<&[f64]>,
    base: u64,
    esize: u64,
    len: usize,
    seen: &mut SectorSet,
) -> (u64, Option<i64>) {
    let mut sectors = [0u64; WARP];
    let mut n = 0usize;
    let mut sorted = true;
    let mut prev = 0u64;
    let mut uniq = 0u64;
    let mut prev_ins = u64::MAX;
    for (t, &off) in chunk.iter().enumerate() {
        if let Some(m) = mask {
            if m[t] == 0.0 {
                continue;
            }
        }
        let off_i = off as i64;
        // Unsigned compare covers both negative and too-large.
        if off_i as u64 >= len as u64 {
            return (
                if sorted {
                    uniq
                } else {
                    recount(&mut sectors[..n])
                },
                Some(off_i),
            );
        }
        let sec = (base + off_i as u64 * esize) / SECTOR;
        sorted &= prev <= sec;
        prev = sec;
        if sec != prev_ins {
            uniq += 1;
            seen.insert(sec);
            prev_ins = sec;
        }
        sectors[n] = sec;
        n += 1;
    }
    if sorted {
        (uniq, None)
    } else {
        (recount(&mut sectors[..n]), None)
    }
}

/// Unique-count of an unsorted warp (sorts in place).
fn recount(sectors: &mut [u64]) -> u64 {
    sectors.sort_unstable();
    let mut uniq = 0u64;
    let mut prev = u64::MAX;
    for &sec in sectors.iter() {
        if sec != prev {
            uniq += 1;
            prev = sec;
        }
    }
    uniq
}

/// Grid coordinates of a flat instance id (x fastest, matching the seed
/// interpreter's `iz`/`iy`/`ix` loop nest).
#[inline]
fn pid_of(flat: usize, gdims: [usize; 3]) -> [usize; 3] {
    [
        flat % gdims[0],
        (flat / gdims[0]) % gdims[1],
        flat / (gdims[0] * gdims[1]),
    ]
}

/// Per-instance time on one SM (the seed cost model, verbatim).
fn instance_time(device: &DeviceModel, c: &InstCost) -> f64 {
    let mem = 32.0 * (c.l2_read_sectors + c.l2_write_sectors) as f64 / device.per_sm(device.l2_bw);
    let compute = c.flops_tc_f16 as f64 / device.per_sm(device.tc_f16_flops)
        + c.flops_tc_f32 as f64 / device.per_sm(device.tc_f32_flops)
        + c.flops_scalar as f64 / device.per_sm(device.alu_flops)
        + c.smem_bytes as f64 / device.per_sm(device.smem_bw);
    device.instr_issue * c.instructions as f64
        + device.dyn_loop_stall * c.dyn_iters as f64
        + mem.max(compute)
}

/// True when every parameter the kernel writes (Store/AtomicAdd) is never
/// loaded — the condition under which Execute-mode instances can run out
/// of order with their writes replayed later.
#[cfg(test)]
fn kernel_allows_parallel_execute(kernel: &Kernel) -> bool {
    insum_kernel::param_usage(kernel).no_read_write_params()
}

/// Launch a kernel on the simulated device with default scheduling.
///
/// `args` bind positionally to `kernel.params`. In [`Mode::Execute`] the
/// written parameters are mutated in place; in [`Mode::Analytic`] no
/// tensor is modified but all counters (and the returned timing) are
/// identical.
///
/// # Errors
///
/// * [`GpuError::Kernel`] if the kernel fails validation.
/// * [`GpuError::ParamCountMismatch`] / [`GpuError::BadGrid`] on binding
///   errors.
/// * [`GpuError::OffsetOutOfBounds`] if any active lane addresses outside
///   its parameter (this catches codegen bugs; real GPUs would corrupt
///   memory). On error, output tensors are in an unspecified state.
pub fn launch(
    kernel: &Kernel,
    grid: &[usize],
    args: &mut [&mut Tensor],
    device: &DeviceModel,
    mode: Mode,
) -> Result<KernelReport, GpuError> {
    launch_with(kernel, grid, args, device, mode, &LaunchOptions::default())
}

/// [`launch`] with explicit instance-scheduling options.
///
/// Results — output tensors, [`KernelStats`], and timing — are
/// bit-identical for every thread configuration; see [`LaunchOptions`]
/// for how that is guaranteed.
///
/// Internally this compiles the kernel into a [`Program`] and launches
/// it; callers that re-launch the same kernel and shapes should compile
/// once with [`Program::compile`] (or use `insum_inductor`'s program
/// cache) and call [`Program::launch_with`] directly.
///
/// # Errors
///
/// Same conditions as [`launch`].
pub fn launch_with(
    kernel: &Kernel,
    grid: &[usize],
    args: &mut [&mut Tensor],
    device: &DeviceModel,
    mode: Mode,
    options: &LaunchOptions,
) -> Result<KernelReport, GpuError> {
    kernel.validate()?;
    if args.len() != kernel.params.len() {
        return Err(GpuError::ParamCountMismatch {
            expected: kernel.params.len(),
            actual: args.len(),
        });
    }
    let lens: Vec<usize> = args.iter().map(|t| t.len()).collect();
    let dtypes: Vec<DType> = args.iter().map(|t| t.dtype()).collect();
    let program = Program::compile(kernel, grid, &lens, &dtypes)?;
    program.launch_with(args, device, mode, options)
}

impl Program {
    /// Launch this compiled program with default scheduling. See
    /// [`launch`] for semantics; results are bit-identical to launching
    /// the original kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`launch`] (validation and grid errors are
    /// caught at compile time instead).
    ///
    /// # Panics
    ///
    /// Panics if an argument's length or dtype differs from the metadata
    /// the program was compiled with.
    pub fn launch(
        &self,
        args: &mut [&mut Tensor],
        device: &DeviceModel,
        mode: Mode,
    ) -> Result<KernelReport, GpuError> {
        self.launch_with(args, device, mode, &LaunchOptions::default())
    }

    /// [`Program::launch`] with explicit instance-scheduling options.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::launch`].
    ///
    /// # Panics
    ///
    /// Panics if an argument's length or dtype differs from the metadata
    /// the program was compiled with.
    pub fn launch_with(
        &self,
        args: &mut [&mut Tensor],
        device: &DeviceModel,
        mode: Mode,
        options: &LaunchOptions,
    ) -> Result<KernelReport, GpuError> {
        // Profiling hook: one launch interval per top-level launch
        // (nested same-phase guards are suppressed, so the n==1
        // delegation from `launch_batch_with` records once). Inert — a
        // single relaxed atomic load — unless a collector is installed.
        let _launch_span = insum_telemetry::hook::timed(insum_telemetry::HookPhase::Launch);
        if args.len() != self.param_names.len() {
            return Err(GpuError::ParamCountMismatch {
                expected: self.param_names.len(),
                actual: args.len(),
            });
        }
        for (i, t) in args.iter().enumerate() {
            assert!(
                t.len() == self.params.lens[i] && t.dtype() == self.params.dtypes[i],
                "argument {i} does not match the metadata this program was compiled with"
            );
        }
        let gdims = self.gdims;
        let instances = self.instances;

        let threads = options.resolve_threads().min(instances.max(1));
        let parallel = threads > 1
            && instances >= options.min_parallel_instances.max(2)
            && (mode == Mode::Analytic || self.parallel_execute_ok);
        let dedup =
            mode == Mode::Analytic && options.analytic_dedup && self.dedup_ok && gdims[0] > 1;

        let (stats_sums, read_seen, write_seen, atomic_counts, instance_times) = if !parallel {
            // Sequential path: one machine, direct writes.
            let mut machine = Machine::new(self, mode, WriteSink::Direct);
            let mut regs: Vec<Option<Block>> = vec![None; self.num_regs];
            let mut view = ArgsView::Exclusive(&mut *args);
            let mut instance_times = Vec::with_capacity(instances);
            machine
                .run_range(
                    0,
                    instances,
                    gdims,
                    &mut regs,
                    &mut view,
                    device,
                    dedup,
                    &mut instance_times,
                )
                .map_err(|(_, e)| e)?;
            (
                machine.stats,
                machine.dram_read_seen,
                machine.dram_write_seen,
                machine.atomic_counts,
                instance_times,
            )
        } else {
            // Parallel path: contiguous shards, deterministic merge.
            let shared: Vec<&Tensor> = args.iter().map(|t| &**t).collect();
            let nshards = threads.min(instances);
            let chunk = instances.div_ceil(nshards);
            struct Shard {
                stats: KernelStats,
                read: SectorSet,
                write: SectorSet,
                counts: Vec<Vec<u64>>,
                times: Vec<f64>,
                log: Vec<WriteOp>,
            }
            type ShardResult = Result<Shard, (usize, GpuError)>;
            let shard_results: Vec<ShardResult> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..nshards)
                    .map(|si| {
                        let shared = &shared;
                        scope.spawn(move || -> ShardResult {
                            let sink = match mode {
                                Mode::Execute => WriteSink::Log(Vec::new()),
                                Mode::Analytic => WriteSink::Direct, // never writes
                            };
                            let mut m = Machine::new(self, mode, sink);
                            let mut regs: Vec<Option<Block>> = vec![None; self.num_regs];
                            let mut view = ArgsView::Shared(shared);
                            let lo = (si * chunk).min(instances);
                            let hi = ((si + 1) * chunk).min(instances);
                            let mut times = Vec::with_capacity(hi - lo);
                            m.run_range(
                                lo, hi, gdims, &mut regs, &mut view, device, dedup, &mut times,
                            )?;
                            let log = match m.sink {
                                WriteSink::Log(log) => log,
                                WriteSink::Direct => Vec::new(),
                            };
                            Ok(Shard {
                                stats: m.stats,
                                read: m.dram_read_seen,
                                write: m.dram_write_seen,
                                counts: m.atomic_counts,
                                times,
                                log,
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulator shard panicked"))
                    .collect()
            });

            // First error in instance order wins (shards cover ordered,
            // disjoint ranges, so the first erroring shard holds it).
            let mut shards = Vec::with_capacity(nshards);
            for r in shard_results {
                match r {
                    Ok(s) => shards.push(s),
                    Err((_, e)) => return Err(e),
                }
            }

            let mut stats = KernelStats::default();
            let mut read_seen = SectorSet::new(self.params.total_sectors);
            let mut write_seen = SectorSet::new(self.params.total_sectors);
            let mut counts: Vec<Vec<u64>> = vec![Vec::new(); self.params.lens.len()];
            let mut instance_times = Vec::with_capacity(instances);
            for shard in &shards {
                stats.l2_read_sectors += shard.stats.l2_read_sectors;
                stats.l2_write_sectors += shard.stats.l2_write_sectors;
                stats.flops_tc_f16 += shard.stats.flops_tc_f16;
                stats.flops_tc_f32 += shard.stats.flops_tc_f32;
                stats.flops_scalar += shard.stats.flops_scalar;
                stats.smem_bytes += shard.stats.smem_bytes;
                stats.atomics += shard.stats.atomics;
                stats.instructions += shard.stats.instructions;
                read_seen.union(&shard.read);
                write_seen.union(&shard.write);
                for (p, c) in shard.counts.iter().enumerate() {
                    if c.is_empty() {
                        continue;
                    }
                    if counts[p].is_empty() {
                        counts[p] = vec![0u64; self.params.lens[p]];
                    }
                    for (acc, &v) in counts[p].iter_mut().zip(c) {
                        *acc += v;
                    }
                }
                instance_times.extend_from_slice(&shard.times);
            }

            // Replay Execute-mode writes in instance order: bit-identical
            // to the sequential interleaving because shards are ordered
            // and written parameters are never read back by the kernel.
            // Replay runs per written parameter — distinct parameters
            // never alias, so their relative write order is immaterial —
            // which binds each output's copy-on-write storage exactly
            // once instead of re-checking uniqueness on every write op.
            // The marking pass costs one sequential scan of the logs and
            // keeps materialization exact (only params with logged
            // writes are bound); kernels write one or two params, so the
            // per-param filtered replay stays within a small constant of
            // the old single interleaved pass.
            if mode == Mode::Execute {
                let mut touched = vec![false; self.params.lens.len()];
                for shard in &shards {
                    for w in &shard.log {
                        touched[w.param as usize] = true;
                    }
                }
                for (p, _) in touched.iter().enumerate().filter(|&(_, &t)| t) {
                    let round = self.params.dtypes[p] == DType::F16;
                    let data = args[p].data_mut();
                    for shard in &shards {
                        for w in shard.log.iter().filter(|w| w.param as usize == p) {
                            let slot = &mut data[w.off as usize];
                            let mut v = if w.atomic { *slot + w.val } else { w.val };
                            if round {
                                v = insum_tensor::f16_round(v);
                            }
                            *slot = v;
                        }
                    }
                }
            }
            (stats, read_seen, write_seen, counts, instance_times)
        };

        let mut stats = stats_sums;
        stats.instances = instances as u64;
        stats.dram_read_sectors = read_seen.count();
        stats.dram_write_sectors = write_seen.count();
        let mut conflicts = 0u64;
        let mut max_chain = 0u64;
        for counts in &atomic_counts {
            for &c in counts {
                if c > 0 {
                    conflicts += c - 1;
                    max_chain = max_chain.max(c - 1);
                }
            }
        }
        stats.atomic_conflicts = conflicts;

        // Atomics to distinct addresses pipeline across the L2 slices
        // (throughput term); only the longest same-address chain
        // serializes (latency term).
        let dram_time = stats.dram_bytes() as f64 / device.dram_bw
            + stats.atomics as f64 / device.atomic_rate
            + max_chain as f64 * device.atomic_conflict_penalty;
        let (time, sm_time, dram_time) = combine_times(device, &instance_times, dram_time);
        let max_instance_time = instance_times.iter().copied().fold(0.0, f64::max);

        Ok(KernelReport {
            name: self.name.clone(),
            grid: self.grid.clone(),
            stats,
            time,
            sm_time,
            dram_time,
            max_instance_time,
        })
    }

    /// Launch this program once per request of a batch, sharing one pool
    /// of host threads across the whole batch instead of scheduling each
    /// request separately.
    ///
    /// Each element of `batch` is one request's argument list (same
    /// layout as [`Program::launch_with`]); all requests must match the
    /// metadata this program was compiled with. The thread budget in
    /// `options` is split across the batch: requests are distributed over
    /// the workers in contiguous chunks, and any leftover budget shards
    /// the grid-instance loop *inside* each request exactly as
    /// [`Program::launch_with`] would.
    ///
    /// Requests are independent — each owns its tensor handles — so
    /// request-level parallelism needs no write-log merge and is safe
    /// even for Execute-mode kernels whose cross-instance hazards force
    /// the intra-request loop sequential. Handles across requests may
    /// share copy-on-write storage (batched serving binds one buffer for
    /// operands shared by every request); a request's first write
    /// materializes its own private output, so workers never race. Every request's output tensors
    /// and [`KernelReport`] are bit-identical to a serial per-request
    /// [`Program::launch_with`] call, regardless of batch composition or
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::launch_with`]; if several requests
    /// fail, the error of the smallest request index is returned (and the
    /// whole batch's outputs are in an unspecified state).
    ///
    /// # Panics
    ///
    /// Panics if any request's argument lengths or dtypes differ from the
    /// metadata this program was compiled with.
    pub fn launch_batch_with(
        &self,
        batch: &mut [&mut [&mut Tensor]],
        device: &DeviceModel,
        mode: Mode,
        options: &LaunchOptions,
    ) -> Result<Vec<KernelReport>, GpuError> {
        // One launch interval covers the whole batched launch (the
        // per-request `launch_with` guards inside are suppressed as
        // nested same-phase spans).
        let _launch_span = insum_telemetry::hook::timed(insum_telemetry::HookPhase::Launch);
        let n = batch.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if n == 1 {
            return Ok(vec![self.launch_with(
                &mut *batch[0],
                device,
                mode,
                options,
            )?]);
        }
        let total = options.resolve_threads();
        if total <= 1 {
            let seq = LaunchOptions {
                threads: Some(1),
                ..options.clone()
            };
            let mut out = Vec::with_capacity(n);
            for args in batch.iter_mut() {
                out.push(self.launch_with(args, device, mode, &seq)?);
            }
            return Ok(out);
        }
        // Contiguous request chunks, one worker each; the remaining
        // thread budget is spread over the workers (first `rem` workers
        // get one extra) and shards the grid-instance loop *inside*
        // their requests, so the whole budget is used. The split only
        // affects scheduling — per-request results are bit-identical at
        // every configuration.
        let chunk = n.div_ceil(total.min(n));
        let workers = n.div_ceil(chunk);
        let (base, rem) = (total / workers, total % workers);
        type ChunkResult = Result<Vec<KernelReport>, (usize, GpuError)>;
        let chunk_results: Vec<ChunkResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, requests)| {
                    let inner = LaunchOptions {
                        threads: Some((base + usize::from(ci < rem)).max(1)),
                        ..options.clone()
                    };
                    scope.spawn(move || -> ChunkResult {
                        let mut reports = Vec::with_capacity(requests.len());
                        for (ri, args) in requests.iter_mut().enumerate() {
                            reports.push(
                                self.launch_with(args, device, mode, &inner)
                                    .map_err(|e| (ci * chunk + ri, e))?,
                            );
                        }
                        Ok(reports)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        let mut first_err: Option<(usize, GpuError)> = None;
        let mut out = Vec::with_capacity(n);
        for r in chunk_results {
            match r {
                Ok(reports) => out.extend(reports),
                Err((i, e)) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(out),
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::launch_reference;
    use insum_kernel::{BinOp, KernelBuilder};

    fn device() -> DeviceModel {
        DeviceModel::rtx3090()
    }

    /// y[i] = 2 * x[i] over a 64-element vector, 32 lanes per program.
    fn axpy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("axpy");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let lanes = b.arange(32);
        let width = b.constant(32.0);
        let base = b.binary(BinOp::Mul, pid, width);
        let offs = b.binary(BinOp::Add, base, lanes);
        let v = b.load(x, offs, None, 0.0);
        let two = b.constant(2.0);
        let v2 = b.binary(BinOp::Mul, v, two);
        b.store(y, offs, v2, None);
        b.build()
    }

    #[test]
    fn execute_computes_values() {
        let mut x = Tensor::from_fn(vec![64], |i| i[0] as f32);
        let mut y = Tensor::zeros(vec![64]);
        let report = launch(
            &axpy_kernel(),
            &[2],
            &mut [&mut x, &mut y],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(y.at(&[10]), 20.0);
        assert_eq!(y.at(&[63]), 126.0);
        assert_eq!(report.stats.instances, 2);
        assert!(report.time > 0.0);
    }

    #[test]
    fn analytic_counts_match_execute_but_skips_writes() {
        let mut x = Tensor::from_fn(vec![64], |i| i[0] as f32);
        let mut y1 = Tensor::zeros(vec![64]);
        let mut y2 = Tensor::zeros(vec![64]);
        let r1 = launch(
            &axpy_kernel(),
            &[2],
            &mut [&mut x, &mut y1],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        let r2 = launch(
            &axpy_kernel(),
            &[2],
            &mut [&mut x, &mut y2],
            &device(),
            Mode::Analytic,
        )
        .unwrap();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.time, r2.time);
        assert!(
            y2.data().iter().all(|&v| v == 0.0),
            "analytic mode must not write"
        );
    }

    #[test]
    fn coalesced_load_sector_count() {
        // 64 contiguous f32 = 256 bytes = 8 sectors read; same written.
        let mut x = Tensor::zeros(vec![64]);
        let mut y = Tensor::zeros(vec![64]);
        let r = launch(
            &axpy_kernel(),
            &[2],
            &mut [&mut x, &mut y],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(r.stats.l2_read_sectors, 8);
        assert_eq!(r.stats.dram_read_sectors, 8);
        assert_eq!(r.stats.l2_write_sectors, 8);
    }

    #[test]
    fn strided_access_costs_more_sectors() {
        // Gather x[8*i] for 32 lanes: each lane lands in its own sector.
        let mut b = KernelBuilder::new("strided");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let stride = b.constant(8.0);
        let offs = b.binary(BinOp::Mul, lanes, stride);
        let v = b.load(x, offs, None, 0.0);
        b.store(y, lanes, v, None);
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![256]);
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(
            &k,
            &[1],
            &mut [&mut x_t, &mut y_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(r.stats.l2_read_sectors, 32, "one sector per strided lane");
    }

    #[test]
    fn repeated_loads_hit_l2_not_dram() {
        // Two programs load the same 32 elements.
        let mut b = KernelBuilder::new("reuse");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let lanes = b.arange(32);
        let v = b.load(x, lanes, None, 0.0);
        let width = b.constant(32.0);
        let base = b.binary(BinOp::Mul, pid, width);
        let offs = b.binary(BinOp::Add, base, lanes);
        b.store(y, offs, v, None);
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![32]);
        let mut y_t = Tensor::zeros(vec![64]);
        let r = launch(
            &k,
            &[2],
            &mut [&mut x_t, &mut y_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(r.stats.l2_read_sectors, 8, "both programs read 4 sectors");
        assert_eq!(r.stats.dram_read_sectors, 4, "DRAM sees the data once");
    }

    #[test]
    fn masked_lanes_generate_no_traffic() {
        let mut b = KernelBuilder::new("masked");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let bound = b.constant(8.0);
        let mask = b.binary(BinOp::Lt, lanes, bound);
        let v = b.load(x, lanes, Some(mask), 0.0);
        b.store(y, lanes, v, Some(mask));
        let k = b.build();
        let mut x_t = Tensor::from_fn(vec![32], |i| i[0] as f32);
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(
            &k,
            &[1],
            &mut [&mut x_t, &mut y_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(r.stats.l2_read_sectors, 1, "8 f32 = 1 sector");
        assert_eq!(y_t.at(&[7]), 7.0);
        assert_eq!(y_t.at(&[8]), 0.0);
    }

    #[test]
    fn masked_out_of_bounds_is_safe() {
        // Lanes beyond the tensor are masked off; no error.
        let mut b = KernelBuilder::new("tailmask");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let bound = b.constant(10.0);
        let mask = b.binary(BinOp::Lt, lanes, bound);
        let v = b.load(x, lanes, Some(mask), 0.0);
        b.store(y, lanes, v, Some(mask));
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![10]);
        let mut y_t = Tensor::zeros(vec![10]);
        launch(
            &k,
            &[1],
            &mut [&mut x_t, &mut y_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
    }

    #[test]
    fn unmasked_out_of_bounds_reported() {
        let mut b = KernelBuilder::new("oob");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let v = b.load(x, lanes, None, 0.0);
        b.store(y, lanes, v, None);
        let k = b.build();
        let mut x_t = Tensor::zeros(vec![10]);
        let mut y_t = Tensor::zeros(vec![32]);
        assert!(matches!(
            launch(
                &k,
                &[1],
                &mut [&mut x_t, &mut y_t],
                &device(),
                Mode::Execute
            ),
            Err(GpuError::OffsetOutOfBounds { .. })
        ));
    }

    #[test]
    fn atomic_conflicts_are_counted() {
        // All 32 lanes atomically add 1.0 to Y[0].
        let mut b = KernelBuilder::new("conflict");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let zero = b.constant(0.0);
        let offs = b.binary(BinOp::Mul, lanes, zero);
        let one = b.constant(1.0);
        let ones = b.binary(BinOp::Add, offs, one); // block of 1.0
        b.atomic_add(y, offs, ones, None);
        let k = b.build();
        let mut y_t = Tensor::zeros(vec![4]);
        let r = launch(&k, &[1], &mut [&mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(y_t.at(&[0]), 32.0);
        assert_eq!(r.stats.atomics, 32);
        assert_eq!(r.stats.atomic_conflicts, 31);
    }

    #[test]
    fn atomics_to_distinct_addresses_do_not_conflict() {
        let mut b = KernelBuilder::new("noconflict");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let one = b.constant(1.0);
        let zero = b.constant(0.0);
        let vals = b.binary(BinOp::Mul, lanes, zero);
        let vals1 = b.binary(BinOp::Add, vals, one);
        b.atomic_add(y, lanes, vals1, None);
        let k = b.build();
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(&k, &[1], &mut [&mut y_t], &device(), Mode::Execute).unwrap();
        assert_eq!(r.stats.atomic_conflicts, 0);
        assert!(y_t.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn dot_counts_tensor_core_flops_by_dtype() {
        let mut b = KernelBuilder::new("dot");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.output("C");
        let offs_a = b.arange(16 * 8);
        let a2 = b.load(a, offs_a, None, 0.0);
        let a2v = b.view(a2, vec![16, 8]);
        let offs_b = b.arange(8 * 16);
        let b2 = b.load(bb, offs_b, None, 0.0);
        let b2v = b.view(b2, vec![8, 16]);
        let d = b.dot(a2v, b2v);
        let offs_c = b.arange(16 * 16);
        let dflat = b.view(d, vec![256]);
        b.store(c, offs_c, dflat, None);
        let k = b.build();

        let mut a_t = Tensor::ones(vec![16, 8]);
        let mut b_t = Tensor::ones(vec![8, 16]);
        let mut c_t = Tensor::zeros(vec![16, 16]);
        let r = launch(
            &k,
            &[1],
            &mut [&mut a_t, &mut b_t, &mut c_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(r.stats.flops_tc_f32, 2 * 16 * 8 * 16);
        assert_eq!(r.stats.flops_tc_f16, 0);
        assert_eq!(c_t.at(&[0, 0]), 8.0);

        // Same kernel with f16 inputs charges the f16 pipe.
        let mut a_h = Tensor::ones(vec![16, 8]).cast(DType::F16);
        let mut b_h = Tensor::ones(vec![8, 16]).cast(DType::F16);
        let mut c_h = Tensor::zeros(vec![16, 16]).cast(DType::F16);
        let r2 = launch(
            &k,
            &[1],
            &mut [&mut a_h, &mut b_h, &mut c_h],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(r2.stats.flops_tc_f16, 2 * 16 * 8 * 16);
        assert_eq!(r2.stats.flops_tc_f32, 0);
    }

    #[test]
    fn f16_tensors_move_fewer_bytes() {
        let mut x32 = Tensor::zeros(vec![64]);
        let mut y32 = Tensor::zeros(vec![64]);
        let r32 = launch(
            &axpy_kernel(),
            &[2],
            &mut [&mut x32, &mut y32],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        let mut x16 = Tensor::zeros(vec![64]).cast(DType::F16);
        let mut y16 = Tensor::zeros(vec![64]).cast(DType::F16);
        let r16 = launch(
            &axpy_kernel(),
            &[2],
            &mut [&mut x16, &mut y16],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert!(r16.stats.dram_bytes() < r32.stats.dram_bytes());
    }

    #[test]
    fn loop_accumulates() {
        // y[0..32] = sum over 4 chunks of x.
        let mut b = KernelBuilder::new("loopsum");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let acc = b.full(vec![32], 0.0);
        let i = b.begin_loop(0, 4, 1);
        let width = b.constant(32.0);
        let base = b.binary(BinOp::Mul, i, width);
        let offs = b.binary(BinOp::Add, base, lanes);
        let v = b.load(x, offs, None, 0.0);
        b.binary_into(acc, BinOp::Add, acc, v);
        b.end_loop();
        b.store(y, lanes, acc, None);
        let k = b.build();
        let mut x_t = Tensor::ones(vec![128]);
        let mut y_t = Tensor::zeros(vec![32]);
        launch(
            &k,
            &[1],
            &mut [&mut x_t, &mut y_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert!(y_t.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn param_count_mismatch_reported() {
        let mut x = Tensor::zeros(vec![64]);
        assert!(matches!(
            launch(
                &axpy_kernel(),
                &[1],
                &mut [&mut x],
                &device(),
                Mode::Execute
            ),
            Err(GpuError::ParamCountMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn bad_grid_reported() {
        let mut x = Tensor::zeros(vec![64]);
        let mut y = Tensor::zeros(vec![64]);
        assert!(matches!(
            launch(
                &axpy_kernel(),
                &[],
                &mut [&mut x, &mut y],
                &device(),
                Mode::Execute
            ),
            Err(GpuError::BadGrid(_))
        ));
        assert!(matches!(
            launch(
                &axpy_kernel(),
                &[0],
                &mut [&mut x, &mut y],
                &device(),
                Mode::Execute
            ),
            Err(GpuError::BadGrid(_))
        ));
    }

    #[test]
    fn smem_traffic_charged_for_view_and_trans() {
        let mut b = KernelBuilder::new("smem");
        let x = b.input("X");
        let y = b.output("Y");
        let offs = b.arange(64);
        let v = b.load(x, offs, None, 0.0);
        let v2 = b.view(v, vec![8, 8]);
        let v3 = b.trans(v2);
        let v4 = b.view(v3, vec![64]);
        b.store(y, offs, v4, None);
        let k = b.build();
        let mut x_t = Tensor::from_fn(vec![64], |i| i[0] as f32);
        let mut y_t = Tensor::zeros(vec![64]);
        let r = launch(
            &k,
            &[1],
            &mut [&mut x_t, &mut y_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        assert_eq!(r.stats.smem_bytes, 3 * 64 * 4);
        // Transposed copy really happened.
        assert_eq!(y_t.at(&[1]), 8.0);
    }

    #[test]
    fn straggler_dominates_kernel_time() {
        // Program 0 loops 256 times, programs 1..64 do nothing much.
        let mut b = KernelBuilder::new("skew");
        let x = b.input("X");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let zero = b.constant(0.0);
        let is_zero = b.binary(BinOp::Eq, pid, zero);
        let iters = b.constant(256.0);
        let my_iters = b.binary(BinOp::Mul, is_zero, iters);
        let lanes = b.arange(32);
        let acc = b.full(vec![32], 0.0);
        let i = b.begin_loop(0, 256, 1);
        let live = b.binary(BinOp::Lt, i, my_iters);
        let v = b.load(x, lanes, Some(live), 0.0);
        b.binary_into(acc, BinOp::Add, acc, v);
        b.end_loop();
        b.store(y, lanes, acc, None);
        let k = b.build();
        let mut x_t = Tensor::ones(vec![32]);
        let mut y_t = Tensor::zeros(vec![32]);
        let r = launch(
            &k,
            &[64],
            &mut [&mut x_t, &mut y_t],
            &device(),
            Mode::Execute,
        )
        .unwrap();
        // The longest instance is far above the mean.
        assert!(r.max_instance_time > 10.0 * r.sm_time / 64.0);
        assert!(r.sm_time >= r.max_instance_time);
    }

    /// A gather/scale/scatter kernel with a masked tail — exercises loads,
    /// masks, atomics, and integer metadata in one program.
    fn scatter_kernel(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("scatter");
        let x = b.input("X");
        let idx = b.input("IDX");
        let y = b.output("Y");
        let pid = b.program_id(0);
        let w = b.constant(32.0);
        let base = b.binary(BinOp::Mul, pid, w);
        let lanes = b.arange(32);
        let flat = b.binary(BinOp::Add, base, lanes);
        let n_c = b.constant(n as f64);
        let mask = b.binary(BinOp::Lt, flat, n_c);
        let v = b.load(x, flat, Some(mask), 0.0);
        let s = b.constant(1.5);
        let sv = b.binary(BinOp::Mul, v, s);
        let j = b.load(idx, flat, Some(mask), 0.0);
        b.atomic_add(y, j, sv, Some(mask));
        b.build()
    }

    #[test]
    fn matches_reference_interpreter_bit_for_bit() {
        let n = 300;
        let kernel = scatter_kernel(n);
        let grid = [n.div_ceil(32)];
        let mk = || {
            (
                Tensor::from_fn(vec![n], |i| (i[0] % 13) as f32 - 6.0),
                Tensor::from_indices(vec![n], (0..n as i64).map(|i| i % 17).collect()).unwrap(),
                Tensor::zeros(vec![17]),
            )
        };
        for mode in [Mode::Execute, Mode::Analytic] {
            let (mut x1, mut i1, mut y1) = mk();
            let (mut x2, mut i2, mut y2) = mk();
            let r_new = launch(
                &kernel,
                &grid,
                &mut [&mut x1, &mut i1, &mut y1],
                &device(),
                mode,
            )
            .unwrap();
            let r_ref = launch_reference(
                &kernel,
                &grid,
                &mut [&mut x2, &mut i2, &mut y2],
                &device(),
                mode,
            )
            .unwrap();
            assert_eq!(r_new.stats, r_ref.stats, "{mode:?} stats diverge from seed");
            assert_eq!(r_new.time, r_ref.time, "{mode:?} time diverges from seed");
            assert_eq!(y1.data(), y2.data(), "{mode:?} outputs diverge from seed");
        }
    }

    #[test]
    fn forced_parallel_matches_sequential_bit_for_bit() {
        let n = 4096; // 128 instances
        let kernel = scatter_kernel(n);
        let grid = [n.div_ceil(32)];
        let mk = || {
            (
                Tensor::from_fn(vec![n], |i| (i[0] % 29) as f32 * 0.25 - 3.0),
                Tensor::from_indices(vec![n], (0..n as i64).map(|i| (i * 7) % 33).collect())
                    .unwrap(),
                Tensor::zeros(vec![33]),
            )
        };
        for mode in [Mode::Execute, Mode::Analytic] {
            let (mut x1, mut i1, mut y1) = mk();
            let (mut x2, mut i2, mut y2) = mk();
            let seq = launch_with(
                &kernel,
                &grid,
                &mut [&mut x1, &mut i1, &mut y1],
                &device(),
                mode,
                &LaunchOptions::sequential(),
            )
            .unwrap();
            let mut par_opts = LaunchOptions::with_threads(5);
            par_opts.min_parallel_instances = 2;
            let par = launch_with(
                &kernel,
                &grid,
                &mut [&mut x2, &mut i2, &mut y2],
                &device(),
                mode,
                &par_opts,
            )
            .unwrap();
            assert_eq!(
                seq.stats, par.stats,
                "{mode:?} stats diverge under sharding"
            );
            assert_eq!(seq.time, par.time, "{mode:?} time diverges under sharding");
            assert_eq!(
                y1.data(),
                y2.data(),
                "{mode:?} outputs diverge under sharding"
            );
        }
    }

    #[test]
    fn batched_launch_matches_serial_per_request_bit_for_bit() {
        let n = 2048; // 64 instances per request
        let kernel = scatter_kernel(n);
        let grid = [n.div_ceil(32)];
        let mk = |seed: usize| {
            (
                Tensor::from_fn(vec![n], |i| ((i[0] + 3 * seed) % 23) as f32 * 0.5 - 4.0),
                Tensor::from_indices(
                    vec![n],
                    (0..n as i64).map(|i| (i * 5 + seed as i64) % 29).collect(),
                )
                .unwrap(),
                Tensor::zeros(vec![29]),
            )
        };
        let lens = [n, n, 29];
        let dtypes = [DType::F32, DType::I32, DType::F32];
        let program = Program::compile(&kernel, &grid, &lens, &dtypes).unwrap();
        let nreq = 7;
        for mode in [Mode::Execute, Mode::Analytic] {
            // Serial reference: one request at a time, sequential.
            let mut serial: Vec<(Tensor, Tensor, Tensor)> = (0..nreq).map(mk).collect();
            let serial_reports: Vec<KernelReport> = serial
                .iter_mut()
                .map(|(x, i, y)| {
                    program
                        .launch_with(
                            &mut [x, i, y],
                            &device(),
                            mode,
                            &LaunchOptions::sequential(),
                        )
                        .unwrap()
                })
                .collect();
            // Batched, at several thread budgets (1 = sequential path,
            // 3 = requests split unevenly, 16 = leftover budget shards
            // inside each request).
            for threads in [1usize, 3, 16] {
                let mut tensors: Vec<(Tensor, Tensor, Tensor)> = (0..nreq).map(mk).collect();
                let mut views: Vec<[&mut Tensor; 3]> = tensors
                    .iter_mut()
                    .map(|(x, i, y)| [&mut *x, &mut *i, &mut *y])
                    .collect();
                let mut reqs: Vec<&mut [&mut Tensor]> =
                    views.iter_mut().map(|v| v.as_mut_slice()).collect();
                let mut opts = LaunchOptions::with_threads(threads);
                opts.min_parallel_instances = 2;
                let reports = program
                    .launch_batch_with(&mut reqs, &device(), mode, &opts)
                    .unwrap();
                assert_eq!(reports, serial_reports, "{mode:?} @{threads} threads");
                for (got, want) in tensors.iter().zip(&serial) {
                    assert_eq!(got.2.data(), want.2.data(), "{mode:?} @{threads} threads");
                }
            }
        }
    }

    #[test]
    fn batched_launch_reports_first_erroring_request() {
        // Request 1 scatters out of bounds; the batch must surface its
        // error even when later requests are fine.
        let n = 64;
        let kernel = scatter_kernel(n);
        let grid = [n.div_ceil(32)];
        let lens = [n, n, 17];
        let dtypes = [DType::F32, DType::I32, DType::F32];
        let program = Program::compile(&kernel, &grid, &lens, &dtypes).unwrap();
        let mk = |bad: bool| {
            let idx = if bad {
                Tensor::from_indices(vec![n], (0..n as i64).map(|_| 99).collect()).unwrap()
            } else {
                Tensor::from_indices(vec![n], (0..n as i64).map(|i| i % 17).collect()).unwrap()
            };
            (Tensor::ones(vec![n]), idx, Tensor::zeros(vec![17]))
        };
        let mut tensors = [mk(false), mk(true), mk(false)];
        let mut views: Vec<[&mut Tensor; 3]> = tensors
            .iter_mut()
            .map(|(x, i, y)| [&mut *x, &mut *i, &mut *y])
            .collect();
        let mut reqs: Vec<&mut [&mut Tensor]> =
            views.iter_mut().map(|v| v.as_mut_slice()).collect();
        let err = program
            .launch_batch_with(
                &mut reqs,
                &device(),
                Mode::Execute,
                &LaunchOptions::with_threads(3),
            )
            .unwrap_err();
        assert!(matches!(err, GpuError::OffsetOutOfBounds { .. }));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let kernel = axpy_kernel();
        let program =
            Program::compile(&kernel, &[2], &[64, 64], &[DType::F32, DType::F32]).unwrap();
        let mut reqs: Vec<&mut [&mut Tensor]> = Vec::new();
        let reports = program
            .launch_batch_with(
                &mut reqs,
                &device(),
                Mode::Execute,
                &LaunchOptions::default(),
            )
            .unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn execute_parallel_gated_on_read_write_params() {
        // A kernel that reads its own output must run sequentially; one
        // with a write-only output may parallelize.
        let mut b = KernelBuilder::new("rmw");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let v = b.load(y, lanes, None, 0.0);
        let one = b.constant(1.0);
        let v1 = b.binary(BinOp::Add, v, one);
        b.store(y, lanes, v1, None);
        let rmw = b.build();
        assert!(!kernel_allows_parallel_execute(&rmw));
        assert!(kernel_allows_parallel_execute(&axpy_kernel()));

        // The gate is behavioral, not just advisory: a read-modify-write
        // kernel still produces sequential results at high thread counts.
        let mut y_t = Tensor::zeros(vec![32]);
        let mut opts = LaunchOptions::with_threads(8);
        opts.min_parallel_instances = 2;
        launch_with(&rmw, &[4], &mut [&mut y_t], &device(), Mode::Execute, &opts).unwrap();
        assert!(
            y_t.data().iter().all(|&v| v == 4.0),
            "each instance increments by 1"
        );
    }
}
