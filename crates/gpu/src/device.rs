//! The device cost model.

/// Performance parameters of the simulated GPU.
///
/// Defaults approximate an NVIDIA RTX 3090 (Ampere GA102), the card used
/// throughout the paper's evaluation. The absolute values matter less than
/// their ratios: Tensor Core vs scalar throughput, DRAM vs L2 bandwidth,
/// and the fixed kernel-launch overhead are what drive every relative
/// result reproduced in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// DRAM bandwidth, bytes/second.
    pub dram_bw: f64,
    /// Aggregate L2 bandwidth, bytes/second.
    pub l2_bw: f64,
    /// FP16 Tensor Core throughput, FLOP/s.
    pub tc_f16_flops: f64,
    /// FP32 (TF32) Tensor Core throughput, FLOP/s.
    pub tc_f32_flops: f64,
    /// Scalar ALU throughput, FLOP/s.
    pub alu_flops: f64,
    /// Aggregate shared-memory bandwidth, bytes/second.
    pub smem_bw: f64,
    /// Global atomic throughput, operations/second.
    pub atomic_rate: f64,
    /// Extra serialization time per colliding atomic, seconds.
    pub atomic_conflict_penalty: f64,
    /// Fixed kernel launch overhead, seconds.
    pub launch_overhead: f64,
    /// Per-instruction issue cost per program instance, seconds.
    pub instr_issue: f64,
    /// Pipeline stall per data-dependent (CSR-style) loop iteration —
    /// the pointer-chase latency static loops don't pay, seconds.
    pub dyn_loop_stall: f64,
}

impl Default for DeviceModel {
    fn default() -> DeviceModel {
        DeviceModel::rtx3090()
    }
}

impl DeviceModel {
    /// The RTX-3090-class model used for all experiments.
    pub fn rtx3090() -> DeviceModel {
        DeviceModel {
            num_sms: 82,
            dram_bw: 936e9,
            l2_bw: 2.5e12,
            tc_f16_flops: 71e12,
            tc_f32_flops: 35.5e12,
            alu_flops: 17.8e12,
            smem_bw: 10e12,
            atomic_rate: 4e11,
            atomic_conflict_penalty: 2.0e-9,
            launch_overhead: 1.5e-6,
            instr_issue: 1.2e-9,
            dyn_loop_stall: 12e-9,
        }
    }

    /// Per-SM share of a device-wide rate.
    pub fn per_sm(&self, rate: f64) -> f64 {
        rate / self.num_sms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_rtx3090() {
        assert_eq!(DeviceModel::default(), DeviceModel::rtx3090());
    }

    #[test]
    fn ratios_are_sane() {
        let d = DeviceModel::rtx3090();
        // Tensor cores are several times faster than the scalar ALUs.
        assert!(d.tc_f16_flops / d.alu_flops > 3.0);
        // L2 is faster than DRAM.
        assert!(d.l2_bw > d.dram_bw);
        assert!(d.per_sm(d.l2_bw) * d.num_sms as f64 == d.l2_bw);
    }
}
