//! Cost counters and timing reports.

use crate::device::DeviceModel;
use std::fmt;

/// Aggregate counters for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelStats {
    /// Program instances executed.
    pub instances: u64,
    /// 32-byte sectors read that missed the kernel-resident L2 (DRAM reads).
    pub dram_read_sectors: u64,
    /// 32-byte sectors written through to DRAM.
    pub dram_write_sectors: u64,
    /// Total 32-byte sector read transactions (L2 level).
    pub l2_read_sectors: u64,
    /// Total 32-byte sector write transactions (L2 level).
    pub l2_write_sectors: u64,
    /// FP16 Tensor Core FLOPs (from `tl.dot`).
    pub flops_tc_f16: u64,
    /// FP32/TF32 Tensor Core FLOPs (from `tl.dot`).
    pub flops_tc_f32: u64,
    /// Scalar ALU FLOPs (block arithmetic and reductions).
    pub flops_scalar: u64,
    /// Shared-memory bytes moved by `view`/`trans`/`broadcast_to`.
    pub smem_bytes: u64,
    /// Atomic operations issued.
    pub atomics: u64,
    /// Excess colliding atomics (sum over addresses of `count - 1`).
    pub atomic_conflicts: u64,
    /// Dynamic instructions executed (across all instances).
    pub instructions: u64,
}

impl KernelStats {
    /// Total bytes that reached DRAM.
    pub fn dram_bytes(&self) -> u64 {
        32 * (self.dram_read_sectors + self.dram_write_sectors)
    }

    /// Total bytes that crossed L2.
    pub fn l2_bytes(&self) -> u64 {
        32 * (self.l2_read_sectors + self.l2_write_sectors)
    }

    /// Deterministic abstract cost of this launch, in dimensionless
    /// "cost units": dynamic instructions plus an 8× weight on DRAM
    /// sector traffic plus atomics. The counters are bit-exact outputs
    /// of the simulator, so the same launch always costs the same —
    /// which is what lets serving-layer accounting (per-tenant budgets,
    /// fair scheduling) be replayable instead of probabilistic.
    pub fn cost_units(&self) -> u64 {
        self.instructions
            .saturating_add(8 * (self.dram_read_sectors + self.dram_write_sectors))
            .saturating_add(self.atomics)
    }
}

/// Timing and counters for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Launch grid.
    pub grid: Vec<usize>,
    /// Aggregate counters.
    pub stats: KernelStats,
    /// Simulated wall time of this launch, seconds (includes launch
    /// overhead).
    pub time: f64,
    /// The parallel (SM) component of the time, seconds.
    pub sm_time: f64,
    /// The DRAM/atomic component of the time, seconds.
    pub dram_time: f64,
    /// The longest single program instance, seconds (load-imbalance floor).
    pub max_instance_time: f64,
}

impl fmt::Display for KernelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} grid={:?} time={:.3}us dram={}B tc16={} tc32={} alu={} atomics={}(+{} conf)",
            self.name,
            self.grid,
            self.time * 1e6,
            self.stats.dram_bytes(),
            self.stats.flops_tc_f16,
            self.stats.flops_tc_f32,
            self.stats.flops_scalar,
            self.stats.atomics,
            self.stats.atomic_conflicts,
        )
    }
}

/// A sequence of kernel launches forming one measured operation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-launch reports, in execution order.
    pub reports: Vec<KernelReport>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Append a launch.
    pub fn push(&mut self, report: KernelReport) {
        self.reports.push(report);
    }

    /// Total simulated time, seconds (launches execute back-to-back).
    pub fn total_time(&self) -> f64 {
        self.reports.iter().map(|r| r.time).sum()
    }

    /// Number of kernel launches.
    pub fn launches(&self) -> usize {
        self.reports.len()
    }

    /// Sum a counter across launches.
    pub fn total_stats(&self) -> KernelStats {
        let mut out = KernelStats::default();
        for r in &self.reports {
            out.instances += r.stats.instances;
            out.dram_read_sectors += r.stats.dram_read_sectors;
            out.dram_write_sectors += r.stats.dram_write_sectors;
            out.l2_read_sectors += r.stats.l2_read_sectors;
            out.l2_write_sectors += r.stats.l2_write_sectors;
            out.flops_tc_f16 += r.stats.flops_tc_f16;
            out.flops_tc_f32 += r.stats.flops_tc_f32;
            out.flops_scalar += r.stats.flops_scalar;
            out.smem_bytes += r.stats.smem_bytes;
            out.atomics += r.stats.atomics;
            out.atomic_conflicts += r.stats.atomic_conflicts;
            out.instructions += r.stats.instructions;
        }
        out
    }

    /// Total [`KernelStats::cost_units`] across all launches.
    pub fn total_cost_units(&self) -> u64 {
        self.reports
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.stats.cost_units()))
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} launches, {:.3} us total",
            self.launches(),
            self.total_time() * 1e6
        )?;
        for r in &self.reports {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// Combine per-instance costs into a launch time using the device model.
///
/// `instance_times` are per-program compute/memory times. Programs are
/// assigned to SMs by *arrival-order list scheduling* (each program goes
/// to the earliest-free SM, in launch order), which is how real GPUs
/// dispatch thread blocks. This makes program ordering matter: a skewed
/// workload whose long programs arrive late leaves a straggler tail,
/// while sorting long programs first (Sputnik's row-swizzle strategy)
/// packs tightly. The kernel time is the max of that makespan and the
/// DRAM + atomic serialization time, plus the fixed launch overhead.
pub(crate) fn combine_times(
    device: &DeviceModel,
    instance_times: &[f64],
    dram_time: f64,
) -> (f64, f64, f64) {
    let s_used = instance_times.len().min(device.num_sms).max(1);
    let sm_time = if instance_times.len() <= s_used {
        instance_times.iter().copied().fold(0.0, f64::max)
    } else {
        // Earliest-free-SM assignment via a min-heap of SM finish times.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct F(f64);
        impl Eq for F {}
        impl PartialOrd for F {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for F {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        let mut heap: BinaryHeap<Reverse<F>> = (0..s_used).map(|_| Reverse(F(0.0))).collect();
        for &t in instance_times {
            let Reverse(F(free_at)) = heap.pop().expect("heap holds one entry per SM");
            heap.push(Reverse(F(free_at + t)));
        }
        heap.into_iter().map(|Reverse(F(t))| t).fold(0.0, f64::max)
    };
    let time = device.launch_overhead + sm_time.max(dram_time);
    (time, sm_time, dram_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_totals() {
        let mut p = Profile::new();
        let mk = |t: f64, atomics: u64| KernelReport {
            name: "k".into(),
            grid: vec![1],
            stats: KernelStats {
                atomics,
                ..Default::default()
            },
            time: t,
            sm_time: t,
            dram_time: 0.0,
            max_instance_time: t,
        };
        p.push(mk(1e-6, 5));
        p.push(mk(2e-6, 7));
        assert!((p.total_time() - 3e-6).abs() < 1e-12);
        assert_eq!(p.launches(), 2);
        assert_eq!(p.total_stats().atomics, 12);
    }

    #[test]
    fn combine_times_balances() {
        let d = DeviceModel::rtx3090();
        // 82 instances of 1us each on 82 SMs -> ~1us + launch overhead.
        let times = vec![1e-6; 82];
        let (t, sm, _) = combine_times(&d, &times, 0.0);
        assert!((sm - 1e-6).abs() < 1e-9);
        assert!(t >= d.launch_overhead + 1e-6);
    }

    #[test]
    fn combine_times_respects_straggler() {
        let d = DeviceModel::rtx3090();
        // One huge instance dominates even with thousands of tiny ones.
        let mut times = vec![1e-9; 10_000];
        times.push(5e-5);
        let (_, sm, _) = combine_times(&d, &times, 0.0);
        assert!(sm >= 5e-5);
    }

    #[test]
    fn combine_times_dram_bound() {
        let d = DeviceModel::rtx3090();
        let (t, _, dram) = combine_times(&d, &[1e-9], 1e-3);
        assert_eq!(dram, 1e-3);
        assert!(t >= 1e-3);
    }

    #[test]
    fn stats_byte_helpers() {
        let s = KernelStats {
            dram_read_sectors: 2,
            dram_write_sectors: 1,
            l2_read_sectors: 4,
            l2_write_sectors: 0,
            ..Default::default()
        };
        assert_eq!(s.dram_bytes(), 96);
        assert_eq!(s.l2_bytes(), 128);
    }

    #[test]
    fn cost_units_weight_instructions_dram_and_atomics() {
        let s = KernelStats {
            instructions: 100,
            dram_read_sectors: 3,
            dram_write_sectors: 2,
            atomics: 7,
            ..Default::default()
        };
        assert_eq!(s.cost_units(), 100 + 8 * 5 + 7);

        let mut p = Profile::new();
        for _ in 0..2 {
            p.push(KernelReport {
                name: "k".into(),
                grid: vec![1],
                stats: s,
                time: 1e-6,
                sm_time: 1e-6,
                dram_time: 0.0,
                max_instance_time: 1e-6,
            });
        }
        assert_eq!(p.total_cost_units(), 2 * s.cost_units());
    }
}
