//! Property tests for the GPU simulator: analytic/execute agreement,
//! determinism, and cost-model monotonicity on randomized kernels.

use insum_gpu::reference::launch_reference;
use insum_gpu::{launch, launch_with, DeviceModel, LaunchOptions, Mode};
use insum_kernel::{BinOp, Kernel, KernelBuilder};
use insum_tensor::Tensor;
use proptest::prelude::*;

/// A randomized gather-scale-scatter kernel: Y[idx[i]] += s * X[i].
fn gather_scale_scatter(n: usize, lanes: usize, scale: f64) -> Kernel {
    let mut b = KernelBuilder::new("prop_kernel");
    let x = b.input("X");
    let idx = b.input("IDX");
    let y = b.output("Y");
    let pid = b.program_id(0);
    let w = b.constant(lanes as f64);
    let base = b.binary(BinOp::Mul, pid, w);
    let l = b.arange(lanes);
    let flat = b.binary(BinOp::Add, base, l);
    let n_c = b.constant(n as f64);
    let mask = b.binary(BinOp::Lt, flat, n_c);
    let v = b.load(x, flat, Some(mask), 0.0);
    let s = b.constant(scale);
    let sv = b.binary(BinOp::Mul, v, s);
    let j = b.load(idx, flat, Some(mask), 0.0);
    b.atomic_add(y, j, sv, Some(mask));
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analytic_and_execute_report_identical_costs(
        n in 1usize..200,
        out_size in 1usize..32,
        seed in proptest::collection::vec(0usize..32, 1..200),
        scale in -4.0f64..4.0,
    ) {
        let lanes = 32;
        let device = DeviceModel::rtx3090();
        let kernel = gather_scale_scatter(n, lanes, scale);
        let grid = [n.div_ceil(lanes)];
        let x = Tensor::from_fn(vec![n], |i| i[0] as f32 * 0.5);
        let idx_data: Vec<i64> =
            (0..n).map(|i| (seed[i % seed.len()] % out_size) as i64).collect();
        let idx = Tensor::from_indices(vec![n], idx_data).expect("length matches");

        let mut x1 = x.clone();
        let mut i1 = idx.clone();
        let mut y1 = Tensor::zeros(vec![out_size]);
        let r_exec =
            launch(&kernel, &grid, &mut [&mut x1, &mut i1, &mut y1], &device, Mode::Execute)
                .expect("execute runs");

        let mut x2 = x.clone();
        let mut i2 = idx.clone();
        let mut y2 = Tensor::zeros(vec![out_size]);
        let r_ana =
            launch(&kernel, &grid, &mut [&mut x2, &mut i2, &mut y2], &device, Mode::Analytic)
                .expect("analytic runs");

        prop_assert_eq!(r_exec.stats, r_ana.stats);
        prop_assert_eq!(r_exec.time, r_ana.time);
        prop_assert!(y2.data().iter().all(|&v| v == 0.0), "analytic never writes");
    }

    #[test]
    fn execute_matches_host_reference(
        n in 1usize..150,
        out_size in 1usize..24,
        seed in proptest::collection::vec(0usize..24, 1..150),
        scale in -2.0f64..2.0,
    ) {
        let lanes = 32;
        let device = DeviceModel::rtx3090();
        let kernel = gather_scale_scatter(n, lanes, scale);
        let x = Tensor::from_fn(vec![n], |i| (i[0] % 7) as f32 - 3.0);
        let idx_data: Vec<i64> =
            (0..n).map(|i| (seed[i % seed.len()] % out_size) as i64).collect();
        let idx = Tensor::from_indices(vec![n], idx_data.clone()).expect("length matches");

        let mut x1 = x.clone();
        let mut i1 = idx.clone();
        let mut y = Tensor::zeros(vec![out_size]);
        launch(
            &kernel,
            &[n.div_ceil(lanes)],
            &mut [&mut x1, &mut i1, &mut y],
            &device,
            Mode::Execute,
        )
        .expect("execute runs");

        let mut want = vec![0.0f32; out_size];
        for i in 0..n {
            want[idx_data[i] as usize] += (scale as f32) * x.data()[i];
        }
        for (got, want) in y.data().iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn launches_are_deterministic(n in 1usize..100) {
        let device = DeviceModel::rtx3090();
        let kernel = gather_scale_scatter(n, 32, 1.5);
        let run = || {
            let mut x = Tensor::from_fn(vec![n], |i| i[0] as f32);
            let mut idx = Tensor::from_indices(vec![n], (0..n as i64).collect()).expect("len");
            let mut y = Tensor::zeros(vec![n]);
            launch(&kernel, &[n.div_ceil(32)], &mut [&mut x, &mut idx, &mut y], &device, Mode::Execute)
                .expect("runs")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.time, b.time);
    }

    #[test]
    fn more_work_never_costs_less(n in 8usize..120) {
        // Doubling the element count cannot reduce simulated time.
        let device = DeviceModel::rtx3090();
        let t_small = {
            let kernel = gather_scale_scatter(n, 32, 1.0);
            let mut x = Tensor::zeros(vec![n]);
            let mut idx = Tensor::from_indices(vec![n], (0..n as i64).collect()).expect("len");
            let mut y = Tensor::zeros(vec![n]);
            launch(&kernel, &[n.div_ceil(32)], &mut [&mut x, &mut idx, &mut y], &device, Mode::Analytic)
                .expect("runs")
                .time
        };
        let n2 = n * 2;
        let t_big = {
            let kernel = gather_scale_scatter(n2, 32, 1.0);
            let mut x = Tensor::zeros(vec![n2]);
            let mut idx = Tensor::from_indices(vec![n2], (0..n2 as i64).collect()).expect("len");
            let mut y = Tensor::zeros(vec![n2]);
            launch(&kernel, &[n2.div_ceil(32)], &mut [&mut x, &mut idx, &mut y], &device, Mode::Analytic)
                .expect("runs")
                .time
        };
        prop_assert!(t_big >= t_small, "double work {t_big:.3e} < {t_small:.3e}");
    }

    #[test]
    fn parallel_launch_is_bit_identical_to_sequential(
        n in 65usize..400,
        out_size in 1usize..32,
        seed in proptest::collection::vec(0usize..32, 1..200),
        scale in -4.0f64..4.0,
        threads in 2usize..9,
    ) {
        let lanes = 32;
        let device = DeviceModel::rtx3090();
        let kernel = gather_scale_scatter(n, lanes, scale);
        let grid = [n.div_ceil(lanes)];
        let x = Tensor::from_fn(vec![n], |i| (i[0] % 11) as f32 * 0.75 - 4.0);
        let idx_data: Vec<i64> =
            (0..n).map(|i| (seed[i % seed.len()] % out_size) as i64).collect();
        let idx = Tensor::from_indices(vec![n], idx_data).expect("length matches");

        for mode in [Mode::Execute, Mode::Analytic] {
            let mut x1 = x.clone();
            let mut i1 = idx.clone();
            let mut y1 = Tensor::zeros(vec![out_size]);
            let seq = launch_with(
                &kernel,
                &grid,
                &mut [&mut x1, &mut i1, &mut y1],
                &device,
                mode,
                &LaunchOptions::sequential(),
            )
            .expect("sequential runs");

            let mut x2 = x.clone();
            let mut i2 = idx.clone();
            let mut y2 = Tensor::zeros(vec![out_size]);
            let mut opts = LaunchOptions::with_threads(threads);
            opts.min_parallel_instances = 2;
            let par = launch_with(
                &kernel,
                &grid,
                &mut [&mut x2, &mut i2, &mut y2],
                &device,
                mode,
                &opts,
            )
            .expect("parallel runs");

            prop_assert_eq!(seq.stats, par.stats, "{:?} stats diverge", mode);
            prop_assert_eq!(seq.time, par.time, "{:?} time diverges", mode);
            prop_assert_eq!(y1.data(), y2.data(), "{:?} outputs diverge", mode);
        }
    }

    #[test]
    fn optimized_interpreter_matches_seed_bit_for_bit(
        n in 1usize..300,
        out_size in 1usize..24,
        seed in proptest::collection::vec(0usize..24, 1..150),
        scale in -2.0f64..2.0,
    ) {
        let lanes = 32;
        let device = DeviceModel::rtx3090();
        let kernel = gather_scale_scatter(n, lanes, scale);
        let grid = [n.div_ceil(lanes)];
        let x = Tensor::from_fn(vec![n], |i| (i[0] % 7) as f32 - 3.0);
        let idx_data: Vec<i64> =
            (0..n).map(|i| (seed[i % seed.len()] % out_size) as i64).collect();
        let idx = Tensor::from_indices(vec![n], idx_data).expect("length matches");

        for mode in [Mode::Execute, Mode::Analytic] {
            let mut x1 = x.clone();
            let mut i1 = idx.clone();
            let mut y1 = Tensor::zeros(vec![out_size]);
            let new = launch(&kernel, &grid, &mut [&mut x1, &mut i1, &mut y1], &device, mode)
                .expect("optimized runs");

            let mut x2 = x.clone();
            let mut i2 = idx.clone();
            let mut y2 = Tensor::zeros(vec![out_size]);
            let old =
                launch_reference(&kernel, &grid, &mut [&mut x2, &mut i2, &mut y2], &device, mode)
                    .expect("seed runs");

            prop_assert_eq!(new.stats, old.stats, "{:?} stats diverge from seed", mode);
            prop_assert_eq!(new.time, old.time, "{:?} time diverges from seed", mode);
            prop_assert_eq!(y1.data(), y2.data(), "{:?} outputs diverge from seed", mode);
        }
    }

    #[test]
    fn colliding_scatter_counts_conflicts(
        out_size in 1usize..8,
        n in 33usize..128,
    ) {
        let device = DeviceModel::rtx3090();
        let kernel = gather_scale_scatter(n, 32, 1.0);
        let mut x = Tensor::zeros(vec![n]);
        // All indices collapse onto out_size addresses.
        let mut idx = Tensor::from_indices(
            vec![n],
            (0..n).map(|i| (i % out_size) as i64).collect(),
        )
        .expect("len");
        let mut y = Tensor::zeros(vec![out_size]);
        let r = launch(&kernel, &[n.div_ceil(32)], &mut [&mut x, &mut idx, &mut y], &device, Mode::Execute)
            .expect("runs");
        prop_assert_eq!(r.stats.atomics, n as u64);
        prop_assert_eq!(r.stats.atomic_conflicts, (n - out_size.min(n)) as u64);
    }
}
