//! Property tests for the ahead-of-time compile pipeline: compiled
//! programs must be bit-identical to the seed reference interpreter
//! (outputs, stats, simulated time), and analytic instance-class dedup
//! must equal brute-force per-instance costing, over randomized kernels,
//! grids, and scheduling options.

use insum_gpu::reference::launch_reference;
use insum_gpu::{DeviceModel, LaunchOptions, Mode, Program};
use insum_kernel::{BinOp, Kernel, KernelBuilder};
use insum_tensor::{DType, Tensor};
use proptest::prelude::*;

/// A tiled 2-D kernel shaped like the fused codegen's output:
/// `DST[y, x] (+)= SCALE * SRC[IDX[y]-indirected rows, x]`, with grid
/// axis 0 tiling columns (affine offsets) and axis 1 tiling rows.
///
/// Knobs cover the compile pipeline's branches:
/// * `masked` — adds an axis-0-affine column mask, which disqualifies
///   instance-class dedup (fallback path).
/// * `indirect` — routes row addresses through an I32 metadata gather
///   (row-invariant loads, data-dependent bases).
/// * `atomic` — scatter via `atomic_add` instead of `store`.
/// * `rloop` — accumulates over a reduction loop so invariant
///   instructions are trapped inside a per-instance loop (occurrence
///   streams).
struct TiledSpec {
    xb: usize,
    yb: usize,
    gx: usize,
    gy: usize,
    masked: bool,
    indirect: bool,
    atomic: bool,
    rloop: bool,
    scale: f64,
}

impl TiledSpec {
    fn cols(&self) -> usize {
        self.gx * self.xb
    }

    fn rows(&self) -> usize {
        self.gy * self.yb
    }

    fn build(&self) -> Kernel {
        let mut b = KernelBuilder::new("prop_tiled");
        let src = b.input("SRC");
        let idx = if self.indirect {
            Some(b.input("IDX"))
        } else {
            None
        };
        let dst = b.output("DST");

        let pid0 = b.program_id(0);
        let pid1 = b.program_id(1);
        let xb_c = b.constant(self.xb as f64);
        let yb_c = b.constant(self.yb as f64);
        let cols_c = b.constant(self.cols() as f64);
        let xlanes = b.arange(self.xb);
        let ylanes = b.arange(self.yb);

        // Column offsets: pid0 * XB + arange(XB) — affine along axis 0.
        let xbase = b.binary(BinOp::Mul, pid0, xb_c);
        let xoffs = b.binary(BinOp::Add, xbase, xlanes);
        // Row ids: pid1 * YB + arange(YB), optionally indirected.
        let ybase = b.binary(BinOp::Mul, pid1, yb_c);
        let yids = b.binary(BinOp::Add, ybase, ylanes);
        let rowids = match idx {
            Some(p) => b.load(p, yids, None, 0.0),
            None => yids,
        };
        let rowoffs = b.binary(BinOp::Mul, rowids, cols_c);
        let row2 = b.expand_dims(rowoffs, 1);
        let col2 = b.expand_dims(xoffs, 0);
        let offs = b.binary(BinOp::Add, row2, col2);

        let mask = if self.masked {
            let lim = b.constant((self.cols() - 1) as f64);
            let colmask = b.binary(BinOp::Lt, xoffs, lim);
            Some(b.expand_dims(colmask, 0))
        } else {
            None
        };

        let scale_c = b.constant(self.scale);
        let value = if self.rloop {
            let acc = b.full(vec![self.yb, self.xb], 0.0);
            let r = b.begin_loop(0, 3, 1);
            let roff = b.binary(BinOp::Mul, r, cols_c);
            // Shift source rows by the (bounded) loop step so iterations
            // read different data; SRC carries 3 extra rows of slack so
            // the shifted offsets stay affine (no wrap-around).
            let shifted = b.binary(BinOp::Add, offs, roff);
            let v = b.load(src, shifted, mask, 0.0);
            let sv = b.binary(BinOp::Mul, v, scale_c);
            b.binary_into(acc, BinOp::Add, acc, sv);
            b.end_loop();
            acc
        } else {
            let v = b.load(src, offs, mask, 0.0);
            b.binary(BinOp::Mul, v, scale_c)
        };

        if self.atomic {
            b.atomic_add(dst, offs, value, mask);
        } else {
            b.store(dst, offs, value, mask);
        }
        b.build()
    }

    fn tensors(&self, seed: u64) -> Vec<Tensor> {
        let total = self.rows() * self.cols();
        // 3 extra rows of slack for the reduction loop's shifted reads.
        let src_total = total + 3 * self.cols();
        let src = Tensor::from_fn(vec![src_total], |i| {
            ((i[0] as u64 ^ seed) % 13) as f32 - 6.0
        });
        let dst = Tensor::zeros(vec![total]);
        if self.indirect {
            let rows = self.rows() as i64;
            let idx = Tensor::from_indices(
                vec![self.rows()],
                (0..rows).map(|i| (i * 7 + seed as i64) % rows).collect(),
            )
            .expect("length matches");
            vec![src, idx, dst]
        } else {
            vec![src, dst]
        }
    }
}

fn spec_strategy() -> impl Strategy<Value = TiledSpec> {
    (
        1usize..4, // gx
        1usize..5, // gy
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        -3.0f64..3.0,
    )
        .prop_map(
            |(gx, gy, masked, indirect, atomic, rloop, scale)| TiledSpec {
                xb: 16,
                yb: 4,
                gx,
                gy,
                masked,
                indirect,
                atomic,
                rloop,
                scale,
            },
        )
}

fn launch_program(
    spec: &TiledSpec,
    kernel: &Kernel,
    mode: Mode,
    opts: &LaunchOptions,
    seed: u64,
) -> (insum_gpu::KernelReport, Vec<Tensor>) {
    let mut owned = spec.tensors(seed);
    let lens: Vec<usize> = owned.iter().map(|t| t.len()).collect();
    let dtypes: Vec<DType> = owned.iter().map(|t| t.dtype()).collect();
    let program = Program::compile(kernel, &[spec.gx, spec.gy], &lens, &dtypes).expect("compiles");
    let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
    let report = program
        .launch_with(&mut refs, &DeviceModel::rtx3090(), mode, opts)
        .expect("launches");
    (report, owned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Compiled programs (all caching tiers active) match the seed
    /// reference interpreter bit for bit.
    #[test]
    fn compiled_program_matches_reference(spec in spec_strategy(), seed in 0u64..1000) {
        let kernel = spec.build();
        let device = DeviceModel::rtx3090();
        for mode in [Mode::Execute, Mode::Analytic] {
            let (new, out_new) =
                launch_program(&spec, &kernel, mode, &LaunchOptions::sequential(), seed);
            let mut owned = spec.tensors(seed);
            let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
            let old = launch_reference(&kernel, &[spec.gx, spec.gy], &mut refs, &device, mode)
                .expect("reference runs");
            prop_assert_eq!(new.stats, old.stats, "{:?} stats diverge from seed", mode);
            prop_assert_eq!(new.time, old.time, "{:?} time diverges from seed", mode);
            for (a, b) in out_new.iter().zip(&owned) {
                prop_assert_eq!(a.data(), b.data(), "{:?} outputs diverge from seed", mode);
            }
        }
    }

    /// Analytic instance-class dedup equals brute-force per-instance
    /// costing: stats, DRAM sets, collision counts, and per-instance
    /// times are identical with replay enabled and disabled.
    #[test]
    fn analytic_dedup_matches_brute_force(spec in spec_strategy(), seed in 0u64..1000) {
        let kernel = spec.build();
        let dedup = LaunchOptions::sequential();
        let brute = LaunchOptions {
            analytic_dedup: false,
            ..LaunchOptions::sequential()
        };
        let (fast, _) = launch_program(&spec, &kernel, Mode::Analytic, &dedup, seed);
        let (slow, _) = launch_program(&spec, &kernel, Mode::Analytic, &brute, seed);
        prop_assert_eq!(fast.stats, slow.stats, "dedup changes counters");
        prop_assert_eq!(fast.time, slow.time, "dedup changes simulated time");
        prop_assert_eq!(fast.sm_time, slow.sm_time);
        prop_assert_eq!(fast.dram_time, slow.dram_time);
        prop_assert_eq!(fast.max_instance_time, slow.max_instance_time);
    }

    /// Dedup + sharding composes: parallel analytic launches with replay
    /// stay bit-identical to the sequential brute-force path.
    #[test]
    fn parallel_dedup_matches_sequential(
        spec in spec_strategy(),
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let kernel = spec.build();
        let mut par = LaunchOptions::with_threads(threads);
        par.min_parallel_instances = 2;
        let brute = LaunchOptions {
            analytic_dedup: false,
            ..LaunchOptions::sequential()
        };
        let (fast, _) = launch_program(&spec, &kernel, Mode::Analytic, &par, seed);
        let (slow, _) = launch_program(&spec, &kernel, Mode::Analytic, &brute, seed);
        prop_assert_eq!(fast.stats, slow.stats);
        prop_assert_eq!(fast.time, slow.time);
    }
}

/// The fully affine unmasked configuration must actually qualify for
/// instance-class dedup (guards against the analysis silently regressing
/// to the fallback path, which would leave the properties vacuous).
#[test]
fn affine_specs_enable_dedup() {
    for indirect in [false, true] {
        for atomic in [false, true] {
            for rloop in [false, true] {
                let spec = TiledSpec {
                    xb: 16,
                    yb: 4,
                    gx: 3,
                    gy: 2,
                    masked: false,
                    indirect,
                    atomic,
                    rloop,
                    scale: 1.5,
                };
                let kernel = spec.build();
                let owned = spec.tensors(1);
                let lens: Vec<usize> = owned.iter().map(|t| t.len()).collect();
                let dtypes: Vec<DType> = owned.iter().map(|t| t.dtype()).collect();
                let program =
                    Program::compile(&kernel, &[spec.gx, spec.gy], &lens, &dtypes).unwrap();
                assert!(
                    program.analytic_dedup_available(),
                    "indirect={indirect} atomic={atomic} rloop={rloop} should dedup"
                );
            }
        }
    }
}

/// Regression: a loop-carried rotation chain longer than any fixed
/// fixpoint budget. `pid0` reaches the atomic offset only after 24
/// rotations, so the affine analysis needs ~24 passes to classify the
/// head register; a capped fixpoint once left it "invariant" and
/// instance-class replay stamped every member's atomic on the
/// representative's address (atomic_conflicts 7 instead of 0).
#[test]
fn long_loop_carried_chains_stay_bit_identical() {
    const N: usize = 24;
    let mut b = KernelBuilder::new("rotate");
    let y = b.output("Y");
    let pid = b.program_id(0);
    let zero = b.constant(0.0);
    let one = b.constant(1.0);
    let chain: Vec<_> = (0..N).map(|_| b.binary(BinOp::Add, zero, zero)).collect();
    let r = b.begin_loop(0, N as i64, 1);
    let _ = r;
    for i in 0..N - 1 {
        b.binary_into(chain[i], BinOp::Add, chain[i + 1], zero);
    }
    b.binary_into(chain[N - 1], BinOp::Add, pid, zero);
    b.end_loop();
    b.atomic_add(y, chain[0], one, None);
    let kernel = b.build();

    let grid = [8usize];
    let device = DeviceModel::rtx3090();
    let mk = || Tensor::zeros(vec![8]);
    for mode in [Mode::Execute, Mode::Analytic] {
        let mut y1 = mk();
        let lens = [y1.len()];
        let dtypes = [y1.dtype()];
        let program = Program::compile(&kernel, &grid, &lens, &dtypes).unwrap();
        let new = program
            .launch_with(&mut [&mut y1], &device, mode, &LaunchOptions::sequential())
            .unwrap();
        let mut y2 = mk();
        let old = launch_reference(&kernel, &grid, &mut [&mut y2], &device, mode).unwrap();
        assert_eq!(new.stats, old.stats, "{mode:?} stats diverge from seed");
        assert_eq!(new.time, old.time, "{mode:?} time diverges from seed");
        assert_eq!(y1.data(), y2.data(), "{mode:?} outputs diverge from seed");
        assert_eq!(new.stats.atomic_conflicts, 0, "distinct addresses");
    }
}
