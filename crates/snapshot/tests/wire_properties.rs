//! Property tests for the tensor wire format: bit-exact round trips
//! over random shapes, dtypes, and pathological float values, plus
//! typed (never panicking) failures on version skew and truncation.

use insum_snapshot::{decode_tensor, encode_tensor, SnapshotError, TENSOR_WIRE_VERSION};
use insum_tensor::{DType, Tensor};
use proptest::prelude::*;

/// Floats drawn to stress bit-exactness: NaNs with payloads, signed
/// zeros, infinities, subnormals — anything a value-level codec would
/// canonicalize.
fn any_bits() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1.0e4f32..1.0e4,
        Just(-0.0f32),
        Just(0.0f32),
        Just(f32::from_bits(0x7fc0_1234)), // NaN with payload
        Just(f32::from_bits(0xffc0_0001)), // negative NaN, different payload
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(f32::from_bits(0x0000_0001)), // smallest subnormal
        (0u32..=u32::MAX).prop_map(f32::from_bits),
    ]
}

fn any_dtype() -> impl Strategy<Value = DType> {
    prop_oneof![Just(DType::F16), Just(DType::F32), Just(DType::I32)]
}

/// Random tensor: rank 0–3, dims 1–4, arbitrary bit patterns, any
/// dtype. Built through `from_vec_with`, so `F16` tensors keep raw
/// (even non-F16-representable) bits — exactly what the wire format
/// must preserve.
fn any_tensor() -> impl Strategy<Value = Tensor> {
    (proptest::collection::vec(1usize..5, 0..4), any_dtype()).prop_flat_map(|(shape, dtype)| {
        let n: usize = shape.iter().product();
        proptest::collection::vec(any_bits(), n)
            .prop_map(move |data| Tensor::from_vec_with(shape.clone(), data, dtype).unwrap())
    })
}

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_bit_identical(t in any_tensor()) {
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        prop_assert_eq!(back.dtype(), t.dtype());
        prop_assert_eq!(bits_of(&back), bits_of(&t));
    }

    #[test]
    fn non_canonical_views_gather_then_round_trip(
        (t, rows, cols) in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
            proptest::collection::vec(any_bits(), r * c)
                .prop_map(move |data| (Tensor::from_vec(vec![r, c], data).unwrap(), r, c))
        })
    ) {
        // A transposed view has non-canonical strides; the encoder must
        // gather it into canonical order without touching element bits.
        let view = t.transpose(0, 1).unwrap();
        let back = decode_tensor(&encode_tensor(&view)).unwrap();
        prop_assert_eq!(back.shape(), &[cols, rows][..]);
        for i in 0..cols {
            for j in 0..rows {
                prop_assert_eq!(
                    back.at(&[i, j]).to_bits(),
                    view.at(&[i, j]).to_bits(),
                    "element ({}, {}) changed bits through the wire", i, j
                );
            }
        }
    }

    #[test]
    fn version_skew_is_typed_not_a_panic(t in any_tensor(), version in 0u32..1000) {
        prop_assume!(version != TENSOR_WIRE_VERSION as u32);
        let mut bytes = encode_tensor(&t);
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            decode_tensor(&bytes),
            Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: TENSOR_WIRE_VERSION as u32
            })
        );
    }

    #[test]
    fn every_truncation_errors_without_panicking(t in any_tensor()) {
        let bytes = encode_tensor(&t);
        for cut in 0..bytes.len() {
            prop_assert!(decode_tensor(&bytes[..cut]).is_err(), "cut at {} decoded", cut);
        }
        let mut extended = bytes;
        extended.push(0);
        prop_assert!(decode_tensor(&extended).is_err());
    }
}
