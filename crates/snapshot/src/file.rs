//! Snapshot container framing and crash-safe file IO.
//!
//! ## On-disk layout (format version 1)
//!
//! ```text
//! header   := magic:[u8;8]="INSUMSNP" version:u32 section_count:u32
//! section  := tag:u8 record_count:u32 record*
//! record   := len:u32 crc:u32 payload:[u8;len]
//! ```
//!
//! All integers are little-endian; `crc` is CRC-32 (IEEE) over
//! `payload`. The header is load-bearing for *typed* failures
//! ([`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`]);
//! everything after it degrades record-by-record: a record whose CRC
//! mismatches is skipped, a truncation mid-record rejects the remainder,
//! and declared-but-missing sections are counted. [`Snapshot::parse`]
//! therefore only errors on header damage — body damage always yields
//! `Ok` with [`Snapshot::rejected`] > 0, which is what lets cache
//! loaders degrade to recompile without branching on error shape.

use crate::error::SnapshotError;
use crate::wire::{crc32, Reader, Writer};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"INSUMSNP";

/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Section tag for compiled-program records.
pub const SECTION_PROGRAMS: u8 = 1;

/// Section tag for autotune-winner records.
pub const SECTION_AUTOTUNE: u8 = 2;

/// One tagged group of records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSection {
    /// Section tag (see [`SECTION_PROGRAMS`], [`SECTION_AUTOTUNE`];
    /// unknown tags survive parsing so loaders can count them rejected).
    pub tag: u8,
    /// CRC-verified record payloads, in write order.
    pub records: Vec<Vec<u8>>,
}

/// A parsed snapshot: the records that survived framing and CRC
/// verification, plus a count of everything that didn't.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Sections whose headers parsed, each holding only CRC-valid
    /// records.
    pub sections: Vec<SnapshotSection>,
    /// Records (or whole declared sections) dropped by truncation, CRC
    /// mismatch, or trailing garbage.
    pub rejected: u64,
}

impl Snapshot {
    /// Parse `bytes`. Errors only on header-level damage; any body
    /// damage is absorbed into [`Snapshot::rejected`].
    pub fn parse(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(MAGIC.len(), "snapshot magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32("snapshot version")?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let section_count = r.u32("section count")?;

        let mut sections = Vec::new();
        let mut rejected = 0u64;
        'sections: for s in 0..section_count {
            let (tag, record_count) = match (r.u8("section tag"), r.u32("record count")) {
                (Ok(tag), Ok(n)) => (tag, n),
                _ => {
                    // Section header cut off: everything from here on is
                    // unreadable. One rejection per missing section is
                    // the best accounting available (record counts are
                    // unknown).
                    rejected += u64::from(section_count - s);
                    break;
                }
            };
            let mut records = Vec::new();
            for i in 0..record_count {
                let header = (|| -> Result<(usize, u32), SnapshotError> {
                    let len = r.u32("record length")? as usize;
                    let crc = r.u32("record crc")?;
                    if len > r.remaining() {
                        return Err(SnapshotError::Truncated {
                            context: "record payload",
                        });
                    }
                    Ok((len, crc))
                })();
                let (len, crc) = match header {
                    Ok(h) => h,
                    Err(_) => {
                        // Truncated mid-record: this record, the rest of
                        // this section, and all later sections are gone.
                        rejected += u64::from(record_count - i);
                        rejected += u64::from(section_count - s - 1);
                        sections.push(SnapshotSection { tag, records });
                        break 'sections;
                    }
                };
                let payload = r.take(len, "record payload").expect("length checked");
                if crc32(payload) == crc {
                    records.push(payload.to_vec());
                } else {
                    // Damaged payload (or damaged length desynchronizing
                    // the frame): drop it and keep going. If the length
                    // was the damaged field the following records will
                    // fail their own CRCs and be counted too.
                    rejected += 1;
                }
            }
            sections.push(SnapshotSection { tag, records });
        }
        if !r.is_exhausted() {
            // Trailing bytes mean the declared section count was damaged
            // downward (or the file was concatenated with garbage).
            rejected += 1;
        }
        Ok(Snapshot { sections, rejected })
    }

    /// All CRC-valid records under `tag`, flattened across duplicate
    /// sections.
    pub fn records(&self, tag: u8) -> impl Iterator<Item = &[u8]> {
        self.sections
            .iter()
            .filter(move |s| s.tag == tag)
            .flat_map(|s| s.records.iter().map(Vec::as_slice))
    }
}

/// Incremental snapshot encoder: stage records per section, then
/// [`SnapshotBuilder::finish`] into the framed byte stream.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(u8, Vec<Vec<u8>>)>,
}

impl SnapshotBuilder {
    /// A builder with no sections.
    pub fn new() -> SnapshotBuilder {
        SnapshotBuilder::default()
    }

    /// Append `payload` as one record under `tag` (sections are created
    /// on first use, in first-use order).
    pub fn record(&mut self, tag: u8, payload: Vec<u8>) {
        match self.sections.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, records)) => records.push(payload),
            None => self.sections.push((tag, vec![payload])),
        }
    }

    /// Total staged records across all sections.
    pub fn record_count(&self) -> usize {
        self.sections.iter().map(|(_, r)| r.len()).sum()
    }

    /// Frame everything into the on-disk byte layout.
    pub fn finish(self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.sections.len() as u32);
        for (tag, records) in self.sections {
            w.u8(tag);
            w.u32(records.len() as u32);
            for payload in records {
                w.u32(payload.len() as u32);
                w.u32(crc32(&payload));
                w.raw(&payload);
            }
        }
        w.into_bytes()
    }
}

/// The temp-file path used by [`write_atomic`] for `path`.
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-safe snapshot write: encode into `<path>.tmp`, fsync, then
/// rename over `path`. A crash at any point leaves either the previous
/// durable snapshot or a straggler temp file — never a half-written
/// `path` (see [`clean_stragglers`]).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = temp_path(path);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    // Durability of the rename itself needs a directory fsync; do it
    // best-effort (some filesystems refuse directory handles).
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Remove a leftover temp file from a torn [`write_atomic`] (process
/// died between create and rename). Returns how many stragglers were
/// removed (0 or 1). Best-effort: IO failures are swallowed — a
/// straggler that survives is ignored by loads anyway.
pub fn clean_stragglers(path: &Path) -> u64 {
    let tmp = temp_path(path);
    if tmp.exists() && fs::remove_file(&tmp).is_ok() {
        1
    } else {
        0
    }
}

/// Read and parse a snapshot file. IO failures (including the file not
/// existing) surface as [`SnapshotError::Io`].
pub fn read_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = fs::read(path)?;
    Snapshot::parse(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_snapshot() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.record(SECTION_PROGRAMS, vec![1, 2, 3, 4]);
        b.record(SECTION_PROGRAMS, vec![5, 6]);
        b.record(SECTION_AUTOTUNE, vec![7, 8, 9]);
        b.finish()
    }

    #[test]
    fn round_trip() {
        let bytes = two_section_snapshot();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snap.rejected, 0);
        let programs: Vec<&[u8]> = snap.records(SECTION_PROGRAMS).collect();
        assert_eq!(programs, vec![&[1, 2, 3, 4][..], &[5, 6][..]]);
        let tune: Vec<&[u8]> = snap.records(SECTION_AUTOTUNE).collect();
        assert_eq!(tune, vec![&[7, 8, 9][..]]);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = two_section_snapshot();
        bytes[0] ^= 0xff;
        assert_eq!(Snapshot::parse(&bytes), Err(SnapshotError::BadMagic));

        let mut bytes = two_section_snapshot();
        bytes[8] = 99; // version field
        assert_eq!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn every_truncation_inside_body_rejects_something() {
        let bytes = two_section_snapshot();
        let header_len = MAGIC.len() + 8;
        for cut in header_len..bytes.len() {
            let snap = Snapshot::parse(&bytes[..cut]).unwrap();
            let kept: usize = snap.sections.iter().map(|s| s.records.len()).sum();
            assert!(
                snap.rejected >= 1,
                "truncation at {cut} kept {kept} records but rejected none"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = two_section_snapshot();
        // Byte offsets of the two section-tag bytes: a flipped tag
        // parses cleanly as an *unknown* section (its records vanish
        // from `records(tag)` lookups — loaders count them rejected),
        // so only non-tag flips must trip the container's own counter.
        let tag_positions = [MAGIC.len() + 8, MAGIC.len() + 8 + 5 + (8 + 4) + (8 + 2)];
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[pos] ^= 1 << bit;
                match Snapshot::parse(&damaged) {
                    Err(_) => {} // header damage: typed error
                    Ok(snap) => {
                        assert!(
                            snap.rejected >= 1 || tag_positions.contains(&pos),
                            "flip at byte {pos} bit {bit} went undetected"
                        );
                        // Whatever survived, under whatever tag, must be
                        // one of the original payloads verbatim — never
                        // wrong bits.
                        for section in &snap.sections {
                            for rec in &section.records {
                                assert!(
                                    *rec == [1, 2, 3, 4] || *rec == [5, 6] || *rec == [7, 8, 9],
                                    "flip at byte {pos} bit {bit} surfaced corrupt record {rec:?}"
                                );
                            }
                        }
                        // And the *typed* lookups never see a record that
                        // was written under the other tag.
                        for rec in snap.records(SECTION_PROGRAMS) {
                            assert!(rec == [1, 2, 3, 4] || rec == [5, 6]);
                        }
                        for rec in snap.records(SECTION_AUTOTUNE) {
                            assert_eq!(rec, [7, 8, 9]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn atomic_write_and_straggler_cleanup() {
        let dir =
            std::env::temp_dir().join(format!("insum_snapshot_file_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        write_atomic(&path, &two_section_snapshot()).unwrap();
        assert!(!temp_path(&path).exists());
        assert_eq!(read_snapshot(&path).unwrap().rejected, 0);

        // A torn write leaves a straggler; cleanup removes exactly it.
        fs::write(temp_path(&path), b"half-written").unwrap();
        assert_eq!(clean_stragglers(&path), 1);
        assert_eq!(clean_stragglers(&path), 0);
        assert!(path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
