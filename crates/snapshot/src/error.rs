//! Typed snapshot failures.

use std::error::Error;
use std::fmt;

/// Why a snapshot (or one of its frames) could not be decoded.
///
/// The variants split along the degrade-to-recompile boundary: header
/// problems ([`SnapshotError::BadMagic`],
/// [`SnapshotError::UnsupportedVersion`], a header-level
/// [`SnapshotError::Truncated`]) mean the whole file is unusable, while
/// record-level corruption never surfaces as an error at all — the
/// container parser skips the damaged record and counts it (see
/// [`crate::Snapshot::parse`]). Callers that load snapshots into caches
/// are expected to map *every* variant to "start cold", never to a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (the wrapped message includes the kind).
    Io(String),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file is a snapshot, but from an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The byte stream ended before the field being read.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A checksum or framing invariant failed.
    Corrupt {
        /// What failed.
        context: &'static str,
    },
    /// The bytes decoded, but the value violates a structural bound
    /// (register out of range, impossible length, stale fingerprint).
    Invalid {
        /// Description of the violated bound.
        context: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::Corrupt { context } => write!(f, "snapshot corrupt: {context}"),
            SnapshotError::Invalid { context } => write!(f, "snapshot invalid: {context}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(format!("{} ({:?})", e, e.kind()))
    }
}
