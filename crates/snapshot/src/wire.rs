//! Little-endian byte-level encoding primitives and CRC-32.
//!
//! [`Writer`] appends primitive values to a growable buffer; [`Reader`]
//! consumes them back with typed [`SnapshotError::Truncated`] failures
//! instead of panics, and guards every length prefix against
//! corruption-driven over-allocation (a flipped length byte must cost a
//! rejected record, not a multi-gigabyte `Vec` reservation).

use crate::error::SnapshotError;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) — the same
/// checksum as zlib/PNG. Detects all single-byte corruptions, which is
/// what the snapshot fuzz sweep leans on.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Append-only little-endian encoder.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Encoded bytes so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact, NaN
    /// payloads included).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append an `f32` as its IEEE-754 bit pattern (bit-exact, NaN
    /// payloads included).
    pub fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Consuming little-endian decoder over a borrowed byte slice. Every
/// accessor returns a typed error instead of panicking when the bytes
/// run out.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes, or fail with [`SnapshotError::Truncated`].
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a bool byte; anything other than 0/1 is corruption.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, SnapshotError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { context }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, context: &'static str) -> Result<i64, SnapshotError> {
        Ok(self.u64(context)? as i64)
    }

    /// Read a `u64` and narrow it to `usize`, rejecting values that
    /// don't fit the platform.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64(context)?).map_err(|_| SnapshotError::Corrupt { context })
    }

    /// Read an `f64` bit pattern (bit-exact).
    pub fn f64_bits(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read an `f32` bit pattern (bit-exact).
    pub fn f32_bits(&mut self, context: &'static str) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32(context)?))
    }

    /// Read an element count that prefixes a sequence whose elements
    /// each occupy at least `min_elem_bytes` in the stream. A count
    /// implying more bytes than remain is corruption — this is the
    /// allocation guard that keeps a flipped length byte from turning
    /// into a huge `Vec::with_capacity`.
    pub fn seq_len(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, SnapshotError> {
        let n = self.usize(context)?;
        if n > self.remaining() / min_elem_bytes.max(1) {
            return Err(SnapshotError::Corrupt { context });
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string (the prefix is `u32`).
    pub fn str(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let n = self.u32(context)? as usize;
        if n > self.remaining() {
            return Err(SnapshotError::Truncated { context });
        }
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt { context })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.usize(123_456);
        w.f64_bits(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        w.f32_bits(-0.0);
        w.str("hello snapshot");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert!(r.bool("t").unwrap());
        assert_eq!(r.u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("t").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("t").unwrap(), -42);
        assert_eq!(r.usize("t").unwrap(), 123_456);
        assert_eq!(r.f64_bits("t").unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.f32_bits("t").unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.str("t").unwrap(), "hello snapshot");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_typed_not_panicking() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        assert_eq!(
            r.u64("field"),
            Err(SnapshotError::Truncated { context: "field" })
        );
    }

    #[test]
    fn seq_len_guards_allocation() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2); // absurd element count, no elements follow
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.seq_len(8, "elems"),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool("b"), Err(SnapshotError::Corrupt { .. })));
    }
}
