//! Bit-exact tensor wire format.
//!
//! ## Layout (wire version 1)
//!
//! ```text
//! magic:[u8;4]="ITWF" version:u16 dtype:u8
//! ndim:u32 dims:u64* strides:u64* payload:u32*
//! ```
//!
//! The payload is the IEEE-754 bit pattern of every element in
//! canonical row-major order — NaN payloads and signed zeros survive
//! verbatim. Strides on the wire are always the canonical contiguous
//! strides of the shape (a non-canonical view is *gathered* into
//! canonical order at encode time, not transported as-is), so decoding
//! never has to reason about aliasing or overlap. Decoding uses
//! [`insum_tensor::Tensor::from_vec_with`], which does not re-round
//! `F16` values: `decode(encode(t))` is bit-identical for any `t`.

use crate::error::SnapshotError;
use crate::wire::{Reader, Writer};
use insum_tensor::{DType, Tensor};

/// First four bytes of an encoded tensor.
pub const TENSOR_MAGIC: [u8; 4] = *b"ITWF";

/// The tensor wire version this build reads and writes. Versioned
/// separately from the snapshot container so the wire format can serve
/// a network front-end without dragging the cache-snapshot framing
/// along.
pub const TENSOR_WIRE_VERSION: u16 = 1;

/// Stable one-byte wire tag for a dtype (also usable as a total order
/// over dtypes when callers need deterministic record ordering).
pub fn dtype_tag(dtype: DType) -> u8 {
    match dtype {
        DType::F16 => 0,
        DType::F32 => 1,
        DType::I32 => 2,
    }
}

/// Inverse of [`dtype_tag`].
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on an unknown tag.
pub fn tag_dtype(tag: u8) -> Result<DType, SnapshotError> {
    match tag {
        0 => Ok(DType::F16),
        1 => Ok(DType::F32),
        2 => Ok(DType::I32),
        _ => Err(SnapshotError::Corrupt {
            context: "tensor dtype tag",
        }),
    }
}

// `None` when a suffix product overflows `usize` — impossible for a
// real `Tensor` (its storage exists in memory) but reachable from
// forged wire bytes.
fn canonical_strides(shape: &[usize]) -> Option<Vec<usize>> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (i, &dim) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc = acc.checked_mul(dim)?;
    }
    Some(strides)
}

/// Append the wire encoding of `t` to `w`. Non-canonical views are
/// gathered into canonical row-major order; element bits are copied
/// verbatim.
pub fn encode_tensor_into(t: &Tensor, w: &mut Writer) {
    w.raw(&TENSOR_MAGIC);
    w.u32(TENSOR_WIRE_VERSION as u32);
    w.u8(dtype_tag(t.dtype()));
    let shape = t.shape();
    w.usize(shape.len());
    for &d in shape {
        w.usize(d);
    }
    let canon = canonical_strides(shape).expect("tensor storage exists, volume fits usize");
    for &s in &canon {
        w.usize(s);
    }
    let n: usize = shape.iter().product();
    if t.strides() == canon && t.data().len() == n {
        // Fast path: storage already in canonical order.
        for &v in t.data() {
            w.f32_bits(v);
        }
    } else {
        // Stride-general gather, walking multi-indices in row-major
        // order directly over the backing buffer so no float value is
        // ever re-materialized through arithmetic.
        let data = t.data();
        let strides = t.strides();
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..n {
            let off: usize = idx.iter().zip(strides).map(|(i, s)| i * s).sum();
            w.f32_bits(data[off]);
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

/// Encode `t` as a standalone byte vector.
pub fn encode_tensor(t: &Tensor) -> Vec<u8> {
    let mut w = Writer::new();
    encode_tensor_into(t, &mut w);
    w.into_bytes()
}

/// Decode one tensor from `r`, leaving the reader positioned after it.
///
/// # Errors
///
/// [`SnapshotError::BadMagic`] / [`SnapshotError::UnsupportedVersion`]
/// on header skew, [`SnapshotError::Truncated`] /
/// [`SnapshotError::Corrupt`] / [`SnapshotError::Invalid`] on damaged
/// framing — never a panic.
pub fn decode_tensor_from(r: &mut Reader<'_>) -> Result<Tensor, SnapshotError> {
    let magic = r.take(TENSOR_MAGIC.len(), "tensor magic")?;
    if magic != TENSOR_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32("tensor wire version")?;
    if version != TENSOR_WIRE_VERSION as u32 {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: TENSOR_WIRE_VERSION as u32,
        });
    }
    let dtype = tag_dtype(r.u8("tensor dtype")?)?;
    let ndim = r.seq_len(8, "tensor rank")?;
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(r.usize("tensor dim")?);
    }
    let mut strides = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        strides.push(r.usize("tensor stride")?);
    }
    let canon = canonical_strides(&shape).ok_or(SnapshotError::Corrupt {
        context: "tensor volume overflow",
    })?;
    if strides != canon {
        return Err(SnapshotError::Invalid {
            context: "tensor strides are not canonical for the shape".to_string(),
        });
    }
    let mut n = 1usize;
    for &d in &shape {
        n = n.checked_mul(d).ok_or(SnapshotError::Corrupt {
            context: "tensor volume overflow",
        })?;
    }
    if n > r.remaining() / 4 {
        return Err(SnapshotError::Truncated {
            context: "tensor payload",
        });
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.f32_bits("tensor element")?);
    }
    Tensor::from_vec_with(shape, data, dtype).map_err(|e| SnapshotError::Invalid {
        context: format!("tensor reconstruction: {e}"),
    })
}

/// Decode a standalone tensor encoding, requiring every byte to be
/// consumed.
pub fn decode_tensor(bytes: &[u8]) -> Result<Tensor, SnapshotError> {
    let mut r = Reader::new(bytes);
    let t = decode_tensor_from(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapshotError::Corrupt {
            context: "trailing bytes after tensor payload",
        });
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_bits() {
        let nan = f32::from_bits(0x7fc0_1234); // NaN with payload
        let t =
            Tensor::from_vec(vec![2, 3], vec![1.0, -0.0, nan, 0.0, f32::MIN, f32::MAX]).unwrap();
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.dtype(), t.dtype());
        let a: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert!(!back.ptr_eq(&t));
    }

    #[test]
    fn scalar_and_i32_round_trip() {
        let t = Tensor::scalar(-3.5);
        assert_eq!(decode_tensor(&encode_tensor(&t)).unwrap(), t);
        let t = Tensor::arange(7);
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.dtype(), DType::I32);
        assert_eq!(back, t);
    }

    #[test]
    fn version_skew_is_typed() {
        let t = Tensor::ones(vec![2]);
        let mut bytes = encode_tensor(&t);
        bytes[4] = 9; // version field
        assert_eq!(
            decode_tensor(&bytes),
            Err(SnapshotError::UnsupportedVersion {
                found: 9,
                supported: TENSOR_WIRE_VERSION as u32
            })
        );
        let mut bytes = encode_tensor(&t);
        bytes[0] = b'X';
        assert_eq!(decode_tensor(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn damage_is_typed_never_panics() {
        let t = Tensor::ones(vec![4, 4]);
        let bytes = encode_tensor(&t);
        for cut in 0..bytes.len() {
            let _ = decode_tensor(&bytes[..cut]); // must not panic
        }
        let mut huge = encode_tensor(&Tensor::ones(vec![2, 2]));
        // Corrupt the first dim to an absurd extent: allocation guard
        // must reject before reserving memory.
        let dim_off = TENSOR_MAGIC.len() + 4 + 1 + 8;
        huge[dim_off..dim_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_tensor(&huge).is_err());
    }
}
