//! Binary codec for [`insum_kernel::Kernel`] IR.
//!
//! The encoding is a direct tagged-tree serialization of the IR:
//! every instruction gets a one-byte tag followed by its fields, loop
//! bodies recurse (depth-capped), and `Option<Reg>` masks are a
//! presence byte plus the register. Decoding is defensive — register
//! and parameter indices are range-checked against the declared counts,
//! sequence lengths go through the allocation guard, and nesting deeper
//! than [`MAX_LOOP_DEPTH`] is rejected — so a CRC-valid but
//! hand-forged record still cannot panic the loader. Callers should
//! still run [`insum_kernel::Kernel::validate`] on the result; the
//! decoder enforces decode-safety, not full kernel semantics.

use crate::error::SnapshotError;
use crate::wire::{Reader, Writer};
use insum_kernel::{BinOp, Instr, Kernel, ParamDecl, Reg};

/// Maximum loop nesting the decoder will follow.
pub const MAX_LOOP_DEPTH: usize = 64;

/// Maximum registers a decoded kernel may declare (far above anything
/// the lowering pipeline emits; bounds the per-instance register file
/// allocation a forged record could request).
pub const MAX_NUM_REGS: usize = 1 << 20;

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::FloorDiv => 4,
        BinOp::Mod => 5,
        BinOp::Min => 6,
        BinOp::Max => 7,
        BinOp::Lt => 8,
        BinOp::Le => 9,
        BinOp::Eq => 10,
        BinOp::Ge => 11,
        BinOp::And => 12,
    }
}

fn tag_binop(tag: u8) -> Result<BinOp, SnapshotError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::FloorDiv,
        5 => BinOp::Mod,
        6 => BinOp::Min,
        7 => BinOp::Max,
        8 => BinOp::Lt,
        9 => BinOp::Le,
        10 => BinOp::Eq,
        11 => BinOp::Ge,
        12 => BinOp::And,
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "binary-op tag",
            })
        }
    })
}

fn write_mask(w: &mut Writer, mask: &Option<Reg>) {
    match mask {
        Some(r) => {
            w.u8(1);
            w.usize(*r);
        }
        None => w.u8(0),
    }
}

fn write_shape(w: &mut Writer, shape: &[usize]) {
    w.usize(shape.len());
    for &d in shape {
        w.usize(d);
    }
}

fn write_body(w: &mut Writer, body: &[Instr]) {
    w.usize(body.len());
    for instr in body {
        match instr {
            Instr::ProgramId { dst, axis } => {
                w.u8(1);
                w.usize(*dst);
                w.usize(*axis);
            }
            Instr::Const { dst, value } => {
                w.u8(2);
                w.usize(*dst);
                w.f64_bits(*value);
            }
            Instr::Arange { dst, len } => {
                w.u8(3);
                w.usize(*dst);
                w.usize(*len);
            }
            Instr::Full { dst, shape, value } => {
                w.u8(4);
                w.usize(*dst);
                write_shape(w, shape);
                w.f64_bits(*value);
            }
            Instr::Binary { dst, op, a, b } => {
                w.u8(5);
                w.usize(*dst);
                w.u8(binop_tag(*op));
                w.usize(*a);
                w.usize(*b);
            }
            Instr::ExpandDims { dst, src, axis } => {
                w.u8(6);
                w.usize(*dst);
                w.usize(*src);
                w.usize(*axis);
            }
            Instr::Broadcast { dst, src, shape } => {
                w.u8(7);
                w.usize(*dst);
                w.usize(*src);
                write_shape(w, shape);
            }
            Instr::View { dst, src, shape } => {
                w.u8(8);
                w.usize(*dst);
                w.usize(*src);
                write_shape(w, shape);
            }
            Instr::Trans { dst, src } => {
                w.u8(9);
                w.usize(*dst);
                w.usize(*src);
            }
            Instr::Load {
                dst,
                param,
                offset,
                mask,
                other,
            } => {
                w.u8(10);
                w.usize(*dst);
                w.usize(*param);
                w.usize(*offset);
                write_mask(w, mask);
                w.f64_bits(*other);
            }
            Instr::Store {
                param,
                offset,
                value,
                mask,
            } => {
                w.u8(11);
                w.usize(*param);
                w.usize(*offset);
                w.usize(*value);
                write_mask(w, mask);
            }
            Instr::AtomicAdd {
                param,
                offset,
                value,
                mask,
            } => {
                w.u8(12);
                w.usize(*param);
                w.usize(*offset);
                w.usize(*value);
                write_mask(w, mask);
            }
            Instr::Dot { dst, a, b } => {
                w.u8(13);
                w.usize(*dst);
                w.usize(*a);
                w.usize(*b);
            }
            Instr::Sum { dst, src, axis } => {
                w.u8(14);
                w.usize(*dst);
                w.usize(*src);
                w.usize(*axis);
            }
            Instr::Loop {
                var,
                start,
                end,
                step,
                body,
            } => {
                w.u8(15);
                w.usize(*var);
                w.i64(*start);
                w.i64(*end);
                w.i64(*step);
                write_body(w, body);
            }
            Instr::LoopDyn {
                var,
                start,
                end,
                body,
            } => {
                w.u8(16);
                w.usize(*var);
                w.usize(*start);
                w.usize(*end);
                write_body(w, body);
            }
        }
    }
}

/// Append the encoding of `kernel` to `w`.
pub fn encode_kernel_into(kernel: &Kernel, w: &mut Writer) {
    w.str(&kernel.name);
    w.usize(kernel.params.len());
    for p in &kernel.params {
        w.str(&p.name);
        w.bool(p.written);
    }
    w.usize(kernel.num_regs);
    write_body(w, &kernel.body);
}

/// Encode `kernel` as a standalone byte vector.
pub fn encode_kernel(kernel: &Kernel) -> Vec<u8> {
    let mut w = Writer::new();
    encode_kernel_into(kernel, &mut w);
    w.into_bytes()
}

struct Bounds {
    num_regs: usize,
    num_params: usize,
}

fn read_reg(r: &mut Reader<'_>, bounds: &Bounds) -> Result<Reg, SnapshotError> {
    let reg = r.usize("register")?;
    if reg >= bounds.num_regs {
        return Err(SnapshotError::Invalid {
            context: format!("register {reg} out of range ({} declared)", bounds.num_regs),
        });
    }
    Ok(reg)
}

fn read_param(r: &mut Reader<'_>, bounds: &Bounds) -> Result<usize, SnapshotError> {
    let param = r.usize("parameter index")?;
    if param >= bounds.num_params {
        return Err(SnapshotError::Invalid {
            context: format!(
                "parameter {param} out of range ({} declared)",
                bounds.num_params
            ),
        });
    }
    Ok(param)
}

fn read_mask(r: &mut Reader<'_>, bounds: &Bounds) -> Result<Option<Reg>, SnapshotError> {
    if r.bool("mask presence")? {
        Ok(Some(read_reg(r, bounds)?))
    } else {
        Ok(None)
    }
}

fn read_shape(r: &mut Reader<'_>) -> Result<Vec<usize>, SnapshotError> {
    let n = r.seq_len(8, "shape length")?;
    let mut shape = Vec::with_capacity(n);
    for _ in 0..n {
        shape.push(r.usize("shape dim")?);
    }
    Ok(shape)
}

fn read_body(
    r: &mut Reader<'_>,
    bounds: &Bounds,
    depth: usize,
) -> Result<Vec<Instr>, SnapshotError> {
    if depth > MAX_LOOP_DEPTH {
        return Err(SnapshotError::Invalid {
            context: format!("loop nesting exceeds {MAX_LOOP_DEPTH}"),
        });
    }
    // Every instruction costs at least its tag byte plus one field.
    let n = r.seq_len(2, "body length")?;
    let mut body = Vec::with_capacity(n);
    for _ in 0..n {
        let instr = match r.u8("instruction tag")? {
            1 => Instr::ProgramId {
                dst: read_reg(r, bounds)?,
                axis: r.usize("program_id axis")?,
            },
            2 => Instr::Const {
                dst: read_reg(r, bounds)?,
                value: r.f64_bits("const value")?,
            },
            3 => Instr::Arange {
                dst: read_reg(r, bounds)?,
                len: r.usize("arange len")?,
            },
            4 => Instr::Full {
                dst: read_reg(r, bounds)?,
                shape: read_shape(r)?,
                value: r.f64_bits("full value")?,
            },
            5 => Instr::Binary {
                dst: read_reg(r, bounds)?,
                op: tag_binop(r.u8("binary op")?)?,
                a: read_reg(r, bounds)?,
                b: read_reg(r, bounds)?,
            },
            6 => Instr::ExpandDims {
                dst: read_reg(r, bounds)?,
                src: read_reg(r, bounds)?,
                axis: r.usize("expand axis")?,
            },
            7 => Instr::Broadcast {
                dst: read_reg(r, bounds)?,
                src: read_reg(r, bounds)?,
                shape: read_shape(r)?,
            },
            8 => Instr::View {
                dst: read_reg(r, bounds)?,
                src: read_reg(r, bounds)?,
                shape: read_shape(r)?,
            },
            9 => Instr::Trans {
                dst: read_reg(r, bounds)?,
                src: read_reg(r, bounds)?,
            },
            10 => Instr::Load {
                dst: read_reg(r, bounds)?,
                param: read_param(r, bounds)?,
                offset: read_reg(r, bounds)?,
                mask: read_mask(r, bounds)?,
                other: r.f64_bits("load other")?,
            },
            11 => Instr::Store {
                param: read_param(r, bounds)?,
                offset: read_reg(r, bounds)?,
                value: read_reg(r, bounds)?,
                mask: read_mask(r, bounds)?,
            },
            12 => Instr::AtomicAdd {
                param: read_param(r, bounds)?,
                offset: read_reg(r, bounds)?,
                value: read_reg(r, bounds)?,
                mask: read_mask(r, bounds)?,
            },
            13 => Instr::Dot {
                dst: read_reg(r, bounds)?,
                a: read_reg(r, bounds)?,
                b: read_reg(r, bounds)?,
            },
            14 => Instr::Sum {
                dst: read_reg(r, bounds)?,
                src: read_reg(r, bounds)?,
                axis: r.usize("sum axis")?,
            },
            15 => Instr::Loop {
                var: read_reg(r, bounds)?,
                start: r.i64("loop start")?,
                end: r.i64("loop end")?,
                step: r.i64("loop step")?,
                body: read_body(r, bounds, depth + 1)?,
            },
            16 => Instr::LoopDyn {
                var: read_reg(r, bounds)?,
                start: read_reg(r, bounds)?,
                end: read_reg(r, bounds)?,
                body: read_body(r, bounds, depth + 1)?,
            },
            _ => {
                return Err(SnapshotError::Corrupt {
                    context: "instruction tag",
                })
            }
        };
        body.push(instr);
    }
    Ok(body)
}

/// Decode one kernel from `r`, leaving the reader positioned after it.
///
/// # Errors
///
/// Typed [`SnapshotError`] on any damage — truncation, unknown tags,
/// out-of-range registers/parameters, excessive nesting, or an absurd
/// register count. Never panics.
pub fn decode_kernel_from(r: &mut Reader<'_>) -> Result<Kernel, SnapshotError> {
    let name = r.str("kernel name")?;
    let num_params = r.seq_len(5, "param count")?;
    let mut params = Vec::with_capacity(num_params);
    for _ in 0..num_params {
        let name = r.str("param name")?;
        let written = r.bool("param written")?;
        params.push(ParamDecl { name, written });
    }
    let num_regs = r.usize("num_regs")?;
    if num_regs > MAX_NUM_REGS {
        return Err(SnapshotError::Invalid {
            context: format!("num_regs {num_regs} exceeds {MAX_NUM_REGS}"),
        });
    }
    let bounds = Bounds {
        num_regs,
        num_params,
    };
    let body = read_body(r, &bounds, 0)?;
    Ok(Kernel {
        name,
        params,
        body,
        num_regs,
    })
}

/// Decode a standalone kernel encoding, requiring every byte to be
/// consumed.
pub fn decode_kernel(bytes: &[u8]) -> Result<Kernel, SnapshotError> {
    let mut r = Reader::new(bytes);
    let k = decode_kernel_from(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapshotError::Corrupt {
            context: "trailing bytes after kernel",
        });
    }
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_kernel::fingerprint;

    fn sample_kernel() -> Kernel {
        Kernel {
            name: "snap_sample".into(),
            params: vec![ParamDecl::input("A"), ParamDecl::output("C")],
            body: vec![
                Instr::ProgramId { dst: 0, axis: 0 },
                Instr::Arange { dst: 1, len: 16 },
                Instr::Full {
                    dst: 2,
                    shape: vec![4, 4],
                    value: -0.5,
                },
                Instr::Binary {
                    dst: 3,
                    op: BinOp::FloorDiv,
                    a: 0,
                    b: 1,
                },
                Instr::Load {
                    dst: 4,
                    param: 0,
                    offset: 3,
                    mask: Some(1),
                    other: f64::from_bits(0x7ff8_0000_dead_beef), // NaN payload
                },
                Instr::Loop {
                    var: 5,
                    start: 0,
                    end: 8,
                    step: 2,
                    body: vec![Instr::LoopDyn {
                        var: 6,
                        start: 0,
                        end: 5,
                        body: vec![Instr::Sum {
                            dst: 7,
                            src: 4,
                            axis: 1,
                        }],
                    }],
                },
                Instr::AtomicAdd {
                    param: 1,
                    offset: 3,
                    value: 7,
                    mask: None,
                },
            ],
            num_regs: 8,
        }
    }

    #[test]
    fn round_trip_is_structurally_identical() {
        let k = sample_kernel();
        let bytes = encode_kernel(&k);
        let back = decode_kernel(&bytes).unwrap();
        // Kernel's derived PartialEq follows float semantics (NaN !=
        // NaN), so bit-exactness is asserted through re-encoding and
        // the stable fingerprint instead.
        assert_eq!(encode_kernel(&back), bytes);
        assert_eq!(fingerprint(&back), fingerprint(&k));
        back.validate().unwrap();
    }

    #[test]
    fn truncations_are_typed_not_panicking() {
        let bytes = encode_kernel(&sample_kernel());
        for cut in 0..bytes.len() {
            assert!(decode_kernel(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut k = sample_kernel();
        k.num_regs = 4; // registers 4..8 now out of range
        let bytes = encode_kernel(&k);
        assert!(matches!(
            decode_kernel(&bytes),
            Err(SnapshotError::Invalid { .. })
        ));
    }

    #[test]
    fn absurd_num_regs_rejected() {
        let mut k = sample_kernel();
        k.body.clear();
        k.num_regs = MAX_NUM_REGS + 1;
        assert!(matches!(
            decode_kernel(&encode_kernel(&k)),
            Err(SnapshotError::Invalid { .. })
        ));
    }

    #[test]
    fn excessive_nesting_rejected() {
        let mut body = vec![Instr::Const { dst: 0, value: 1.0 }];
        for _ in 0..(MAX_LOOP_DEPTH + 2) {
            body = vec![Instr::Loop {
                var: 0,
                start: 0,
                end: 1,
                step: 1,
                body,
            }];
        }
        let k = Kernel {
            name: "deep".into(),
            params: vec![],
            body,
            num_regs: 1,
        };
        assert!(matches!(
            decode_kernel(&encode_kernel(&k)),
            Err(SnapshotError::Invalid { .. })
        ));
    }
}
