//! Checksummed binary snapshots of compiled artifacts, and a bit-exact
//! tensor wire format.
//!
//! A process restart used to throw away every compiled `Program` and
//! autotune winner, turning a fleet restart into a cold-start stampede
//! through the whole lowering pipeline. This crate is the durability
//! layer underneath `ProgramCache::{save,load}_snapshot` and
//! `ServeConfig::with_snapshot`: a compact self-describing container
//! ([`mod@file`]) framing CRC-checked records, plus codecs for kernel IR
//! ([`kernel_wire`]) and tensors ([`tensor_wire`]).
//!
//! ## Robustness contract
//!
//! A snapshot on disk may be stale, truncated mid-write, bit-flipped,
//! or written by an incompatible build. The contract everywhere in this
//! crate is **degrade to recompile, never wrong bits, never a panic**:
//!
//! - Header damage yields a typed [`SnapshotError`]
//!   ([`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`]).
//! - Body damage never errors at all: [`Snapshot::parse`] skips every
//!   record whose CRC-32 fails (CRC-32 detects all single-byte flips)
//!   and counts it in [`Snapshot::rejected`].
//! - Record payload decoders ([`decode_kernel`], [`decode_tensor`])
//!   are defensive against forged-but-CRC-valid bytes: range checks,
//!   allocation guards, and depth caps, all returning typed errors.
//! - Writes are crash-safe: [`write_atomic`] stages a temp file, fsyncs,
//!   then renames, and [`clean_stragglers`] sweeps the temp file a
//!   crash between those steps leaves behind.
//!
//! Cache loaders built on top add one more verification layer: each
//! program record embeds the kernel's stable
//! [`insum_kernel::fingerprint`], re-fingerprinted on load so a stale
//! record (same bytes, different compiler) is dropped instead of served.

mod error;
pub mod file;
pub mod kernel_wire;
pub mod tensor_wire;
pub mod wire;

pub use error::SnapshotError;
pub use file::{
    clean_stragglers, read_snapshot, temp_path, write_atomic, Snapshot, SnapshotBuilder,
    SnapshotSection, FORMAT_VERSION, MAGIC, SECTION_AUTOTUNE, SECTION_PROGRAMS,
};
pub use kernel_wire::{decode_kernel, decode_kernel_from, encode_kernel, encode_kernel_into};
pub use tensor_wire::{
    decode_tensor, decode_tensor_from, dtype_tag, encode_tensor, encode_tensor_into, tag_dtype,
    TENSOR_WIRE_VERSION,
};
pub use wire::{crc32, Reader, Writer};
