//! The `insum(...)` entry point and compiled-operation handle.

use crate::fastpath::{try_fast_plan, FastOp};
use crate::options::InsumOptions;
use crate::Result;
use insum_gpu::{LaunchOptions, Mode, Profile};
use insum_graph::TensorMeta;
use insum_inductor::{autotune, compile_fused, compile_unfused, FusedOp, UnfusedOp};
use insum_lang::Statement;
use insum_pattern::Pattern;
use insum_tensor::Tensor;
use std::collections::BTreeMap;

enum Pipeline {
    /// Recognized canonical pattern: Program-less artifact executing
    /// through [`insum_gpu::run_micro`] (microkernels / stride views).
    FastPath(Box<FastOp>),
    Fused(Box<FusedOp>),
    Unfused(Box<UnfusedOp>),
}

/// A compiled indirect Einsum, ready to run on the simulated device.
///
/// [`Compiled::run`] and [`Compiled::time`] launch through the
/// process-wide [`insum_inductor::ProgramCache`]: the simulator's
/// ahead-of-time lowering happens once per distinct (kernel, grid,
/// argument metadata) — at compile/autotune time for the chosen
/// configuration — so repeated executions never re-lower.
pub struct Compiled {
    statement: Statement,
    pipeline: Pipeline,
    options: InsumOptions,
    /// Host wall-clock spent compiling (including autotuning), seconds.
    pub compile_seconds: f64,
    /// Autotuning sweep wall-clock, seconds (0 when disabled).
    pub autotune_seconds: f64,
    /// Configurations evaluated by the autotuner.
    pub autotune_configs: usize,
    /// Program-cache hits observed during the autotuning sweep (repeat
    /// compilations of an already-tuned workload hit on every trial).
    pub autotune_cache_hits: u64,
}

/// The identity of a compiled operation's simulator launch: the kernel's
/// structural fingerprint plus the launch grid (and the parameter order
/// the launch binds). Two [`Compiled`] handles with equal signatures and
/// equal argument metadata execute the same [`insum_gpu::Program`], so a
/// serving scheduler can batch their launches together.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LaunchSignature {
    /// Structural fingerprint of the fused kernel
    /// ([`insum_kernel::fingerprint`]).
    pub kernel_fingerprint: u64,
    /// The launch grid.
    pub grid: Vec<usize>,
    /// Tensor names in launch-argument order.
    pub params: Vec<String>,
}

impl Compiled {
    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.statement
    }

    /// The options this operation was compiled with.
    pub fn options(&self) -> &InsumOptions {
        &self.options
    }

    /// The launch identity of the fused kernel, or `None` for the
    /// unfused pipeline (one launch per graph node — nothing a batching
    /// scheduler can group).
    pub fn launch_signature(&self) -> Option<LaunchSignature> {
        match &self.pipeline {
            Pipeline::Fused(op) => Some(LaunchSignature {
                kernel_fingerprint: insum_kernel::fingerprint(&op.kernel),
                grid: op.grid.clone(),
                params: op.plan.param_order.clone(),
            }),
            Pipeline::FastPath(_) | Pipeline::Unfused(_) => None,
        }
    }

    /// The recognized pattern this operation dispatches to, or `None`
    /// when it runs the general (fused or unfused) lowering.
    pub fn fast_path_pattern(&self) -> Option<&Pattern> {
        match &self.pipeline {
            Pipeline::FastPath(op) => Some(&op.pattern),
            _ => None,
        }
    }

    /// Number of kernels launched per run (1 when fused; fast-path
    /// artifacts report 1 even when a stride view launches nothing —
    /// the profile still carries one report per run).
    pub fn kernel_count(&self) -> usize {
        match &self.pipeline {
            Pipeline::FastPath(_) | Pipeline::Fused(_) => 1,
            Pipeline::Unfused(op) => op.kernel_count,
        }
    }

    /// The generated Triton-like source listing (all kernels).
    pub fn triton_source(&self) -> String {
        match &self.pipeline {
            Pipeline::FastPath(op) => format!(
                "# fast path: {} microkernel / stride view — no kernel generated",
                op.pattern.name()
            ),
            Pipeline::Fused(op) => insum_kernel::print_kernel(&op.kernel),
            Pipeline::Unfused(_) => {
                "# unfused pipeline: one stock-Inductor kernel per FX node".to_string()
            }
        }
    }

    /// True if the compiled kernel reduces through `tl.dot`.
    pub fn uses_tensor_cores(&self) -> bool {
        match &self.pipeline {
            Pipeline::FastPath(_) => false,
            Pipeline::Fused(op) => op.uses_dot,
            Pipeline::Unfused(_) => self.options.tensor_cores,
        }
    }

    /// Execute functionally: returns the output tensor and the profile.
    ///
    /// Argument capture is zero-copy (`Tensor` clones share storage);
    /// `tensors` is never mutated — the returned output tensor
    /// materializes its own buffer on the kernel's first write.
    ///
    /// # Errors
    ///
    /// Propagates binding and simulator errors.
    pub fn run(&self, tensors: &BTreeMap<String, Tensor>) -> Result<(Tensor, Profile)> {
        self.dispatch(tensors, Mode::Execute)
    }

    /// Measure without computing values (analytic mode): counters and
    /// simulated time are identical to [`Compiled::run`], but value math
    /// is skipped and no tensor is written.
    ///
    /// # Errors
    ///
    /// Propagates binding and simulator errors.
    pub fn time(&self, tensors: &BTreeMap<String, Tensor>) -> Result<Profile> {
        Ok(self.dispatch(tensors, Mode::Analytic)?.1)
    }

    /// Execute one launch per request of a batch, sharing a single pool
    /// of simulator threads across the whole batch (the serving engine's
    /// entry point; see [`insum_inductor::run_fused_batch_with`]).
    ///
    /// Every request must bind tensors with the same shapes and dtypes
    /// this operation was compiled for. Each request's result is
    /// bit-identical — output tensor and [`Profile`] — to a serial
    /// per-request [`Compiled::run`], regardless of batch composition or
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates binding and simulator errors (first failing request
    /// wins).
    pub fn run_batch(&self, batch: &[&BTreeMap<String, Tensor>]) -> Result<Vec<(Tensor, Profile)>> {
        self.run_batch_mode(batch, Mode::Execute, &self.options.launch())
    }

    /// [`Compiled::run_batch`] with an explicit interpreter mode and
    /// simulator scheduling options (the thread budget in `launch` is
    /// shared across the batch). [`Mode::Analytic`] skips value math and
    /// returns each request's unmodified output binding, exactly like
    /// [`Compiled::time`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Compiled::run_batch`].
    pub fn run_batch_mode(
        &self,
        batch: &[&BTreeMap<String, Tensor>],
        mode: Mode,
        launch: &LaunchOptions,
    ) -> Result<Vec<(Tensor, Profile)>> {
        match &self.pipeline {
            // Fast-path artifacts have no shared simulator launch to
            // batch; requests run back-to-back (each is already cheap).
            Pipeline::FastPath(op) => {
                // Fault-injection parity with the fused batched runner:
                // a marked tensor bound by any request must fault this
                // launch too (no-op in release builds).
                let owned: Vec<Vec<Tensor>> =
                    batch.iter().map(|tensors| op.bound_args(tensors)).collect();
                insum_inductor::batch_fault_check(&owned);
                batch
                    .iter()
                    .map(|tensors| {
                        let (out, report) = op.run(tensors, mode, &self.options)?;
                        let mut profile = Profile::new();
                        profile.push(report);
                        Ok((out, profile))
                    })
                    .collect()
            }
            Pipeline::Fused(op) => {
                let results = insum_inductor::run_fused_batch_with(
                    op,
                    batch,
                    &self.options.device,
                    mode,
                    launch,
                )?;
                Ok(results
                    .into_iter()
                    .map(|(out, report)| {
                        let mut profile = Profile::new();
                        profile.push(report);
                        (out, profile)
                    })
                    .collect())
            }
            // The unfused pipeline launches one kernel per graph node
            // with materialized intermediates; requests run back-to-back
            // (trivially identical to serial execution).
            Pipeline::Unfused(op) => batch
                .iter()
                .map(|tensors| {
                    Ok(insum_inductor::run_unfused_with(
                        op,
                        tensors,
                        &self.options.device,
                        mode,
                        launch,
                    )?)
                })
                .collect(),
        }
    }

    fn dispatch(
        &self,
        tensors: &BTreeMap<String, Tensor>,
        mode: Mode,
    ) -> Result<(Tensor, Profile)> {
        match &self.pipeline {
            Pipeline::FastPath(op) => {
                let (out, report) = op.run(tensors, mode, &self.options)?;
                let mut profile = Profile::new();
                profile.push(report);
                Ok((out, profile))
            }
            Pipeline::Fused(op) => {
                let (out, report) = insum_inductor::run_fused_with(
                    op,
                    tensors,
                    &self.options.device,
                    mode,
                    &self.options.launch(),
                )?;
                let mut profile = Profile::new();
                profile.push(report);
                Ok((out, profile))
            }
            Pipeline::Unfused(op) => {
                let (out, profile) = insum_inductor::run_unfused_with(
                    op,
                    tensors,
                    &self.options.device,
                    mode,
                    &self.options.launch(),
                )?;
                Ok((out, profile))
            }
        }
    }
}

fn metas_of(tensors: &BTreeMap<String, Tensor>) -> BTreeMap<String, TensorMeta> {
    tensors
        .iter()
        .map(|(n, t)| (n.clone(), TensorMeta::new(t.shape().to_vec(), t.dtype())))
        .collect()
}

/// Compile an indirect Einsum with the default (full-paper) options.
///
/// # Errors
///
/// Propagates parsing, analysis, and codegen errors.
pub fn insum(expression: &str, tensors: &BTreeMap<String, Tensor>) -> Result<Compiled> {
    insum_with(expression, tensors, &InsumOptions::default())
}

/// Compile an indirect Einsum with explicit options.
///
/// `tensors` supplies the shapes/dtypes (and, when autotuning, the actual
/// data the tuner measures against).
///
/// # Errors
///
/// Propagates parsing, analysis, and codegen errors.
pub fn insum_with(
    expression: &str,
    tensors: &BTreeMap<String, Tensor>,
    options: &InsumOptions,
) -> Result<Compiled> {
    options.validate()?;
    let start = std::time::Instant::now();
    let statement = insum_lang::parse(expression)?;
    let metas = metas_of(tensors);
    let mut autotune_seconds = 0.0;
    let mut autotune_configs = 0;
    let mut autotune_cache_hits = 0;
    let pipeline = if let Some(op) = try_fast_plan(&statement, &metas, options) {
        Pipeline::FastPath(Box::new(op))
    } else if options.fuse {
        let plan = insum_inductor::build_plan(&statement, &metas)?;
        let op = if options.autotune {
            let result = autotune(&plan, &options.codegen(), tensors, &options.device)?;
            autotune_seconds = result.tuning_wall_seconds;
            autotune_configs = result.configs_tried;
            autotune_cache_hits = result.cache_hits;
            result.op
        } else {
            compile_fused(&plan, &options.codegen())?
        };
        Pipeline::Fused(Box::new(op))
    } else {
        let lowered = insum_graph::lower(&statement, &metas)?;
        Pipeline::Unfused(Box::new(compile_unfused(&lowered, &options.codegen())?))
    };
    Ok(Compiled {
        statement,
        pipeline,
        options: options.clone(),
        compile_seconds: start.elapsed().as_secs_f64(),
        autotune_seconds,
        autotune_configs,
        autotune_cache_hits,
    })
}

/// Evaluate an indirect Einsum eagerly (the PyTorch-eager reference
/// semantics); used for verification, not performance.
///
/// # Errors
///
/// Propagates parsing, lowering, and execution errors.
pub fn eager(expression: &str, tensors: &BTreeMap<String, Tensor>) -> Result<Tensor> {
    let statement = insum_lang::parse(expression)?;
    let lowered = insum_graph::lower(&statement, &metas_of(tensors))?;
    Ok(insum_graph::execute(&lowered.graph, tensors)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InsumError;
    use insum_tensor::{rand_uniform, randint};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spmm_tensors() -> BTreeMap<String, Tensor> {
        let mut rng = SmallRng::seed_from_u64(1);
        let nnz = 29;
        [
            ("C".to_string(), Tensor::zeros(vec![16, 32])),
            ("AM".to_string(), randint(vec![nnz], 16, &mut rng)),
            ("AK".to_string(), randint(vec![nnz], 24, &mut rng)),
            (
                "AV".to_string(),
                rand_uniform(vec![nnz], -1.0, 1.0, &mut rng),
            ),
            (
                "B".to_string(),
                rand_uniform(vec![24, 32], -1.0, 1.0, &mut rng),
            ),
        ]
        .into_iter()
        .collect()
    }

    const SPMM: &str = "C[AM[p],n] += AV[p] * B[AK[p],n]";

    #[test]
    fn fused_run_matches_eager() {
        let tensors = spmm_tensors();
        let op = insum(SPMM, &tensors).unwrap();
        let (got, profile) = op.run(&tensors).unwrap();
        let want = eager(SPMM, &tensors).unwrap();
        assert!(got.allclose(&want, 1e-4, 1e-4));
        assert_eq!(profile.launches(), 1);
        assert_eq!(op.kernel_count(), 1);
    }

    #[test]
    fn unfused_run_matches_eager() {
        let tensors = spmm_tensors();
        let op = insum_with(SPMM, &tensors, &InsumOptions::unfused()).unwrap();
        let (got, profile) = op.run(&tensors).unwrap();
        let want = eager(SPMM, &tensors).unwrap();
        assert!(got.allclose(&want, 1e-4, 1e-4));
        assert!(profile.launches() >= 3, "gather + matmul + scatter");
        assert!(op.kernel_count() >= 3);
    }

    #[test]
    fn fused_beats_unfused() {
        let tensors = spmm_tensors();
        let fused = insum(SPMM, &tensors).unwrap();
        let unfused = insum_with(SPMM, &tensors, &InsumOptions::unfused()).unwrap();
        let t_f = fused.time(&tensors).unwrap().total_time();
        let t_u = unfused.time(&tensors).unwrap().total_time();
        assert!(t_f < t_u, "fused {t_f:.3e} vs unfused {t_u:.3e}");
    }

    #[test]
    fn time_is_side_effect_free() {
        let tensors = spmm_tensors();
        let op = insum(SPMM, &tensors).unwrap();
        let p1 = op.time(&tensors).unwrap();
        let (out, p2) = op.run(&tensors).unwrap();
        assert_eq!(
            p1.total_time(),
            p2.total_time(),
            "analytic and execute agree on cost"
        );
        assert!(out.sum().abs() > 0.0);
    }

    #[test]
    fn autotune_records_metadata() {
        let tensors = spmm_tensors();
        let op = insum_with(SPMM, &tensors, &InsumOptions::autotuned()).unwrap();
        assert!(op.autotune_configs > 1);
        assert!(op.autotune_seconds > 0.0);
        assert!(op.compile_seconds >= op.autotune_seconds);
        let (got, _) = op.run(&tensors).unwrap();
        let want = eager(SPMM, &tensors).unwrap();
        assert!(got.allclose(&want, 1e-4, 1e-4));
    }

    #[test]
    fn run_batch_matches_serial_runs_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(9);
        let base = spmm_tensors();
        let requests: Vec<BTreeMap<String, Tensor>> = (0..4)
            .map(|_| {
                let mut t = base.clone();
                t.insert(
                    "B".to_string(),
                    rand_uniform(vec![24, 32], -1.0, 1.0, &mut rng),
                );
                t
            })
            .collect();
        let op = insum(SPMM, &requests[0]).unwrap();
        let serial: Vec<(Tensor, Profile)> = requests.iter().map(|r| op.run(r).unwrap()).collect();
        let refs: Vec<&BTreeMap<String, Tensor>> = requests.iter().collect();
        let batched = op.run_batch(&refs).unwrap();
        assert_eq!(batched.len(), serial.len());
        for ((got_t, got_p), (want_t, want_p)) in batched.iter().zip(&serial) {
            assert_eq!(got_t.data(), want_t.data());
            assert_eq!(got_p, want_p);
        }
        // Unfused pipeline: batch loops per request, identical results.
        let op_u = insum_with(SPMM, &requests[0], &InsumOptions::unfused()).unwrap();
        assert!(op_u.launch_signature().is_none());
        let batched_u = op_u.run_batch(&refs).unwrap();
        for ((got_t, got_p), r) in batched_u.iter().zip(&requests) {
            let (want_t, want_p) = op_u.run(r).unwrap();
            assert_eq!(got_t.data(), want_t.data());
            assert_eq!(*got_p, want_p);
        }
    }

    #[test]
    fn launch_signature_identifies_the_fused_launch() {
        let tensors = spmm_tensors();
        let a = insum(SPMM, &tensors).unwrap();
        let b = insum(SPMM, &tensors).unwrap();
        let sig_a = a.launch_signature().unwrap();
        let sig_b = b.launch_signature().unwrap();
        assert_eq!(sig_a, sig_b, "same expression + shapes, same launch");
        assert!(!sig_a.grid.is_empty());
        assert!(sig_a.params.contains(&"C".to_string()));
        assert!(a.options().fuse);
    }

    #[test]
    fn zero_sim_threads_rejected_at_compile() {
        let tensors = spmm_tensors();
        let opts = InsumOptions {
            sim_threads: Some(0),
            ..Default::default()
        };
        assert!(matches!(
            insum_with(SPMM, &tensors, &opts),
            Err(InsumError::Config(_))
        ));
    }

    #[test]
    fn triton_source_is_printable() {
        let tensors = spmm_tensors();
        let op = insum(SPMM, &tensors).unwrap();
        let src = op.triton_source();
        assert!(src.contains("@triton.jit"));
        assert!(src.contains("tl.atomic_add"));
    }

    #[test]
    fn missing_tensor_reported_at_compile() {
        let mut tensors = spmm_tensors();
        tensors.remove("B");
        assert!(insum(SPMM, &tensors).is_err());
    }

    #[test]
    fn parse_error_surfaces() {
        let tensors = spmm_tensors();
        assert!(matches!(
            insum("C[i] ?= A[i]", &tensors),
            Err(InsumError::Lang(_))
        ));
    }
}
