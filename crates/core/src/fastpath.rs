//! The fast-path dispatch stage of [`crate::insum_with`].
//!
//! Compilation now has an explicit classification step in front of the
//! general lowering: statements with no indirection whose index
//! structure matches the [`insum_pattern`] recognition table compile to
//! a Program-less [`FastOp`] artifact that executes through
//! [`insum_gpu::run_micro`] (microkernels and zero-copy stride views)
//! instead of building a kernel IR and running the interpreter.
//!
//! The gate here is deliberately conservative — *everything* it declines
//! falls through to the general pipeline, which remains the bit-identity
//! oracle:
//!
//! * opt-out via [`InsumOptions::fast_path`], and the unfused ablation
//!   (`fuse: false`) always reproduces stock Inductor;
//! * any indirection (`B[AK[p],n]`), more than two factors, or an
//!   output tensor that also appears as a factor;
//! * a classification of [`Pattern::General`];
//! * integer factors or outputs;
//! * copy-shaped patterns (transpose/diagonal) with `+=` or with a
//!   narrowing dtype pair ([`insum_gpu::copy_view_eligible`]);
//! * dot-family (matmul/batched/dot) statements with Tensor Cores off
//!   (the scalar lowering has no zero skip), and dot-family or reduction
//!   statements with autotuning or explicit R/X block overrides (the
//!   microkernels pin the default lowering's tile boundaries);
//! * inconsistent index extents (left for the general path to report).

use crate::options::InsumOptions;
use crate::{InsumError, Result};
use insum_gpu::{KernelReport, Mode};
use insum_graph::TensorMeta;
use insum_inductor::InductorError;
use insum_lang::{AssignOp, IndexExpr, Statement};
use insum_pattern::{classify_terms, Pattern};
use insum_tensor::{DType, Tensor};
use std::collections::BTreeMap;

/// A compiled fast-path artifact: no kernel IR, no launch grid — just
/// the recognized pattern, the binding names, and the shapes/dtypes the
/// statement was compiled against.
pub(crate) struct FastOp {
    pub(crate) pattern: Pattern,
    factors: Vec<String>,
    out_name: String,
    accumulate: bool,
    metas: BTreeMap<String, TensorMeta>,
}

/// Attempt to plan `statement` on the fast path. `None` means "use the
/// general pipeline" — this function never errors.
pub(crate) fn try_fast_plan(
    statement: &Statement,
    metas: &BTreeMap<String, TensorMeta>,
    options: &InsumOptions,
) -> Option<FastOp> {
    if !options.fast_path || !options.fuse {
        return None;
    }
    if statement.output.has_indirection() || statement.factors.iter().any(|f| f.has_indirection()) {
        return None;
    }
    if statement.factors.is_empty() || statement.factors.len() > 2 {
        return None;
    }
    if statement
        .factors
        .iter()
        .any(|f| f.tensor == statement.output.tensor)
    {
        return None;
    }
    let term_of = |indices: &[IndexExpr]| -> Option<Vec<String>> {
        indices
            .iter()
            .map(|ix| match ix {
                IndexExpr::Var(v) => Some(v.clone()),
                IndexExpr::Indirect(_) => None,
            })
            .collect()
    };
    let terms: Vec<Vec<String>> = statement
        .factors
        .iter()
        .map(|f| term_of(&f.indices))
        .collect::<Option<_>>()?;
    let out_vars = term_of(&statement.output.indices)?;
    let pattern = classify_terms(&terms, &out_vars);
    if !pattern.is_fast() {
        return None;
    }

    // Extent consistency across every index occurrence; the general
    // path owns error reporting for genuinely inconsistent bindings.
    let mut extents: BTreeMap<&str, usize> = BTreeMap::new();
    let mut op_metas = BTreeMap::new();
    for (f, term) in statement.factors.iter().zip(&terms) {
        let meta = metas.get(&f.tensor)?;
        if meta.dtype == DType::I32 || meta.shape.len() != term.len() {
            return None;
        }
        for (var, &ext) in term.iter().zip(&meta.shape) {
            if *extents.entry(var).or_insert(ext) != ext {
                return None;
            }
        }
        op_metas.insert(f.tensor.clone(), meta.clone());
    }
    let out_meta = metas.get(&statement.output.tensor)?;
    let want_out: Vec<usize> = out_vars
        .iter()
        .map(|v| extents.get(v.as_str()).copied())
        .collect::<Option<_>>()?;
    if out_meta.dtype == DType::I32 || out_meta.shape != want_out {
        return None;
    }
    op_metas.insert(statement.output.tensor.clone(), out_meta.clone());

    let accumulate = statement.op == AssignOp::Accumulate;
    if matches!(pattern, Pattern::Transpose { .. } | Pattern::Diagonal) {
        let in_dtype = op_metas[&statement.factors[0].tensor].dtype;
        if accumulate || !insum_gpu::copy_view_eligible(in_dtype, out_meta.dtype) {
            return None;
        }
    }
    if matches!(
        pattern,
        Pattern::Matmul | Pattern::BatchedMatmul | Pattern::Dot
    ) {
        // The dot microkernel reproduces the Tensor-Core lowering's
        // accumulation (Block::dot zero-skip at the default R/X tile
        // boundaries). The scalar lowering has no zero skip, and
        // autotuned or overridden blocks move the tile boundaries — both
        // would break NaN-corner bit-identity, so they take the general
        // path.
        if !options.tensor_cores
            || options.autotune
            || options.rblock.is_some()
            || options.xblock.is_some()
        {
            return None;
        }
    }
    if matches!(pattern, Pattern::Reduction { .. })
        && (options.autotune || options.rblock.is_some())
    {
        // Same reasoning for the reduction sum's R chunking.
        return None;
    }
    Some(FastOp {
        pattern,
        factors: statement.factors.iter().map(|f| f.tensor.clone()).collect(),
        out_name: statement.output.tensor.clone(),
        accumulate,
        metas: op_metas,
    })
}

impl FastOp {
    /// The tensors one request would bind (factors then output), for
    /// the batched runner's fault-injection parity check. Missing names
    /// are skipped here — [`FastOp::run`] reports them properly.
    pub(crate) fn bound_args(&self, tensors: &BTreeMap<String, Tensor>) -> Vec<Tensor> {
        self.factors
            .iter()
            .chain(std::iter::once(&self.out_name))
            .filter_map(|name| tensors.get(name).cloned())
            .collect()
    }

    /// Execute (or, in [`Mode::Analytic`], cost-model) one request.
    pub(crate) fn run(
        &self,
        tensors: &BTreeMap<String, Tensor>,
        mode: Mode,
        options: &InsumOptions,
    ) -> Result<(Tensor, KernelReport)> {
        let mut factors = Vec::with_capacity(self.factors.len());
        for name in &self.factors {
            factors.push(self.bound(tensors, name)?.clone());
        }
        let out = self.bound(tensors, &self.out_name)?;
        insum_gpu::run_micro(
            &self.pattern,
            &factors,
            out,
            self.accumulate,
            mode,
            &options.device,
        )
        .map_err(|e| InsumError::Inductor(InductorError::Gpu(e)))
    }

    fn bound<'t>(&self, tensors: &'t BTreeMap<String, Tensor>, name: &str) -> Result<&'t Tensor> {
        let t = tensors
            .get(name)
            .ok_or_else(|| InsumError::MissingTensor(name.to_string()))?;
        let meta = &self.metas[name];
        if t.shape() != meta.shape || t.dtype() != meta.dtype {
            return Err(InsumError::Inductor(InductorError::Binding(format!(
                "tensor {name:?} bound as {:?} {:?} but compiled for {:?} {:?}",
                t.shape(),
                t.dtype(),
                meta.shape,
                meta.dtype
            ))));
        }
        Ok(t)
    }
}
