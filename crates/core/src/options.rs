//! Compilation options — the ablation axes of paper Fig. 13.

use crate::error::InsumError;
use insum_gpu::DeviceModel;

/// Options controlling how an indirect Einsum is compiled and executed.
#[derive(Debug, Clone, PartialEq)]
pub struct InsumOptions {
    /// Fuse gather + contraction + scatter into one kernel (the paper's
    /// extended Inductor). `false` reproduces stock TorchInductor: one
    /// kernel per graph node with materialized intermediates.
    pub fuse: bool,
    /// Route statements whose index structure matches the
    /// [`insum_pattern`] recognition table (matmul, transpose,
    /// reduction, Hadamard, …) to dedicated microkernels and zero-copy
    /// stride views instead of generating and interpreting a kernel.
    /// `false` forces every statement through the general lowering (the
    /// bit-identity oracle). Ignored when `fuse` is `false`: the unfused
    /// ablation always reproduces stock Inductor.
    pub fast_path: bool,
    /// Emit `ops.dot`/`tl.dot` (Tensor Cores) when a legal partition
    /// exists.
    pub tensor_cores: bool,
    /// Lazy broadcasting (§5.2.3); `false` pays eager reshape/transpose
    /// shared-memory traffic before every dot.
    pub lazy_broadcast: bool,
    /// Sweep tile configurations with analytic launches and keep the
    /// fastest (PyTorch-autotuner analogue; only affects fused kernels).
    pub autotune: bool,
    /// Fixed Y tile (rows); `None` = heuristic/autotuned.
    pub yblock: Option<usize>,
    /// Fixed X tile (columns); `None` = heuristic/autotuned.
    pub xblock: Option<usize>,
    /// Fixed R tile (reduction); `None` = heuristic/autotuned.
    pub rblock: Option<usize>,
    /// The simulated device.
    pub device: DeviceModel,
    /// Host threads for the simulator's grid-instance loop; `None` =
    /// auto (`INSUM_SIM_THREADS` or the machine's parallelism). Results
    /// are bit-identical for every setting; see
    /// [`insum_gpu::LaunchOptions`].
    pub sim_threads: Option<usize>,
}

impl Default for InsumOptions {
    fn default() -> InsumOptions {
        InsumOptions {
            fuse: true,
            fast_path: true,
            tensor_cores: true,
            lazy_broadcast: true,
            autotune: false,
            yblock: None,
            xblock: None,
            rblock: None,
            device: DeviceModel::rtx3090(),
            sim_threads: None,
        }
    }
}

impl InsumOptions {
    /// The full paper configuration plus autotuning (used by Table 3).
    pub fn autotuned() -> InsumOptions {
        InsumOptions {
            autotune: true,
            ..Default::default()
        }
    }

    /// Stock-TorchInductor configuration (ablation rows 1–3 of Fig. 13):
    /// separate gather/matmul/scatter kernels.
    pub fn unfused() -> InsumOptions {
        InsumOptions {
            fuse: false,
            ..Default::default()
        }
    }

    /// Check the options for configurations that would otherwise degrade
    /// silently. Called by [`crate::insum_with`] before compiling (and by
    /// the serving engine on admission), so a misconfiguration surfaces
    /// as a clear error instead of an implicit fallback.
    ///
    /// # Errors
    ///
    /// [`InsumError::Config`] if `sim_threads` is `Some(0)`: the
    /// simulator's host-thread count must be at least 1 (`None` selects
    /// the automatic resolution described on
    /// [`insum_gpu::LaunchOptions`]).
    pub fn validate(&self) -> Result<(), InsumError> {
        if self.sim_threads == Some(0) {
            return Err(InsumError::Config(
                "sim_threads = Some(0): the simulator needs at least one host \
                 thread; use None for automatic resolution"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// The simulator scheduling options these compilation options imply.
    /// This is the conversion point guarded by
    /// [`InsumOptions::validate`]; a `sim_threads` of `Some(0)` is
    /// rejected there rather than silently clamped here.
    pub fn launch_options(&self) -> insum_gpu::LaunchOptions {
        insum_gpu::LaunchOptions {
            threads: self.sim_threads,
            ..Default::default()
        }
    }

    pub(crate) fn launch(&self) -> insum_gpu::LaunchOptions {
        self.launch_options()
    }

    pub(crate) fn codegen(&self) -> insum_inductor::CodegenOptions {
        insum_inductor::CodegenOptions {
            tensor_cores: self.tensor_cores,
            lazy_broadcast: self.lazy_broadcast,
            yblock: self.yblock,
            xblock: self.xblock,
            rblock: self.rblock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let o = InsumOptions::default();
        assert!(o.fuse && o.fast_path && o.tensor_cores && o.lazy_broadcast);
        assert!(!o.autotune);
    }

    #[test]
    fn presets() {
        assert!(InsumOptions::autotuned().autotune);
        assert!(!InsumOptions::unfused().fuse);
    }

    #[test]
    fn zero_sim_threads_is_a_config_error() {
        let opts = InsumOptions {
            sim_threads: Some(0),
            ..Default::default()
        };
        assert!(matches!(opts.validate(), Err(InsumError::Config(_))));
        assert!(InsumOptions::default().validate().is_ok());
        let one = InsumOptions {
            sim_threads: Some(1),
            ..Default::default()
        };
        assert!(one.validate().is_ok());
        assert_eq!(one.launch_options().threads, Some(1));
    }
}
