//! Group-size selection by measured runtime (§4.2's final step).
//!
//! The paper rounds the closed-form estimate `g★ = √(S/n)` to *nearby
//! power-of-two values and selects the one with the best runtime*. The
//! heuristic in `insum_formats::heuristic` gives the analytic estimate;
//! this module performs the measured selection, timing each candidate's
//! compiled kernel with one analytic simulator launch.

use crate::apps;
use crate::options::InsumOptions;
use crate::Result;
use insum_formats::heuristic::{continuous_group_size, nearest_power_of_two};
use insum_formats::{BlockCoo, BlockGroupCoo, Coo, GroupCoo};
use insum_tensor::Tensor;

/// The power-of-two candidates around the continuous estimate: the
/// nearest power of two plus its two neighbors (clamped to ≥ 1 and to
/// the maximum occupancy).
pub fn pow2_candidates(occ: &[usize]) -> Vec<usize> {
    let max_occ = occ.iter().copied().max().unwrap_or(1).max(1);
    let center = nearest_power_of_two(continuous_group_size(occ));
    let mut out: Vec<usize> = [center / 2, center, center * 2]
        .into_iter()
        .filter(|&g| g >= 1)
        .map(|g| g.min(max_occ.next_power_of_two()))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Select the GroupCOO group size for SpMM by measured (simulated)
/// runtime among the power-of-two candidates, as in §4.2.
///
/// Returns `(group size, simulated seconds of the winner)`.
///
/// # Errors
///
/// Propagates compilation/simulation errors.
pub fn tune_group_size(coo: &Coo, b: &Tensor, options: &InsumOptions) -> Result<(usize, f64)> {
    let occ = coo.occupancy();
    let mut best: Option<(usize, f64)> = None;
    for g in pow2_candidates(&occ) {
        let gc = GroupCoo::from_coo(coo, g).map_err(|e| {
            crate::InsumError::Tensor(insum_tensor::TensorError::ShapeMismatch {
                op: "group conversion".into(),
                detail: e.to_string(),
            })
        })?;
        let app = apps::spmm_group(&gc, b);
        let t = app.compile(options)?.time(&app.tensors)?.total_time();
        if best.as_ref().is_none_or(|&(_, bt)| t < bt) {
            best = Some((g, t));
        }
    }
    Ok(best.expect("at least one candidate"))
}

/// Select the BlockGroupCOO group size for structured SpMM by measured
/// runtime among the power-of-two candidates.
///
/// Returns `(group size, simulated seconds of the winner)`.
///
/// # Errors
///
/// Propagates compilation/simulation errors.
pub fn tune_block_group_size(
    bcoo: &BlockCoo,
    b: &Tensor,
    options: &InsumOptions,
) -> Result<(usize, f64)> {
    let occ = bcoo.block_occupancy();
    let mut best: Option<(usize, f64)> = None;
    for g in pow2_candidates(&occ) {
        let bgc = BlockGroupCoo::from_block_coo(bcoo, g).map_err(|e| {
            crate::InsumError::Tensor(insum_tensor::TensorError::ShapeMismatch {
                op: "block group conversion".into(),
                detail: e.to_string(),
            })
        })?;
        let app = apps::spmm_block_group(&bgc, b);
        let t = app.compile(options)?.time(&app.tensors)?.total_time();
        if best.as_ref().is_none_or(|&(_, bt)| t < bt) {
            best = Some((g, t));
        }
    }
    Ok(best.expect("at least one candidate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::DType;
    use insum_workloads::blocksparse::block_sparse_dense;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn candidates_bracket_the_estimate() {
        // occ with mean 16: center 4, candidates {2, 4, 8}.
        let occ = vec![16usize; 64];
        assert_eq!(pow2_candidates(&occ), vec![2, 4, 8]);
        // Tiny occupancies collapse to the single candidate 1.
        assert_eq!(pow2_candidates(&[1, 1, 1]), vec![1]);
        assert_eq!(pow2_candidates(&[]), vec![1]);
    }

    #[test]
    fn measured_selection_never_loses_to_plain_heuristic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = block_sparse_dense(512, 512, 32, 32, 0.95, &mut rng).cast(DType::F16);
        let b = insum_tensor::rand_uniform(vec![512, 128], -1.0, 1.0, &mut rng).cast(DType::F16);
        let bcoo = BlockCoo::from_dense(&a, 32, 32).expect("blocked");
        let opts = InsumOptions::default();
        let (g_tuned, t_tuned) = tune_block_group_size(&bcoo, &b, &opts).expect("tunes");

        let g_plain = insum_formats::heuristic::heuristic_group_size(&bcoo.block_occupancy());
        let bgc = BlockGroupCoo::from_block_coo(&bcoo, g_plain).expect("valid");
        let app = apps::spmm_block_group(&bgc, &b);
        let t_plain = app
            .compile(&opts)
            .expect("compiles")
            .time(&app.tensors)
            .expect("times")
            .total_time();
        assert!(
            t_tuned <= t_plain * 1.0001,
            "tuned g={g_tuned} {t_tuned:.3e} vs plain g={g_plain} {t_plain:.3e}"
        );
    }

    #[test]
    fn unstructured_tuning_runs() {
        let mut rng = SmallRng::seed_from_u64(2);
        let coo = insum_workloads::blocksparse::unstructured_coo(64, 64, 0.1, &mut rng);
        let b = insum_tensor::rand_uniform(vec![64, 32], -1.0, 1.0, &mut rng);
        let (g, t) = tune_group_size(&coo, &b, &InsumOptions::default()).expect("tunes");
        assert!(g >= 1);
        assert!(t > 0.0);
    }
}
