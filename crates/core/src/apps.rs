//! The paper's four case studies as one-expression calls (Table 1's
//! "1 LoC" column). Each function binds a sparse format's tensors to the
//! corresponding indirect Einsum and compiles/runs it.

use crate::compile::{insum_with, Compiled};
use crate::options::InsumOptions;
use crate::Result;
use insum_formats::{BlockCoo, BlockGroupCoo, Coo, GroupCoo};
use insum_tensor::Tensor;
use insum_workloads::equivariant::CgTensor;
use insum_workloads::pointcloud::KernelMap;
use std::collections::BTreeMap;

/// SpMM with COO `A`: the expression of paper Fig. 2.
pub const SPMM_COO_EXPR: &str = "C[AM[p],n] += AV[p] * B[AK[p],n]";
/// SpMM with GroupCOO `A` (§4.1).
pub const SPMM_GROUP_EXPR: &str = "C[AM[p],n] += AV[p,q] * B[AK[p,q],n]";
/// SpMM with BlockCOO `A` (paper Fig. 5).
pub const SPMM_BLOCK_EXPR: &str = "C[AM[p],bm,n] += AV[p,bm,bk] * B[AK[p],bk,n]";
/// SpMM with BlockGroupCOO `A` (paper Fig. 6) — the structured-SpMM
/// configuration of Figs. 10 and 13.
pub const SPMM_BLOCK_GROUP_EXPR: &str = "C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]";
/// Grouped point-cloud sparse convolution (§6.4).
pub const CONV_EXPR: &str = "Out[MAPX[p,q],m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]";
/// Grouped uvw-mode equivariant tensor product (§6.5).
pub const TP_EXPR: &str =
    "Z[b,CGI[p,q],w] += CGV[p,q] * X[b,CGJ[p,q],u] * Y[b,CGK[p,q]] * W[b,CGL[p],u,w]";

/// A bound application: the expression plus its tensor bindings.
///
/// Binding is zero-copy: the tensor map holds O(1) clones sharing the
/// format's / caller's storage (copy-on-write `Tensor`), so building a
/// `BoundApp` per request costs no memory traffic.
pub struct BoundApp {
    /// The indirect Einsum expression.
    pub expr: &'static str,
    /// Tensor bindings.
    pub tensors: BTreeMap<String, Tensor>,
    /// Shape of the application-level output before any reshape.
    pub out_name: &'static str,
}

impl BoundApp {
    /// Compile with the given options.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn compile(&self, options: &InsumOptions) -> Result<Compiled> {
        insum_with(self.expr, &self.tensors, options)
    }
}

/// Bind COO SpMM `C = A @ B` (dense `B` of shape `[K, N]`).
pub fn spmm_coo(a: &Coo, b: &Tensor) -> BoundApp {
    let n = b.shape()[1];
    let tensors: BTreeMap<String, Tensor> = [
        (
            "C".to_string(),
            Tensor::zeros_with(vec![a.rows, n], b.dtype()),
        ),
        ("AM".to_string(), a.am.clone()),
        ("AK".to_string(), a.ak.clone()),
        ("AV".to_string(), a.av.clone()),
        ("B".to_string(), b.clone()),
    ]
    .into_iter()
    .collect();
    BoundApp {
        expr: SPMM_COO_EXPR,
        tensors,
        out_name: "C",
    }
}

/// Bind GroupCOO SpMM.
pub fn spmm_group(a: &GroupCoo, b: &Tensor) -> BoundApp {
    let n = b.shape()[1];
    let tensors: BTreeMap<String, Tensor> = [
        (
            "C".to_string(),
            Tensor::zeros_with(vec![a.rows, n], b.dtype()),
        ),
        ("AM".to_string(), a.am.clone()),
        ("AK".to_string(), a.ak.clone()),
        ("AV".to_string(), a.av.clone()),
        ("B".to_string(), b.clone()),
    ]
    .into_iter()
    .collect();
    BoundApp {
        expr: SPMM_GROUP_EXPR,
        tensors,
        out_name: "C",
    }
}

/// Bind BlockCOO SpMM; `b` is `[K, N]` and is viewed as
/// `[K/bk, bk, N]` (same layout).
///
/// # Panics
///
/// Panics if `b`'s row count does not equal the format's column count.
pub fn spmm_block(a: &BlockCoo, b: &Tensor) -> BoundApp {
    assert_eq!(b.shape()[0], a.cols, "B rows must match A columns");
    let n = b.shape()[1];
    let b3 = b
        .reshape(vec![a.cols / a.bk, a.bk, n])
        .expect("layout-preserving view");
    let tensors: BTreeMap<String, Tensor> = [
        (
            "C".to_string(),
            Tensor::zeros_with(vec![a.rows / a.bm, a.bm, n], b.dtype()),
        ),
        ("AM".to_string(), a.am.clone()),
        ("AK".to_string(), a.ak.clone()),
        ("AV".to_string(), a.av.clone()),
        ("B".to_string(), b3),
    ]
    .into_iter()
    .collect();
    BoundApp {
        expr: SPMM_BLOCK_EXPR,
        tensors,
        out_name: "C",
    }
}

/// Bind BlockGroupCOO SpMM (the paper's structured-SpMM configuration).
///
/// # Panics
///
/// Panics if `b`'s row count does not equal the format's column count.
pub fn spmm_block_group(a: &BlockGroupCoo, b: &Tensor) -> BoundApp {
    assert_eq!(b.shape()[0], a.cols, "B rows must match A columns");
    let n = b.shape()[1];
    let b3 = b
        .reshape(vec![a.cols / a.bk, a.bk, n])
        .expect("layout-preserving view");
    let tensors: BTreeMap<String, Tensor> = [
        (
            "C".to_string(),
            Tensor::zeros_with(vec![a.rows / a.bm, a.bm, n], b.dtype()),
        ),
        ("AM".to_string(), a.am.clone()),
        ("AK".to_string(), a.ak.clone()),
        ("AV".to_string(), a.av.clone()),
        ("B".to_string(), b3),
    ]
    .into_iter()
    .collect();
    BoundApp {
        expr: SPMM_BLOCK_GROUP_EXPR,
        tensors,
        out_name: "C",
    }
}

/// Flatten a `[brows, bm, n]` SpMM output back to `[rows, n]` (pure
/// metadata; the layouts coincide).
pub fn unblock_output(c: &Tensor) -> Tensor {
    let s = c.shape();
    c.reshape(vec![s[0] * s[1], s[2]])
        .expect("layout-preserving view")
}

/// Bind the grouped point-cloud sparse convolution: `input` is
/// `[voxels, c]`, `weight` is `[27, c, m]`.
pub fn sparse_conv(km: &KernelMap, input: &Tensor, weight: &Tensor) -> BoundApp {
    let m = weight.shape()[2];
    let tensors: BTreeMap<String, Tensor> = [
        (
            "Out".to_string(),
            Tensor::zeros_with(vec![km.voxels, m], input.dtype()),
        ),
        ("MAPX".to_string(), km.mapx.clone()),
        ("MAPY".to_string(), km.mapy.clone()),
        ("MAPZ".to_string(), km.mapz.clone()),
        ("MAPV".to_string(), km.mapv.clone()),
        ("In".to_string(), input.clone()),
        ("Weight".to_string(), weight.clone()),
    ]
    .into_iter()
    .collect();
    BoundApp {
        expr: CONV_EXPR,
        tensors,
        out_name: "Out",
    }
}

/// Bind the grouped uvw equivariant tensor product: `x` is
/// `[batch, dim, u]`, `y` is `[batch, dim]`, `w` is `[batch, paths, u, w]`.
pub fn equivariant_tp(cg: &CgTensor, x: &Tensor, y: &Tensor, w: &Tensor) -> BoundApp {
    let wc = w.shape()[3];
    let b_sz = x.shape()[0];
    let tensors: BTreeMap<String, Tensor> = [
        (
            "Z".to_string(),
            Tensor::zeros_with(vec![b_sz, cg.dim, wc], x.dtype()),
        ),
        ("CGI".to_string(), cg.cgi.clone()),
        ("CGJ".to_string(), cg.cgj.clone()),
        ("CGK".to_string(), cg.cgk.clone()),
        ("CGL".to_string(), cg.cgl.clone()),
        ("CGV".to_string(), cg.cgv.clone()),
        ("X".to_string(), x.clone()),
        ("Y".to_string(), y.clone()),
        ("W".to_string(), w.clone()),
    ]
    .into_iter()
    .collect();
    BoundApp {
        expr: TP_EXPR,
        tensors,
        out_name: "Z",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::rand_uniform;
    use insum_workloads::blocksparse::block_sparse_dense;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_spmm_formats_agree_with_dense() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a_dense = block_sparse_dense(32, 32, 8, 8, 0.5, &mut rng);
        let b = rand_uniform(vec![32, 16], -1.0, 1.0, &mut rng);
        let want = a_dense.matmul(&b).unwrap();
        let opts = InsumOptions::default();

        let coo = Coo::from_dense(&a_dense).unwrap();
        let (c1, _) = spmm_coo(&coo, &b)
            .compile(&opts)
            .unwrap()
            .run(&spmm_coo(&coo, &b).tensors)
            .unwrap();
        assert!(c1.allclose(&want, 1e-3, 1e-3), "coo");

        let gc = GroupCoo::from_coo(&coo, 4).unwrap();
        let app = spmm_group(&gc, &b);
        let (c2, _) = app.compile(&opts).unwrap().run(&app.tensors).unwrap();
        assert!(c2.allclose(&want, 1e-3, 1e-3), "group");

        let bc = BlockCoo::from_dense(&a_dense, 8, 8).unwrap();
        let app = spmm_block(&bc, &b);
        let (c3, _) = app.compile(&opts).unwrap().run(&app.tensors).unwrap();
        assert!(unblock_output(&c3).allclose(&want, 1e-3, 1e-3), "block");

        let bgc = BlockGroupCoo::from_dense(&a_dense, 8, 8, 2).unwrap();
        let app = spmm_block_group(&bgc, &b);
        let (c4, _) = app.compile(&opts).unwrap().run(&app.tensors).unwrap();
        assert!(
            unblock_output(&c4).allclose(&want, 1e-3, 1e-3),
            "block group"
        );
    }

    #[test]
    fn expressions_are_single_line() {
        // Table 1's LoC claim: every application is one expression.
        for expr in [
            SPMM_COO_EXPR,
            SPMM_GROUP_EXPR,
            SPMM_BLOCK_EXPR,
            SPMM_BLOCK_GROUP_EXPR,
            CONV_EXPR,
            TP_EXPR,
        ] {
            assert_eq!(expr.lines().count(), 1);
        }
    }
}
