//! Multi-operand contraction chains: planning, lowering, execution.
//!
//! [`plan`] turns an `ij,jk,kl->il`-style spec (or a dense multi-factor
//! statement such as `O[i,m] = A[i,j] * B[j,k] * C[k,m]`) into a
//! [`CompiledChain`]: the `insum_planner` searches a contraction order
//! (exact subset DP up to 12 operands, greedy beyond), and every
//! pairwise step is lowered through the ordinary [`insum_with`]
//! pipeline — so each step autotunes, launches through the process-wide
//! [`insum_inductor::ProgramCache`], and batches in the serving engine
//! like any hand-written pairwise einsum.
//!
//! Intermediates materialize into zero-initialized F32 workspace
//! temporaries that are dropped right after their last consuming step
//! (copy-on-write storage frees the buffer with the last handle). Steps
//! whose output is rank-0 — or that consume a rank-0 temporary — cannot
//! be expressed in the statement language (`T[]` is not a legal access);
//! those run on the host through the same pairwise evaluator the
//! left-to-right reference oracle uses, which keeps them bit-identical
//! to the reference by construction. Host steps contribute no simulated
//! launches to the profile.
//!
//! Chains require F32 operands: the executor's bit-identity contract
//! against [`chain_reference`] (see the planner crate docs for the
//! integer-valued exactness domain) does not survive F16 rounding at
//! step boundaries.

use crate::compile::{insum_with, Compiled};
use crate::options::InsumOptions;
use crate::{InsumError, Result};
use insum_gpu::{LaunchOptions, Mode, Profile};
use insum_lang::AssignOp;
use insum_planner::{
    eval_pairwise, reference_chain, ChainSpec, ContractionPlan, OrderStrategy, PlannerError, Source,
};
use insum_tensor::{DType, Tensor};
use std::collections::BTreeMap;

/// How one plan step executes.
enum StepExec {
    /// Lowered through the fused/unfused device pipeline (boxed: a
    /// `Compiled` is much larger than the unit `Host` variant).
    Device(Box<Compiled>),
    /// Host-evaluated rank-0 corner (see the module docs).
    Host,
}

/// A compiled contraction chain: one [`Compiled`] per device step plus
/// the workspace layout to thread intermediates between them.
///
/// Obtained from [`plan`] / [`plan_with_strategy`]; execute with
/// [`CompiledChain::run`] (or [`CompiledChain::run_batch_mode`] for the
/// serving engine's per-step batching).
pub struct CompiledChain {
    expression: String,
    plan: ContractionPlan,
    temp_names: Vec<String>,
    execs: Vec<StepExec>,
    options: InsumOptions,
    /// Host wall-clock spent planning and compiling every step
    /// (including per-step autotuning), seconds.
    pub compile_seconds: f64,
}

impl CompiledChain {
    /// The contraction plan (order, steps, workspace accounting).
    pub fn plan(&self) -> &ContractionPlan {
        &self.plan
    }

    /// The options every step was compiled with.
    pub fn options(&self) -> &InsumOptions {
        &self.options
    }

    /// The originating expression (spec or statement form).
    pub fn expression(&self) -> &str {
        &self.expression
    }

    /// Number of pairwise steps.
    pub fn step_count(&self) -> usize {
        self.plan.steps.len()
    }

    /// Steps lowered to device kernels (the rest are host-evaluated
    /// rank-0 corners).
    pub fn device_step_count(&self) -> usize {
        self.plan.device_step_count()
    }

    /// Device steps lowered through the general pipeline, i.e. the ones
    /// whose programs live in the cross-launch `ProgramCache`. Steps
    /// that classified onto the pattern fast path dispatch straight to
    /// microkernels and lower no programs at all, so they are excluded
    /// here (the compile-once benchmarks count cache hits per
    /// program-backed step).
    pub fn program_step_count(&self) -> usize {
        self.execs
            .iter()
            .filter(|e| matches!(e, StepExec::Device(c) if c.fast_path_pattern().is_none()))
            .count()
    }

    /// Execute the chain: returns the output tensor and the
    /// concatenated per-step launch profile.
    ///
    /// `tensors` binds every operand by name; the output binding is
    /// required (and added into) only for `+=` chains — for `=` chains
    /// the result is the pure chain value whatever the binding holds.
    ///
    /// # Errors
    ///
    /// Propagates binding and simulator errors.
    pub fn run(&self, tensors: &BTreeMap<String, Tensor>) -> Result<(Tensor, Profile)> {
        let mut results =
            self.run_batch_mode(&[tensors], Mode::Execute, &self.options.launch_options())?;
        Ok(results.remove(0))
    }

    /// Measure without computing values, exactly like
    /// [`Compiled::time`]: the profile equals [`CompiledChain::run`]'s
    /// (dense step costs are value-independent) but no step computes
    /// values and host steps are skipped.
    ///
    /// # Errors
    ///
    /// Propagates binding and simulator errors.
    pub fn time(&self, tensors: &BTreeMap<String, Tensor>) -> Result<Profile> {
        let mut results =
            self.run_batch_mode(&[tensors], Mode::Analytic, &self.options.launch_options())?;
        Ok(results.remove(0).1)
    }

    /// Execute one chain per request of a batch. Batching applies *per
    /// step*: all requests' instances of step `k` run as one batched
    /// launch before any request proceeds to step `k + 1`, sharing the
    /// simulator thread pool — and each request's output and profile
    /// are bit-identical to a serial [`CompiledChain::run`].
    ///
    /// # Errors
    ///
    /// Propagates binding and simulator errors (first failing request
    /// wins, failing the whole batch — the serving engine then isolates
    /// by re-running requests alone).
    pub fn run_batch(&self, batch: &[&BTreeMap<String, Tensor>]) -> Result<Vec<(Tensor, Profile)>> {
        self.run_batch_mode(batch, Mode::Execute, &self.options.launch_options())
    }

    /// [`CompiledChain::run_batch`] with an explicit interpreter mode
    /// and simulator scheduling options.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledChain::run_batch`].
    pub fn run_batch_mode(
        &self,
        batch: &[&BTreeMap<String, Tensor>],
        mode: Mode,
        launch: &LaunchOptions,
    ) -> Result<Vec<(Tensor, Profile)>> {
        let nreq = batch.len();
        let mut temps: Vec<Vec<Option<Tensor>>> = vec![vec![None; self.plan.temp_count]; nreq];
        let mut profiles: Vec<Profile> = vec![Profile::new(); nreq];
        let mut outputs: Vec<Option<Tensor>> = vec![None; nreq];
        for (step, exec) in self.plan.steps.iter().zip(&self.execs) {
            match exec {
                StepExec::Device(compiled) => {
                    let maps: Vec<BTreeMap<String, Tensor>> = batch
                        .iter()
                        .zip(&temps)
                        .map(|(user, t)| self.step_bindings(step, user, t))
                        .collect::<Result<_>>()?;
                    let refs: Vec<&BTreeMap<String, Tensor>> = maps.iter().collect();
                    let results = compiled.run_batch_mode(&refs, mode, launch)?;
                    for (r, (out, profile)) in results.into_iter().enumerate() {
                        for report in profile.reports {
                            profiles[r].push(report);
                        }
                        self.store(step, out, &mut temps[r], &mut outputs[r]);
                    }
                }
                StepExec::Host => {
                    for r in 0..nreq {
                        let out = match mode {
                            Mode::Execute => {
                                let lhs = self.fetch(step.lhs, batch[r], &temps[r])?;
                                let rhs = match step.rhs {
                                    Some(src) => Some(self.fetch(src, batch[r], &temps[r])?),
                                    None => None,
                                };
                                let mut value =
                                    eval_pairwise(&step.einsum_spec, &lhs, rhs.as_ref())?;
                                if step.out_temp.is_none()
                                    && self.plan.spec.op == AssignOp::Accumulate
                                {
                                    let base = self.output_binding(batch[r])?;
                                    value = add(&base, &value)?;
                                }
                                value
                            }
                            // Analytic: values are never read (dense
                            // costs are value-independent), so hand back
                            // the unmodified-output convention.
                            Mode::Analytic => match step.out_temp {
                                Some(_) => Tensor::zeros(step.out_shape.clone()),
                                None => self.output_binding(batch[r])?,
                            },
                        };
                        self.store(step, out, &mut temps[r], &mut outputs[r]);
                    }
                }
            }
            for t in &mut temps {
                for &k in &step.frees {
                    t[k] = None;
                }
            }
        }
        Ok(outputs
            .into_iter()
            .zip(profiles)
            .map(|(out, profile)| (out.expect("plans end with the output step"), profile))
            .collect())
    }

    fn store(
        &self,
        step: &insum_planner::PlanStep,
        out: Tensor,
        temps: &mut [Option<Tensor>],
        output: &mut Option<Tensor>,
    ) {
        match step.out_temp {
            Some(k) => temps[k] = Some(out),
            None => *output = Some(out),
        }
    }

    fn fetch(
        &self,
        src: Source,
        user: &BTreeMap<String, Tensor>,
        temps: &[Option<Tensor>],
    ) -> Result<Tensor> {
        match src {
            Source::Input(i) => {
                let name = &self.plan.spec.operands[i].name;
                user.get(name)
                    .cloned()
                    .ok_or_else(|| InsumError::MissingTensor(name.clone()))
            }
            Source::Temp(k) => Ok(temps[k]
                .clone()
                .expect("temporary produced by an earlier step")),
        }
    }

    /// The final step's output binding: the user tensor for `+=` chains
    /// (accumulation base), fresh zeros otherwise — `=` chains always
    /// yield the pure chain value, whatever the caller bound.
    fn output_binding(&self, user: &BTreeMap<String, Tensor>) -> Result<Tensor> {
        if self.plan.spec.op == AssignOp::Accumulate {
            user.get(&self.plan.spec.output_name)
                .cloned()
                .ok_or_else(|| InsumError::MissingTensor(self.plan.spec.output_name.clone()))
        } else {
            Ok(Tensor::zeros(self.plan.output_shape.clone()))
        }
    }

    /// Bindings for one device step: its operand inputs, workspace
    /// inputs, and output.
    fn step_bindings(
        &self,
        step: &insum_planner::PlanStep,
        user: &BTreeMap<String, Tensor>,
        temps: &[Option<Tensor>],
    ) -> Result<BTreeMap<String, Tensor>> {
        let mut map = BTreeMap::new();
        for src in std::iter::once(step.lhs).chain(step.rhs) {
            let tensor = self.fetch(src, user, temps)?;
            let name = match src {
                Source::Input(i) => self.plan.spec.operands[i].name.clone(),
                Source::Temp(k) => self.temp_names[k].clone(),
            };
            map.insert(name, tensor);
        }
        let out = match step.out_temp {
            Some(_) => Tensor::zeros(step.out_shape.clone()),
            None => self.output_binding(user)?,
        };
        map.insert(step.out_name.clone(), out);
        Ok(map)
    }
}

/// Elementwise sum (the `+=` accumulation base for host-evaluated final
/// steps).
fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    debug_assert_eq!(a.shape(), b.shape());
    // `contiguous_data`, not `data`: either side may be a strided view
    // (a fast-path transpose output fed back in as the `+=` base).
    let (av, bv) = (a.contiguous_data(), b.contiguous_data());
    let data = av.iter().zip(bv.iter()).map(|(x, y)| x + y).collect();
    Ok(Tensor::from_vec(a.shape().to_vec(), data)?)
}

/// Parse a chain from either accepted form: an `ij,jk,kl->il` spec
/// (operands named `op0`, `op1`, …, output `out`) or a dense
/// multi-factor statement.
fn parse_chain(expression: &str) -> Result<ChainSpec> {
    if expression.contains("->") {
        Ok(ChainSpec::parse(expression)?)
    } else {
        let stmt = insum_lang::parse(expression)?;
        Ok(ChainSpec::from_statement(&stmt)?)
    }
}

/// True when `expression` should route through the contraction planner:
/// spec form (`->`), or a dense statement with three or more factors
/// that the planner supports. Two-factor statements stay on the
/// single-kernel path — the planner could only replay them unchanged —
/// and anything with indirection or diagonals is the fused pipeline's
/// territory.
pub fn is_chain_expression(expression: &str) -> bool {
    if expression.contains("->") {
        return true;
    }
    match insum_lang::parse(expression) {
        Ok(stmt) => stmt.factors.len() >= 3 && ChainSpec::from_statement(&stmt).is_ok(),
        Err(_) => false,
    }
}

/// Plan and compile a contraction chain with the default
/// [`OrderStrategy::Auto`] order search.
///
/// `tensors` binds every operand by name (`op0`, `op1`, … / `out` for
/// spec-form chains); shapes select the order, and the data feeds
/// per-step autotuning when enabled.
///
/// # Errors
///
/// Parsing/planning errors ([`InsumError::Planner`]), a missing or
/// non-F32 operand, an output binding with the wrong shape, or any
/// per-step compilation error.
pub fn plan(
    expression: &str,
    tensors: &BTreeMap<String, Tensor>,
    options: &InsumOptions,
) -> Result<CompiledChain> {
    plan_with_strategy(expression, tensors, options, OrderStrategy::Auto)
}

/// [`plan`] with an explicit contraction-order strategy (the benchmarks
/// compare [`OrderStrategy::LeftToRight`] against the searched orders).
///
/// # Errors
///
/// Same conditions as [`plan`].
pub fn plan_with_strategy(
    expression: &str,
    tensors: &BTreeMap<String, Tensor>,
    options: &InsumOptions,
    strategy: OrderStrategy,
) -> Result<CompiledChain> {
    options.validate()?;
    let start = std::time::Instant::now();
    let spec = parse_chain(expression)?;
    let mut shapes = Vec::with_capacity(spec.operands.len());
    for op in &spec.operands {
        let t = tensors
            .get(&op.name)
            .ok_or_else(|| InsumError::MissingTensor(op.name.clone()))?;
        if t.dtype() != DType::F32 {
            return Err(PlannerError::Unsupported(format!(
                "chain planning requires F32 operands; {:?} is {:?}",
                op.name,
                t.dtype()
            ))
            .into());
        }
        shapes.push(t.shape().to_vec());
    }
    let plan = ContractionPlan::new(spec, &shapes, strategy)?;
    if let Some(out) = tensors.get(&plan.spec.output_name) {
        if out.shape() != plan.output_shape.as_slice() {
            return Err(PlannerError::Shape(format!(
                "output {:?} has shape {:?} but the chain produces {:?}",
                plan.spec.output_name,
                out.shape(),
                plan.output_shape
            ))
            .into());
        }
        if out.dtype() != DType::F32 {
            return Err(PlannerError::Unsupported(format!(
                "chain planning requires an F32 output; {:?} is {:?}",
                plan.spec.output_name,
                out.dtype()
            ))
            .into());
        }
    } else if plan.spec.op == AssignOp::Accumulate {
        return Err(InsumError::MissingTensor(plan.spec.output_name.clone()));
    }
    let temp_names: Vec<String> = {
        let mut names = vec![String::new(); plan.temp_count];
        for step in &plan.steps {
            if let Some(k) = step.out_temp {
                names[k] = step.out_name.clone();
            }
        }
        names
    };
    // Compile each device step against its real operand bindings (zeros
    // stand in for workspace temporaries: shapes drive lowering, and
    // autotuning's analytic launches never read values).
    let mut execs = Vec::with_capacity(plan.steps.len());
    {
        let chain_stub = CompiledChain {
            expression: expression.to_string(),
            plan: plan.clone(),
            temp_names: temp_names.clone(),
            execs: Vec::new(),
            options: options.clone(),
            compile_seconds: 0.0,
        };
        let mut temp_stub: Vec<Option<Tensor>> = vec![None; plan.temp_count];
        for step in &plan.steps {
            if step.host {
                execs.push(StepExec::Host);
            } else {
                let bindings = chain_stub.step_bindings(step, tensors, &temp_stub)?;
                execs.push(StepExec::Device(Box::new(insum_with(
                    &step.expression,
                    &bindings,
                    options,
                )?)));
            }
            if let Some(k) = step.out_temp {
                temp_stub[k] = Some(Tensor::zeros(step.out_shape.clone()));
            }
        }
    }
    Ok(CompiledChain {
        expression: expression.to_string(),
        plan,
        temp_names,
        execs,
        options: options.clone(),
        compile_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Plan, compile, and execute a chain with default options — the
/// chain-level analogue of compiling with [`crate::insum`] and calling
/// [`Compiled::run`].
///
/// # Errors
///
/// Same conditions as [`plan`] plus execution errors.
pub fn run_chain(
    expression: &str,
    tensors: &BTreeMap<String, Tensor>,
) -> Result<(Tensor, Profile)> {
    plan(expression, tensors, &InsumOptions::default())?.run(tensors)
}

/// The bit-identity oracle: evaluate `expression` with the naive
/// left-to-right pairwise reference (f64 step accumulation, no device
/// pipeline), honoring `+=` by adding the output binding. On
/// integer-valued data every planned order must match this exactly; see
/// the planner crate docs for the exactness domain.
///
/// # Errors
///
/// Parsing/shape errors, or a missing operand binding.
pub fn chain_reference(expression: &str, tensors: &BTreeMap<String, Tensor>) -> Result<Tensor> {
    let spec = parse_chain(expression)?;
    let operands: Vec<&Tensor> = spec
        .operands
        .iter()
        .map(|op| {
            tensors
                .get(&op.name)
                .ok_or_else(|| InsumError::MissingTensor(op.name.clone()))
        })
        .collect::<Result<_>>()?;
    let value = reference_chain(&spec, &operands)?;
    if spec.op == AssignOp::Accumulate {
        let base = tensors
            .get(&spec.output_name)
            .ok_or_else(|| InsumError::MissingTensor(spec.output_name.clone()))?;
        add(base, &value)
    } else {
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::einsum;

    /// Deterministic integer-valued tensor in {-2, …, 2} (the planner's
    /// exactness domain: every contraction order is bit-exact).
    fn int_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9e37_79b9).max(1);
        Tensor::from_fn(shape, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 5) as f32 - 2.0
        })
    }

    fn chain3() -> BTreeMap<String, Tensor> {
        [
            ("A".to_string(), int_tensor(vec![6, 5], 1)),
            ("B".to_string(), int_tensor(vec![5, 7], 2)),
            ("C".to_string(), int_tensor(vec![7, 4], 3)),
            ("O".to_string(), Tensor::zeros(vec![6, 4])),
        ]
        .into_iter()
        .collect()
    }

    const CHAIN3: &str = "O[i,l] = A[i,j] * B[j,k] * C[k,l]";

    #[test]
    fn planned_chain_matches_reference_and_einsum() {
        let tensors = chain3();
        let (got, profile) = run_chain(CHAIN3, &tensors).unwrap();
        let want = chain_reference(CHAIN3, &tensors).unwrap();
        assert_eq!(got.data(), want.data());
        let direct = einsum(
            "ij,jk,kl->il",
            &[&tensors["A"], &tensors["B"], &tensors["C"]],
        )
        .unwrap();
        assert_eq!(got.data(), direct.data());
        assert_eq!(profile.launches(), 2, "two pairwise device steps");
    }

    #[test]
    fn spec_form_binds_positional_operand_names() {
        let tensors: BTreeMap<String, Tensor> = [
            ("op0".to_string(), int_tensor(vec![4, 3], 4)),
            ("op1".to_string(), int_tensor(vec![3, 5], 5)),
            ("op2".to_string(), int_tensor(vec![5, 2], 6)),
        ]
        .into_iter()
        .collect();
        let (got, _) = run_chain("ij,jk,kl->il", &tensors).unwrap();
        let want = chain_reference("ij,jk,kl->il", &tensors).unwrap();
        assert_eq!(got.data(), want.data());
        assert_eq!(got.shape(), &[4, 2]);
    }

    #[test]
    fn accumulate_adds_into_the_output_binding() {
        let mut tensors = chain3();
        tensors.insert("O".to_string(), int_tensor(vec![6, 4], 9));
        let expr = "O[i,l] += A[i,j] * B[j,k] * C[k,l]";
        let (got, _) = run_chain(expr, &tensors).unwrap();
        let want = chain_reference(expr, &tensors).unwrap();
        assert_eq!(got.data(), want.data());
        // And the reference itself is base + pure value.
        let pure = chain_reference(CHAIN3, &tensors).unwrap();
        let base = &tensors["O"];
        for ((g, b), p) in got.data().iter().zip(base.data()).zip(pure.data()) {
            assert_eq!(*g, b + p);
        }
    }

    #[test]
    fn accumulate_without_output_binding_is_missing_tensor() {
        let mut tensors = chain3();
        tensors.remove("O");
        assert!(matches!(
            plan(
                "O[i,l] += A[i,j] * B[j,k] * C[k,l]",
                &tensors,
                &InsumOptions::default()
            ),
            Err(InsumError::MissingTensor(_))
        ));
        // Assign-form chains do not need the binding at all.
        assert!(run_chain(CHAIN3, &tensors).is_ok());
    }

    #[test]
    fn non_f32_operands_are_rejected() {
        let mut tensors = chain3();
        let f16 = tensors["B"].cast(DType::F16);
        tensors.insert("B".to_string(), f16);
        assert!(matches!(
            plan(CHAIN3, &tensors, &InsumOptions::default()),
            Err(InsumError::Planner(PlannerError::Unsupported(_)))
        ));
    }

    #[test]
    fn wrong_output_shape_is_rejected() {
        let mut tensors = chain3();
        tensors.insert("O".to_string(), Tensor::zeros(vec![6, 5]));
        assert!(matches!(
            plan(CHAIN3, &tensors, &InsumOptions::default()),
            Err(InsumError::Planner(PlannerError::Shape(_)))
        ));
    }

    #[test]
    fn run_batch_matches_serial_runs_bit_for_bit() {
        let base = chain3();
        let requests: Vec<BTreeMap<String, Tensor>> = (0..3)
            .map(|r| {
                let mut t = base.clone();
                t.insert("B".to_string(), int_tensor(vec![5, 7], 20 + r));
                t
            })
            .collect();
        let chain = plan(CHAIN3, &requests[0], &InsumOptions::default()).unwrap();
        let serial: Vec<(Tensor, Profile)> =
            requests.iter().map(|r| chain.run(r).unwrap()).collect();
        let refs: Vec<&BTreeMap<String, Tensor>> = requests.iter().collect();
        let batched = chain.run_batch(&refs).unwrap();
        for ((got_t, got_p), (want_t, want_p)) in batched.iter().zip(&serial) {
            assert_eq!(got_t.data(), want_t.data());
            assert_eq!(got_p, want_p);
        }
    }

    #[test]
    fn analytic_time_agrees_with_execute_profile() {
        let tensors = chain3();
        let chain = plan(CHAIN3, &tensors, &InsumOptions::default()).unwrap();
        let analytic = chain.time(&tensors).unwrap();
        let (_, executed) = chain.run(&tensors).unwrap();
        assert_eq!(analytic.total_time(), executed.total_time());
        assert_eq!(analytic.launches(), executed.launches());
    }

    #[test]
    fn scalar_output_chain_runs_on_the_host() {
        let tensors: BTreeMap<String, Tensor> = [
            ("op0".to_string(), int_tensor(vec![3, 4], 7)),
            ("op1".to_string(), int_tensor(vec![3, 4], 8)),
        ]
        .into_iter()
        .collect();
        let chain = plan("ij,ij->", &tensors, &InsumOptions::default()).unwrap();
        assert_eq!(chain.device_step_count(), 0);
        let (got, profile) = chain.run(&tensors).unwrap();
        let want = einsum("ij,ij->", &[&tensors["op0"], &tensors["op1"]]).unwrap();
        assert_eq!(got.data(), want.data());
        assert_eq!(profile.launches(), 0, "host steps launch nothing");
    }

    #[test]
    fn scalar_intermediate_chain_matches_reference() {
        let tensors: BTreeMap<String, Tensor> = [
            ("op0".to_string(), int_tensor(vec![16], 10)),
            ("op1".to_string(), int_tensor(vec![16], 11)),
            ("op2".to_string(), int_tensor(vec![6], 12)),
        ]
        .into_iter()
        .collect();
        for strategy in [
            OrderStrategy::LeftToRight,
            OrderStrategy::Greedy,
            OrderStrategy::Dp,
        ] {
            let chain =
                plan_with_strategy("i,i,j->j", &tensors, &InsumOptions::default(), strategy)
                    .unwrap();
            let (got, _) = chain.run(&tensors).unwrap();
            let want = chain_reference("i,i,j->j", &tensors).unwrap();
            assert_eq!(got.data(), want.data(), "{strategy:?}");
        }
    }

    #[test]
    fn chain_steps_classify_onto_the_fast_path() {
        // A spec-form transpose is a one-step chain whose device step
        // classifies `Transpose`: the output is a zero-copy stride view
        // of the operand, not an interpreter launch product.
        let tensors: BTreeMap<String, Tensor> = [("op0".to_string(), int_tensor(vec![4, 6], 21))]
            .into_iter()
            .collect();
        let chain = plan("ij->ji", &tensors, &InsumOptions::default()).unwrap();
        let (got, _) = chain.run(&tensors).unwrap();
        let want = chain_reference("ij->ji", &tensors).unwrap();
        assert_eq!(*got.contiguous_data(), *want.contiguous_data());
        assert!(
            got.shares_storage(&tensors["op0"]),
            "transpose step returned a view, no bytes moved"
        );
        // Pairwise matmul steps of a longer chain classify too, and the
        // chain stays bit-identical to the reference (ints are exact).
        let tensors = chain3();
        let chain = plan(CHAIN3, &tensors, &InsumOptions::default()).unwrap();
        for exec in &chain.execs {
            if let StepExec::Device(compiled) = exec {
                assert!(
                    compiled.fast_path_pattern().is_some(),
                    "dense pairwise steps dispatch to microkernels"
                );
            }
        }
        let (got, _) = chain.run(&tensors).unwrap();
        let want = chain_reference(CHAIN3, &tensors).unwrap();
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn is_chain_expression_routes_correctly() {
        assert!(is_chain_expression("ij,jk,kl->il"));
        assert!(is_chain_expression("ij->ji"));
        assert!(is_chain_expression(CHAIN3));
        // Pairwise statements stay on the single-kernel path.
        assert!(!is_chain_expression("C[i,k] = A[i,j] * B[j,k]"));
        // Indirection is the fused pipeline's territory, whatever the
        // factor count.
        assert!(!is_chain_expression("C[M[p],n] = V[p] * B[K[p],n] * W[n]"));
        assert!(!is_chain_expression("C[i] ?= A[i]"));
    }

    #[test]
    fn strategies_order_costs_dp_le_greedy_le_ltr() {
        let tensors: BTreeMap<String, Tensor> = [
            ("op0".to_string(), int_tensor(vec![32, 32], 13)),
            ("op1".to_string(), int_tensor(vec![32, 2], 14)),
            ("op2".to_string(), int_tensor(vec![2, 32], 15)),
            ("op3".to_string(), int_tensor(vec![32, 32], 16)),
        ]
        .into_iter()
        .collect();
        let opts = InsumOptions::default();
        let expr = "ij,jk,kl,lm->im";
        let ltr = plan_with_strategy(expr, &tensors, &opts, OrderStrategy::LeftToRight).unwrap();
        let greedy = plan_with_strategy(expr, &tensors, &opts, OrderStrategy::Greedy).unwrap();
        let dp = plan_with_strategy(expr, &tensors, &opts, OrderStrategy::Dp).unwrap();
        assert!(dp.plan().total_flops <= greedy.plan().total_flops);
        assert!(greedy.plan().total_flops <= ltr.plan().total_flops);
        assert!(
            dp.plan().total_flops < ltr.plan().total_flops,
            "skew matters"
        );
        // All three agree bit-for-bit on integer data.
        let want = chain_reference(expr, &tensors).unwrap();
        for chain in [&ltr, &greedy, &dp] {
            let (got, _) = chain.run(&tensors).unwrap();
            assert_eq!(got.data(), want.data());
        }
    }
}
