//! Unified error type for the public API.

use std::error::Error;
use std::fmt;

/// Any error the Insum pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum InsumError {
    /// Lexing/parsing/analysis of the expression failed.
    Lang(insum_lang::LangError),
    /// Graph construction failed.
    Graph(insum_graph::GraphError),
    /// Codegen or execution failed.
    Inductor(insum_inductor::InductorError),
    /// Tensor-level error.
    Tensor(insum_tensor::TensorError),
    /// Contraction planning of a multi-operand chain failed.
    Planner(insum_planner::PlannerError),
    /// A named tensor binding is missing.
    MissingTensor(String),
    /// An [`crate::InsumOptions`] (or serving-layer) configuration value
    /// is invalid.
    Config(String),
}

impl fmt::Display for InsumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsumError::Lang(e) => write!(f, "{e}"),
            InsumError::Graph(e) => write!(f, "{e}"),
            InsumError::Inductor(e) => write!(f, "{e}"),
            InsumError::Tensor(e) => write!(f, "{e}"),
            InsumError::Planner(e) => write!(f, "{e}"),
            InsumError::MissingTensor(name) => write!(f, "tensor {name:?} was not provided"),
            InsumError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for InsumError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InsumError::Lang(e) => Some(e),
            InsumError::Graph(e) => Some(e),
            InsumError::Inductor(e) => Some(e),
            InsumError::Tensor(e) => Some(e),
            InsumError::Planner(e) => Some(e),
            InsumError::MissingTensor(_) | InsumError::Config(_) => None,
        }
    }
}

impl From<insum_lang::LangError> for InsumError {
    fn from(e: insum_lang::LangError) -> Self {
        InsumError::Lang(e)
    }
}

impl From<insum_graph::GraphError> for InsumError {
    fn from(e: insum_graph::GraphError) -> Self {
        InsumError::Graph(e)
    }
}

impl From<insum_inductor::InductorError> for InsumError {
    fn from(e: insum_inductor::InductorError) -> Self {
        InsumError::Inductor(e)
    }
}

impl From<insum_tensor::TensorError> for InsumError {
    fn from(e: insum_tensor::TensorError) -> Self {
        InsumError::Tensor(e)
    }
}

impl From<insum_planner::PlannerError> for InsumError {
    fn from(e: insum_planner::PlannerError) -> Self {
        InsumError::Planner(e)
    }
}
