//! # Insum — sparse GPU kernels from indirect Einsums
//!
//! Rust reproduction of *"Insum: Sparse GPU Kernels Simplified and
//! Optimized with Indirect Einsums"* (ASPLOS 2026). One indirect-Einsum
//! string compiles to a single fused, Tensor-Core-enabled kernel that
//! runs on the bundled RTX-3090-class simulator:
//!
//! ```
//! use insum::{insum, InsumOptions};
//! use insum_tensor::Tensor;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), insum::InsumError> {
//! // SpMM with A in COO format: C[AM[p], n] += AV[p] * B[AK[p], n]
//! let mut tensors = BTreeMap::new();
//! tensors.insert("C".into(), Tensor::zeros(vec![4, 32]));
//! tensors.insert("AM".into(), Tensor::from_indices(vec![3], vec![0, 2, 3])?);
//! tensors.insert("AK".into(), Tensor::from_indices(vec![3], vec![1, 0, 7])?);
//! tensors.insert("AV".into(), Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0])?);
//! tensors.insert("B".into(), Tensor::ones(vec![8, 32]));
//!
//! let op = insum("C[AM[p],n] += AV[p] * B[AK[p],n]", &tensors)?;
//! let (c, profile) = op.run(&tensors)?;
//! assert_eq!(c.at(&[2, 0]), 2.0);
//! assert_eq!(profile.launches(), 1); // fully fused
//! # Ok(())
//! # }
//! ```
//!
//! The pipeline is the paper's: parse ([`insum_lang`]) → FX-style graph
//! ([`insum_graph`]) → extended-Inductor codegen ([`insum_inductor`]) →
//! simulated GPU execution ([`insum_gpu`]). [`InsumOptions`] exposes the
//! ablation axes (fusion, Tensor Cores, lazy broadcasting, autotuning),
//! and [`apps`] wraps the paper's four case studies as one-expression
//! calls.

pub mod apps;
mod chain;
mod compile;
mod error;
mod fastpath;
mod options;
mod tune;

pub use chain::{
    chain_reference, is_chain_expression, plan, plan_with_strategy, run_chain, CompiledChain,
};
pub use compile::{eager, insum, insum_with, Compiled, LaunchSignature};
pub use error::InsumError;
pub use options::InsumOptions;
pub use tune::{pow2_candidates, tune_block_group_size, tune_group_size};

// Re-exports so downstream users need only this crate.
pub use insum_gpu::{DeviceModel, KernelReport, LaunchOptions, Mode, Profile};
pub use insum_inductor::{ProgramCache, ProgramCacheStats};
pub use insum_pattern::{classify_spec, classify_terms, Pattern};
pub use insum_planner::{ChainSpec, ContractionPlan, OrderStrategy, PlanStep, PlannerError};
pub use insum_tensor::{DType, Tensor};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, InsumError>;
