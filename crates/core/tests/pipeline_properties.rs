//! Property tests over the full compile pipeline: for randomized sparse
//! workloads, every compiler configuration agrees with the eager
//! reference, and the compiled kernels never read or write out of bounds
//! (the simulator would error).

use insum::apps;
use insum::{eager, InsumOptions, Tensor};
use insum_formats::{Coo, GroupCoo};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a random sparse matrix as triplets plus a dense B.
fn spmm_case() -> impl Strategy<Value = (Coo, Tensor)> {
    (2usize..24, 2usize..24, 1usize..40).prop_flat_map(|(rows, cols, nnz)| {
        (
            proptest::collection::vec((0usize..rows, 0usize..cols, 0.1f32..2.0), nnz),
            proptest::collection::vec(-2.0f32..2.0, cols * 8),
        )
            .prop_map(move |(entries, bdata)| {
                let coo = Coo::from_triplets(rows, cols, &entries).expect("in bounds");
                let b = Tensor::from_vec(vec![cols, 8], bdata).expect("length matches");
                (coo, b)
            })
    })
}

fn configs() -> Vec<InsumOptions> {
    vec![
        InsumOptions::default(),
        InsumOptions {
            lazy_broadcast: false,
            ..Default::default()
        },
        InsumOptions {
            tensor_cores: false,
            ..Default::default()
        },
        InsumOptions::unfused(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn coo_spmm_all_configs_match_eager((coo, b) in spmm_case()) {
        let app = apps::spmm_coo(&coo, &b);
        let want = eager(app.expr, &app.tensors).expect("eager evaluates");
        for opts in configs() {
            let compiled = app.compile(&opts).expect("compiles");
            let (got, profile) = compiled.run(&app.tensors).expect("runs");
            prop_assert!(
                got.allclose(&want, 1e-3, 1e-3),
                "options {:?} diverge: {:?}",
                opts.fuse,
                got.max_abs_diff(&want)
            );
            prop_assert!(profile.total_time() > 0.0);
        }
    }

    #[test]
    fn group_coo_spmm_matches_for_every_group_size(
        (coo, b) in spmm_case(),
        g in 1usize..9,
    ) {
        let gc = GroupCoo::from_coo(&coo, g).expect("valid g");
        let app = apps::spmm_group(&gc, &b);
        let want = eager(apps::SPMM_COO_EXPR, &apps::spmm_coo(&coo, &b).tensors)
            .expect("eager evaluates");
        let compiled = app.compile(&InsumOptions::default()).expect("compiles");
        let (got, _) = compiled.run(&app.tensors).expect("runs");
        prop_assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "g={g} diverges: {:?}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn analytic_timing_equals_execute_timing((coo, b) in spmm_case()) {
        let app = apps::spmm_coo(&coo, &b);
        let compiled = app.compile(&InsumOptions::default()).expect("compiles");
        let t1 = compiled.time(&app.tensors).expect("times").total_time();
        let (_, p2) = compiled.run(&app.tensors).expect("runs");
        prop_assert_eq!(t1, p2.total_time());
    }

    #[test]
    fn compiled_source_mentions_every_parameter((coo, b) in spmm_case()) {
        let app = apps::spmm_coo(&coo, &b);
        let compiled = app.compile(&InsumOptions::default()).expect("compiles");
        let src = compiled.triton_source();
        for name in ["AM", "AK", "AV", "B", "C"] {
            prop_assert!(src.contains(name), "{name} missing from kernel:\n{src}");
        }
    }
}

#[test]
fn random_dense_contractions_match_eager() {
    // A grab-bag of dense einsum shapes through the fused compiler.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(99);
    type Case = (&'static str, Vec<(&'static str, Vec<usize>)>);
    let cases: Vec<Case> = vec![
        (
            "C[i,j] = A[i,k] * B[k,j]",
            vec![("C", vec![9, 7]), ("A", vec![9, 5]), ("B", vec![5, 7])],
        ),
        (
            "C[b,i,j] = A[b,i,k] * B[b,k,j]",
            vec![
                ("C", vec![3, 6, 4]),
                ("A", vec![3, 6, 5]),
                ("B", vec![3, 5, 4]),
            ],
        ),
        (
            "C[i] += A[i,k] * B[k]",
            vec![("C", vec![11]), ("A", vec![11, 6]), ("B", vec![6])],
        ),
        (
            "C[i,j] = A[i] * B[j]",
            vec![("C", vec![5, 8]), ("A", vec![5]), ("B", vec![8])],
        ),
    ];
    for (expr, shapes) in cases {
        let tensors: BTreeMap<String, Tensor> = shapes
            .into_iter()
            .map(|(n, s)| {
                let t = if n == "C" {
                    Tensor::zeros(s)
                } else {
                    insum_tensor::rand_uniform(s, -1.0, 1.0, &mut rng)
                };
                (n.to_string(), t)
            })
            .collect();
        let want = eager(expr, &tensors).expect("eager evaluates");
        for opts in configs() {
            let compiled = insum::insum_with(expr, &tensors, &opts).expect("compiles");
            let (got, _) = compiled.run(&tensors).expect("runs");
            assert!(
                got.allclose(&want, 1e-3, 1e-3),
                "{expr} with {opts:?} diverges: {:?}",
                got.max_abs_diff(&want)
            );
        }
    }
}
