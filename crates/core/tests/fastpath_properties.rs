//! Fast-path dispatch properties: soundness (every recognized pattern
//! is bit-identical to the general lowering, NaN/±0.0 included) and
//! completeness (curated near-miss specs fall back to `General` and
//! still agree with the eager reference).
//!
//! Rank-0 outputs (`C[] = …`) are unparseable in the statement
//! language, so the `dot`/`trace` patterns are unreachable from
//! `insum_with`; they are covered by the classifier's unit tests and
//! `insum_gpu`'s microkernel tests. Likewise `ii->` (trace) vs `ii->i`
//! (diagonal) near-misses live in `insum_pattern`'s tests.

use insum::{eager, insum_with, InsumOptions, Tensor};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Sprinkle the values the bit-identity contract cares about: exact
/// zeros (the matmul zero-skip), negative zeros, NaN, and infinities.
fn specialize(mut data: Vec<f32>, specials: bool) -> Vec<f32> {
    if specials {
        for (i, v) in data.iter_mut().enumerate() {
            match i % 13 {
                0 => *v = 0.0,
                4 => *v = -0.0,
                7 => *v = f32::NAN,
                10 => *v = f32::INFINITY,
                _ => {}
            }
        }
    }
    data
}

fn tensor(shape: Vec<usize>, data: Vec<f32>, specials: bool) -> Tensor {
    Tensor::from_vec(shape, specialize(data, specials)).expect("length matches")
}

/// Compile + run `expr` twice — fast path on and off — on identical
/// bindings and assert the results are bit-identical. Returns the
/// fast-path pattern name (panics if the spec was not recognized).
fn assert_fast_matches_general(
    expr: &str,
    tensors: &BTreeMap<String, Tensor>,
    options: &InsumOptions,
) -> String {
    let fast = insum_with(expr, tensors, options).expect("fast compile");
    let pattern = fast
        .fast_path_pattern()
        .unwrap_or_else(|| panic!("{expr} should take the fast path"))
        .name()
        .to_string();
    assert!(fast.launch_signature().is_none());
    assert_eq!(fast.kernel_count(), 1);
    let general_opts = InsumOptions {
        fast_path: false,
        ..options.clone()
    };
    let general = insum_with(expr, tensors, &general_opts).expect("general compile");
    assert!(general.fast_path_pattern().is_none());
    let (got, fast_profile) = fast.run(tensors).expect("fast run");
    let (want, _) = general.run(tensors).expect("general run");
    assert!(
        got.bit_eq(&want),
        "{expr} [{pattern}] fast-path result is not bit-identical \
         (max |Δ| = {:?})",
        got.max_abs_diff(&want)
    );
    // The analytic profile must agree with the execute profile.
    let analytic = fast.time(tensors).expect("fast time");
    assert_eq!(analytic.total_time(), fast_profile.total_time());
    pattern
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..10, 2usize..10, 2usize..10)
}

fn data(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_family_is_bit_identical(
        (m, k, n) in dims(),
        specials in proptest::bool::ANY,
        accumulate in proptest::bool::ANY,
        a in data(1024),
        b in data(1024),
    ) {
        let tensors: BTreeMap<String, Tensor> = [
            ("A".to_string(), tensor(vec![m, k], a[..m * k].to_vec(), specials)),
            ("B".to_string(), tensor(vec![k, n], b[..k * n].to_vec(), specials)),
            ("C".to_string(), tensor(vec![m, n], a[..m * n].to_vec(), false)),
        ]
        .into_iter()
        .collect();
        let expr = if accumulate {
            "C[i,j] += A[i,k] * B[k,j]"
        } else {
            "C[i,j] = A[i,k] * B[k,j]"
        };
        prop_assert_eq!(
            assert_fast_matches_general(expr, &tensors, &InsumOptions::default()),
            "matmul"
        );
    }

    #[test]
    fn batched_matmul_is_bit_identical(
        (g, m, k) in (2usize..5, 2usize..7, 2usize..7),
        specials in proptest::bool::ANY,
        a in data(1024),
        b in data(1024),
    ) {
        let n = 3usize;
        let tensors: BTreeMap<String, Tensor> = [
            ("A".to_string(), tensor(vec![g, m, k], a[..g * m * k].to_vec(), specials)),
            ("B".to_string(), tensor(vec![g, k, n], b[..g * k * n].to_vec(), specials)),
            ("C".to_string(), Tensor::zeros(vec![g, m, n])),
        ]
        .into_iter()
        .collect();
        prop_assert_eq!(
            assert_fast_matches_general(
                "C[g,i,j] = A[g,i,k] * B[g,k,j]",
                &tensors,
                &InsumOptions::default()
            ),
            "batched_matmul"
        );
    }

    #[test]
    fn copy_and_reduction_shapes_are_bit_identical(
        (d0, d1, d2) in dims(),
        specials in proptest::bool::ANY,
        a in data(1024),
    ) {
        let cube = tensor(vec![d0, d1, d2], a[..d0 * d1 * d2].to_vec(), specials);
        let mat = tensor(vec![d0, d1], a[..d0 * d1].to_vec(), specials);
        let opts = InsumOptions::default();

        // Transpose / identity / 3-D permutation: zero-copy views.
        for (expr, out_shape, pattern) in [
            ("C[j,i] = A2[i,j]", vec![d1, d0], "transpose"),
            ("C[i,j] = A2[i,j]", vec![d0, d1], "transpose"),
            ("C[k,i,j] = A3[i,j,k]", vec![d2, d0, d1], "transpose"),
        ] {
            let tensors: BTreeMap<String, Tensor> = [
                ("A2".to_string(), mat.clone()),
                ("A3".to_string(), cube.clone()),
                ("C".to_string(), Tensor::zeros(out_shape)),
            ]
            .into_iter()
            .collect();
            prop_assert_eq!(assert_fast_matches_general(expr, &tensors, &opts), pattern);
            let compiled = insum_with(expr, &tensors, &opts).expect("compiles");
            let (out, _) = compiled.run(&tensors).expect("runs");
            let src = if expr.contains("A3") { &cube } else { &mat };
            prop_assert!(out.shares_storage(src), "{expr} must not copy");
        }

        // Reductions (assign and accumulate).
        for (expr, out_shape, base_specials) in [
            ("C[i] = A2[i,j]", vec![d0], false),
            ("C[i] += A2[i,j]", vec![d0], false),
            ("C[i,k] = A3[i,j,k]", vec![d0, d2], false),
        ] {
            let tensors: BTreeMap<String, Tensor> = [
                ("A2".to_string(), mat.clone()),
                ("A3".to_string(), cube.clone()),
                (
                    "C".to_string(),
                    tensor(out_shape.clone(), a[..out_shape.iter().product::<usize>()].to_vec(), base_specials),
                ),
            ]
            .into_iter()
            .collect();
            prop_assert_eq!(
                assert_fast_matches_general(expr, &tensors, &opts),
                "reduction"
            );
        }

        // Diagonal view of a square matrix.
        let sq = tensor(vec![d0, d0], a[..d0 * d0].to_vec(), specials);
        let tensors: BTreeMap<String, Tensor> = [
            ("A".to_string(), sq.clone()),
            ("C".to_string(), Tensor::zeros(vec![d0])),
        ]
        .into_iter()
        .collect();
        prop_assert_eq!(
            assert_fast_matches_general("C[i] = A[i,i]", &tensors, &opts),
            "diagonal"
        );
        let compiled = insum_with("C[i] = A[i,i]", &tensors, &opts).expect("compiles");
        let (out, _) = compiled.run(&tensors).expect("runs");
        prop_assert!(out.shares_storage(&sq), "diagonal must not copy");
    }

    #[test]
    fn hadamard_and_outer_are_bit_identical(
        (m, n) in (2usize..12, 2usize..12),
        specials in proptest::bool::ANY,
        accumulate in proptest::bool::ANY,
        a in data(256),
        b in data(256),
    ) {
        let op = if accumulate { "+=" } else { "=" };
        let had: BTreeMap<String, Tensor> = [
            ("A".to_string(), tensor(vec![m, n], a[..m * n].to_vec(), specials)),
            ("B".to_string(), tensor(vec![m, n], b[..m * n].to_vec(), specials)),
            ("C".to_string(), tensor(vec![m, n], b[..m * n].to_vec(), false)),
        ]
        .into_iter()
        .collect();
        prop_assert_eq!(
            assert_fast_matches_general(
                &format!("C[i,j] {op} A[i,j] * B[i,j]"),
                &had,
                &InsumOptions::default()
            ),
            "hadamard"
        );
        let outer: BTreeMap<String, Tensor> = [
            ("A".to_string(), tensor(vec![m], a[..m].to_vec(), specials)),
            ("B".to_string(), tensor(vec![n], b[..n].to_vec(), specials)),
            ("C".to_string(), tensor(vec![m, n], a[..m * n].to_vec(), false)),
        ]
        .into_iter()
        .collect();
        prop_assert_eq!(
            assert_fast_matches_general(
                &format!("C[i,j] {op} A[i] * B[j]"),
                &outer,
                &InsumOptions::default()
            ),
            "outer"
        );
    }

    #[test]
    fn soundness_holds_across_option_ablations(
        (m, k, n) in (2usize..8, 2usize..8, 2usize..8),
        specials in proptest::bool::ANY,
        a in data(256),
        b in data(256),
    ) {
        let tensors: BTreeMap<String, Tensor> = [
            ("A".to_string(), tensor(vec![m, k], a[..m * k].to_vec(), specials)),
            ("B".to_string(), tensor(vec![k, n], b[..k * n].to_vec(), specials)),
            ("C".to_string(), Tensor::zeros(vec![m, n])),
        ]
        .into_iter()
        .collect();
        for opts in [
            InsumOptions::default(),
            InsumOptions { lazy_broadcast: false, ..Default::default() },
        ] {
            prop_assert_eq!(
                assert_fast_matches_general("C[i,j] = A[i,k] * B[k,j]", &tensors, &opts),
                "matmul"
            );
        }
        // Ablations that change the lowering's accumulation semantics
        // (scalar path without the zero skip, autotuned or overridden
        // tile boundaries) must decline the fast path entirely.
        for opts in [
            InsumOptions { tensor_cores: false, ..Default::default() },
            InsumOptions { autotune: true, ..Default::default() },
            InsumOptions { rblock: Some(16), ..Default::default() },
        ] {
            let compiled = insum_with("C[i,j] = A[i,k] * B[k,j]", &tensors, &opts)
                .expect("general compile");
            prop_assert!(
                compiled.fast_path_pattern().is_none(),
                "semantics-changing ablations must route to the general path"
            );
        }
    }
}

/// Large extents that cross every default tile width (the general
/// pipeline tiles Y/X/R; the fast path must still match bit-for-bit).
#[test]
fn large_extents_cross_tile_boundaries() {
    let gen = |len: usize, seed: f32| -> Vec<f32> {
        (0..len)
            .map(|i| (i as f32 * 0.618 + seed).sin() * 2.0)
            .collect()
    };
    let (m, k, n) = (70, 257, 33);
    let tensors: BTreeMap<String, Tensor> = [
        ("A".to_string(), tensor(vec![m, k], gen(m * k, 0.3), true)),
        ("B".to_string(), tensor(vec![k, n], gen(k * n, 0.7), true)),
        ("C".to_string(), Tensor::zeros(vec![m, n])),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        assert_fast_matches_general(
            "C[i,j] = A[i,k] * B[k,j]",
            &tensors,
            &InsumOptions::default()
        ),
        "matmul"
    );
    let red: BTreeMap<String, Tensor> = [
        (
            "A".to_string(),
            tensor(vec![m, 1733], gen(m * 1733, 0.1), true),
        ),
        ("C".to_string(), Tensor::zeros(vec![m])),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        assert_fast_matches_general("C[i] = A[i,j]", &red, &InsumOptions::default()),
        "reduction"
    );
}

/// Near-miss specs that must classify `General`: the compiled operation
/// reports no fast-path pattern and still matches the eager reference.
#[test]
fn near_misses_fall_back_to_general() {
    let gen = |len: usize| -> Vec<f32> { (0..len).map(|i| (i as f32) * 0.21 - 3.0).collect() };
    let opts = InsumOptions::default();
    type Case = (&'static str, Vec<(&'static str, Vec<usize>)>);
    let cases: Vec<Case> = vec![
        // Matvec: output drops an index of one factor.
        (
            "C[i] = A[i,j] * B[j]",
            vec![("C", vec![4]), ("A", vec![4, 5]), ("B", vec![5])],
        ),
        // Broadcast: B has no `i`, output keeps both.
        (
            "C[i,j] = A[i,j] * B[j]",
            vec![("C", vec![4, 5]), ("A", vec![4, 5]), ("B", vec![5])],
        ),
        // Transposed Hadamard.
        (
            "C[i,j] = A[i,j] * B[j,i]",
            vec![("C", vec![4, 5]), ("A", vec![4, 5]), ("B", vec![5, 4])],
        ),
        // Transposed-operand matmul.
        (
            "C[i,j] = A[i,k] * B[j,k]",
            vec![("C", vec![4, 5]), ("A", vec![4, 3]), ("B", vec![5, 3])],
        ),
        // Reduce + permute: kept indices out of order.
        (
            "C[j,i] = A[i,j,k]",
            vec![("C", vec![5, 4]), ("A", vec![4, 5, 3])],
        ),
    ];
    for (expr, shapes) in cases {
        let tensors: BTreeMap<String, Tensor> = shapes
            .into_iter()
            .map(|(name, shape)| {
                let t = if name == "C" {
                    Tensor::zeros(shape)
                } else {
                    let len = shape.iter().product();
                    Tensor::from_vec(shape, gen(len)).unwrap()
                };
                (name.to_string(), t)
            })
            .collect();
        let compiled = insum_with(expr, &tensors, &opts).expect("compiles");
        assert!(
            compiled.fast_path_pattern().is_none(),
            "{expr} must fall back to the general lowering"
        );
        let (got, _) = compiled.run(&tensors).expect("runs");
        let want = eager(expr, &tensors).expect("eager evaluates");
        assert!(
            got.allclose(&want, 1e-4, 1e-4),
            "{expr} diverges from eager"
        );
    }
}

/// Gate near-misses that classify fast but are dtype- or op-ineligible:
/// accumulate copies and narrowing transposes run the general path.
#[test]
fn copy_gates_route_to_general() {
    use insum::DType;
    let a32 = Tensor::from_vec(vec![3, 4], (0..12).map(|i| i as f32 - 5.5).collect()).unwrap();
    let opts = InsumOptions::default();

    // `+=` transpose: recognized shape, but copies only fast-path `=`.
    let t: BTreeMap<String, Tensor> = [
        ("A".to_string(), a32.clone()),
        ("C".to_string(), Tensor::ones(vec![4, 3])),
    ]
    .into_iter()
    .collect();
    let acc = insum_with("C[j,i] += A[i,j]", &t, &opts).expect("compiles");
    assert!(acc.fast_path_pattern().is_none());

    // F32 -> F16 narrowing transpose: needs a real rounding kernel.
    let t16: BTreeMap<String, Tensor> = [
        ("A".to_string(), a32.clone()),
        ("C".to_string(), Tensor::zeros_with(vec![4, 3], DType::F16)),
    ]
    .into_iter()
    .collect();
    let narrow = insum_with("C[j,i] = A[i,j]", &t16, &opts).expect("compiles");
    assert!(narrow.fast_path_pattern().is_none());

    // F16 -> F32 widening transpose IS view-eligible (raw bits survive).
    let a16 = a32.cast(DType::F16);
    let widen: BTreeMap<String, Tensor> = [
        ("A".to_string(), a16.clone()),
        ("C".to_string(), Tensor::zeros(vec![4, 3])),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        assert_fast_matches_general("C[j,i] = A[i,j]", &widen, &opts),
        "transpose"
    );

    // Opt-out: fast_path = false compiles the general pipeline even for
    // a perfect matmul.
    let mm: BTreeMap<String, Tensor> = [
        ("A".to_string(), a32.clone()),
        ("B".to_string(), Tensor::ones(vec![4, 2])),
        ("C".to_string(), Tensor::zeros(vec![3, 2])),
    ]
    .into_iter()
    .collect();
    let off = insum_with(
        "C[i,j] = A[i,k] * B[k,j]",
        &mm,
        &InsumOptions {
            fast_path: false,
            ..Default::default()
        },
    )
    .expect("compiles");
    assert!(off.fast_path_pattern().is_none());
    assert!(off.launch_signature().is_some(), "general fused kernel");
}

/// F16 end-to-end: rounding epilogues must match the general pipeline.
#[test]
fn f16_compute_patterns_are_bit_identical() {
    use insum::DType;
    let gen = |len: usize, s: f32| -> Vec<f32> {
        (0..len)
            .map(|i| ((i as f32) * 0.377 + s).cos() * 3.0)
            .collect()
    };
    let (m, k, n) = (6, 9, 5);
    let a = Tensor::from_vec(vec![m, k], gen(m * k, 0.2))
        .unwrap()
        .cast(DType::F16);
    let b = Tensor::from_vec(vec![k, n], gen(k * n, 1.4))
        .unwrap()
        .cast(DType::F16);
    let c = Tensor::from_vec(vec![m, n], gen(m * n, 2.6))
        .unwrap()
        .cast(DType::F16);
    let tensors: BTreeMap<String, Tensor> = [
        ("A".to_string(), a),
        ("B".to_string(), b),
        ("C".to_string(), c),
    ]
    .into_iter()
    .collect();
    for expr in ["C[i,j] = A[i,k] * B[k,j]", "C[i,j] += A[i,k] * B[k,j]"] {
        assert_eq!(
            assert_fast_matches_general(expr, &tensors, &InsumOptions::default()),
            "matmul",
            "{expr}"
        );
    }
}
