//! Property tests for the contraction planner's executor contract:
//! on integer-valued data, every search strategy's output is
//! bit-identical to the naive left-to-right reference (and to the dense
//! `einsum` oracle), and the searched orders never cost more than the
//! naive one — DP ≤ greedy ≤ left-to-right.

use insum::{chain_reference, plan_with_strategy, InsumOptions, OrderStrategy};
use insum_tensor::{einsum, Tensor};
use proptest::prelude::*;
use std::collections::BTreeMap;

const LETTERS: &[u8] = b"abcdef";

/// Deterministic values in {-1, 0, 1}: f32 products and sums of chains
/// this small are exact integers, so contraction order cannot change a
/// single bit.
fn int_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9e37_79b9).wrapping_add(0x1234_5678);
    Tensor::from_fn(shape, |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 3) as f32 - 1.0
    })
}

/// Build a random `n`-operand spec-form chain from a 6-letter index pool
/// with extents in 1..=4: the spec string, its operand bindings
/// (`op0`, …), and the operand tensors in order for the dense oracle.
fn random_chain(n: usize, seed: u64) -> (String, BTreeMap<String, Tensor>, Vec<Tensor>) {
    let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).max(1);
    let mut next = move |bound: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound
    };
    let extents: Vec<usize> = (0..LETTERS.len()).map(|_| 1 + next(4) as usize).collect();
    let mut terms: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut used: Vec<usize> = Vec::new();
    for _ in 0..n {
        // Distinct letters per operand (no diagonals: the pairwise
        // statement language reads each leaf index once per axis).
        let rank = 1 + next(3) as usize;
        let mut pool: Vec<usize> = (0..LETTERS.len()).collect();
        let mut term = Vec::with_capacity(rank);
        for _ in 0..rank {
            let pick = pool.remove(next(pool.len() as u64) as usize);
            term.push(pick);
            if !used.contains(&pick) {
                used.push(pick);
            }
        }
        terms.push(term);
    }
    // Output: a random distinct subset of the bound letters (possibly
    // empty — a rank-0 output exercises the host fallback).
    let mut output = Vec::new();
    for &ix in &used {
        if output.len() < 3 && next(3) == 0 {
            output.push(ix);
        }
    }
    let render =
        |term: &[usize]| -> String { term.iter().map(|&ix| LETTERS[ix] as char).collect() };
    let spec = format!(
        "{}->{}",
        terms
            .iter()
            .map(|t| render(t))
            .collect::<Vec<_>>()
            .join(","),
        render(&output)
    );
    let mut tensors = BTreeMap::new();
    let mut ordered = Vec::with_capacity(n);
    for (i, term) in terms.iter().enumerate() {
        let shape: Vec<usize> = term.iter().map(|&ix| extents[ix]).collect();
        let t = int_tensor(shape, seed.wrapping_add(1 + i as u64));
        tensors.insert(format!("op{i}"), t.clone());
        ordered.push(t);
    }
    (spec, tensors, ordered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy agrees with the naive left-to-right reference and
    /// the dense einsum oracle bit-for-bit, and search never loses to
    /// the naive order on the cost model.
    #[test]
    fn planned_chains_are_bit_identical_and_never_costlier(
        n in 3usize..=5,
        seed in 0u64..1_000_000,
    ) {
        let (spec, tensors, ordered) = random_chain(n, seed);
        let refs: Vec<&Tensor> = ordered.iter().collect();
        let want = einsum(&spec, &refs).unwrap();
        let reference = chain_reference(&spec, &tensors).unwrap();
        prop_assert_eq!(
            reference.data(), want.data(),
            "LTR reference vs dense einsum for {}", spec
        );
        let opts = InsumOptions::default();
        let mut flops = BTreeMap::new();
        for strategy in [
            OrderStrategy::LeftToRight,
            OrderStrategy::Greedy,
            OrderStrategy::Dp,
        ] {
            let chain = plan_with_strategy(&spec, &tensors, &opts, strategy).unwrap();
            flops.insert(format!("{strategy:?}"), chain.plan().total_flops);
            let (got, _) = chain.run(&tensors).unwrap();
            prop_assert_eq!(
                got.data(), want.data(),
                "{:?} diverged on {}", strategy, spec
            );
        }
        prop_assert!(flops["Dp"] <= flops["Greedy"], "DP beats greedy: {}", spec);
        prop_assert!(flops["Greedy"] <= flops["LeftToRight"], "greedy beats LTR: {}", spec);
    }
}
