//! Concurrency properties of the cross-launch [`ProgramCache`]: many
//! threads hammering `get_or_compile` on overlapping keys must keep the
//! hit/miss/eviction counters consistent, respect the capacity bound,
//! and hand every caller a program that is structurally identical to a
//! fresh compilation of its kernel (observable behavior: identical
//! outputs and launch reports).

use insum_gpu::{DeviceModel, LaunchOptions, Mode, Program};
use insum_inductor::ProgramCache;
use insum_kernel::{BinOp, Kernel, KernelBuilder};
use insum_tensor::{DType, Tensor};
use std::sync::Arc;

/// `Y[i] = scale * X[i] + bias` over 64 elements, 32 lanes per program.
fn kernel(scale: f64, bias: f64) -> Kernel {
    let mut b = KernelBuilder::new("cc");
    let x = b.input("X");
    let y = b.output("Y");
    let pid = b.program_id(0);
    let lanes = b.arange(32);
    let width = b.constant(32.0);
    let base = b.binary(BinOp::Mul, pid, width);
    let offs = b.binary(BinOp::Add, base, lanes);
    let v = b.load(x, offs, None, 0.0);
    let s = b.constant(scale);
    let sv = b.binary(BinOp::Mul, v, s);
    let c = b.constant(bias);
    let sb = b.binary(BinOp::Add, sv, c);
    b.store(y, offs, sb, None);
    b.build()
}

const LENS: [usize; 2] = [64, 64];
const DTS: [DType; 2] = [DType::F32, DType::F32];

/// Launch `program` on a fixed input and return the output bits plus the
/// report — the structural identity oracle.
fn observe(program: &Program) -> (Vec<f32>, insum_gpu::KernelReport) {
    let mut x = Tensor::from_fn(vec![64], |i| i[0] as f32 * 0.5 - 7.0);
    let mut y = Tensor::zeros(vec![64]);
    let report = program
        .launch_with(
            &mut [&mut x, &mut y],
            &DeviceModel::rtx3090(),
            Mode::Execute,
            &LaunchOptions::sequential(),
        )
        .expect("launch succeeds");
    (y.data().to_vec(), report)
}

#[test]
fn concurrent_get_or_compile_is_consistent_and_structurally_identical() {
    // More distinct keys than capacity, so the LRU bound is exercised
    // while threads race on overlapping keys.
    const THREADS: usize = 8;
    const ITERS: usize = 60;
    const KEYS: usize = 6;
    const CAPACITY: usize = 4;

    let variants: Vec<Kernel> = (0..KEYS)
        .map(|i| kernel(1.0 + i as f64, 0.25 * i as f64))
        .collect();
    let expected: Vec<(Vec<f32>, insum_gpu::KernelReport)> = variants
        .iter()
        .map(|k| {
            let p = Program::compile(k, &[2], &LENS, &DTS).expect("reference compile");
            observe(&p)
        })
        .collect();

    let cache = ProgramCache::with_capacity(CAPACITY);
    let collected: Vec<Vec<(usize, Arc<Program>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = &cache;
                let variants = &variants;
                scope.spawn(move || {
                    let mut got = Vec::with_capacity(ITERS);
                    for i in 0..ITERS {
                        // Each thread walks the key space at its own
                        // stride so hits, misses, and evictions overlap.
                        let k = (i * (t + 1) + t) % KEYS;
                        let p = cache
                            .get_or_compile(&variants[k], &[2], &LENS, &DTS)
                            .expect("compile succeeds");
                        got.push((k, p));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Counter consistency: every lookup is exactly one hit or one miss,
    // occupancy respects the bound, and evictions never exceed what the
    // misses could have inserted.
    let stats = cache.stats();
    let lookups = (THREADS * ITERS) as u64;
    assert_eq!(stats.hits + stats.misses, lookups);
    assert!(stats.misses >= KEYS as u64, "each key misses at least once");
    assert!(stats.entries <= CAPACITY);
    assert!(
        stats.entries as u64 + stats.evictions <= stats.misses,
        "every resident or evicted entry came from a miss \
         (entries={}, evictions={}, misses={})",
        stats.entries,
        stats.evictions,
        stats.misses
    );
    assert!(stats.evictions > 0, "key space exceeds capacity");

    // Structural identity: every returned program behaves exactly like a
    // fresh compilation of its kernel. Deduplicate by Arc pointer so the
    // launch-based check stays cheap.
    let mut seen: Vec<(usize, *const Program)> = Vec::new();
    for thread_results in &collected {
        for (k, p) in thread_results {
            let ptr = Arc::as_ptr(p);
            if seen.contains(&(*k, ptr)) {
                continue;
            }
            seen.push((*k, ptr));
            let (out, report) = observe(p);
            assert_eq!(out, expected[*k].0, "key {k}: outputs diverge");
            assert_eq!(report, expected[*k].1, "key {k}: reports diverge");
        }
    }
}
