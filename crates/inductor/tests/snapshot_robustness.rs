//! Corruption fuzzing of cache snapshots: every truncation length and
//! every single-byte flip must degrade to recompile — load returns
//! normally with damage counted, never panics, and the subsequent run
//! is bit-identical to a cold-compile oracle.

use insum_gpu::{DeviceModel, Mode};
use insum_inductor::{
    load_snapshot_with, save_snapshot_with, AutotuneCache, ProgramCache, TileConfig,
};
use insum_kernel::{BinOp, Kernel, KernelBuilder};
use insum_tensor::{DType, Tensor};
use std::fs;
use std::path::{Path, PathBuf};

fn scale_kernel(scale: f64) -> Kernel {
    let mut b = KernelBuilder::new("scale");
    let x = b.input("X");
    let y = b.output("Y");
    let lanes = b.arange(32);
    let s = b.constant(scale);
    let v = b.load(x, lanes, None, 0.0);
    let sv = b.binary(BinOp::Mul, v, s);
    b.store(y, lanes, sv, None);
    b.build()
}

const LENS: [usize; 2] = [32, 32];
const DTS: [DType; 2] = [DType::F32, DType::F32];

/// Compile (or hit) both workload kernels through `cache` and execute
/// them, returning the output bit patterns.
fn run_workload(cache: &ProgramCache) -> Vec<Vec<u32>> {
    let device = DeviceModel::rtx3090();
    [2.0, 3.0]
        .iter()
        .map(|&scale| {
            let program = cache
                .get_or_compile(&scale_kernel(scale), &[4], &LENS, &DTS)
                .expect("workload compiles");
            let mut x =
                Tensor::from_vec(vec![32], (0..32).map(|i| i as f32 * 0.37 - 3.0).collect())
                    .unwrap();
            let mut y = Tensor::zeros(vec![32]);
            program
                .launch(&mut [&mut x, &mut y], &device, Mode::Execute)
                .expect("workload launches");
            y.data().iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("insum_snapshot_fuzz_{tag}_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A pristine snapshot of the two-kernel workload plus one autotune
/// winner, and the cold-compile oracle outputs.
fn pristine_snapshot(dir: &Path) -> (PathBuf, Vec<u8>, Vec<Vec<u32>>) {
    let oracle = run_workload(&ProgramCache::new());
    let hot = ProgramCache::new();
    let run = run_workload(&hot);
    assert_eq!(run, oracle, "cold compiles must agree before fuzzing");
    let winners = AutotuneCache::new();
    winners.store(
        0x5eed,
        TileConfig {
            yblock: 16,
            xblock: 32,
            rblock: 16,
        },
    );
    let path = dir.join("cache.snap");
    let written = save_snapshot_with(&path, &hot, &winners).unwrap();
    assert_eq!(written, 3);
    (path.clone(), fs::read(&path).unwrap(), oracle)
}

#[test]
fn every_truncation_degrades_to_recompile() {
    let dir = tmp_dir("truncation");
    let (path, bytes, oracle) = pristine_snapshot(&dir);

    for cut in 0..bytes.len() {
        fs::write(&path, &bytes[..cut]).unwrap();
        let cache = ProgramCache::new();
        let winners = AutotuneCache::new();
        let report = load_snapshot_with(&path, &cache, &winners);
        assert!(
            report.rejected >= 1,
            "truncation at {cut} lost records but rejected none"
        );
        assert!(
            report.programs_loaded + report.winners_loaded + report.rejected >= 1,
            "truncation at {cut}: empty report"
        );
        assert_eq!(
            run_workload(&cache),
            oracle,
            "truncation at {cut} changed workload bits"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_single_byte_flip_degrades_to_recompile() {
    let dir = tmp_dir("byteflip");
    let (path, bytes, oracle) = pristine_snapshot(&dir);

    for pos in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0xff;
        fs::write(&path, &damaged).unwrap();
        let cache = ProgramCache::new();
        let winners = AutotuneCache::new();
        // Must return normally whatever the damage: header flips count
        // one rejection, body flips are caught by per-record CRCs (or,
        // for a section-tag flip, by the unknown-tag accounting).
        let report = load_snapshot_with(&path, &cache, &winners);
        assert!(
            report.rejected >= 1,
            "flip at byte {pos} went completely unnoticed"
        );
        // Whatever survived, serving is bit-identical to cold compiles:
        // surviving records are verbatim originals, everything else
        // recompiles.
        assert_eq!(
            run_workload(&cache),
            oracle,
            "flip at byte {pos} changed workload bits"
        );
        if let Some(cfg) = winners.lookup(0x5eed) {
            assert_eq!(
                cfg,
                TileConfig {
                    yblock: 16,
                    xblock: 32,
                    rblock: 16
                },
                "flip at byte {pos} surfaced a corrupt winner"
            );
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}
