//! Golden codegen tests (paper Figs. 8–9): the generated kernels must
//! have the documented structure — not just compute the right values.

use insum_graph::TensorMeta;
use insum_inductor::{build_plan, compile_fused, CodegenOptions};
use insum_kernel::print_kernel;
use insum_lang::parse;
use insum_tensor::DType;
use std::collections::BTreeMap;

fn metas(pairs: &[(&str, &[usize], DType)]) -> BTreeMap<String, TensorMeta> {
    pairs
        .iter()
        .map(|(n, s, d)| (n.to_string(), TensorMeta::new(s.to_vec(), *d)))
        .collect()
}

fn fig9_metas() -> BTreeMap<String, TensorMeta> {
    metas(&[
        ("C", &[64, 64], DType::F32),
        ("D", &[32], DType::I32),
        ("A", &[32, 128], DType::F32),
        ("E", &[32], DType::I32),
        ("B", &[32, 64], DType::F32),
    ])
}

const FIG9: &str = "C[D[y],x] += A[y,E[r]] * B[r,x]";

#[test]
fn fig9_lazy_kernel_structure() {
    let stmt = parse(FIG9).unwrap();
    let plan = build_plan(&stmt, &fig9_metas()).unwrap();
    let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
    let src = print_kernel(&op.kernel);

    // Paper Fig. 9 structure: one kernel with program ids, the E gather
    // inside the reduction loop, one tl.dot, the D load in the epilogue,
    // and an atomic scatter into C.
    assert_eq!(src.matches("tl.program_id").count(), 2, "2-D grid");
    assert_eq!(src.matches("tl.dot").count(), 1, "single fused dot");
    assert_eq!(src.matches("tl.atomic_add").count(), 1, "single scatter");
    assert!(src.contains("for "), "reduction loop present");
    // E is loaded inside the loop (appears after the `for` line), D after it.
    let loop_pos = src.find("for ").expect("loop exists");
    let e_pos = src.find("tl.load(E + ").expect("E gather exists");
    let d_pos = src.find("tl.load(D + ").expect("D load exists");
    assert!(e_pos > loop_pos, "E gather belongs to the loop body");
    assert!(d_pos > e_pos, "D scatter index loads in the epilogue");
    // Lazy broadcasting: no view/trans anywhere.
    assert!(!src.contains("tl.view"), "lazy mode has no views:\n{src}");
    assert!(
        !src.contains("tl.trans"),
        "lazy mode has no transposes:\n{src}"
    );
}

#[test]
fn fig8b_eager_kernel_pays_views_and_transposes() {
    let stmt = parse(FIG9).unwrap();
    let plan = build_plan(&stmt, &fig9_metas()).unwrap();
    let op = compile_fused(
        &plan,
        &CodegenOptions {
            lazy_broadcast: false,
            ..Default::default()
        },
    )
    .unwrap();
    let src = print_kernel(&op.kernel);
    assert!(src.contains("tl.view"), "eager mode views:\n{src}");
    assert!(src.contains("tl.trans"), "eager mode transposes:\n{src}");
    assert!(src.contains("tl.dot"));
}

#[test]
fn fig8a_scalar_kernel_has_no_dot() {
    let stmt = parse(FIG9).unwrap();
    let plan = build_plan(&stmt, &fig9_metas()).unwrap();
    let op = compile_fused(
        &plan,
        &CodegenOptions {
            tensor_cores: false,
            ..Default::default()
        },
    )
    .unwrap();
    let src = print_kernel(&op.kernel);
    assert!(!src.contains("tl.dot"));
    assert!(
        src.contains("tl.sum"),
        "scalar path reduces with tl.sum:\n{src}"
    );
    assert!(!op.uses_dot);
}

#[test]
fn block_group_coo_kernel_decomposes_flattened_reduction() {
    // R = (q, bk): the kernel must decompose r with // and %.
    let stmt = parse("C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]").unwrap();
    let m = metas(&[
        ("C", &[4, 32, 64], DType::F16),
        ("AM", &[6], DType::I32),
        ("AV", &[6, 2, 32, 32], DType::F16),
        ("AK", &[6, 2], DType::I32),
        ("B", &[4, 32, 64], DType::F16),
    ]);
    let plan = build_plan(&stmt, &m).unwrap();
    assert_eq!(plan.r_vars, vec!["q", "bk"]);
    let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
    let src = print_kernel(&op.kernel);
    assert!(
        src.contains(" // "),
        "flattened r decomposition uses floor division:\n{src}"
    );
    assert!(src.contains("tl.dot"));
    assert!(src.contains("tl.atomic_add"));
}

#[test]
fn masks_appear_only_when_extents_do_not_divide_tiles() {
    // 64-divisible everywhere with 16-tiles: no masks needed.
    let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
    let m = metas(&[
        ("C", &[64, 64], DType::F32),
        ("A", &[64, 64], DType::F32),
        ("B", &[64, 64], DType::F32),
    ]);
    let plan = build_plan(&stmt, &m).unwrap();
    let opts = CodegenOptions {
        yblock: Some(16),
        xblock: Some(16),
        rblock: Some(16),
        ..Default::default()
    };
    let src = print_kernel(&compile_fused(&plan, &opts).unwrap().kernel);
    assert!(
        !src.contains("mask="),
        "divisible extents need no masks:\n{src}"
    );

    // 72 rows with 16-tiles: the Y dimension must be masked.
    let m2 = metas(&[
        ("C", &[72, 64], DType::F32),
        ("A", &[72, 64], DType::F32),
        ("B", &[64, 64], DType::F32),
    ]);
    let plan2 = build_plan(&stmt, &m2).unwrap();
    let src2 = print_kernel(&compile_fused(&plan2, &opts).unwrap().kernel);
    assert!(
        src2.contains("mask="),
        "non-divisible extents are masked:\n{src2}"
    );
}

#[test]
fn grid_encodes_batch_times_tiles() {
    let stmt =
        parse("Out[MAPX[p,q],m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]").unwrap();
    let m = metas(&[
        ("Out", &[100, 32], DType::F16),
        ("MAPX", &[40, 16], DType::I32),
        ("MAPY", &[40, 16], DType::I32),
        ("MAPZ", &[40], DType::I32),
        ("MAPV", &[40, 16], DType::F16),
        ("In", &[100, 32], DType::F16),
        ("Weight", &[27, 32, 32], DType::F16),
    ]);
    let plan = build_plan(&stmt, &m).unwrap();
    let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
    // grid = [m tiles, groups * q tiles]: 32/xb tiles, 40 groups x 1.
    assert_eq!(op.grid[0], 32 / op.xblock);
    assert_eq!(op.grid[1], 40 * 16usize.div_ceil(op.yblock));
    assert!(op.uses_dot, "conv uses tensor cores");
}

#[test]
fn codegen_is_deterministic() {
    let stmt = parse(FIG9).unwrap();
    let plan = build_plan(&stmt, &fig9_metas()).unwrap();
    let a = compile_fused(&plan, &CodegenOptions::default()).unwrap();
    let b = compile_fused(&plan, &CodegenOptions::default()).unwrap();
    assert_eq!(print_kernel(&a.kernel), print_kernel(&b.kernel));
    assert_eq!(a.grid, b.grid);
}

#[test]
fn instruction_count_is_loop_invariant_hoisted() {
    // Constants and aranges must be hoisted: the loop body contains no
    // Const/Arange instructions.
    use insum_kernel::Instr;
    let stmt = parse(FIG9).unwrap();
    let plan = build_plan(&stmt, &fig9_metas()).unwrap();
    let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
    fn loop_bodies(body: &[Instr], out: &mut Vec<Instr>) {
        for i in body {
            if let Instr::Loop { body, .. } = i {
                out.extend(body.iter().cloned());
                loop_bodies(body, out);
            }
        }
    }
    let mut inner = Vec::new();
    loop_bodies(&op.kernel.body, &mut inner);
    assert!(!inner.is_empty());
    for i in &inner {
        assert!(
            !matches!(i, Instr::Const { .. } | Instr::Arange { .. }),
            "loop-invariant value not hoisted: {i:?}"
        );
    }
}
