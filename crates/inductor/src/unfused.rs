//! The stock-Inductor baseline: one kernel per FX node (§5.2).
//!
//! Without the `ops.dot` extension, an indirect Einsum lowers to separate
//! gather, matmul-template, and scatter kernels with every intermediate
//! materialized in DRAM — exactly the configuration the paper's ablation
//! measures in Fig. 13 rows 1–3 ("PyTorch compiler separately launches
//! gather, matrix multiplication, and scatter operations").

use crate::cache::{cached_program, ProgramCache};
use crate::codegen::{compile_fused, CodegenOptions, FusedOp};
use crate::error::InductorError;
use crate::plan::{DimDesc, FactorDesc, FusionPlan, Role};
use crate::Result;
use insum_gpu::{DeviceModel, LaunchOptions, Mode, Profile};
use insum_graph::{Graph, Lowered, NodeId, Op};
use insum_kernel::{BinOp, Kernel, KernelBuilder};
use insum_tensor::{EinsumSpec, Tensor};
use std::collections::BTreeMap;

const LANES: usize = 256;

/// One execution step of an unfused pipeline.
#[derive(Debug, Clone)]
enum Step {
    /// Bind a named input tensor to a node.
    Bind { node: NodeId, name: String },
    /// Materialize a zeros tensor.
    Zeros { node: NodeId },
    /// Host-side reshape (metadata only; no kernel).
    Reshape {
        node: NodeId,
        input: NodeId,
        shape: Vec<usize>,
    },
    /// Host-side cast (dtype tag change + rounding; modelled as free—the
    /// real compiler folds casts into neighbouring kernels).
    Cast {
        node: NodeId,
        input: NodeId,
        dtype: insum_tensor::DType,
    },
    /// Launch a kernel. `args` bind node values positionally; the first
    /// argument is the (fresh or cloned) output.
    Launch {
        node: NodeId,
        kernel: Kernel,
        grid: Vec<usize>,
        /// Node whose value seeds the output tensor (`None` = zeros).
        seed: Option<NodeId>,
        /// Input nodes bound after the output parameter.
        reads: Vec<NodeId>,
    },
}

/// A compiled unfused pipeline.
#[derive(Debug, Clone)]
pub struct UnfusedOp {
    graph: Graph,
    steps: Vec<Step>,
    /// Number of kernels launched per run.
    pub kernel_count: usize,
}

/// Build a 1-D flattened lane block `pid*LANES + arange(LANES)` plus its
/// bounds mask (when `total` is not a multiple of the lane count).
fn flat_lanes(b: &mut KernelBuilder, total: usize) -> (usize, Option<usize>) {
    let pid = b.program_id(0);
    let width = b.constant(LANES as f64);
    let base = b.binary(BinOp::Mul, pid, width);
    let lanes = b.arange(LANES);
    let flat = b.binary(BinOp::Add, base, lanes);
    let mask = if !total.is_multiple_of(LANES) {
        let t = b.constant(total as f64);
        Some(b.binary(BinOp::Lt, flat, t))
    } else {
        None
    };
    (flat, mask)
}

/// Gather kernel: `DST[o, j, i] = SRC[o, IDX[j], i]` flattened.
fn gather_kernel(outer: usize, bound: usize, k: usize, inner: usize) -> (Kernel, Vec<usize>) {
    let total = outer * k * inner;
    let mut b = KernelBuilder::new("inductor_gather");
    let dst = b.output("DST");
    let src = b.input("SRC");
    let idx = b.input("IDX");
    let (flat, mask) = flat_lanes(&mut b, total);
    let inner_c = b.constant(inner as f64);
    let k_c = b.constant(k as f64);
    let i = b.binary(BinOp::Mod, flat, inner_c);
    let t = b.binary(BinOp::FloorDiv, flat, inner_c);
    let j = b.binary(BinOp::Mod, t, k_c);
    let o = b.binary(BinOp::FloorDiv, t, k_c);
    let jv = b.load(idx, j, mask, 0.0);
    let bi_c = b.constant((bound * inner) as f64);
    let o_off = b.binary(BinOp::Mul, o, bi_c);
    let j_off = b.binary(BinOp::Mul, jv, inner_c);
    let oj = b.binary(BinOp::Add, o_off, j_off);
    let src_off = b.binary(BinOp::Add, oj, i);
    let v = b.load(src, src_off, mask, 0.0);
    b.store(dst, flat, v, mask);
    (b.build(), vec![total.div_ceil(LANES)])
}

/// Scatter kernel: `DST[o, IDX[j], i] += SRC[o, j, i]` flattened over the
/// source.
fn scatter_kernel(outer: usize, bound: usize, k: usize, inner: usize) -> (Kernel, Vec<usize>) {
    let total = outer * k * inner;
    let mut b = KernelBuilder::new("inductor_scatter");
    let dst = b.output("DST");
    let src = b.input("SRC");
    let idx = b.input("IDX");
    let (flat, mask) = flat_lanes(&mut b, total);
    let inner_c = b.constant(inner as f64);
    let k_c = b.constant(k as f64);
    let i = b.binary(BinOp::Mod, flat, inner_c);
    let t = b.binary(BinOp::FloorDiv, flat, inner_c);
    let j = b.binary(BinOp::Mod, t, k_c);
    let o = b.binary(BinOp::FloorDiv, t, k_c);
    let jv = b.load(idx, j, mask, 0.0);
    let v = b.load(src, flat, mask, 0.0);
    let bi_c = b.constant((bound * inner) as f64);
    let o_off = b.binary(BinOp::Mul, o, bi_c);
    let j_off = b.binary(BinOp::Mul, jv, inner_c);
    let oj = b.binary(BinOp::Add, o_off, j_off);
    let dst_off = b.binary(BinOp::Add, oj, i);
    b.atomic_add(dst, dst_off, v, mask);
    (b.build(), vec![total.div_ceil(LANES)])
}

/// Pointwise add kernel: `DST[i] = A[i] + B[i]`.
fn add_kernel(total: usize) -> (Kernel, Vec<usize>) {
    let mut b = KernelBuilder::new("inductor_add");
    let dst = b.output("DST");
    let a = b.input("A");
    let bb = b.input("B");
    let (flat, mask) = flat_lanes(&mut b, total);
    let av = b.load(a, flat, mask, 0.0);
    let bv = b.load(bb, flat, mask, 0.0);
    let s = b.binary(BinOp::Add, av, bv);
    b.store(dst, flat, s, mask);
    (b.build(), vec![total.div_ceil(LANES)])
}

/// Build a dense-only fusion plan for an einsum node (the "template
/// matmul" kernel of stock Inductor).
fn einsum_plan(
    spec: &EinsumSpec,
    operand_shapes: &[Vec<usize>],
    out_shape: &[usize],
) -> Result<FusionPlan> {
    let mut extents: BTreeMap<String, usize> = BTreeMap::new();
    for (term, shape) in spec.inputs.iter().zip(operand_shapes) {
        for (&c, &d) in term.iter().zip(shape) {
            extents.insert(c.to_string(), d);
        }
    }
    let out_vars: Vec<String> = spec.output.iter().map(|c| c.to_string()).collect();
    let red_vars: Vec<String> = spec
        .reduction_indices()
        .iter()
        .map(|c| c.to_string())
        .collect();

    let x_var = out_vars.last().cloned();
    let y_var = out_vars.len().checked_sub(2).map(|i| out_vars[i].clone());
    let grid_vars: Vec<String> = out_vars
        .iter()
        .filter(|v| Some(*v) != x_var.as_ref() && Some(*v) != y_var.as_ref())
        .cloned()
        .collect();
    let mut roles: BTreeMap<String, Role> = BTreeMap::new();
    for v in &out_vars {
        let role = if Some(v) == x_var.as_ref() {
            Role::X
        } else if Some(v) == y_var.as_ref() {
            Role::Y
        } else {
            Role::Grid
        };
        roles.insert(v.clone(), role);
    }
    for v in &red_vars {
        roles.insert(v.clone(), Role::R);
    }

    let factors: Vec<FactorDesc> = spec
        .inputs
        .iter()
        .zip(operand_shapes)
        .enumerate()
        .map(|(i, (term, shape))| FactorDesc {
            tensor: format!("T{i}"),
            shape: shape.clone(),
            dims: term.iter().map(|c| DimDesc::Dense(c.to_string())).collect(),
        })
        .collect();
    let output = FactorDesc {
        tensor: "OUT".to_string(),
        shape: out_shape.to_vec(),
        dims: spec
            .output
            .iter()
            .map(|c| DimDesc::Dense(c.to_string()))
            .collect(),
    };
    let mut param_order = vec!["OUT".to_string()];
    param_order.extend(factors.iter().map(|f| f.tensor.clone()));
    Ok(FusionPlan {
        extents,
        roles,
        grid_vars,
        y_var,
        x_var,
        r_vars: red_vars,
        factors,
        output,
        accumulate: false,
        scatter: false,
        param_order,
    })
}

/// Compile a lowered graph into an unfused kernel pipeline.
///
/// # Errors
///
/// Returns [`InductorError::Unsupported`] for einsum specs with repeated
/// letters inside one term (not produced by the Insum rewriter).
pub fn compile_unfused(lowered: &Lowered, opts: &CodegenOptions) -> Result<UnfusedOp> {
    let graph = &lowered.graph;
    let mut steps = Vec::new();
    let mut kernel_count = 0;
    for node in graph.nodes() {
        match &node.op {
            Op::Placeholder { name } => {
                steps.push(Step::Bind {
                    node: node.id,
                    name: name.clone(),
                });
            }
            Op::Zeros => steps.push(Step::Zeros { node: node.id }),
            Op::Reshape { input, shape } => {
                steps.push(Step::Reshape {
                    node: node.id,
                    input: *input,
                    shape: shape.clone(),
                });
            }
            Op::Cast { input, dtype } => {
                steps.push(Step::Cast {
                    node: node.id,
                    input: *input,
                    dtype: *dtype,
                });
            }
            Op::IndexSelect { input, dim, index } => {
                let src = graph.node(*input);
                let k = graph.node(*index).shape[0];
                let outer: usize = src.shape[..*dim].iter().product();
                let bound = src.shape[*dim];
                let inner: usize = src.shape[*dim + 1..].iter().product();
                let (kernel, grid) = gather_kernel(outer, bound, k, inner);
                kernel_count += 1;
                steps.push(Step::Launch {
                    node: node.id,
                    kernel,
                    grid,
                    seed: None,
                    reads: vec![*input, *index],
                });
            }
            Op::IndexAdd {
                dest,
                dim,
                index,
                source,
            } => {
                let d = graph.node(*dest);
                let k = graph.node(*index).shape[0];
                let outer: usize = d.shape[..*dim].iter().product();
                let bound = d.shape[*dim];
                let inner: usize = d.shape[*dim + 1..].iter().product();
                let (kernel, grid) = scatter_kernel(outer, bound, k, inner);
                kernel_count += 1;
                steps.push(Step::Launch {
                    node: node.id,
                    kernel,
                    grid,
                    seed: Some(*dest),
                    reads: vec![*source, *index],
                });
            }
            Op::Add { lhs, rhs } => {
                let total: usize = node.shape.iter().product();
                let (kernel, grid) = add_kernel(total);
                kernel_count += 1;
                steps.push(Step::Launch {
                    node: node.id,
                    kernel,
                    grid,
                    seed: None,
                    reads: vec![*lhs, *rhs],
                });
            }
            Op::Einsum { spec, inputs } => {
                let parsed = EinsumSpec::parse(spec)
                    .map_err(|e| InductorError::Graph(insum_graph::GraphError::Tensor(e)))?;
                for term in &parsed.inputs {
                    let mut seen = std::collections::HashSet::new();
                    if term.iter().any(|c| !seen.insert(*c)) {
                        return Err(InductorError::Unsupported(
                            "repeated index letter within one einsum term".to_string(),
                        ));
                    }
                }
                let shapes: Vec<Vec<usize>> = inputs
                    .iter()
                    .map(|&i| graph.node(i).shape.clone())
                    .collect();
                let plan = einsum_plan(&parsed, &shapes, &node.shape)?;
                let fused: FusedOp = compile_fused(&plan, opts)?;
                kernel_count += 1;
                steps.push(Step::Launch {
                    node: node.id,
                    kernel: fused.kernel,
                    grid: fused.grid,
                    seed: None,
                    reads: inputs.clone(),
                });
            }
        }
    }
    Ok(UnfusedOp {
        graph: graph.clone(),
        steps,
        kernel_count,
    })
}

/// Execute an unfused pipeline, returning the output tensor and the
/// profile of every kernel launch.
///
/// # Errors
///
/// * [`InductorError::Binding`] for missing inputs.
/// * Simulator errors are propagated.
pub fn run_unfused(
    op: &UnfusedOp,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    run_unfused_with(op, inputs, device, mode, &LaunchOptions::default())
}

/// [`run_unfused`] with explicit simulator scheduling options; results
/// are identical for every configuration.
///
/// # Errors
///
/// Same conditions as [`run_unfused`].
pub fn run_unfused_with(
    op: &UnfusedOp,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    mode: Mode,
    launch_options: &LaunchOptions,
) -> Result<(Tensor, Profile)> {
    run_unfused_with_cache(
        op,
        inputs,
        device,
        mode,
        launch_options,
        ProgramCache::global(),
    )
}

/// [`run_unfused_with`] against an explicit [`ProgramCache`] instead of
/// the process-wide one (mirrors [`crate::run_fused_with_cache`], so
/// tests and benchmarks can observe isolated hit/miss counters for the
/// unfused pipeline too).
///
/// # Errors
///
/// Same conditions as [`run_unfused`].
pub fn run_unfused_with_cache(
    op: &UnfusedOp,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    mode: Mode,
    launch_options: &LaunchOptions,
    cache: &ProgramCache,
) -> Result<(Tensor, Profile)> {
    let mut values: Vec<Option<Tensor>> = vec![None; op.graph.len()];
    let mut profile = Profile::new();
    for step in &op.steps {
        match step {
            Step::Bind { node, name } => {
                let t = inputs
                    .get(name)
                    .ok_or_else(|| InductorError::Binding(format!("missing tensor {name:?}")))?;
                // Gather strided views (e.g. fast-path transpose
                // outputs) into row-major storage; a no-op Arc clone
                // for contiguous bindings.
                values[*node] = Some(t.contiguous());
            }
            Step::Zeros { node } => {
                let n = op.graph.node(*node);
                values[*node] = Some(Tensor::zeros_with(n.shape.clone(), n.dtype));
            }
            Step::Reshape { node, input, shape } => {
                let t = values[*input].as_ref().expect("topological order");
                values[*node] = Some(
                    t.reshape(shape.clone())
                        .map_err(|e| InductorError::Graph(insum_graph::GraphError::Tensor(e)))?,
                );
            }
            Step::Cast { node, input, dtype } => {
                let t = values[*input].as_ref().expect("topological order");
                values[*node] = Some(t.cast(*dtype));
            }
            Step::Launch {
                node,
                kernel,
                grid,
                seed,
                reads,
            } => {
                let n = op.graph.node(*node);
                let mut out = match seed {
                    Some(s) => values[*s].as_ref().expect("topological order").clone(),
                    None => Tensor::zeros_with(n.shape.clone(), n.dtype),
                };
                let mut read_tensors: Vec<Tensor> = reads
                    .iter()
                    .map(|&r| values[r].as_ref().expect("topological order").clone())
                    .collect();
                let mut args: Vec<&mut Tensor> = Vec::with_capacity(1 + read_tensors.len());
                args.push(&mut out);
                args.extend(read_tensors.iter_mut());
                let lens: Vec<usize> = args.iter().map(|t| t.len()).collect();
                let dtypes: Vec<insum_tensor::DType> = args.iter().map(|t| t.dtype()).collect();
                let program = cached_program(cache, kernel, grid, &lens, &dtypes)?;
                let report = program.launch_with(&mut args, device, mode, launch_options)?;
                profile.push(report);
                values[*node] = Some(out);
            }
        }
    }
    let out = values[op.graph.output]
        .take()
        .ok_or_else(|| InductorError::Binding("graph output was never computed".to_string()))?;
    Ok((out, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_graph::{execute, lower, TensorMeta};
    use insum_lang::parse;
    use insum_tensor::{rand_uniform, randint};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_unfused(expr: &str, binds: &[(&str, Tensor)]) -> Profile {
        let stmt = parse(expr).unwrap();
        let metas: BTreeMap<String, TensorMeta> = binds
            .iter()
            .map(|(n, t)| {
                (
                    n.to_string(),
                    TensorMeta::new(t.shape().to_vec(), t.dtype()),
                )
            })
            .collect();
        let inputs: BTreeMap<String, Tensor> = binds
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect();
        let lowered = lower(&stmt, &metas).unwrap();
        let op = compile_unfused(&lowered, &CodegenOptions::default()).unwrap();
        let device = DeviceModel::rtx3090();
        let (got, profile) = run_unfused(&op, &inputs, &device, Mode::Execute).unwrap();
        let want = execute(&lowered.graph, &inputs).unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "{expr}: unfused diverges from eager, max diff {:?}",
            got.max_abs_diff(&want)
        );
        profile
    }

    #[test]
    fn unfused_coo_spmm_launches_three_kernels() {
        let mut rng = SmallRng::seed_from_u64(11);
        let nnz = 23;
        let am = randint(vec![nnz], 8, &mut rng);
        let ak = randint(vec![nnz], 10, &mut rng);
        let av = rand_uniform(vec![nnz], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![10, 16], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![8, 16]);
        let profile = check_unfused(
            "C[AM[p],n] += AV[p] * B[AK[p],n]",
            &[("C", c), ("AM", am), ("AK", ak), ("AV", av), ("B", b)],
        );
        // gather (B rows), einsum, scatter -> 3 launches.
        assert_eq!(profile.launches(), 3);
    }

    #[test]
    fn unfused_dense_matmul_is_single_kernel() {
        let mut rng = SmallRng::seed_from_u64(12);
        let a = rand_uniform(vec![32, 16], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![16, 32], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![32, 32]);
        let profile = check_unfused("C[y,x] = A[y,r] * B[r,x]", &[("C", c), ("A", a), ("B", b)]);
        assert_eq!(profile.launches(), 1);
    }

    #[test]
    fn unfused_group_coo_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(13);
        let (groups, g) = (9, 4);
        let am = randint(vec![groups], 6, &mut rng);
        let ak = randint(vec![groups, g], 12, &mut rng);
        let av = rand_uniform(vec![groups, g], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![12, 8], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![6, 8]);
        check_unfused(
            "C[AM[p],n] += AV[p,q] * B[AK[p,q],n]",
            &[("C", c), ("AM", am), ("AK", ak), ("AV", av), ("B", b)],
        );
    }

    #[test]
    fn unfused_moves_more_dram_than_fused() {
        use crate::codegen::compile_fused;
        use crate::plan::build_plan;
        use crate::runner::run_fused;
        let mut rng = SmallRng::seed_from_u64(14);
        let (groups, g, bm, bk, n) = (8, 2, 16, 16, 64);
        let brows = 4;
        let am = randint(vec![groups], brows, &mut rng);
        let ak = randint(vec![groups, g], 4, &mut rng);
        let av = rand_uniform(vec![groups, g, bm, bk], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![4, bk, n], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![brows, bm, n]);
        let binds: Vec<(&str, Tensor)> =
            vec![("C", c), ("AM", am), ("AK", ak), ("AV", av), ("B", b)];
        let expr = "C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]";
        let stmt = parse(expr).unwrap();
        let metas: BTreeMap<String, TensorMeta> = binds
            .iter()
            .map(|(nm, t)| {
                (
                    nm.to_string(),
                    TensorMeta::new(t.shape().to_vec(), t.dtype()),
                )
            })
            .collect();
        let inputs: BTreeMap<String, Tensor> = binds
            .iter()
            .map(|(nm, t)| (nm.to_string(), t.clone()))
            .collect();
        let device = DeviceModel::rtx3090();

        let lowered = lower(&stmt, &metas).unwrap();
        let unfused = compile_unfused(&lowered, &CodegenOptions::default()).unwrap();
        let (got_u, profile_u) = run_unfused(&unfused, &inputs, &device, Mode::Execute).unwrap();

        let plan = build_plan(&stmt, &metas).unwrap();
        let fused = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let (got_f, report_f) = run_fused(&fused, &inputs, &device, Mode::Execute).unwrap();

        assert!(got_u.allclose(&got_f, 1e-3, 1e-3));
        let u = profile_u.total_stats();
        assert!(
            u.dram_bytes() > report_f.stats.dram_bytes(),
            "materialized intermediates must cost DRAM: unfused {} vs fused {}",
            u.dram_bytes(),
            report_f.stats.dram_bytes()
        );
        assert!(
            profile_u.total_time() > report_f.time,
            "fusion should win end-to-end"
        );
    }
}
