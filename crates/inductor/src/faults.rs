//! Test-only fault injection inside the batched runner.
//!
//! The serving layer's `fault-injection` hooks sit at its own compile
//! and execute boundaries — *outside* the fused-batch runner — so a
//! fault there can never fire mid-plan, between the steps of a planned
//! contraction chain. This module closes that gap: a test marks one
//! tensor ([`set_panic_binding`]), and any batched launch that binds a
//! pointer-identical handle panics before touching the simulator. A
//! chain binds each step's workspace and operand tensors per step, so
//! marking a step-k operand faults exactly that step's batched launch,
//! which is how serve's isolation (re-run each batch member alone) gets
//! exercised mid-chain.
//!
//! Compiled only under the `fault-injection` feature; release builds
//! carry neither the hook nor its per-launch check.

use insum_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

static ARMED: AtomicBool = AtomicBool::new(false);
static PANIC_BINDING: Mutex<Option<Tensor>> = Mutex::new(None);

/// Arm (or with `None` disarm) the binding fault: any batched launch
/// binding a tensor that is [`Tensor::ptr_eq`] to `marker` panics.
pub fn set_panic_binding(marker: Option<&Tensor>) {
    let mut slot = PANIC_BINDING.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = marker.cloned();
    ARMED.store(slot.is_some(), Ordering::Relaxed);
}

/// Hook called by the batched runner with every request's captured
/// arguments, before the launch.
pub(crate) fn maybe_panic_batch(owned: &[Vec<Tensor>]) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let slot = PANIC_BINDING.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(marked) = slot.as_ref() {
        if owned
            .iter()
            .any(|args| args.iter().any(|t| t.ptr_eq(marked)))
        {
            panic!("injected batch fault: marked operand bound in this launch");
        }
    }
}
