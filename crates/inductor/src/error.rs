//! Inductor error type.

use insum_gpu::GpuError;
use insum_graph::GraphError;
use std::error::Error;
use std::fmt;

/// Error from planning, codegen, or running a compiled operation.
#[derive(Debug, Clone, PartialEq)]
pub enum InductorError {
    /// Error bubbled up from graph lowering.
    Graph(GraphError),
    /// Error bubbled up from the GPU simulator.
    Gpu(GpuError),
    /// The statement's structure is outside the fused codegen's scope.
    Unsupported(String),
    /// A tensor binding is missing or mismatched at run time.
    Binding(String),
}

impl fmt::Display for InductorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InductorError::Graph(e) => write!(f, "graph error: {e}"),
            InductorError::Gpu(e) => write!(f, "gpu error: {e}"),
            InductorError::Unsupported(msg) => write!(f, "unsupported by fused codegen: {msg}"),
            InductorError::Binding(msg) => write!(f, "binding error: {msg}"),
        }
    }
}

impl Error for InductorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InductorError::Graph(e) => Some(e),
            InductorError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for InductorError {
    fn from(e: GraphError) -> Self {
        InductorError::Graph(e)
    }
}

impl From<GpuError> for InductorError {
    fn from(e: GpuError) -> Self {
        InductorError::Gpu(e)
    }
}
