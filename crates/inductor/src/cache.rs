//! Cross-launch program cache: compile once, launch many.
//!
//! The simulator's ahead-of-time lowering ([`insum_gpu::Program`]) is
//! cheap but not free, and the paper's workflow launches the same kernel
//! thousands of times — repeated [`crate::run_fused`] executions, every
//! configuration of an autotuning sweep re-launched by the final run,
//! and the per-node kernels of the unfused pipeline. [`ProgramCache`]
//! memoizes compiled programs keyed by the kernel's structural
//! fingerprint ([`insum_kernel::fingerprint`]), the launch grid, and the
//! positional argument metadata (element counts + dtypes) — everything a
//! [`insum_gpu::Program`] bakes in. Entries are shared (`Arc`), so
//! concurrent launches reuse one lowering.
//!
//! A process-wide cache ([`ProgramCache::global`]) backs the default
//! runner entry points; hit/miss counters are exposed for benchmarks and
//! CI smoke tests.

use crate::Result;
use insum_gpu::{GpuError, Program};
use insum_kernel::{fingerprint, Kernel};
use insum_tensor::DType;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum resident programs; oldest entries are evicted first. Programs
/// are a few KB each, so this comfortably covers an autotune sweep plus
/// every workload of a benchmark run.
const CAPACITY: usize = 512;

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    grid: Vec<usize>,
    lens: Vec<usize>,
    dtypes: Vec<DType>,
}

struct CacheEntry {
    /// The exact kernel this program was compiled from: verified
    /// structurally on every hit, so a 64-bit fingerprint collision
    /// degrades to a miss instead of silently returning another
    /// kernel's program.
    kernel: Kernel,
    program: Arc<Program>,
}

struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
}

/// Counters describing a cache's effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a new program.
    pub misses: u64,
    /// Programs currently resident.
    pub entries: usize,
}

/// A memoized mapping from (kernel fingerprint, grid, argument metadata)
/// to compiled simulator programs. See the module docs.
pub struct ProgramCache {
    inner: Mutex<CacheInner>,
}

impl Default for ProgramCache {
    fn default() -> ProgramCache {
        ProgramCache::new()
    }
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The process-wide cache used by [`crate::run_fused`] /
    /// [`crate::run_unfused`] and the autotuner.
    pub fn global() -> &'static ProgramCache {
        static GLOBAL: OnceLock<ProgramCache> = OnceLock::new();
        GLOBAL.get_or_init(ProgramCache::new)
    }

    /// Fetch the program for `(kernel, grid, lens, dtypes)`, compiling
    /// and inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`Program::compile`] errors (invalid kernel, bad grid,
    /// metadata/parameter mismatch); failures are not cached.
    pub fn get_or_compile(
        &self,
        kernel: &Kernel,
        grid: &[usize],
        lens: &[usize],
        dtypes: &[DType],
    ) -> std::result::Result<Arc<Program>, GpuError> {
        let key = CacheKey {
            fingerprint: fingerprint(kernel),
            grid: grid.to_vec(),
            lens: lens.to_vec(),
            dtypes: dtypes.to_vec(),
        };
        {
            let mut inner = self.inner.lock().expect("program cache poisoned");
            if let Some(e) = inner.map.get(&key) {
                if e.kernel == *kernel {
                    let p = Arc::clone(&e.program);
                    inner.hits += 1;
                    return Ok(p);
                }
                // Fingerprint collision: treat as a miss (the colliding
                // entry is replaced below).
            }
            inner.misses += 1;
        }
        // Compile outside the lock: misses are rare and lowering must not
        // serialize concurrent launches.
        let program = Arc::new(Program::compile(kernel, grid, lens, dtypes)?);
        let mut inner = self.inner.lock().expect("program cache poisoned");
        let resident = inner.map.get(&key).is_some_and(|e| e.kernel == *kernel);
        if !resident {
            if !inner.map.contains_key(&key) {
                if inner.map.len() >= CAPACITY {
                    if let Some(old) = inner.order.pop_front() {
                        inner.map.remove(&old);
                    }
                }
                inner.order.push_back(key.clone());
            }
            inner.map.insert(
                key,
                CacheEntry {
                    kernel: kernel.clone(),
                    program: Arc::clone(&program),
                },
            );
        }
        Ok(program)
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> ProgramCacheStats {
        let inner = self.inner.lock().expect("program cache poisoned");
        ProgramCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }

    /// Reset the hit/miss counters (entries stay resident).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.hits = 0;
        inner.misses = 0;
    }

    /// Drop every cached program and reset counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.map.clear();
        inner.order.clear();
        inner.hits = 0;
        inner.misses = 0;
    }
}

/// Look up (or compile) the cached program for a kernel launch bound to
/// `args`-shaped tensors.
///
/// # Errors
///
/// Propagates compilation errors.
pub(crate) fn cached_program(
    cache: &ProgramCache,
    kernel: &Kernel,
    grid: &[usize],
    lens: &[usize],
    dtypes: &[DType],
) -> Result<Arc<Program>> {
    Ok(cache.get_or_compile(kernel, grid, lens, dtypes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_kernel::{BinOp, KernelBuilder};

    fn kernel(scale: f64) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let s = b.constant(scale);
        let v = b.load(x, lanes, None, 0.0);
        let sv = b.binary(BinOp::Mul, v, s);
        b.store(y, lanes, sv, None);
        b.build()
    }

    #[test]
    fn second_identical_lookup_hits() {
        let cache = ProgramCache::new();
        let k = kernel(2.0);
        let lens = [32usize, 32];
        let dts = [DType::F32, DType::F32];
        let a = cache.get_or_compile(&k, &[4], &lens, &dts).unwrap();
        let b = cache.get_or_compile(&k, &[4], &lens, &dts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_kernels_grids_and_metadata_miss() {
        let cache = ProgramCache::new();
        let lens = [32usize, 32];
        let dts = [DType::F32, DType::F32];
        cache
            .get_or_compile(&kernel(2.0), &[4], &lens, &dts)
            .unwrap();
        cache
            .get_or_compile(&kernel(3.0), &[4], &lens, &dts)
            .unwrap();
        cache
            .get_or_compile(&kernel(2.0), &[8], &lens, &dts)
            .unwrap();
        let dts16 = [DType::F16, DType::F16];
        cache
            .get_or_compile(&kernel(2.0), &[4], &lens, &dts16)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 4, 4));
    }

    #[test]
    fn clear_and_reset() {
        let cache = ProgramCache::new();
        let lens = [32usize, 32];
        let dts = [DType::F32, DType::F32];
        cache
            .get_or_compile(&kernel(2.0), &[4], &lens, &dts)
            .unwrap();
        cache.reset_stats();
        assert_eq!(cache.stats().misses, 0);
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
