//! Cross-launch program cache: compile once, launch many.
//!
//! The simulator's ahead-of-time lowering ([`insum_gpu::Program`]) is
//! cheap but not free, and the paper's workflow launches the same kernel
//! thousands of times — repeated [`crate::run_fused`] executions, every
//! configuration of an autotuning sweep re-launched by the final run,
//! and the per-node kernels of the unfused pipeline. [`ProgramCache`]
//! memoizes compiled programs keyed by the kernel's structural
//! fingerprint ([`insum_kernel::fingerprint`]), the launch grid, and the
//! positional argument metadata (element counts + dtypes) — everything a
//! [`insum_gpu::Program`] bakes in. Entries are shared (`Arc`), so
//! concurrent launches reuse one lowering.
//!
//! The cache is **bounded**: a long-lived server sees an open-ended
//! stream of distinct (kernel, grid, metadata) keys — every new tensor
//! shape is a new key — so residency is capped ([`ProgramCache::new`]
//! defaults to 512 programs, [`ProgramCache::with_capacity`] overrides)
//! and the least-recently-used entry is evicted on overflow. Eviction
//! only drops the cache's reference; in-flight launches keep their
//! `Arc<Program>` alive.
//!
//! A process-wide cache ([`ProgramCache::global`]) backs the default
//! runner entry points; hit/miss/eviction counters are exposed for
//! benchmarks, the serving engine's metrics, and CI smoke tests.

use crate::Result;
use insum_gpu::{GpuError, Program};
use insum_kernel::{fingerprint, Kernel};
use insum_tensor::DType;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default maximum resident programs; the least-recently-used entry is
/// evicted first. Programs are a few KB each, so this comfortably covers
/// an autotune sweep plus every workload of a benchmark run.
const DEFAULT_CAPACITY: usize = 512;

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    grid: Vec<usize>,
    lens: Vec<usize>,
    dtypes: Vec<DType>,
}

struct CacheEntry {
    /// The exact kernel this program was compiled from: verified
    /// structurally on every hit, so a 64-bit fingerprint collision
    /// degrades to a miss instead of silently returning another
    /// kernel's program.
    kernel: Kernel,
    program: Arc<Program>,
    /// Recency stamp for LRU eviction (monotone per-cache counter).
    last_used: u64,
    /// True when this entry was decoded from a snapshot rather than
    /// lowered in-process (drives the `warm_hits` counter).
    from_snapshot: bool,
}

struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    tick: u64,
    hits: u64,
    warm_hits: u64,
    misses: u64,
    compiles: u64,
    evictions: u64,
    snapshot_seeded: u64,
    snapshot_rejected: u64,
}

impl CacheInner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evict least-recently-used entries until `capacity` fits one more.
    fn make_room(&mut self, capacity: usize) {
        while self.map.len() >= capacity {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// Counters describing a cache's effectiveness.
///
/// The counters distinguish a *miss-then-compile* from a
/// *miss-then-snapshot-hit*: `misses` counts lookups that found no
/// usable entry, `compiles` counts the subset that actually ran the
/// lowering pipeline, and `snapshot_seeded` counts entries that arrived
/// pre-compiled from a snapshot (their later lookups are `hits`, with
/// `warm_hits` tracking the first hit on each). A warm restart that
/// lowers nothing therefore shows a zero `compiles` delta — the exact
/// assertion servebench's restart phase makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Hits served by an entry that was seeded from a snapshot and had
    /// not been hit before — each snapshot record can contribute at
    /// most one (the serve layer surfaces this as `warm_start_hits`).
    pub warm_hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Fresh lowerings actually run ([`insum_gpu::Program::compile`]);
    /// always equal to `misses` unless entries arrive via snapshot.
    pub compiles: u64,
    /// Entries dropped to respect the capacity bound (LRU order).
    pub evictions: u64,
    /// Entries inserted pre-compiled from a snapshot.
    pub snapshot_seeded: u64,
    /// Snapshot records dropped at load time (bad CRC, stale
    /// fingerprint, failed decode, truncation).
    pub snapshot_rejected: u64,
    /// Programs currently resident.
    pub entries: usize,
}

impl std::fmt::Display for ProgramCacheStats {
    /// One-line operator summary, e.g.
    /// `cache: 12 resident, 340 hits (5 warm), 12 misses, 12 compiles,
    /// 0 evictions, snapshot 5 seeded / 0 rejected`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cache: {} resident, {} hits ({} warm), {} misses, {} compiles, \
             {} evictions, snapshot {} seeded / {} rejected",
            self.entries,
            self.hits,
            self.warm_hits,
            self.misses,
            self.compiles,
            self.evictions,
            self.snapshot_seeded,
            self.snapshot_rejected
        )
    }
}

/// A bounded, LRU-evicting memoized mapping from (kernel fingerprint,
/// grid, argument metadata) to compiled simulator programs. See the
/// module docs.
pub struct ProgramCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl Default for ProgramCache {
    fn default() -> ProgramCache {
        ProgramCache::new()
    }
}

impl ProgramCache {
    /// An empty cache with the default capacity (512 programs).
    pub fn new() -> ProgramCache {
        ProgramCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` programs (clamped to at
    /// least 1); the least-recently-used entry is evicted on overflow.
    pub fn with_capacity(capacity: usize) -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                warm_hits: 0,
                misses: 0,
                compiles: 0,
                evictions: 0,
                snapshot_seeded: 0,
                snapshot_rejected: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Maximum resident programs before LRU eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The process-wide cache used by [`crate::run_fused`] /
    /// [`crate::run_unfused`] and the autotuner.
    pub fn global() -> &'static ProgramCache {
        static GLOBAL: OnceLock<ProgramCache> = OnceLock::new();
        GLOBAL.get_or_init(ProgramCache::new)
    }

    /// Fetch the program for `(kernel, grid, lens, dtypes)`, compiling
    /// and inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`Program::compile`] errors (invalid kernel, bad grid,
    /// metadata/parameter mismatch); failures are not cached.
    pub fn get_or_compile(
        &self,
        kernel: &Kernel,
        grid: &[usize],
        lens: &[usize],
        dtypes: &[DType],
    ) -> std::result::Result<Arc<Program>, GpuError> {
        let key = CacheKey {
            fingerprint: fingerprint(kernel),
            grid: grid.to_vec(),
            lens: lens.to_vec(),
            dtypes: dtypes.to_vec(),
        };
        {
            let mut inner = self.inner.lock().expect("program cache poisoned");
            let stamp = inner.touch();
            if let Some(e) = inner.map.get_mut(&key) {
                if e.kernel == *kernel {
                    e.last_used = stamp;
                    // First hit on a snapshot-seeded entry is the
                    // warm-start event; later hits are ordinary.
                    let warm = std::mem::take(&mut e.from_snapshot);
                    let p = Arc::clone(&e.program);
                    inner.warm_hits += u64::from(warm);
                    inner.hits += 1;
                    return Ok(p);
                }
                // Fingerprint collision: treat as a miss (the colliding
                // entry is replaced below).
            }
            inner.misses += 1;
            inner.compiles += 1;
        }
        // Compile outside the lock: misses are rare and lowering must not
        // serialize concurrent launches.
        let program = {
            let _compile_span = insum_telemetry::hook::timed(insum_telemetry::HookPhase::Compile);
            Arc::new(Program::compile(kernel, grid, lens, dtypes)?)
        };
        let mut inner = self.inner.lock().expect("program cache poisoned");
        let stamp = inner.touch();
        match inner.map.get_mut(&key) {
            // Another thread inserted the same kernel while we compiled:
            // keep the resident program, ours is dropped.
            Some(e) if e.kernel == *kernel => {
                e.last_used = stamp;
                return Ok(Arc::clone(&e.program));
            }
            // Fingerprint collision with a different resident kernel:
            // replace in place (no occupancy change, no eviction).
            Some(e) => {
                *e = CacheEntry {
                    kernel: kernel.clone(),
                    program: Arc::clone(&program),
                    last_used: stamp,
                    from_snapshot: false,
                };
            }
            None => {
                inner.make_room(self.capacity);
                inner.map.insert(
                    key,
                    CacheEntry {
                        kernel: kernel.clone(),
                        program: Arc::clone(&program),
                        last_used: stamp,
                        from_snapshot: false,
                    },
                );
            }
        }
        Ok(program)
    }

    /// Insert a pre-compiled program decoded from a snapshot. Loading is
    /// merge-not-replace: if the key is already resident (whatever its
    /// origin), the resident entry wins and `false` is returned. The
    /// caller is responsible for having verified `program` against the
    /// freshly-fingerprinted key.
    pub(crate) fn seed_from_snapshot(
        &self,
        kernel: Kernel,
        grid: &[usize],
        lens: &[usize],
        dtypes: &[DType],
        program: Program,
    ) -> bool {
        let key = CacheKey {
            fingerprint: fingerprint(&kernel),
            grid: grid.to_vec(),
            lens: lens.to_vec(),
            dtypes: dtypes.to_vec(),
        };
        let mut inner = self.inner.lock().expect("program cache poisoned");
        let stamp = inner.touch();
        if inner.map.contains_key(&key) {
            return false;
        }
        inner.make_room(self.capacity);
        inner.map.insert(
            key,
            CacheEntry {
                kernel,
                program: Arc::new(program),
                last_used: stamp,
                from_snapshot: true,
            },
        );
        inner.snapshot_seeded += 1;
        true
    }

    /// Count `n` snapshot records as rejected (dropped at load time).
    pub(crate) fn note_snapshot_rejected(&self, n: u64) {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.snapshot_rejected += n;
    }

    /// Encode every resident entry as a snapshot record (see
    /// [`crate::snapshot`] for the record layout).
    pub(crate) fn snapshot_records(&self) -> Vec<Vec<u8>> {
        let inner = self.inner.lock().expect("program cache poisoned");
        let mut entries: Vec<(&CacheKey, &CacheEntry)> = inner.map.iter().collect();
        // Deterministic record order: stable across runs of the same
        // workload, so snapshot bytes are reproducible.
        entries.sort_by(|(a, _), (b, _)| {
            (a.fingerprint, &a.grid, &a.lens)
                .cmp(&(b.fingerprint, &b.grid, &b.lens))
                .then_with(|| {
                    let da: Vec<u8> = a
                        .dtypes
                        .iter()
                        .copied()
                        .map(insum_snapshot::dtype_tag)
                        .collect();
                    let db: Vec<u8> = b
                        .dtypes
                        .iter()
                        .copied()
                        .map(insum_snapshot::dtype_tag)
                        .collect();
                    da.cmp(&db)
                })
        });
        entries
            .iter()
            .map(|(key, entry)| {
                crate::snapshot::encode_program_record(
                    key.fingerprint,
                    &key.grid,
                    &key.lens,
                    &key.dtypes,
                    &entry.kernel,
                    &entry.program,
                )
            })
            .collect()
    }

    /// Current hit/miss/eviction/occupancy counters.
    pub fn stats(&self) -> ProgramCacheStats {
        let inner = self.inner.lock().expect("program cache poisoned");
        ProgramCacheStats {
            hits: inner.hits,
            warm_hits: inner.warm_hits,
            misses: inner.misses,
            compiles: inner.compiles,
            evictions: inner.evictions,
            snapshot_seeded: inner.snapshot_seeded,
            snapshot_rejected: inner.snapshot_rejected,
            entries: inner.map.len(),
        }
    }

    /// Reset every counter (entries stay resident; seeded entries keep
    /// their pending warm-hit credit).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.hits = 0;
        inner.warm_hits = 0;
        inner.misses = 0;
        inner.compiles = 0;
        inner.evictions = 0;
        inner.snapshot_seeded = 0;
        inner.snapshot_rejected = 0;
    }

    /// Drop every cached program and reset counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.map.clear();
        inner.hits = 0;
        inner.warm_hits = 0;
        inner.misses = 0;
        inner.compiles = 0;
        inner.evictions = 0;
        inner.snapshot_seeded = 0;
        inner.snapshot_rejected = 0;
    }

    /// Write this cache's programs — plus the global
    /// [`crate::AutotuneCache`]'s winners — to `path` as a checksummed
    /// snapshot (atomically: temp file + fsync + rename).
    ///
    /// # Errors
    ///
    /// [`insum_snapshot::SnapshotError::Io`] on filesystem failure.
    pub fn save_snapshot(
        &self,
        path: &std::path::Path,
    ) -> std::result::Result<u64, insum_snapshot::SnapshotError> {
        crate::snapshot::save_snapshot_with(path, self, crate::AutotuneCache::global())
    }

    /// Merge the snapshot at `path` into this cache and the global
    /// [`crate::AutotuneCache`]. Infallible by design: a missing,
    /// truncated, corrupt, or version-skewed snapshot degrades to an
    /// empty (or partial) load with the damage counted in the returned
    /// report and in [`ProgramCacheStats::snapshot_rejected`] — the
    /// next lookup simply recompiles.
    pub fn load_snapshot(&self, path: &std::path::Path) -> crate::snapshot::SnapshotLoadReport {
        crate::snapshot::load_snapshot_with(path, self, crate::AutotuneCache::global())
    }
}

/// Look up (or compile) the cached program for a kernel launch bound to
/// `args`-shaped tensors.
///
/// # Errors
///
/// Propagates compilation errors.
pub(crate) fn cached_program(
    cache: &ProgramCache,
    kernel: &Kernel,
    grid: &[usize],
    lens: &[usize],
    dtypes: &[DType],
) -> Result<Arc<Program>> {
    Ok(cache.get_or_compile(kernel, grid, lens, dtypes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_kernel::{BinOp, KernelBuilder};

    fn kernel(scale: f64) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let s = b.constant(scale);
        let v = b.load(x, lanes, None, 0.0);
        let sv = b.binary(BinOp::Mul, v, s);
        b.store(y, lanes, sv, None);
        b.build()
    }

    const LENS: [usize; 2] = [32, 32];
    const DTS: [DType; 2] = [DType::F32, DType::F32];

    #[test]
    fn second_identical_lookup_hits() {
        let cache = ProgramCache::new();
        let k = kernel(2.0);
        let a = cache.get_or_compile(&k, &[4], &LENS, &DTS).unwrap();
        let b = cache.get_or_compile(&k, &[4], &LENS, &DTS).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_kernels_grids_and_metadata_miss() {
        let cache = ProgramCache::new();
        cache
            .get_or_compile(&kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        cache
            .get_or_compile(&kernel(3.0), &[4], &LENS, &DTS)
            .unwrap();
        cache
            .get_or_compile(&kernel(2.0), &[8], &LENS, &DTS)
            .unwrap();
        let dts16 = [DType::F16, DType::F16];
        cache
            .get_or_compile(&kernel(2.0), &[4], &LENS, &dts16)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 4, 4));
    }

    #[test]
    fn clear_and_reset() {
        let cache = ProgramCache::new();
        cache
            .get_or_compile(&kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        cache.reset_stats();
        assert_eq!(cache.stats().misses, 0);
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = ProgramCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache
            .get_or_compile(&kernel(1.0), &[4], &LENS, &DTS)
            .unwrap();
        cache
            .get_or_compile(&kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        // Touch kernel(1.0) so kernel(2.0) becomes the LRU victim.
        cache
            .get_or_compile(&kernel(1.0), &[4], &LENS, &DTS)
            .unwrap();
        cache
            .get_or_compile(&kernel(3.0), &[4], &LENS, &DTS)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 3, 1, 2));
        // kernel(1.0) survived (hit), kernel(2.0) was evicted (miss).
        cache
            .get_or_compile(&kernel(1.0), &[4], &LENS, &DTS)
            .unwrap();
        cache
            .get_or_compile(&kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 4);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = ProgramCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache
            .get_or_compile(&kernel(1.0), &[4], &LENS, &DTS)
            .unwrap();
        cache
            .get_or_compile(&kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.evictions, s.entries), (1, 1));
    }
}
