//! Compiler-cache persistence: program + autotune-winner snapshots.
//!
//! This module binds the generic container in [`insum_snapshot`] to the
//! compiler's two caches: [`crate::ProgramCache`] (compiled
//! [`insum_gpu::Program`]s) and [`crate::AutotuneCache`] (winning tile
//! configurations). A snapshot written at shutdown lets the next process
//! skip the entire lowering pipeline and autotune sweep for every
//! workload it already served.
//!
//! ## Program record layout
//!
//! ```text
//! fingerprint:u64 grid:seq(u64) lens:seq(u64) dtypes:seq(u8)
//! kernel:<kernel_wire> program:<gpu persist codec>
//! ```
//!
//! The leading fields are exactly the cache key. On load every record is
//! verified structurally before it may seed a cache: the kernel must
//! pass [`insum_kernel::Kernel::validate`], its **freshly computed**
//! [`insum_kernel::fingerprint`] must equal the stored one (so a record
//! written by an incompatible build of the fingerprint or IR is dropped,
//! not served), and the program body must decode against the key with
//! every register/parameter/site index in range. Any failure rejects
//! that record — counted in [`SnapshotLoadReport::rejected`] and
//! [`crate::ProgramCacheStats::snapshot_rejected`] — and the workload
//! degrades to an ordinary recompile.

use crate::cache::ProgramCache;
use crate::winners::AutotuneCache;
use insum_gpu::Program;
use insum_kernel::{fingerprint, Kernel};
use insum_snapshot::{
    clean_stragglers, read_snapshot, write_atomic, Reader, SnapshotBuilder, SnapshotError, Writer,
    SECTION_AUTOTUNE, SECTION_PROGRAMS,
};
use insum_tensor::DType;
use std::path::Path;

/// What a snapshot load found on disk and what it did about it. The
/// load itself is infallible — every field here is information, not an
/// error to handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotLoadReport {
    /// Program records that passed verification and seeded the cache.
    pub programs_loaded: u64,
    /// Autotune winners that passed validation and seeded the cache.
    pub winners_loaded: u64,
    /// Valid records skipped because an equivalent entry was already
    /// resident (merge-not-replace).
    pub skipped_resident: u64,
    /// Records dropped: container-level damage (CRC, truncation),
    /// unknown section tags, failed verification, or an unreadable
    /// header counted as one.
    pub rejected: u64,
    /// Leftover temp files from a torn [`write_atomic`] that were swept.
    pub stragglers_removed: u64,
    /// True when no snapshot file existed (a normal cold start).
    pub missing: bool,
}

/// Encode one program-cache entry as a snapshot record.
pub(crate) fn encode_program_record(
    fingerprint: u64,
    grid: &[usize],
    lens: &[usize],
    dtypes: &[DType],
    kernel: &Kernel,
    program: &Program,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(fingerprint);
    w.usize(grid.len());
    for &g in grid {
        w.usize(g);
    }
    w.usize(lens.len());
    for &l in lens {
        w.usize(l);
    }
    w.usize(dtypes.len());
    for &d in dtypes {
        w.u8(insum_snapshot::dtype_tag(d));
    }
    insum_snapshot::encode_kernel_into(kernel, &mut w);
    program.encode_snapshot(&mut w);
    w.into_bytes()
}

struct LoadedProgram {
    kernel: Kernel,
    grid: Vec<usize>,
    lens: Vec<usize>,
    dtypes: Vec<DType>,
    program: Program,
}

fn decode_program_record(bytes: &[u8]) -> Result<LoadedProgram, SnapshotError> {
    let mut r = Reader::new(bytes);
    let stored_fp = r.u64("program record fingerprint")?;
    let grid_len = r.seq_len(8, "program record grid")?;
    let mut grid = Vec::with_capacity(grid_len);
    for _ in 0..grid_len {
        grid.push(r.usize("grid extent")?);
    }
    let lens_len = r.seq_len(8, "program record lens")?;
    let mut lens = Vec::with_capacity(lens_len);
    for _ in 0..lens_len {
        lens.push(r.usize("param len")?);
    }
    let dt_len = r.seq_len(1, "program record dtypes")?;
    let mut dtypes = Vec::with_capacity(dt_len);
    for _ in 0..dt_len {
        dtypes.push(insum_snapshot::tag_dtype(r.u8("param dtype")?)?);
    }
    let kernel = insum_snapshot::decode_kernel_from(&mut r)?;
    kernel.validate().map_err(|e| SnapshotError::Invalid {
        context: format!("snapshot kernel failed validation: {e}"),
    })?;
    // The load-bearing staleness check: a record from an incompatible
    // build (different IR, different fingerprint function) cannot match
    // a freshly computed fingerprint of the kernel it carries.
    if fingerprint(&kernel) != stored_fp {
        return Err(SnapshotError::Invalid {
            context: "stored fingerprint does not match re-fingerprinted kernel".to_string(),
        });
    }
    let program = Program::decode_snapshot(&kernel, &grid, &lens, &dtypes, &mut r)?;
    if !r.is_exhausted() {
        return Err(SnapshotError::Corrupt {
            context: "trailing bytes after program record",
        });
    }
    Ok(LoadedProgram {
        kernel,
        grid,
        lens,
        dtypes,
        program,
    })
}

/// Write `programs` and `winners` to `path` atomically. Returns the
/// number of records written.
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failure (encoding is infallible).
pub fn save_snapshot_with(
    path: &Path,
    programs: &ProgramCache,
    winners: &AutotuneCache,
) -> Result<u64, SnapshotError> {
    let mut b = SnapshotBuilder::new();
    for rec in programs.snapshot_records() {
        b.record(SECTION_PROGRAMS, rec);
    }
    for rec in winners.snapshot_records() {
        b.record(SECTION_AUTOTUNE, rec);
    }
    let count = b.record_count() as u64;
    write_atomic(path, &b.finish())?;
    Ok(count)
}

/// Merge the snapshot at `path` into `programs` and `winners`,
/// degrading — never failing — on damage. Sweeps torn-write stragglers
/// first, so a crash mid-save never accumulates junk next to the
/// durable snapshot. See [`SnapshotLoadReport`] for the accounting;
/// everything counted `rejected` is also added to
/// [`crate::ProgramCacheStats::snapshot_rejected`].
pub fn load_snapshot_with(
    path: &Path,
    programs: &ProgramCache,
    winners: &AutotuneCache,
) -> SnapshotLoadReport {
    let mut report = SnapshotLoadReport {
        stragglers_removed: clean_stragglers(path),
        ..SnapshotLoadReport::default()
    };
    if !path.exists() {
        report.missing = true;
        return report;
    }
    let snap = match read_snapshot(path) {
        Ok(snap) => snap,
        Err(_) => {
            // Unreadable header (bad magic, version skew, truncation
            // inside the header, IO error): the whole file is one
            // rejected artifact.
            report.rejected = 1;
            programs.note_snapshot_rejected(1);
            return report;
        }
    };
    report.rejected += snap.rejected;
    for section in &snap.sections {
        if section.tag != SECTION_PROGRAMS && section.tag != SECTION_AUTOTUNE {
            report.rejected += section.records.len() as u64;
        }
    }
    for rec in snap.records(SECTION_PROGRAMS) {
        match decode_program_record(rec) {
            Ok(p) => {
                if programs.seed_from_snapshot(p.kernel, &p.grid, &p.lens, &p.dtypes, p.program) {
                    report.programs_loaded += 1;
                } else {
                    report.skipped_resident += 1;
                }
            }
            Err(_) => report.rejected += 1,
        }
    }
    for rec in snap.records(SECTION_AUTOTUNE) {
        let before = winners.len();
        match winners.load_record(rec) {
            Ok(()) => {
                if winners.len() > before {
                    report.winners_loaded += 1;
                } else {
                    report.skipped_resident += 1;
                }
            }
            Err(_) => report.rejected += 1,
        }
    }
    programs.note_snapshot_rejected(report.rejected);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::winners::TileConfig;
    use insum_kernel::{BinOp, KernelBuilder};
    use std::fs;
    use std::path::PathBuf;

    fn scale_kernel(scale: f64) -> Kernel {
        let mut b = KernelBuilder::new("scale");
        let x = b.input("X");
        let y = b.output("Y");
        let lanes = b.arange(32);
        let s = b.constant(scale);
        let v = b.load(x, lanes, None, 0.0);
        let sv = b.binary(BinOp::Mul, v, s);
        b.store(y, lanes, sv, None);
        b.build()
    }

    const LENS: [usize; 2] = [32, 32];
    const DTS: [DType; 2] = [DType::F32, DType::F32];

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "insum_inductor_snapshot_{tag}_{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip_seeds_without_compiling() {
        let dir = tmp_dir("round_trip");
        let path = dir.join("cache.snap");

        let hot = ProgramCache::new();
        hot.get_or_compile(&scale_kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        hot.get_or_compile(&scale_kernel(3.0), &[4], &LENS, &DTS)
            .unwrap();
        let winners = AutotuneCache::new();
        winners.store(
            11,
            TileConfig {
                yblock: 16,
                xblock: 32,
                rblock: 16,
            },
        );
        assert_eq!(save_snapshot_with(&path, &hot, &winners).unwrap(), 3);

        let cold = ProgramCache::new();
        let cold_winners = AutotuneCache::new();
        let report = load_snapshot_with(&path, &cold, &cold_winners);
        assert_eq!(report.programs_loaded, 2);
        assert_eq!(report.winners_loaded, 1);
        assert_eq!(report.rejected, 0);
        assert!(!report.missing);
        let s = cold.stats();
        assert_eq!((s.snapshot_seeded, s.entries), (2, 2));

        // The warm lookups hit without lowering anything.
        cold.get_or_compile(&scale_kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        cold.get_or_compile(&scale_kernel(3.0), &[4], &LENS, &DTS)
            .unwrap();
        let s = cold.stats();
        assert_eq!((s.hits, s.warm_hits, s.compiles), (2, 2, 0));
        assert_eq!(
            cold_winners.lookup(11),
            Some(TileConfig {
                yblock: 16,
                xblock: 32,
                rblock: 16
            })
        );

        // Loading again is merge-not-replace: nothing double-seeds.
        let again = cold.load_snapshot(&path);
        assert_eq!(again.programs_loaded, 0);
        assert_eq!(again.skipped_resident, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_a_cold_start_not_an_error() {
        let dir = tmp_dir("missing");
        let report = load_snapshot_with(
            &dir.join("never_written.snap"),
            &ProgramCache::new(),
            &AutotuneCache::new(),
        );
        assert!(report.missing);
        assert_eq!(report.rejected, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_straggler_is_ignored_and_swept() {
        let dir = tmp_dir("torn");
        let path = dir.join("cache.snap");

        let hot = ProgramCache::new();
        hot.get_or_compile(&scale_kernel(2.0), &[4], &LENS, &DTS)
            .unwrap();
        hot.save_snapshot(&path).unwrap();

        // Crash mid-save: a half-written temp file next to the durable
        // snapshot. The next boot must load the durable one and sweep
        // the straggler.
        let bytes = fs::read(&path).unwrap();
        fs::write(insum_snapshot::temp_path(&path), &bytes[..bytes.len() / 2]).unwrap();
        let cold = ProgramCache::new();
        let report = cold.load_snapshot(&path);
        assert_eq!(report.stragglers_removed, 1);
        assert_eq!(report.programs_loaded, 1);
        assert_eq!(report.rejected, 0);
        assert!(!insum_snapshot::temp_path(&path).exists());

        // Crash before the *first* save ever renamed: only a temp file
        // exists. That is a cold start, plus a sweep.
        let path2 = dir.join("never_renamed.snap");
        fs::write(insum_snapshot::temp_path(&path2), b"half").unwrap();
        let report = ProgramCache::new().load_snapshot(&path2);
        assert!(report.missing);
        assert_eq!(report.stragglers_removed, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_header_counts_one_rejection() {
        let dir = tmp_dir("header");
        let path = dir.join("cache.snap");
        fs::write(&path, b"NOTASNAPSHOT").unwrap();
        let cache = ProgramCache::new();
        let report = cache.load_snapshot(&path);
        assert_eq!(report.rejected, 1);
        assert_eq!(cache.stats().snapshot_rejected, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_fingerprint_record_is_rejected() {
        let hot = ProgramCache::new();
        let k = scale_kernel(2.0);
        hot.get_or_compile(&k, &[4], &LENS, &DTS).unwrap();
        let mut rec = hot.snapshot_records().remove(0);
        // Forge the stored fingerprint: simulates a record written by a
        // build whose fingerprint function (or IR) disagrees with ours.
        let forged = fingerprint(&k) ^ 1;
        rec[..8].copy_from_slice(&forged.to_le_bytes());
        assert!(matches!(
            decode_program_record(&rec),
            Err(SnapshotError::Invalid { .. })
        ));
    }
}
