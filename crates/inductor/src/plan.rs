//! Fusion planning: classify index variables into tiling roles.
//!
//! This is the reproduction of §5.2.2's tiling decision. Given an
//! indirect Einsum, every index variable gets one of four roles:
//!
//! * **Grid** — one scalar value per program instance (batch dimensions
//!   and variables that parameterize several metadata tensors, e.g. the
//!   group index `p`);
//! * **Y** — rows of the `tl.dot` tile (e.g. the block row `bm`, or the
//!   within-group index `q` in sparse convolution);
//! * **X** — columns of the `tl.dot` tile (the dense output channel);
//! * **R** — the flattened reduction lanes (may combine several letters,
//!   e.g. `(q, bk)` in BlockGroupCOO SpMM, decomposed in-kernel with
//!   `//` and `%`).
//!
//! A variable can be a block (lane) role only if every metadata tensor it
//! indexes is otherwise indexed by grid scalars — that is what keeps every
//! loaded block at most 2-D, the Triton `tl.dot` constraint.

use crate::error::InductorError;
use crate::Result;
use insum_graph::TensorMeta;
use insum_lang::{analyze, Access, AssignOp, IndexExpr, Statement};
use std::collections::BTreeMap;

/// The tiling role of an index variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Scalar per program instance (part of the launch grid).
    Grid,
    /// Dot-tile row lanes.
    Y,
    /// Dot-tile column lanes.
    X,
    /// Flattened reduction lanes.
    R,
}

/// One dimension of a factor or output access.
#[derive(Debug, Clone, PartialEq)]
pub enum DimDesc {
    /// A plain variable indexes this dimension.
    Dense(String),
    /// A metadata tensor's value indexes this dimension.
    Gathered {
        /// Metadata tensor name.
        meta: String,
        /// Metadata tensor shape.
        meta_shape: Vec<usize>,
        /// Variables indexing the metadata tensor, in dim order.
        meta_vars: Vec<String>,
    },
}

/// A right-hand-side factor (or the output access).
#[derive(Debug, Clone, PartialEq)]
pub struct FactorDesc {
    /// The data tensor name.
    pub tensor: String,
    /// The data tensor shape.
    pub shape: Vec<usize>,
    /// Per-dimension description.
    pub dims: Vec<DimDesc>,
}

/// The complete fusion plan for one indirect Einsum.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionPlan {
    /// Extent of every variable.
    pub extents: BTreeMap<String, usize>,
    /// Role of every variable.
    pub roles: BTreeMap<String, Role>,
    /// Grid variables in decomposition order (slowest first).
    pub grid_vars: Vec<String>,
    /// The Y variable, if any.
    pub y_var: Option<String>,
    /// The X variable, if any.
    pub x_var: Option<String>,
    /// Reduction variables flattened into the R lanes (slowest first).
    pub r_vars: Vec<String>,
    /// Right-hand-side factors.
    pub factors: Vec<FactorDesc>,
    /// The output access.
    pub output: FactorDesc,
    /// True for `+=` (accumulate into existing output).
    pub accumulate: bool,
    /// True if the output access contains a gather (scatter required).
    pub scatter: bool,
    /// Kernel parameter order: tensor names (output first, then data
    /// tensors, then metadata tensors; deduplicated).
    pub param_order: Vec<String>,
}

impl FusionPlan {
    /// Extent of a variable.
    pub fn extent(&self, var: &str) -> usize {
        self.extents[var]
    }

    /// Extent of the Y lanes (1 when absent).
    pub fn y_extent(&self) -> usize {
        self.y_var.as_deref().map_or(1, |v| self.extent(v))
    }

    /// Extent of the X lanes (1 when absent).
    pub fn x_extent(&self) -> usize {
        self.x_var.as_deref().map_or(1, |v| self.extent(v))
    }

    /// Total flattened reduction extent (1 when there is no reduction).
    pub fn r_extent(&self) -> usize {
        self.r_vars.iter().map(|v| self.extent(v)).product()
    }

    /// Whether a `(Y,R) x (R,X)` Tensor-Core partition exists: Y, X and R
    /// all present and every factor's roles fit one dot operand.
    pub fn tensor_core_partition(&self) -> bool {
        if self.y_var.is_none() || self.x_var.is_none() || self.r_vars.is_empty() {
            return false;
        }
        self.factors.iter().all(|f| {
            let roles = self.factor_roles(f);
            let a_side = roles.iter().all(|r| matches!(r, Role::Y | Role::R));
            let b_side = roles.iter().all(|r| matches!(r, Role::R | Role::X));
            a_side || b_side
        })
    }

    /// The set of lane roles a factor's offsets span (sorted Y < R < X).
    pub fn factor_roles(&self, factor: &FactorDesc) -> Vec<Role> {
        let mut roles = Vec::new();
        let mut add = |r: Role| {
            if r != Role::Grid && !roles.contains(&r) {
                roles.push(r);
            }
        };
        for dim in &factor.dims {
            match dim {
                DimDesc::Dense(v) => add(self.roles[v]),
                DimDesc::Gathered { meta_vars, .. } => {
                    // The metadata *value* varies along the block roles of
                    // its index variables.
                    for v in meta_vars {
                        add(self.roles[v]);
                    }
                }
            }
        }
        roles.sort_by_key(|r| match r {
            Role::Y => 0,
            Role::R => 1,
            Role::X => 2,
            Role::Grid => 3,
        });
        roles
    }
}

fn describe_access(access: &Access, metas: &BTreeMap<String, TensorMeta>) -> FactorDesc {
    let shape = metas[&access.tensor].shape.clone();
    let dims = access
        .indices
        .iter()
        .map(|idx| match idx {
            IndexExpr::Var(v) => DimDesc::Dense(v.clone()),
            IndexExpr::Indirect(meta) => DimDesc::Gathered {
                meta: meta.tensor.clone(),
                meta_shape: metas[&meta.tensor].shape.clone(),
                meta_vars: meta.vars().into_iter().map(String::from).collect(),
            },
        })
        .collect();
    FactorDesc {
        tensor: access.tensor.clone(),
        shape,
        dims,
    }
}

/// Collect every metadata access (tensor, vars) in the statement.
fn metadata_accesses(stmt: &Statement) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let mut visit = |access: &Access| {
        for idx in &access.indices {
            if let IndexExpr::Indirect(meta) = idx {
                out.push((
                    meta.tensor.clone(),
                    meta.vars()
                        .into_iter()
                        .map(String::from)
                        .collect::<Vec<_>>(),
                ));
            }
        }
    };
    visit(&stmt.output);
    for f in &stmt.factors {
        visit(f);
    }
    out
}

/// Check that, with the proposed roles, every metadata access is indexed
/// by grid scalars plus variables of at most one block role class
/// (all-Y or all-R).
fn metadata_ok(accesses: &[(String, Vec<String>)], roles: &BTreeMap<String, Role>) -> bool {
    accesses.iter().all(|(_, vars)| {
        let mut has_y = false;
        let mut has_r = false;
        let mut has_x = false;
        for v in vars {
            match roles[v] {
                Role::Grid => {}
                Role::Y => has_y = true,
                Role::R => has_r = true,
                Role::X => has_x = true,
            }
        }
        !(has_x || has_y && has_r)
    })
}

/// Build the fusion plan for a statement.
///
/// # Errors
///
/// * Propagates analysis errors ([`InductorError::Graph`]).
/// * [`InductorError::Unsupported`] when no legal role assignment exists
///   (e.g. a metadata tensor indexed by two entangled block variables, or
///   an X-role variable inside a metadata access).
pub fn build_plan(stmt: &Statement, metas: &BTreeMap<String, TensorMeta>) -> Result<FusionPlan> {
    let shapes: BTreeMap<String, Vec<usize>> = metas
        .iter()
        .map(|(k, v)| (k.clone(), v.shape.clone()))
        .collect();
    let analysis = analyze(stmt, &shapes)
        .map_err(|e| InductorError::Graph(insum_graph::GraphError::Lang(e)))?;

    let out_vars: Vec<String> = analysis.output_vars.clone();
    let red_vars: Vec<String> = analysis.reduction_vars.clone();
    let accesses = metadata_accesses(stmt);

    // X is the last output variable, provided it never appears inside a
    // metadata access (it must be a dense lane).
    let in_metadata = |v: &str| accesses.iter().any(|(_, vars)| vars.iter().any(|m| m == v));
    let x_var = out_vars.last().filter(|v| !in_metadata(v)).cloned();

    // Candidate Y: the output variable just before X (or the last one if
    // there is no X).
    let y_candidate = if x_var.is_some() {
        out_vars.len().checked_sub(2).map(|i| out_vars[i].clone())
    } else {
        None
    };

    let assign = |y: Option<&String>| -> BTreeMap<String, Role> {
        let mut roles = BTreeMap::new();
        for v in &out_vars {
            let role = if Some(v) == x_var.as_ref() {
                Role::X
            } else if Some(v) == y {
                Role::Y
            } else {
                Role::Grid
            };
            roles.insert(v.clone(), role);
        }
        for v in &red_vars {
            roles.insert(v.clone(), Role::R);
        }
        roles
    };

    // Try with Y, then without.
    let mut roles = assign(y_candidate.as_ref());
    let mut y_var = y_candidate.clone();
    if !metadata_ok(&accesses, &roles) {
        roles = assign(None);
        y_var = None;
        if !metadata_ok(&accesses, &roles) {
            return Err(InductorError::Unsupported(
                "no legal tiling: a metadata tensor mixes Y/R/X block variables".to_string(),
            ));
        }
    }

    let grid_vars: Vec<String> = out_vars
        .iter()
        .filter(|v| roles[*v] == Role::Grid)
        .cloned()
        .collect();
    let r_vars: Vec<String> = red_vars.clone();

    let factors: Vec<FactorDesc> = stmt
        .factors
        .iter()
        .map(|f| describe_access(f, metas))
        .collect();
    let output = describe_access(&stmt.output, metas);
    let scatter = stmt.output.has_indirection();

    // Parameter order: output, data tensors, metadata tensors.
    let mut param_order = vec![output.tensor.clone()];
    let push = |name: &str, order: &mut Vec<String>| {
        if !order.iter().any(|n| n == name) {
            order.push(name.to_string());
        }
    };
    for f in &factors {
        push(&f.tensor, &mut param_order);
    }
    for f in factors.iter().chain(std::iter::once(&output)) {
        for d in &f.dims {
            if let DimDesc::Gathered { meta, .. } = d {
                push(meta, &mut param_order);
            }
        }
    }

    Ok(FusionPlan {
        extents: analysis.extents,
        roles,
        grid_vars,
        y_var,
        x_var,
        r_vars,
        factors,
        output,
        accumulate: stmt.op == AssignOp::Accumulate,
        scatter,
        param_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_lang::parse;
    use insum_tensor::DType;

    fn metas(pairs: &[(&str, &[usize])]) -> BTreeMap<String, TensorMeta> {
        pairs
            .iter()
            .map(|(n, s)| {
                let dtype =
                    if n.starts_with('A') && s.len() <= 2 && (n.ends_with('M') || n.ends_with('K'))
                    {
                        DType::I32
                    } else {
                        DType::F32
                    };
                (n.to_string(), TensorMeta::new(s.to_vec(), dtype))
            })
            .collect()
    }

    #[test]
    fn dense_matmul_plan_is_classic_tiling() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let m = metas(&[("C", &[64, 32]), ("A", &[64, 16]), ("B", &[16, 32])]);
        let p = build_plan(&stmt, &m).unwrap();
        assert_eq!(p.y_var.as_deref(), Some("y"));
        assert_eq!(p.x_var.as_deref(), Some("x"));
        assert_eq!(p.r_vars, vec!["r"]);
        assert!(p.grid_vars.is_empty());
        assert!(p.tensor_core_partition());
        assert!(!p.scatter);
        assert!(!p.accumulate);
    }

    #[test]
    fn coo_spmm_plan_tiles_nonzeros_on_y() {
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let m = metas(&[
            ("C", &[16, 32]),
            ("AM", &[40]),
            ("AV", &[40]),
            ("AK", &[40]),
            ("B", &[16, 32]),
        ]);
        let p = build_plan(&stmt, &m).unwrap();
        assert_eq!(p.y_var.as_deref(), Some("p"));
        assert_eq!(p.x_var.as_deref(), Some("n"));
        assert!(p.r_vars.is_empty());
        assert!(p.scatter);
        // No reduction lanes -> no tensor-core partition.
        assert!(!p.tensor_core_partition());
    }

    #[test]
    fn group_coo_spmm_plan_puts_group_on_grid() {
        let stmt = parse("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]").unwrap();
        let m = metas(&[
            ("C", &[16, 32]),
            ("AM", &[10]),
            ("AV", &[10, 4]),
            ("AK", &[10, 4]),
            ("B", &[16, 32]),
        ]);
        let p = build_plan(&stmt, &m).unwrap();
        // p indexes AK together with reduction var q, so p cannot be Y.
        assert_eq!(p.y_var, None);
        assert_eq!(p.grid_vars, vec!["p"]);
        assert_eq!(p.r_vars, vec!["q"]);
        assert!(!p.tensor_core_partition());
    }

    #[test]
    fn block_group_coo_plan_gets_tensor_cores() {
        let stmt = parse("C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]").unwrap();
        let m = metas(&[
            ("C", &[4, 8, 32]),
            ("AM", &[6]),
            ("AV", &[6, 2, 8, 8]),
            ("AK", &[6, 2]),
            ("B", &[4, 8, 32]),
        ]);
        let p = build_plan(&stmt, &m).unwrap();
        assert_eq!(p.grid_vars, vec!["p"]);
        assert_eq!(p.y_var.as_deref(), Some("bm"));
        assert_eq!(p.x_var.as_deref(), Some("n"));
        assert_eq!(p.r_vars, vec!["q", "bk"]);
        assert_eq!(p.r_extent(), 16);
        assert!(p.tensor_core_partition());
    }

    #[test]
    fn sparse_conv_plan_maps_kernel_offsets_to_y() {
        let stmt =
            parse("Out[MAPX[p],q,m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]").unwrap();
        let m = metas(&[
            ("Out", &[50, 4, 16]),
            ("MAPX", &[10]),
            ("MAPV", &[10, 4]),
            ("In", &[50, 8]),
            ("MAPY", &[10, 4]),
            ("Weight", &[27, 8, 16]),
            ("MAPZ", &[10]),
        ]);
        let p = build_plan(&stmt, &m).unwrap();
        assert_eq!(p.grid_vars, vec!["p"]);
        assert_eq!(p.y_var.as_deref(), Some("q"));
        assert_eq!(p.x_var.as_deref(), Some("m"));
        assert_eq!(p.r_vars, vec!["c"]);
        assert!(p.tensor_core_partition());
    }

    #[test]
    fn equivariant_plan_batches_b_and_p() {
        let stmt = parse(
            "Z[b,CGI[p,q],w] += CGV[p,q] * X[b,CGJ[p,q],u] * Y[b,CGK[p,q]] * W[b,CGL[p],u,w]",
        )
        .unwrap();
        let m = metas(&[
            ("Z", &[4, 9, 8]),
            ("CGI", &[5, 3]),
            ("CGV", &[5, 3]),
            ("X", &[4, 9, 6]),
            ("CGJ", &[5, 3]),
            ("Y", &[4, 9]),
            ("CGK", &[5, 3]),
            ("W", &[4, 7, 6, 8]),
            ("CGL", &[5]),
        ]);
        let p = build_plan(&stmt, &m).unwrap();
        assert_eq!(p.grid_vars, vec!["b", "p"]);
        assert_eq!(p.y_var.as_deref(), Some("q"));
        assert_eq!(p.x_var.as_deref(), Some("w"));
        assert_eq!(p.r_vars, vec!["u"]);
        assert!(p.tensor_core_partition());
        assert!(p.scatter);
    }

    #[test]
    fn param_order_is_stable_and_deduplicated() {
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let m = metas(&[
            ("C", &[16, 32]),
            ("AM", &[40]),
            ("AV", &[40]),
            ("AK", &[40]),
            ("B", &[16, 32]),
        ]);
        let p = build_plan(&stmt, &m).unwrap();
        assert_eq!(p.param_order, vec!["C", "AV", "B", "AK", "AM"]);
    }

    #[test]
    fn factor_roles_are_canonically_ordered() {
        let stmt = parse("C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]").unwrap();
        let m = metas(&[
            ("C", &[4, 8, 32]),
            ("AM", &[6]),
            ("AV", &[6, 2, 8, 8]),
            ("AK", &[6, 2]),
            ("B", &[4, 8, 32]),
        ]);
        let p = build_plan(&stmt, &m).unwrap();
        assert_eq!(p.factor_roles(&p.factors[0]), vec![Role::Y, Role::R]);
        assert_eq!(p.factor_roles(&p.factors[1]), vec![Role::R, Role::X]);
    }
}
