//! Persistent autotune-winner cache.
//!
//! An autotune sweep is the most expensive step of a cold start — tens of
//! analytic launches per workload (Table 3's 4.9 s "autotune" row). The
//! winning tile configuration, though, is three small integers keyed by
//! the workload, so it snapshots almost for free. [`AutotuneCache`] maps
//! a 64-bit workload signature to the winning [`TileConfig`]; the
//! autotuner stores every fresh winner after sweeping, and snapshots
//! persist the map alongside compiled programs (see [`crate::snapshot`]).
//!
//! Each entry remembers its origin. Only winners *seeded from a
//! snapshot* let the autotuner skip its sweep — that is the warm-restart
//! contract. Winners stored by in-process sweeps are persisted for the
//! next boot but do not short-circuit tuning in the process that found
//! them: re-tuning a resident workload is already cheap (every trial
//! hits the [`crate::ProgramCache`]), and keeping the sweep keeps its
//! counters honest for benchmarks that measure cold-path cost.
//!
//! A loaded winner is never trusted blindly: [`crate::autotune`]
//! recompiles it and measures one analytic probe launch, so a winner that
//! no longer compiles or launches degrades to a full sweep (the
//! robustness contract of the snapshot layer). The signature covers the
//! probe kernel's structural fingerprint, the launch grid, every input's
//! name/shape/dtype, and the device model — anything that changes the
//! sweep's outcome changes the key.

use insum_snapshot::{SnapshotError, Writer};
use insum_tensor::{DType, Tensor};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Upper bound accepted for a persisted tile extent — far above any real
/// configuration (the sweep caps at 64), it exists purely so forged
/// snapshot bytes cannot smuggle absurd extents into codegen.
const MAX_BLOCK: usize = 1 << 20;

/// A winning tile configuration: the `(yblock, xblock, rblock)` the
/// autotune sweep selected for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Y tile extent.
    pub yblock: usize,
    /// X tile extent.
    pub xblock: usize,
    /// R tile extent.
    pub rblock: usize,
}

/// One cached winner plus where it came from (see the module docs for
/// why origin matters).
#[derive(Debug, Clone, Copy)]
struct Winner {
    config: TileConfig,
    from_snapshot: bool,
}

/// Thread-safe map from workload signature to winning [`TileConfig`].
/// See the module docs for what the signature covers and how stale
/// winners degrade.
#[derive(Default)]
pub struct AutotuneCache {
    inner: Mutex<HashMap<u64, Winner>>,
}

impl AutotuneCache {
    /// An empty winner cache.
    pub fn new() -> AutotuneCache {
        AutotuneCache::default()
    }

    /// The process-wide winner cache consulted by [`crate::autotune`].
    pub fn global() -> &'static AutotuneCache {
        static GLOBAL: OnceLock<AutotuneCache> = OnceLock::new();
        GLOBAL.get_or_init(AutotuneCache::new)
    }

    /// The stored winner for `signature`, if any, regardless of origin.
    pub fn lookup(&self, signature: u64) -> Option<TileConfig> {
        self.inner
            .lock()
            .expect("autotune cache poisoned")
            .get(&signature)
            .map(|w| w.config)
    }

    /// The stored winner for `signature` only if it was seeded from a
    /// snapshot — the variant [`crate::autotune`] consults, so that only
    /// a warm restart (not an in-process re-tune) skips the sweep.
    pub(crate) fn lookup_seeded(&self, signature: u64) -> Option<TileConfig> {
        self.inner
            .lock()
            .expect("autotune cache poisoned")
            .get(&signature)
            .filter(|w| w.from_snapshot)
            .map(|w| w.config)
    }

    /// Record `config` as an in-process winner for `signature`
    /// (replacing any previous winner — in-process results are fresher
    /// than snapshots).
    pub fn store(&self, signature: u64, config: TileConfig) {
        self.inner.lock().expect("autotune cache poisoned").insert(
            signature,
            Winner {
                config,
                from_snapshot: false,
            },
        );
    }

    /// Number of stored winners.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("autotune cache poisoned").len()
    }

    /// Whether no winners are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every stored winner.
    pub fn clear(&self) {
        self.inner.lock().expect("autotune cache poisoned").clear();
    }

    /// Encode every winner as a snapshot record
    /// (`[signature][yblock][xblock][rblock]`, all u64 little-endian),
    /// sorted by signature so snapshot bytes are reproducible.
    pub(crate) fn snapshot_records(&self) -> Vec<Vec<u8>> {
        let inner = self.inner.lock().expect("autotune cache poisoned");
        let mut entries: Vec<(u64, TileConfig)> =
            inner.iter().map(|(&s, w)| (s, w.config)).collect();
        entries.sort_by_key(|&(s, _)| s);
        entries
            .into_iter()
            .map(|(signature, c)| {
                let mut w = Writer::new();
                w.u64(signature);
                w.usize(c.yblock);
                w.usize(c.xblock);
                w.usize(c.rblock);
                w.into_bytes()
            })
            .collect()
    }

    /// Decode one snapshot record and merge it in (merge-not-replace: a
    /// resident winner wins over the snapshot's).
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError`] on truncated framing or an out-of-range
    /// tile extent — the caller counts these as rejected records.
    pub(crate) fn load_record(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = insum_snapshot::Reader::new(bytes);
        let signature = r.u64("winner signature")?;
        let mut block = |context: &'static str| -> Result<usize, SnapshotError> {
            let b = r.usize(context)?;
            if b == 0 || b > MAX_BLOCK {
                return Err(SnapshotError::Corrupt { context });
            }
            Ok(b)
        };
        let config = TileConfig {
            yblock: block("winner yblock")?,
            xblock: block("winner xblock")?,
            rblock: block("winner rblock")?,
        };
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt {
                context: "trailing bytes after winner record",
            });
        }
        let mut inner = self.inner.lock().expect("autotune cache poisoned");
        inner.entry(signature).or_insert(Winner {
            config,
            from_snapshot: true,
        });
        Ok(())
    }
}

/// The 64-bit workload signature winners are keyed by: FNV-1a over the
/// probe kernel's [`insum_kernel::fingerprint`], the launch grid, every
/// input's name/shape/dtype (in `BTreeMap` order, so deterministic), and
/// the device model's `Debug` rendering.
pub(crate) fn workload_signature(
    kernel_fingerprint: u64,
    grid: &[usize],
    inputs: &BTreeMap<String, Tensor>,
    device: &insum_gpu::DeviceModel,
) -> u64 {
    let mut h = Fnv::new();
    h.u64(kernel_fingerprint);
    h.u64(grid.len() as u64);
    for &g in grid {
        h.u64(g as u64);
    }
    h.u64(inputs.len() as u64);
    for (name, t) in inputs {
        h.bytes(name.as_bytes());
        h.u64(t.shape().len() as u64);
        for &d in t.shape() {
            h.u64(d as u64);
        }
        h.u64(u64::from(dtype_rank(t.dtype())));
    }
    h.bytes(format!("{device:?}").as_bytes());
    h.finish()
}

fn dtype_rank(d: DType) -> u8 {
    insum_snapshot::dtype_tag(d)
}

/// FNV-1a, matching the constants `insum_kernel::fingerprint` documents
/// as stable across processes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_lookup_and_merge_semantics() {
        let cache = AutotuneCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(7), None);
        let a = TileConfig {
            yblock: 16,
            xblock: 32,
            rblock: 16,
        };
        cache.store(7, a);
        assert_eq!(cache.lookup(7), Some(a));
        // An in-process winner is visible but never warm-starts tuning.
        assert_eq!(cache.lookup_seeded(7), None);

        // Snapshot records round-trip through load_record...
        let records = cache.snapshot_records();
        assert_eq!(records.len(), 1);
        let other = AutotuneCache::new();
        other.load_record(&records[0]).unwrap();
        assert_eq!(other.lookup(7), Some(a));
        // ...and a loaded winner is snapshot-seeded, so it warm-starts.
        assert_eq!(other.lookup_seeded(7), Some(a));

        // ...but never replace a resident winner.
        let b = TileConfig {
            yblock: 8,
            xblock: 8,
            rblock: 16,
        };
        other.store(7, b);
        other.load_record(&records[0]).unwrap();
        assert_eq!(other.lookup(7), Some(b));
        // The fresher in-process result also reclaims the entry's origin.
        assert_eq!(other.lookup_seeded(7), None);
    }

    #[test]
    fn damaged_winner_records_are_typed() {
        let cache = AutotuneCache::new();
        cache.store(
            1,
            TileConfig {
                yblock: 16,
                xblock: 16,
                rblock: 16,
            },
        );
        let rec = cache.snapshot_records().remove(0);
        let fresh = AutotuneCache::new();
        for cut in 0..rec.len() {
            assert!(fresh.load_record(&rec[..cut]).is_err());
        }
        let mut zero = rec.clone();
        zero[8..16].copy_from_slice(&0u64.to_le_bytes()); // yblock = 0
        assert!(fresh.load_record(&zero).is_err());
        let mut huge = rec.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(fresh.load_record(&huge).is_err());
        let mut trailing = rec;
        trailing.push(0);
        assert!(fresh.load_record(&trailing).is_err());
        assert!(fresh.is_empty());
    }

    #[test]
    fn signature_is_sensitive_to_every_component() {
        let inputs: BTreeMap<String, Tensor> = [("A".to_string(), Tensor::ones(vec![4, 4]))].into();
        let dev = insum_gpu::DeviceModel::rtx3090();
        let base = workload_signature(1, &[4], &inputs, &dev);
        assert_ne!(base, workload_signature(2, &[4], &inputs, &dev));
        assert_ne!(base, workload_signature(1, &[8], &inputs, &dev));
        let renamed: BTreeMap<String, Tensor> =
            [("B".to_string(), Tensor::ones(vec![4, 4]))].into();
        assert_ne!(base, workload_signature(1, &[4], &renamed, &dev));
        let reshaped: BTreeMap<String, Tensor> =
            [("A".to_string(), Tensor::ones(vec![2, 8]))].into();
        assert_ne!(base, workload_signature(1, &[4], &reshaped, &dev));
    }
}
