//! The TorchInductor analogue: lowering indirect Einsums to fused,
//! Tensor-Core-enabled kernels (§5.2 of the paper).
//!
//! Stock TorchInductor fuses pointwise chains but routes matrix multiplies
//! through a hand-written template, so an indirect Einsum becomes **three**
//! kernels — gather, template matmul, scatter — with large intermediates
//! materialized in DRAM. The paper extends Inductor with an `ops.dot` IR
//! node (pattern-matched from broadcast-multiply + sum), explicit 2-D
//! tiling over the output, and *lazy broadcasting* so `tl.dot` operands
//! are produced in their natural `(Y, R)` / `(R, X)` layouts without
//! `tl.view`/`tl.trans` round trips.
//!
//! This crate reproduces both paths:
//!
//! * [`compile_unfused`] walks the FX graph from `insum-graph` and emits
//!   one kernel per node (gather kernels, a matmul kernel, a scatter
//!   kernel), materializing intermediates — the stock-Inductor baseline
//!   of the paper's ablation (Fig. 13, rows 1–4).
//! * [`compile_fused`] builds a [`FusionPlan`] that classifies every index
//!   variable into grid / Y / X / flattened-R roles (the tiling decision
//!   of §5.2.2) and emits a **single** kernel that gathers, multiplies,
//!   reduces (with `tl.dot` when a `(Y,R)×(R,X)` partition exists), and
//!   scatters. [`CodegenOptions::lazy_broadcast`] switches between the
//!   lazy layout tracking of §5.2.3 and the eager mode that pays
//!   `tl.view`/`tl.trans` shared-memory traffic before every dot.
//! * [`autotune`] sweeps power-of-two tile configurations with analytic
//!   simulator launches — the "compile + autotune" cost that Table 3
//!   charges against Insum.

mod autotune;
mod cache;
mod codegen;
mod error;
#[cfg(feature = "fault-injection")]
#[doc(hidden)]
pub mod faults;
mod plan;
mod runner;
mod snapshot;
mod unfused;
mod winners;

pub use autotune::{autotune, autotune_with, AutotuneResult};
pub use cache::{ProgramCache, ProgramCacheStats};
pub use codegen::{compile_fused, CodegenOptions, FusedOp};
pub use error::InductorError;
pub use plan::{build_plan, DimDesc, FactorDesc, FusionPlan, Role};
pub use runner::{
    run_fused, run_fused_batch_with, run_fused_batch_with_cache, run_fused_with,
    run_fused_with_cache,
};
pub use snapshot::{load_snapshot_with, save_snapshot_with, SnapshotLoadReport};
pub use unfused::{
    compile_unfused, run_unfused, run_unfused_with, run_unfused_with_cache, UnfusedOp,
};
pub use winners::{AutotuneCache, TileConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, InductorError>;

/// Mid-plan fault check for batched launches that bypass the fused
/// runner (the fast-path microkernels and stride views execute without
/// a compiled program, so [`run_fused_batch_with_cache`]'s hook never
/// sees them). Panics if a marked tensor is bound anywhere in `args`;
/// compiles to a no-op without the `fault-injection` feature.
pub fn batch_fault_check(args: &[Vec<insum_tensor::Tensor>]) {
    #[cfg(feature = "fault-injection")]
    faults::maybe_panic_batch(args);
    #[cfg(not(feature = "fault-injection"))]
    let _ = args;
}
