//! Tile-size autotuning via analytic simulator launches.
//!
//! The paper integrates PyTorch's autotuning infrastructure to pick Triton
//! configurations automatically (§6.7) — the 4.9 s "autotune" row of
//! Table 3. This module reproduces that: it sweeps power-of-two tile
//! candidates, launches each candidate in [`Mode::Analytic`] on the real
//! inputs, and keeps the fastest.

use crate::codegen::{compile_fused, next_pow2, CodegenOptions, FusedOp};
use crate::plan::FusionPlan;
use crate::runner::run_fused;
use crate::Result;
use insum_gpu::{DeviceModel, Mode};
use insum_tensor::Tensor;
use std::collections::BTreeMap;

/// Outcome of an autotuning sweep.
#[derive(Debug, Clone)]
pub struct AutotuneResult {
    /// The best compiled operation.
    pub op: FusedOp,
    /// Simulated time of the best configuration, seconds.
    pub best_time: f64,
    /// Number of configurations evaluated.
    pub configs_tried: usize,
    /// Host wall-clock spent tuning, seconds.
    pub tuning_wall_seconds: f64,
}

fn candidates(extent: usize, dot: bool, has_role: bool) -> Vec<usize> {
    if !has_role {
        return vec![1];
    }
    let cap = next_pow2(extent);
    let floor = if dot { 16 } else { 1 };
    let mut out: Vec<usize> = [8usize, 16, 32, 64]
        .into_iter()
        .filter(|&b| b >= floor && b <= cap.max(floor))
        .collect();
    if out.is_empty() {
        out.push(cap.clamp(floor, 64));
    }
    out.dedup();
    out
}

/// Sweep tile configurations and return the fastest.
///
/// # Errors
///
/// Propagates codegen and simulator errors; at least one configuration is
/// always evaluated.
pub fn autotune(
    plan: &FusionPlan,
    base: &CodegenOptions,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
) -> Result<AutotuneResult> {
    let start = std::time::Instant::now();
    let probe = compile_fused(plan, base)?;
    let dot = probe.uses_dot;
    let ys = candidates(plan.y_extent(), dot, plan.y_var.is_some());
    let xs = candidates(plan.x_extent(), dot, plan.x_var.is_some());
    let rs = candidates(plan.r_extent(), dot, !plan.r_vars.is_empty());

    let mut best: Option<(FusedOp, f64)> = None;
    let mut tried = 0;
    for &y in &ys {
        for &x in &xs {
            for &r in &rs {
                let opts = CodegenOptions {
                    yblock: Some(y),
                    xblock: Some(x),
                    rblock: Some(r),
                    ..base.clone()
                };
                let op = compile_fused(plan, &opts)?;
                let (_, report) = run_fused(&op, inputs, device, Mode::Analytic)?;
                tried += 1;
                if best.as_ref().is_none_or(|(_, t)| report.time < *t) {
                    best = Some((op, report.time));
                }
            }
        }
    }
    let (op, best_time) = best.expect("at least one configuration is evaluated");
    Ok(AutotuneResult {
        op,
        best_time,
        configs_tried: tried,
        tuning_wall_seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use insum_graph::TensorMeta;
    use insum_lang::parse;
    use insum_tensor::{rand_uniform, DType};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn autotune_finds_no_worse_than_default() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let a = rand_uniform(vec![128, 64], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![64, 128], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![128, 128]);
        let metas: BTreeMap<String, TensorMeta> = [
            ("C".to_string(), TensorMeta::new(vec![128, 128], DType::F32)),
            ("A".to_string(), TensorMeta::new(vec![128, 64], DType::F32)),
            ("B".to_string(), TensorMeta::new(vec![64, 128], DType::F32)),
        ]
        .into_iter()
        .collect();
        let inputs: BTreeMap<String, Tensor> = [
            ("C".to_string(), c),
            ("A".to_string(), a),
            ("B".to_string(), b),
        ]
        .into_iter()
        .collect();
        let plan = build_plan(&stmt, &metas).unwrap();
        let device = DeviceModel::rtx3090();

        let default_op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let (_, default_report) = run_fused(&default_op, &inputs, &device, Mode::Analytic).unwrap();

        let tuned = autotune(&plan, &CodegenOptions::default(), &inputs, &device).unwrap();
        assert!(tuned.configs_tried > 1);
        assert!(tuned.best_time <= default_report.time * 1.0001);
        assert!(tuned.tuning_wall_seconds > 0.0);
    }

    #[test]
    fn candidate_sets_respect_dot_minimum() {
        assert_eq!(candidates(4, false, true), vec![4]);
        assert!(candidates(64, true, true).iter().all(|&b| b >= 16));
        assert_eq!(candidates(0, true, false), vec![1]);
    }
}
