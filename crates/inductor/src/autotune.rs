//! Tile-size autotuning via analytic simulator launches.
//!
//! The paper integrates PyTorch's autotuning infrastructure to pick Triton
//! configurations automatically (§6.7) — the 4.9 s "autotune" row of
//! Table 3. This module reproduces that: it sweeps power-of-two tile
//! candidates, launches each candidate in [`Mode::Analytic`] on the real
//! inputs, and keeps the fastest.
//!
//! Two costs are amortized across the sweep. Analytic launches of fully
//! affine kernels dedup each row of grid instances into one costed
//! representative (see `insum_gpu`'s compile pipeline), turning the inner
//! loop from O(instances) to O(instance classes). And every trial's
//! lowering goes through the process-wide [`crate::ProgramCache`], so the
//! winning configuration's compiled program is already resident when the
//! caller launches it for real — and re-tuning the same workload performs
//! no lowering at all.

use crate::cache::ProgramCache;
use crate::codegen::{compile_fused, next_pow2, CodegenOptions, FusedOp};
use crate::plan::FusionPlan;
use crate::runner::run_fused_with_cache;
use crate::winners::{workload_signature, AutotuneCache, TileConfig};
use crate::Result;
use insum_gpu::{DeviceModel, Mode};
use insum_tensor::Tensor;
use std::collections::BTreeMap;

/// Outcome of an autotuning sweep.
#[derive(Debug, Clone)]
pub struct AutotuneResult {
    /// The best compiled operation.
    pub op: FusedOp,
    /// Simulated time of the best configuration, seconds.
    pub best_time: f64,
    /// Number of configurations evaluated (the heuristic probe plus the
    /// sweep, minus sweep points identical to the probe; 1 on a warm
    /// start).
    pub configs_tried: usize,
    /// Host wall-clock spent tuning, seconds.
    pub tuning_wall_seconds: f64,
    /// Program-cache hits observed during the sweep (repeat sweeps of
    /// the same workload hit on every configuration).
    pub cache_hits: u64,
    /// Program-cache misses (fresh lowerings) during the sweep.
    pub cache_misses: u64,
    /// True when a persisted [`AutotuneCache`] winner skipped the sweep
    /// (the winner was still re-verified by one analytic launch).
    pub warm_start: bool,
}

fn candidates(extent: usize, dot: bool, has_role: bool) -> Vec<usize> {
    if !has_role {
        return vec![1];
    }
    let cap = next_pow2(extent);
    let floor = if dot { 16 } else { 1 };
    let mut out: Vec<usize> = [8usize, 16, 32, 64]
        .into_iter()
        .filter(|&b| b >= floor && b <= cap.max(floor))
        .collect();
    if out.is_empty() {
        out.push(cap.clamp(floor, 64));
    }
    out.dedup();
    out
}

/// Sweep tile configurations and return the fastest.
///
/// The heuristic (probe) configuration is measured first and seeds the
/// best-so-far, so `best_time` is never worse than the default
/// configuration's analytic time — by construction, not by luck.
///
/// # Errors
///
/// Propagates codegen and simulator errors; at least one configuration is
/// always evaluated.
pub fn autotune(
    plan: &FusionPlan,
    base: &CodegenOptions,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
) -> Result<AutotuneResult> {
    autotune_impl(
        plan,
        base,
        inputs,
        device,
        ProgramCache::global(),
        Some(AutotuneCache::global()),
    )
}

/// [`autotune`] against an explicit [`ProgramCache`] (useful for
/// isolation in tests and benchmarks; cache counters in the result are
/// then exact rather than shared with concurrent launches). Does not
/// consult persisted winners: every call sweeps.
///
/// # Errors
///
/// Same conditions as [`autotune`].
pub fn autotune_with(
    plan: &FusionPlan,
    base: &CodegenOptions,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    cache: &ProgramCache,
) -> Result<AutotuneResult> {
    autotune_impl(plan, base, inputs, device, cache, None)
}

fn autotune_impl(
    plan: &FusionPlan,
    base: &CodegenOptions,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    cache: &ProgramCache,
    winners: Option<&AutotuneCache>,
) -> Result<AutotuneResult> {
    // One autotune interval per sweep; the compile/launch guards inside
    // the sweep are suppressed while this span is open, so an installed
    // collector sees the sweep as a single cost instead of an event
    // flood.
    let _autotune_span = insum_telemetry::hook::timed(insum_telemetry::HookPhase::Autotune);
    let start = std::time::Instant::now();
    let cache_before = cache.stats();
    let launch_opts = insum_gpu::LaunchOptions::default();

    // The probe is a real measurement, not a throwaway: it seeds `best`.
    let probe = compile_fused(plan, base)?;
    let dot = probe.uses_dot;
    let probe_blocks = (probe.yblock, probe.xblock, probe.rblock);

    // The workload signature keys persisted winners. It hashes the
    // *probe* kernel (compiled from `base`, so deterministic for the
    // workload), not the winner's, so re-tuning after a restart finds
    // the same key regardless of which configuration won.
    let keyed = winners.map(|w| {
        (
            w,
            workload_signature(
                insum_kernel::fingerprint(&probe.kernel),
                &probe.grid,
                inputs,
                device,
            ),
        )
    });

    // Warm path: a snapshot-seeded winner skips the sweep entirely, but
    // is never trusted blindly — it must recompile and survive one
    // analytic verify launch. Any failure falls through to the full
    // sweep. Winners stored by earlier sweeps in *this* process don't
    // take this path (re-tuning them is already cheap via the program
    // cache, and skipping would distort cold-path measurements).
    if let Some((w, signature)) = keyed {
        if let Some(cfg) = w.lookup_seeded(signature) {
            let opts = CodegenOptions {
                yblock: Some(cfg.yblock),
                xblock: Some(cfg.xblock),
                rblock: Some(cfg.rblock),
                ..base.clone()
            };
            if let Ok(op) = compile_fused(plan, &opts) {
                if let Ok((_, report)) =
                    run_fused_with_cache(&op, inputs, device, Mode::Analytic, &launch_opts, cache)
                {
                    let cache_after = cache.stats();
                    return Ok(AutotuneResult {
                        op,
                        best_time: report.time,
                        configs_tried: 1,
                        tuning_wall_seconds: start.elapsed().as_secs_f64(),
                        cache_hits: cache_after.hits.saturating_sub(cache_before.hits),
                        cache_misses: cache_after.misses.saturating_sub(cache_before.misses),
                        warm_start: true,
                    });
                }
            }
        }
    }

    let (_, probe_report) =
        run_fused_with_cache(&probe, inputs, device, Mode::Analytic, &launch_opts, cache)?;
    let mut best: (FusedOp, f64) = (probe, probe_report.time);
    let mut tried = 1;

    let ys = candidates(plan.y_extent(), dot, plan.y_var.is_some());
    let xs = candidates(plan.x_extent(), dot, plan.x_var.is_some());
    let rs = candidates(plan.r_extent(), dot, !plan.r_vars.is_empty());
    for &y in &ys {
        for &x in &xs {
            for &r in &rs {
                if (y, x, r) == probe_blocks {
                    continue; // already measured as the probe
                }
                let opts = CodegenOptions {
                    yblock: Some(y),
                    xblock: Some(x),
                    rblock: Some(r),
                    ..base.clone()
                };
                let op = compile_fused(plan, &opts)?;
                let (_, report) =
                    run_fused_with_cache(&op, inputs, device, Mode::Analytic, &launch_opts, cache)?;
                tried += 1;
                if report.time < best.1 {
                    best = (op, report.time);
                }
            }
        }
    }
    let (op, best_time) = best;
    if let Some((w, signature)) = keyed {
        w.store(
            signature,
            TileConfig {
                yblock: op.yblock,
                xblock: op.xblock,
                rblock: op.rblock,
            },
        );
    }
    let cache_after = cache.stats();
    Ok(AutotuneResult {
        op,
        best_time,
        configs_tried: tried,
        tuning_wall_seconds: start.elapsed().as_secs_f64(),
        cache_hits: cache_after.hits.saturating_sub(cache_before.hits),
        cache_misses: cache_after.misses.saturating_sub(cache_before.misses),
        warm_start: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use crate::runner::run_fused;
    use insum_graph::TensorMeta;
    use insum_lang::parse;
    use insum_tensor::{rand_uniform, DType};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn matmul_setup() -> (FusionPlan, BTreeMap<String, Tensor>) {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let a = rand_uniform(vec![128, 64], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![64, 128], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![128, 128]);
        let metas: BTreeMap<String, TensorMeta> = [
            ("C".to_string(), TensorMeta::new(vec![128, 128], DType::F32)),
            ("A".to_string(), TensorMeta::new(vec![128, 64], DType::F32)),
            ("B".to_string(), TensorMeta::new(vec![64, 128], DType::F32)),
        ]
        .into_iter()
        .collect();
        let inputs: BTreeMap<String, Tensor> = [
            ("C".to_string(), c),
            ("A".to_string(), a),
            ("B".to_string(), b),
        ]
        .into_iter()
        .collect();
        let plan = build_plan(&stmt, &metas).unwrap();
        (plan, inputs)
    }

    #[test]
    fn autotune_finds_no_worse_than_default() {
        let (plan, inputs) = matmul_setup();
        let device = DeviceModel::rtx3090();

        let default_op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let (_, default_report) = run_fused(&default_op, &inputs, &device, Mode::Analytic).unwrap();

        let tuned = autotune(&plan, &CodegenOptions::default(), &inputs, &device).unwrap();
        assert!(tuned.configs_tried > 1);
        // The probe seeds `best`, so this holds structurally — no
        // floating-point fudge factor needed.
        assert!(tuned.best_time <= default_report.time);
        assert!(tuned.tuning_wall_seconds > 0.0);
    }

    #[test]
    fn autotune_reuses_programs_across_trials() {
        let (plan, inputs) = matmul_setup();
        let device = DeviceModel::rtx3090();
        let cache = ProgramCache::new();
        let first =
            autotune_with(&plan, &CodegenOptions::default(), &inputs, &device, &cache).unwrap();
        let second =
            autotune_with(&plan, &CodegenOptions::default(), &inputs, &device, &cache).unwrap();
        assert_eq!(first.configs_tried, second.configs_tried);
        // Re-tuning the same workload lowers nothing: every trial's
        // program is already resident in the cross-launch cache.
        assert_eq!(first.cache_misses, first.configs_tried as u64);
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.cache_hits, first.configs_tried as u64);
        assert_eq!(first.best_time, second.best_time);
    }

    #[test]
    fn persisted_winner_skips_sweep_but_is_verified() {
        let (plan, inputs) = matmul_setup();
        let device = DeviceModel::rtx3090();
        let cache = ProgramCache::new();
        let winners = AutotuneCache::new();

        let cold = autotune_impl(
            &plan,
            &CodegenOptions::default(),
            &inputs,
            &device,
            &cache,
            Some(&winners),
        )
        .unwrap();
        assert!(!cold.warm_start);
        assert!(cold.configs_tried > 1);
        assert_eq!(winners.len(), 1);

        // The in-process winner alone never warm-starts: re-tuning in
        // the same process sweeps again (hitting the program cache).
        let retune = autotune_impl(
            &plan,
            &CodegenOptions::default(),
            &inputs,
            &device,
            &cache,
            Some(&winners),
        )
        .unwrap();
        assert!(!retune.warm_start);
        assert_eq!(retune.configs_tried, cold.configs_tried);
        assert_eq!(retune.cache_misses, 0, "sweep programs are resident");

        // Round-trip the winner through snapshot records, as a restart
        // would: a *seeded* winner is what skips the sweep.
        let seeded = AutotuneCache::new();
        for record in winners.snapshot_records() {
            seeded.load_record(&record).unwrap();
        }
        let warm = autotune_impl(
            &plan,
            &CodegenOptions::default(),
            &inputs,
            &device,
            &cache,
            Some(&seeded),
        )
        .unwrap();
        assert!(warm.warm_start);
        assert_eq!(warm.configs_tried, 1);
        // The verify launch measured the same winning configuration the
        // sweep found: analytic times are deterministic, so they agree.
        assert_eq!(warm.best_time, cold.best_time);
        assert_eq!(
            (warm.op.yblock, warm.op.xblock, warm.op.rblock),
            (cold.op.yblock, cold.op.xblock, cold.op.rblock)
        );
        // The winner's program was already resident from the sweep.
        assert_eq!(warm.cache_misses, 0);
    }

    #[test]
    fn candidate_sets_respect_dot_minimum() {
        assert_eq!(candidates(4, false, true), vec![4]);
        assert!(candidates(64, true, true).iter().all(|&b| b >= 16));
        assert_eq!(candidates(0, true, false), vec![1]);
    }
}
