//! Executing compiled fused operations on the simulator.
//!
//! Launches go through the process-wide [`ProgramCache`], so the
//! ahead-of-time lowering of a kernel happens once per distinct
//! (kernel, grid, argument metadata) across repeated runs and all
//! autotuning trials.

use crate::cache::{cached_program, ProgramCache};
use crate::codegen::FusedOp;
use crate::error::InductorError;
use crate::Result;
use insum_gpu::{DeviceModel, KernelReport, LaunchOptions, Mode};
use insum_tensor::{DType, Tensor};
use std::collections::BTreeMap;

/// Run a fused operation over named tensors.
///
/// The output tensor named by the plan is cloned from `inputs`, mutated by
/// the kernel (in [`Mode::Execute`]), and returned together with the
/// launch report. In [`Mode::Analytic`] the returned tensor is the
/// unmodified output binding.
///
/// Argument capture binds shared storage, not copies: `Tensor` clones
/// are O(1) Arc bumps, and only the parameters the kernel actually
/// writes materialize a private buffer (copy-on-write at first write),
/// so the caller's bindings are never mutated and read-only inputs are
/// never copied.
///
/// # Errors
///
/// * [`InductorError::Binding`] if a parameter tensor is missing.
/// * Simulator errors are propagated.
pub fn run_fused(
    op: &FusedOp,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, KernelReport)> {
    run_fused_with(op, inputs, device, mode, &LaunchOptions::default())
}

/// [`run_fused`] with explicit simulator scheduling options (see
/// [`LaunchOptions`]); results are identical for every configuration.
///
/// # Errors
///
/// Same conditions as [`run_fused`].
pub fn run_fused_with(
    op: &FusedOp,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    mode: Mode,
    launch_options: &LaunchOptions,
) -> Result<(Tensor, KernelReport)> {
    run_fused_with_cache(
        op,
        inputs,
        device,
        mode,
        launch_options,
        ProgramCache::global(),
    )
}

/// [`run_fused_with`] against an explicit [`ProgramCache`] instead of the
/// process-wide one (useful for isolation in tests and benchmarks).
///
/// # Errors
///
/// Same conditions as [`run_fused`].
pub fn run_fused_with_cache(
    op: &FusedOp,
    inputs: &BTreeMap<String, Tensor>,
    device: &DeviceModel,
    mode: Mode,
    launch_options: &LaunchOptions,
    cache: &ProgramCache,
) -> Result<(Tensor, KernelReport)> {
    // Cheap Arc clones for contiguous bindings: the launch shares the
    // caller's storage and only written parameters copy-on-write. A
    // strided view (e.g. a fast-path transpose output fed back in) is
    // gathered first — the interpreter addresses raw row-major storage.
    let mut owned: Vec<Tensor> = Vec::with_capacity(op.plan.param_order.len());
    for name in &op.plan.param_order {
        let t = inputs
            .get(name)
            .ok_or_else(|| InductorError::Binding(format!("missing tensor {name:?}")))?;
        owned.push(t.contiguous());
    }
    let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
    let lens: Vec<usize> = refs.iter().map(|t| t.len()).collect();
    let dtypes: Vec<DType> = refs.iter().map(|t| t.dtype()).collect();
    let program = cached_program(cache, &op.kernel, &op.grid, &lens, &dtypes)?;
    let report = program.launch_with(&mut refs, device, mode, launch_options)?;
    let out_pos = op
        .plan
        .param_order
        .iter()
        .position(|n| n == &op.plan.output.tensor)
        .expect("output is always a parameter");
    Ok((owned.swap_remove(out_pos), report))
}

/// Run one fused operation for every request of a batch, sharing one
/// pool of simulator threads across the whole batch (see
/// [`insum_gpu::Program::launch_batch_with`]).
///
/// All requests must bind tensors with identical lengths and dtypes (the
/// batch shares one compiled program); a mismatch is reported as a
/// binding error naming the offending request. Each request's output
/// tensor and [`KernelReport`] are bit-identical to a serial per-request
/// [`run_fused_with`] call, regardless of batch composition, request
/// order, or thread count. Like [`run_fused_with`], per-request argument
/// capture is zero-copy: requests sharing operand tensors (weights,
/// sparse structure) share one buffer across the whole batch, and only
/// each request's written output materializes.
///
/// # Errors
///
/// * [`InductorError::Binding`] if a parameter tensor is missing or a
///   request's argument metadata differs from the first request's.
/// * Simulator errors are propagated (first failing request wins).
pub fn run_fused_batch_with_cache(
    op: &FusedOp,
    batch: &[&BTreeMap<String, Tensor>],
    device: &DeviceModel,
    mode: Mode,
    launch_options: &LaunchOptions,
    cache: &ProgramCache,
) -> Result<Vec<(Tensor, KernelReport)>> {
    if batch.is_empty() {
        return Ok(Vec::new());
    }
    let params = &op.plan.param_order;
    let mut owned: Vec<Vec<Tensor>> = Vec::with_capacity(batch.len());
    for (req, inputs) in batch.iter().enumerate() {
        let mut args: Vec<Tensor> = Vec::with_capacity(params.len());
        for name in params {
            let t = inputs.get(name).ok_or_else(|| {
                InductorError::Binding(format!("request {req}: missing tensor {name:?}"))
            })?;
            // Gather strided views into row-major storage (no-op Arc
            // clone for the common contiguous case) — see
            // `run_fused_with_cache`.
            args.push(t.contiguous());
        }
        owned.push(args);
    }
    #[cfg(feature = "fault-injection")]
    crate::faults::maybe_panic_batch(&owned);
    let lens: Vec<usize> = owned[0].iter().map(|t| t.len()).collect();
    let dtypes: Vec<DType> = owned[0].iter().map(|t| t.dtype()).collect();
    for (req, args) in owned.iter().enumerate().skip(1) {
        let ok = args
            .iter()
            .zip(lens.iter().zip(&dtypes))
            .all(|(t, (&l, &d))| t.len() == l && t.dtype() == d);
        if !ok {
            return Err(InductorError::Binding(format!(
                "request {req}: argument metadata differs from the batch's \
                 (batched launches share one compiled program)"
            )));
        }
    }
    let program = cached_program(cache, &op.kernel, &op.grid, &lens, &dtypes)?;
    let mut views: Vec<Vec<&mut Tensor>> = owned
        .iter_mut()
        .map(|args| args.iter_mut().collect())
        .collect();
    let mut requests: Vec<&mut [&mut Tensor]> =
        views.iter_mut().map(|v| v.as_mut_slice()).collect();
    let reports = program.launch_batch_with(&mut requests, device, mode, launch_options)?;
    let out_pos = params
        .iter()
        .position(|n| n == &op.plan.output.tensor)
        .expect("output is always a parameter");
    Ok(owned
        .into_iter()
        .zip(reports)
        .map(|(mut args, report)| (args.swap_remove(out_pos), report))
        .collect())
}

/// [`run_fused_batch_with_cache`] against the process-wide
/// [`ProgramCache`].
///
/// # Errors
///
/// Same conditions as [`run_fused_batch_with_cache`].
pub fn run_fused_batch_with(
    op: &FusedOp,
    batch: &[&BTreeMap<String, Tensor>],
    device: &DeviceModel,
    mode: Mode,
    launch_options: &LaunchOptions,
) -> Result<Vec<(Tensor, KernelReport)>> {
    run_fused_batch_with_cache(
        op,
        batch,
        device,
        mode,
        launch_options,
        ProgramCache::global(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{compile_fused, CodegenOptions};
    use crate::plan::build_plan;
    use insum_graph::{execute, lower, TensorMeta};
    use insum_lang::parse;
    use insum_tensor::{rand_uniform, randint, DType};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Compile + run an expression both through the fused kernel and the
    /// eager graph interpreter and compare.
    fn check_against_eager(expr: &str, binds: &[(&str, Tensor)], opts: &CodegenOptions) {
        let stmt = parse(expr).unwrap();
        let metas: BTreeMap<String, TensorMeta> = binds
            .iter()
            .map(|(n, t)| {
                (
                    n.to_string(),
                    TensorMeta::new(t.shape().to_vec(), t.dtype()),
                )
            })
            .collect();
        let inputs: BTreeMap<String, Tensor> = binds
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect();

        let plan = build_plan(&stmt, &metas).unwrap();
        let op = compile_fused(&plan, opts).unwrap();
        let device = DeviceModel::rtx3090();
        let (got, report) = run_fused(&op, &inputs, &device, Mode::Execute).unwrap();
        assert!(report.time > 0.0);

        let lowered = lower(&stmt, &metas).unwrap();
        let want = execute(&lowered.graph, &inputs).unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "{expr}: fused kernel diverges from eager (max diff {:?})",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn dense_matmul_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = rand_uniform(vec![48, 24], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![24, 40], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![48, 40]);
        for opts in [
            CodegenOptions::default(),
            CodegenOptions {
                tensor_cores: false,
                ..Default::default()
            },
            CodegenOptions {
                lazy_broadcast: false,
                ..Default::default()
            },
        ] {
            check_against_eager(
                "C[y,x] = A[y,r] * B[r,x]",
                &[("C", c.clone()), ("A", a.clone()), ("B", b.clone())],
                &opts,
            );
        }
    }

    #[test]
    fn coo_spmm_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(2);
        let nnz = 37;
        let am = randint(vec![nnz], 16, &mut rng);
        let ak = randint(vec![nnz], 20, &mut rng);
        let av = rand_uniform(vec![nnz], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![20, 24], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![16, 24]);
        check_against_eager(
            "C[AM[p],n] += AV[p] * B[AK[p],n]",
            &[("C", c), ("AM", am), ("AK", ak), ("AV", av), ("B", b)],
            &CodegenOptions::default(),
        );
    }

    #[test]
    fn group_coo_spmm_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (groups, g) = (11, 3);
        let am = randint(vec![groups], 8, &mut rng);
        let ak = randint(vec![groups, g], 12, &mut rng);
        let av = rand_uniform(vec![groups, g], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![12, 20], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![8, 20]);
        check_against_eager(
            "C[AM[p],n] += AV[p,q] * B[AK[p,q],n]",
            &[("C", c), ("AM", am), ("AK", ak), ("AV", av), ("B", b)],
            &CodegenOptions::default(),
        );
    }

    #[test]
    fn block_group_coo_spmm_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (groups, g, bm, bk) = (5, 2, 16, 16);
        let brows = 4;
        let bcols = 3;
        let n = 32;
        let am = randint(vec![groups], brows, &mut rng);
        let ak = randint(vec![groups, g], bcols, &mut rng);
        let av = rand_uniform(vec![groups, g, bm, bk], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![bcols, bk, n], -1.0, 1.0, &mut rng);
        let c = Tensor::zeros(vec![brows, bm, n]);
        for opts in [
            CodegenOptions::default(),
            CodegenOptions {
                lazy_broadcast: false,
                ..Default::default()
            },
            CodegenOptions {
                tensor_cores: false,
                ..Default::default()
            },
        ] {
            check_against_eager(
                "C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]",
                &[
                    ("C", c.clone()),
                    ("AM", am.clone()),
                    ("AK", ak.clone()),
                    ("AV", av.clone()),
                    ("B", b.clone()),
                ],
                &opts,
            );
        }
    }

    #[test]
    fn sparse_conv_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (pairs, q, c_in, c_out) = (7, 4, 24, 16);
        let voxels = 30;
        let offsets = 27;
        let mapx = randint(vec![pairs], voxels, &mut rng);
        let mapy = randint(vec![pairs, q], voxels, &mut rng);
        let mapz = randint(vec![pairs], offsets, &mut rng);
        let mapv = rand_uniform(vec![pairs, q], 0.0, 1.0, &mut rng);
        let input = rand_uniform(vec![voxels, c_in], -1.0, 1.0, &mut rng);
        let weight = rand_uniform(vec![offsets, c_in, c_out], -1.0, 1.0, &mut rng);
        let out = Tensor::zeros(vec![voxels, q, c_out]);
        check_against_eager(
            "Out[MAPX[p],q,m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]",
            &[
                ("Out", out),
                ("MAPX", mapx),
                ("MAPY", mapy),
                ("MAPZ", mapz),
                ("MAPV", mapv),
                ("In", input),
                ("Weight", weight),
            ],
            &CodegenOptions::default(),
        );
    }

    #[test]
    fn equivariant_tp_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(6);
        let (b_sz, paths, g, u, w) = (3, 4, 2, 8, 16);
        let (i_dim, j_dim, k_dim, l_dim) = (6, 7, 8, 4);
        let cgi = randint(vec![paths, g], i_dim, &mut rng);
        let cgj = randint(vec![paths, g], j_dim, &mut rng);
        let cgk = randint(vec![paths, g], k_dim, &mut rng);
        let cgl = randint(vec![paths], l_dim, &mut rng);
        let cgv = rand_uniform(vec![paths, g], -1.0, 1.0, &mut rng);
        let x = rand_uniform(vec![b_sz, j_dim, u], -1.0, 1.0, &mut rng);
        let y = rand_uniform(vec![b_sz, k_dim], -1.0, 1.0, &mut rng);
        let wt = rand_uniform(vec![b_sz, l_dim, u, w], -1.0, 1.0, &mut rng);
        let z = Tensor::zeros(vec![b_sz, i_dim, w]);
        check_against_eager(
            "Z[b,CGI[p,q],w] += CGV[p,q] * X[b,CGJ[p,q],u] * Y[b,CGK[p,q]] * W[b,CGL[p],u,w]",
            &[
                ("Z", z),
                ("CGI", cgi),
                ("CGJ", cgj),
                ("CGK", cgk),
                ("CGL", cgl),
                ("CGV", cgv),
                ("X", x),
                ("Y", y),
                ("W", wt),
            ],
            &CodegenOptions::default(),
        );
    }

    #[test]
    fn f16_pipeline_matches_eager() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = rand_uniform(vec![32, 32], -1.0, 1.0, &mut rng).cast(DType::F16);
        let b = rand_uniform(vec![32, 32], -1.0, 1.0, &mut rng).cast(DType::F16);
        let c = Tensor::zeros(vec![32, 32]).cast(DType::F16);
        check_against_eager(
            "C[y,x] = A[y,r] * B[r,x]",
            &[("C", c), ("A", a), ("B", b)],
            &CodegenOptions::default(),
        );
    }

    #[test]
    fn batched_requests_match_serial_runs_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(21);
        let nnz = 37;
        let am = randint(vec![nnz], 16, &mut rng);
        let ak = randint(vec![nnz], 20, &mut rng);
        let av = rand_uniform(vec![nnz], -1.0, 1.0, &mut rng);
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let mk_request = |rng: &mut SmallRng| -> BTreeMap<String, Tensor> {
            [
                ("C".to_string(), Tensor::zeros(vec![16, 24])),
                ("AM".to_string(), am.clone()),
                ("AK".to_string(), ak.clone()),
                ("AV".to_string(), av.clone()),
                ("B".to_string(), rand_uniform(vec![20, 24], -1.0, 1.0, rng)),
            ]
            .into_iter()
            .collect()
        };
        let requests: Vec<BTreeMap<String, Tensor>> =
            (0..5).map(|_| mk_request(&mut rng)).collect();
        let metas: BTreeMap<String, TensorMeta> = requests[0]
            .iter()
            .map(|(n, t)| (n.clone(), TensorMeta::new(t.shape().to_vec(), t.dtype())))
            .collect();
        let plan = build_plan(&stmt, &metas).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let device = DeviceModel::rtx3090();
        for mode in [Mode::Execute, Mode::Analytic] {
            let serial: Vec<(Tensor, KernelReport)> = requests
                .iter()
                .map(|r| {
                    run_fused_with(&op, r, &device, mode, &LaunchOptions::sequential()).unwrap()
                })
                .collect();
            let refs: Vec<&BTreeMap<String, Tensor>> = requests.iter().collect();
            let batched = run_fused_batch_with_cache(
                &op,
                &refs,
                &device,
                mode,
                &LaunchOptions::with_threads(3),
                &ProgramCache::new(),
            )
            .unwrap();
            assert_eq!(batched.len(), serial.len());
            for ((got_t, got_r), (want_t, want_r)) in batched.iter().zip(&serial) {
                assert_eq!(got_t.data(), want_t.data(), "{mode:?} outputs diverge");
                assert_eq!(got_r, want_r, "{mode:?} reports diverge");
            }
        }
    }

    #[test]
    fn batched_shared_handles_never_leak_writes() {
        // Every request binds the *same* copy-on-write tensor handles —
        // including the output. Each request must still produce the
        // serial result, and the caller's bindings must stay untouched.
        let mut rng = SmallRng::seed_from_u64(33);
        let nnz = 23;
        let base: BTreeMap<String, Tensor> = [
            ("C".to_string(), Tensor::zeros(vec![12, 16])),
            ("AM".to_string(), randint(vec![nnz], 12, &mut rng)),
            ("AK".to_string(), randint(vec![nnz], 10, &mut rng)),
            (
                "AV".to_string(),
                rand_uniform(vec![nnz], -1.0, 1.0, &mut rng),
            ),
            (
                "B".to_string(),
                rand_uniform(vec![10, 16], -1.0, 1.0, &mut rng),
            ),
        ]
        .into_iter()
        .collect();
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let metas: BTreeMap<String, TensorMeta> = base
            .iter()
            .map(|(n, t)| (n.clone(), TensorMeta::new(t.shape().to_vec(), t.dtype())))
            .collect();
        let plan = build_plan(&stmt, &metas).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let device = DeviceModel::rtx3090();
        let (want, _) = run_fused_with(
            &op,
            &base,
            &device,
            Mode::Execute,
            &LaunchOptions::sequential(),
        )
        .unwrap();
        let requests: Vec<BTreeMap<String, Tensor>> = (0..4).map(|_| base.clone()).collect();
        let refs: Vec<&BTreeMap<String, Tensor>> = requests.iter().collect();
        let batched = run_fused_batch_with_cache(
            &op,
            &refs,
            &device,
            Mode::Execute,
            &LaunchOptions::with_threads(3),
            &ProgramCache::new(),
        )
        .unwrap();
        assert!(want.data().iter().any(|&v| v != 0.0));
        for (got, _) in &batched {
            assert_eq!(got.data(), want.data(), "shared-handle batch diverges");
        }
        assert!(
            base["C"].data().iter().all(|&v| v == 0.0),
            "the callers' output binding must never be mutated"
        );
    }

    #[test]
    fn batched_metadata_mismatch_is_reported() {
        let stmt = parse("C[i] = A[i]").unwrap();
        let metas: BTreeMap<String, TensorMeta> = [
            ("C".to_string(), TensorMeta::new(vec![8], DType::F32)),
            ("A".to_string(), TensorMeta::new(vec![8], DType::F32)),
        ]
        .into_iter()
        .collect();
        let plan = build_plan(&stmt, &metas).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let ok: BTreeMap<String, Tensor> = [
            ("C".to_string(), Tensor::zeros(vec![8])),
            ("A".to_string(), Tensor::ones(vec![8])),
        ]
        .into_iter()
        .collect();
        let bad: BTreeMap<String, Tensor> = [
            ("C".to_string(), Tensor::zeros(vec![8])),
            ("A".to_string(), Tensor::ones(vec![16])),
        ]
        .into_iter()
        .collect();
        let err = run_fused_batch_with_cache(
            &op,
            &[&ok, &bad],
            &DeviceModel::rtx3090(),
            Mode::Execute,
            &LaunchOptions::default(),
            &ProgramCache::new(),
        )
        .unwrap_err();
        assert!(matches!(err, InductorError::Binding(_)));
    }

    #[test]
    fn missing_binding_is_reported() {
        let stmt = parse("C[i] = A[i]").unwrap();
        let metas: BTreeMap<String, TensorMeta> = [
            ("C".to_string(), TensorMeta::new(vec![8], DType::F32)),
            ("A".to_string(), TensorMeta::new(vec![8], DType::F32)),
        ]
        .into_iter()
        .collect();
        let plan = build_plan(&stmt, &metas).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let inputs: BTreeMap<String, Tensor> = [("C".to_string(), Tensor::zeros(vec![8]))]
            .into_iter()
            .collect();
        assert!(matches!(
            run_fused(&op, &inputs, &DeviceModel::rtx3090(), Mode::Execute),
            Err(InductorError::Binding(_))
        ));
    }
}
