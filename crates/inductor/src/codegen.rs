//! Fused kernel code generation (§5.2.2–§5.2.3).
//!
//! One kernel is emitted per indirect Einsum: gathers, the contraction
//! (via `tl.dot` when a `(Y,R)×(R,X)` partition exists, otherwise scalar
//! multiply + `tl.sum`), and the scatter, all fused. Lane layouts follow
//! the paper's *lazy broadcasting*: every value tracks which roles (Y, R,
//! X) its block spans, and axes are inserted only when two values meet.
//! Eager mode reproduces stock Inductor's behaviour by paying
//! `tl.view`/`tl.trans` shared-memory traffic before every `tl.dot`
//! (Fig. 8b) and materializing broadcasts (Fig. 8a).

use crate::error::InductorError;
use crate::plan::{DimDesc, FactorDesc, FusionPlan, Role};
use crate::Result;
use insum_kernel::{BinOp, Kernel, KernelBuilder, Reg};
use std::collections::BTreeMap;

/// Codegen configuration — the ablation axes of paper Fig. 13.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Pattern-match to `ops.dot` / `tl.dot` (Tensor Cores) when legal.
    pub tensor_cores: bool,
    /// Lazy broadcasting (§5.2.3); `false` pays eager reshape/transpose
    /// shared-memory traffic.
    pub lazy_broadcast: bool,
    /// Override the Y tile (rows); `None` = heuristic.
    pub yblock: Option<usize>,
    /// Override the X tile (columns); `None` = heuristic.
    pub xblock: Option<usize>,
    /// Override the R tile (reduction); `None` = heuristic.
    pub rblock: Option<usize>,
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions {
            tensor_cores: true,
            lazy_broadcast: true,
            yblock: None,
            xblock: None,
            rblock: None,
        }
    }
}

/// A compiled fused operation: the kernel plus its launch geometry.
#[derive(Debug, Clone)]
pub struct FusedOp {
    /// The generated kernel.
    pub kernel: Kernel,
    /// The fusion plan it was generated from.
    pub plan: FusionPlan,
    /// Launch grid `[x_tiles, grid_volume * y_tiles]`.
    pub grid: Vec<usize>,
    /// Chosen Y tile.
    pub yblock: usize,
    /// Chosen X tile.
    pub xblock: usize,
    /// Chosen R tile.
    pub rblock: usize,
    /// Whether the kernel reduces through `tl.dot`.
    pub uses_dot: bool,
}

/// Smallest power of two `>= n` (1 for n = 0).
pub(crate) fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A register tagged with the lane roles its block spans, in canonical
/// order Y < R < X. An empty role list is a scalar.
#[derive(Debug, Clone)]
struct Val {
    reg: Reg,
    roles: Vec<Role>,
}

impl Val {
    fn scalar(reg: Reg) -> Val {
        Val { reg, roles: vec![] }
    }
}

fn role_rank(r: Role) -> usize {
    match r {
        Role::Y => 0,
        Role::R => 1,
        Role::X => 2,
        Role::Grid => 3,
    }
}

fn union_roles(a: &[Role], b: &[Role]) -> Vec<Role> {
    let mut out = a.to_vec();
    for r in b {
        if !out.contains(r) {
            out.push(*r);
        }
    }
    out.sort_by_key(|r| role_rank(*r));
    out
}

struct Emitter {
    b: KernelBuilder,
    lazy: bool,
    yb: usize,
    xb: usize,
    rb: usize,
    params: BTreeMap<String, usize>,
    lanes: BTreeMap<String, Val>, // per-variable lane value (grid scalars and block lanes)
    masks: BTreeMap<Role, Val>,   // per-role lane mask, if the extent needs one
}

impl Emitter {
    fn lane_size(&self, role: Role) -> usize {
        match role {
            Role::Y => self.yb,
            Role::R => self.rb,
            Role::X => self.xb,
            Role::Grid => 1,
        }
    }

    /// Align `v` so its block axes appear exactly at the positions of
    /// `target` roles (inserting size-1 axes). With eager broadcasting the
    /// result is materialized to the full joint lane shape (charged).
    fn align(&mut self, v: &Val, target: &[Role]) -> Val {
        debug_assert!(v.roles.iter().all(|r| target.contains(r)));
        let mut reg = v.reg;
        if v.roles.len() != target.len() {
            // Scalars broadcast natively; only block values need axes.
            if !v.roles.is_empty() {
                for (axis, role) in target.iter().enumerate() {
                    if !v.roles.contains(role) {
                        reg = self.b.expand_dims(reg, axis);
                    }
                }
            }
            if !self.lazy {
                let shape: Vec<usize> = target.iter().map(|&r| self.lane_size(r)).collect();
                reg = self.b.broadcast(reg, shape);
            }
        }
        Val {
            reg,
            roles: target.to_vec(),
        }
    }

    /// Combine two values with a binary op, aligning roles lazily.
    fn combine(&mut self, op: BinOp, a: &Val, b: &Val) -> Val {
        let joint = union_roles(&a.roles, &b.roles);
        let aa = self.align(a, &joint);
        let bb = self.align(b, &joint);
        Val {
            reg: self.b.binary(op, aa.reg, bb.reg),
            roles: joint,
        }
    }

    /// The mask covering the given roles, if any role needs one. The
    /// result is aligned to the requested role order so it broadcasts
    /// against offset blocks spanning those roles.
    fn mask_for(&mut self, roles: &[Role]) -> Option<Val> {
        let needed: Vec<Val> = roles
            .iter()
            .filter_map(|r| self.masks.get(r).cloned())
            .collect();
        let mut iter = needed.into_iter();
        let first = iter.next()?;
        let mut acc = first;
        for m in iter {
            acc = self.combine(BinOp::And, &acc, &m);
        }
        Some(self.align(&acc, roles))
    }

    /// Build the element-offset value for an access with the given dims
    /// over a tensor of the given shape. Returns the offset and its roles.
    fn offsets(&mut self, dims: &[DimDesc], shape: &[usize]) -> Val {
        // Row-major strides.
        let mut strides = vec![1usize; shape.len()];
        for d in (0..shape.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * shape[d + 1];
        }
        let mut total: Option<Val> = None;
        for (d, dim) in dims.iter().enumerate() {
            let value = match dim {
                DimDesc::Dense(v) => self.lanes[v].clone(),
                DimDesc::Gathered {
                    meta,
                    meta_shape,
                    meta_vars,
                } => self.load_metadata(meta, meta_shape, meta_vars),
            };
            let contrib = if strides[d] == 1 {
                value
            } else {
                let s = self.b.constant(strides[d] as f64);
                let sv = Val::scalar(s);
                self.combine(BinOp::Mul, &value, &sv)
            };
            total = Some(match total {
                None => contrib,
                Some(t) => self.combine(BinOp::Add, &t, &contrib),
            });
        }
        total.expect("access has at least one dim")
    }

    /// Load a metadata tensor's value block (indexed by grid scalars plus
    /// at most one block-role class).
    fn load_metadata(&mut self, meta: &str, meta_shape: &[usize], meta_vars: &[String]) -> Val {
        let dims: Vec<DimDesc> = meta_vars
            .iter()
            .map(|v| DimDesc::Dense(v.clone()))
            .collect();
        let off = self.offsets(&dims, meta_shape);
        let mask = self.mask_for(&off.roles);
        let param = self.params[meta];
        let reg = self.b.load(param, off.reg, mask.map(|m| m.reg), 0.0);
        Val {
            reg,
            roles: off.roles,
        }
    }

    /// Load one factor's block for the current iteration.
    fn load_factor(&mut self, factor: &FactorDesc) -> Val {
        let off = self.offsets(&factor.dims, &factor.shape);
        let mask = self.mask_for(&off.roles);
        let param = self.params[&factor.tensor];
        let reg = self.b.load(param, off.reg, mask.map(|m| m.reg), 0.0);
        Val {
            reg,
            roles: off.roles,
        }
    }
}

/// Pick the default (pre-autotune) tile sizes.
fn default_blocks(
    plan: &FusionPlan,
    uses_dot: bool,
    opts: &CodegenOptions,
) -> (usize, usize, usize) {
    let clamp = |ext: usize, lo: usize, hi: usize| next_pow2(ext).clamp(lo, hi);
    let yb = opts.yblock.unwrap_or_else(|| {
        if plan.y_var.is_none() {
            1
        } else if uses_dot {
            clamp(plan.y_extent(), 16, 32)
        } else {
            clamp(plan.y_extent(), 1, 32)
        }
    });
    let xb = opts.xblock.unwrap_or_else(|| {
        if plan.x_var.is_none() {
            1
        } else if uses_dot {
            clamp(plan.x_extent(), 16, 32)
        } else {
            clamp(plan.x_extent(), 1, 64)
        }
    });
    let rb = opts.rblock.unwrap_or_else(|| {
        if plan.r_vars.is_empty() {
            1
        } else if uses_dot {
            clamp(plan.r_extent(), 16, 32)
        } else {
            clamp(plan.r_extent(), 1, 32)
        }
    });
    (yb, xb, rb)
}

/// Generate the fused kernel for a plan.
///
/// # Errors
///
/// Returns [`InductorError::Unsupported`] if a factor spans all three
/// block roles (cannot be loaded as a ≤2-D tile).
pub fn compile_fused(plan: &FusionPlan, opts: &CodegenOptions) -> Result<FusedOp> {
    let uses_dot = opts.tensor_cores && plan.tensor_core_partition();
    for f in &plan.factors {
        if plan.factor_roles(f).len() > 2 && uses_dot {
            return Err(InductorError::Unsupported(format!(
                "factor {:?} spans three block roles",
                f.tensor
            )));
        }
    }
    let (yb, xb, rb) = default_blocks(plan, uses_dot, opts);

    let mut b = KernelBuilder::new(&format!("insum_{}", plan.output.tensor.to_lowercase()));
    // Parameter declarations in plan order; the output is written.
    let mut params = BTreeMap::new();
    for name in &plan.param_order {
        let idx = if name == &plan.output.tensor {
            b.output(name)
        } else {
            b.input(name)
        };
        params.insert(name.clone(), idx);
    }

    let mut e = Emitter {
        b,
        lazy: opts.lazy_broadcast,
        yb,
        xb,
        rb,
        params,
        lanes: BTreeMap::new(),
        masks: BTreeMap::new(),
    };

    // ------------------------------------------------------------------
    // Prologue: grid decomposition and lane construction.
    // ------------------------------------------------------------------
    let x_ext = plan.x_extent();
    let y_ext = plan.y_extent();
    let x_tiles = x_ext.div_ceil(xb).max(1);
    let y_tiles = y_ext.div_ceil(yb).max(1);

    if plan.x_var.is_some() {
        let pid0 = e.b.program_id(0);
        let xb_c = e.b.constant(xb as f64);
        let base = e.b.binary(BinOp::Mul, pid0, xb_c);
        let lanes = e.b.arange(xb);
        let x = e.b.binary(BinOp::Add, base, lanes);
        let xv = Val {
            reg: x,
            roles: vec![Role::X],
        };
        if !x_ext.is_multiple_of(xb) {
            let ext = e.b.constant(x_ext as f64);
            let m = e.b.binary(BinOp::Lt, x, ext);
            e.masks.insert(
                Role::X,
                Val {
                    reg: m,
                    roles: vec![Role::X],
                },
            );
        }
        e.lanes
            .insert(plan.x_var.clone().expect("x_var present"), xv);
    }

    // pid1 encodes (grid vars..., y_tile): y_tile fastest.
    let pid1 = e.b.program_id(1);
    let mut rest = pid1;
    let y_tile = if plan.y_var.is_some() {
        let yt_c = e.b.constant(y_tiles as f64);
        let yt = e.b.binary(BinOp::Mod, rest, yt_c);
        rest = e.b.binary(BinOp::FloorDiv, rest, yt_c);
        Some(yt)
    } else {
        None
    };
    for var in plan.grid_vars.iter().rev() {
        let ext = plan.extent(var);
        let ext_c = e.b.constant(ext as f64);
        let v = e.b.binary(BinOp::Mod, rest, ext_c);
        rest = e.b.binary(BinOp::FloorDiv, rest, ext_c);
        e.lanes.insert(var.clone(), Val::scalar(v));
    }
    if let (Some(yt), Some(y_var)) = (y_tile, plan.y_var.clone()) {
        let yb_c = e.b.constant(yb as f64);
        let base = e.b.binary(BinOp::Mul, yt, yb_c);
        let lanes = e.b.arange(yb);
        let y = e.b.binary(BinOp::Add, base, lanes);
        if !y_ext.is_multiple_of(yb) {
            let ext = e.b.constant(y_ext as f64);
            let m = e.b.binary(BinOp::Lt, y, ext);
            e.masks.insert(
                Role::Y,
                Val {
                    reg: m,
                    roles: vec![Role::Y],
                },
            );
        }
        e.lanes.insert(
            y_var,
            Val {
                reg: y,
                roles: vec![Role::Y],
            },
        );
    }

    // ------------------------------------------------------------------
    // Reduction loop (if any) and the contraction body.
    // ------------------------------------------------------------------
    let r_total = plan.r_extent();
    let has_loop = !plan.r_vars.is_empty();

    // Accumulator roles: the non-R roles spanned by the factors (plus
    // whatever the output needs is aligned at store time).
    let mut acc_roles: Vec<Role> = vec![];
    for f in &plan.factors {
        for r in plan.factor_roles(f) {
            if r != Role::R && !acc_roles.contains(&r) {
                acc_roles.push(r);
            }
        }
    }
    acc_roles.sort_by_key(|r| role_rank(*r));

    let acc = if has_loop {
        let shape: Vec<usize> = acc_roles.iter().map(|&r| e.lane_size(r)).collect();
        Some(Val {
            reg: e.b.full(shape, 0.0),
            roles: acc_roles.clone(),
        })
    } else {
        None
    };

    let emit_body = |e: &mut Emitter| -> Result<Val> {
        if uses_dot {
            // Partition factors into the (Y,R) and (R,X) dot operands.
            let mut a_side: Option<Val> = None;
            let mut b_side: Option<Val> = None;
            for f in &plan.factors {
                let roles = plan.factor_roles(f);
                let v = e.load_factor(f);
                let to_b = roles.contains(&Role::X);
                let slot = if to_b { &mut b_side } else { &mut a_side };
                *slot = Some(match slot.take() {
                    None => v,
                    Some(prev) => e.combine(BinOp::Mul, &prev, &v),
                });
            }
            let a_full = {
                let v = a_side.ok_or_else(|| {
                    InductorError::Unsupported("tensor-core path with empty A side".to_string())
                })?;
                let aligned = e.align(&v, &[Role::Y, Role::R]);
                // tl.dot needs a materialized 2-D tile.
                if aligned.roles.len() == v.roles.len() && v.roles == [Role::Y, Role::R] {
                    aligned
                } else {
                    let shape = vec![e.yb, e.rb];
                    Val {
                        reg: e.b.broadcast(aligned.reg, shape),
                        roles: vec![Role::Y, Role::R],
                    }
                }
            };
            let b_full = {
                let v = b_side.ok_or_else(|| {
                    InductorError::Unsupported("tensor-core path with empty B side".to_string())
                })?;
                let aligned = e.align(&v, &[Role::R, Role::X]);
                if aligned.roles.len() == v.roles.len() && v.roles == [Role::R, Role::X] {
                    aligned
                } else {
                    let shape = vec![e.rb, e.xb];
                    Val {
                        reg: e.b.broadcast(aligned.reg, shape),
                        roles: vec![Role::R, Role::X],
                    }
                }
            };
            let (a_reg, b_reg) = if e.lazy {
                (a_full.reg, b_full.reg)
            } else {
                // Eager broadcasting: pay the tl.view / tl.trans round
                // trips of Fig. 8b before the dot.
                let av = e.b.view(a_full.reg, vec![e.yb, e.rb]);
                let bt = e.b.trans(b_full.reg);
                let btt = e.b.trans(bt);
                (av, btt)
            };
            let d = e.b.dot(a_reg, b_reg);
            Ok(Val {
                reg: d,
                roles: vec![Role::Y, Role::X],
            })
        } else {
            // Scalar path: multiply everything, then tl.sum over R.
            let mut prod: Option<Val> = None;
            for f in &plan.factors {
                let v = e.load_factor(f);
                prod = Some(match prod {
                    None => v,
                    Some(p) => e.combine(BinOp::Mul, &p, &v),
                });
            }
            let p = prod.ok_or_else(|| {
                InductorError::Unsupported("statement with no factors".to_string())
            })?;
            if let Some(axis) = p.roles.iter().position(|&r| r == Role::R) {
                let s = e.b.sum(p.reg, axis);
                let mut roles = p.roles.clone();
                roles.remove(axis);
                Ok(Val { reg: s, roles })
            } else {
                Ok(p)
            }
        }
    };

    let result: Val = if has_loop {
        let iters = r_total.div_ceil(rb);
        let acc = acc.expect("accumulator exists when looping");
        let i = e.b.begin_loop(0, iters as i64, 1);
        // r lanes for this iteration.
        let rb_c = e.b.constant(rb as f64);
        let base = e.b.binary(BinOp::Mul, i, rb_c);
        let lanes = e.b.arange(rb);
        let r = e.b.binary(BinOp::Add, base, lanes);
        if !r_total.is_multiple_of(rb) {
            let ext = e.b.constant(r_total as f64);
            let m = e.b.binary(BinOp::Lt, r, ext);
            e.masks.insert(
                Role::R,
                Val {
                    reg: m,
                    roles: vec![Role::R],
                },
            );
        }
        // Decompose flattened r into its variables.
        let mut suffix = r_total;
        for (k, var) in plan.r_vars.iter().enumerate() {
            let ext = plan.extent(var);
            suffix /= ext;
            let mut lane = r;
            if suffix > 1 {
                let s_c = e.b.constant(suffix as f64);
                lane = e.b.binary(BinOp::FloorDiv, lane, s_c);
            }
            if k > 0 {
                let e_c = e.b.constant(ext as f64);
                lane = e.b.binary(BinOp::Mod, lane, e_c);
            }
            e.lanes.insert(
                var.clone(),
                Val {
                    reg: lane,
                    roles: vec![Role::R],
                },
            );
        }
        let body = emit_body(&mut e)?;
        let aligned = e.align(&body, &acc.roles);
        e.b.binary_into(acc.reg, BinOp::Add, acc.reg, aligned.reg);
        e.b.end_loop();
        // The R mask must not leak into the epilogue.
        e.masks.remove(&Role::R);
        acc
    } else {
        emit_body(&mut e)?
    };

    // ------------------------------------------------------------------
    // Epilogue: store or scatter the accumulator.
    // ------------------------------------------------------------------
    let out_off = e.offsets(&plan.output.dims.clone(), &plan.output.shape.clone());
    let joint = union_roles(&out_off.roles, &result.roles);
    let off_aligned = e.align(&out_off, &joint);
    let val_aligned = e.align(&result, &joint);
    let mask = e.mask_for(&joint);
    let out_param = e.params[&plan.output.tensor];
    if plan.scatter || plan.accumulate {
        e.b.atomic_add(
            out_param,
            off_aligned.reg,
            val_aligned.reg,
            mask.map(|m| m.reg),
        );
    } else {
        e.b.store(
            out_param,
            off_aligned.reg,
            val_aligned.reg,
            mask.map(|m| m.reg),
        );
    }

    let kernel = e.b.build();
    let grid_volume: usize = plan.grid_vars.iter().map(|v| plan.extent(v)).product();
    Ok(FusedOp {
        kernel,
        plan: plan.clone(),
        grid: vec![x_tiles, grid_volume * y_tiles],
        yblock: yb,
        xblock: xb,
        rblock: rb,
        uses_dot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use insum_graph::TensorMeta;
    use insum_lang::parse;
    use insum_tensor::DType;
    use std::collections::BTreeMap;

    fn metas(pairs: &[(&str, &[usize], DType)]) -> BTreeMap<String, TensorMeta> {
        pairs
            .iter()
            .map(|(n, s, d)| (n.to_string(), TensorMeta::new(s.to_vec(), *d)))
            .collect()
    }

    fn spmm_metas() -> BTreeMap<String, TensorMeta> {
        metas(&[
            ("C", &[16, 32], DType::F32),
            ("AM", &[40], DType::I32),
            ("AV", &[40], DType::F32),
            ("AK", &[40], DType::I32),
            ("B", &[16, 32], DType::F32),
        ])
    }

    #[test]
    fn dense_matmul_uses_dot() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let m = metas(&[
            ("C", &[64, 64], DType::F32),
            ("A", &[64, 32], DType::F32),
            ("B", &[32, 64], DType::F32),
        ]);
        let plan = build_plan(&stmt, &m).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        assert!(op.uses_dot);
        op.kernel.validate().unwrap();
        let src = insum_kernel::print_kernel(&op.kernel);
        assert!(
            src.contains("tl.dot"),
            "kernel should use tensor cores:\n{src}"
        );
        assert!(src.contains("tl.store"), "dense output is a store");
        assert!(!src.contains("atomic"), "no scatter for dense assign");
    }

    #[test]
    fn coo_spmm_scatters_with_atomics() {
        let stmt = parse("C[AM[p],n] += AV[p] * B[AK[p],n]").unwrap();
        let plan = build_plan(&stmt, &spmm_metas()).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        assert!(!op.uses_dot, "COO SpMM has no reduction lanes");
        let src = insum_kernel::print_kernel(&op.kernel);
        assert!(src.contains("tl.atomic_add"));
    }

    #[test]
    fn tensor_cores_can_be_disabled() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let m = metas(&[
            ("C", &[64, 64], DType::F32),
            ("A", &[64, 32], DType::F32),
            ("B", &[32, 64], DType::F32),
        ]);
        let plan = build_plan(&stmt, &m).unwrap();
        let opts = CodegenOptions {
            tensor_cores: false,
            ..Default::default()
        };
        let op = compile_fused(&plan, &opts).unwrap();
        assert!(!op.uses_dot);
        let src = insum_kernel::print_kernel(&op.kernel);
        assert!(!src.contains("tl.dot"));
        assert!(src.contains("tl.sum"), "scalar path reduces with tl.sum");
    }

    #[test]
    fn eager_broadcasting_pays_view_trans() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let m = metas(&[
            ("C", &[64, 64], DType::F32),
            ("A", &[64, 32], DType::F32),
            ("B", &[32, 64], DType::F32),
        ]);
        let plan = build_plan(&stmt, &m).unwrap();
        let lazy = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        let eager = compile_fused(
            &plan,
            &CodegenOptions {
                lazy_broadcast: false,
                ..Default::default()
            },
        )
        .unwrap();
        let lazy_src = insum_kernel::print_kernel(&lazy.kernel);
        let eager_src = insum_kernel::print_kernel(&eager.kernel);
        assert!(
            !lazy_src.contains("tl.trans"),
            "lazy mode avoids transposes:\n{lazy_src}"
        );
        assert!(
            eager_src.contains("tl.trans"),
            "eager mode transposes:\n{eager_src}"
        );
        assert!(eager_src.contains("tl.view"));
    }

    #[test]
    fn grid_is_x_tiles_by_groups() {
        let stmt = parse("C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]").unwrap();
        let m = metas(&[
            ("C", &[4, 16, 64], DType::F32),
            ("AM", &[6], DType::I32),
            ("AV", &[6, 2, 16, 16], DType::F32),
            ("AK", &[6, 2], DType::I32),
            ("B", &[4, 16, 64], DType::F32),
        ]);
        let plan = build_plan(&stmt, &m).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        assert!(op.uses_dot);
        // x tiles: 64/xb; second grid dim: 6 groups * y_tiles(16/yb = 1).
        assert_eq!(op.grid[1], 6);
        assert_eq!(op.grid[0], 64 / op.xblock);
    }

    #[test]
    fn block_overrides_respected() {
        let stmt = parse("C[y,x] = A[y,r] * B[r,x]").unwrap();
        let m = metas(&[
            ("C", &[64, 64], DType::F32),
            ("A", &[64, 32], DType::F32),
            ("B", &[32, 64], DType::F32),
        ]);
        let plan = build_plan(&stmt, &m).unwrap();
        let opts = CodegenOptions {
            yblock: Some(16),
            xblock: Some(16),
            rblock: Some(16),
            ..Default::default()
        };
        let op = compile_fused(&plan, &opts).unwrap();
        assert_eq!((op.yblock, op.xblock, op.rblock), (16, 16, 16));
        assert_eq!(op.grid, vec![4, 4]);
    }

    #[test]
    fn fig9_kernel_structure() {
        // C[D[y],x] += A[y,E[r]] * B[r,x] — the paper's Fig. 9 example.
        let stmt = parse("C[D[y],x] += A[y,E[r]] * B[r,x]").unwrap();
        let m = metas(&[
            ("C", &[64, 64], DType::F32),
            ("D", &[32], DType::I32),
            ("A", &[32, 128], DType::F32),
            ("E", &[32], DType::I32),
            ("B", &[32, 64], DType::F32),
        ]);
        let plan = build_plan(&stmt, &m).unwrap();
        let op = compile_fused(&plan, &CodegenOptions::default()).unwrap();
        assert!(op.uses_dot);
        let src = insum_kernel::print_kernel(&op.kernel);
        // Fully fused: gather (E), dot, scatter (D) in one kernel.
        assert!(src.contains("tl.load(E + "));
        assert!(src.contains("tl.load(D + "));
        assert!(src.contains("tl.dot"));
        assert!(src.contains("tl.atomic_add(C + "));
    }
}
